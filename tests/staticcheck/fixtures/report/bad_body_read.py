"""Fixture: unbounded HTTP body reads (F304) plus bounded look-alikes.

Lives under ``report/`` so path classification grants the ``service``
scope the rule is gated on.
"""

_CHUNK = 65536


def unbounded(self, length):
    body = self.rfile.read(length)
    rest = self.rfile.read()
    return body, rest


def bounded(self, stream, length):
    head = self.rfile.read(4096)
    chunk = self.rfile.read(min(length, _CHUNK))
    other = stream.read(length)
    return head, chunk, other
