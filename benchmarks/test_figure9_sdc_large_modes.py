"""Figure 9: SDC MB-AVF for 5x1-8x1 faults with SEC-DED ECC and x2 interleave.

With x2 interleaving every mode from 5x1 to 8x1 touches exactly two cache
lines.  Shape targets (Sec. VII-C): the SDC AVF jumps from 5x1 to 6x1 —
a 5x1 fault leaves one word with only 2 flipped bits (detected: some DUE),
while a 6x1 fault is undetected in *both* words — and then plateaus from
6x1 to 8x1 because bits within a line have high ACE locality.
"""

import numpy as np
import pytest

from repro.core import FaultMode, Interleaving, NoProtection, SecDed
from repro.workloads.suite import EVALUATION_SET

MODES = (5, 6, 7, 8)


def _measure(study_of):
    rows = {}
    for wl in EVALUATION_SET:
        study = study_of(wl)
        sb = study.cache_avf("l1", FaultMode.linear(1), NoProtection()).sdc_avf
        per_mode = {}
        for m in MODES:
            res = study.cache_avf(
                "l1", FaultMode.linear(m), SecDed(),
                style=Interleaving.WAY_PHYSICAL, factor=2,
            )
            per_mode[m] = (res.sdc_avf, res.due_avf)
        rows[wl] = (sb, per_mode)
    return rows


@pytest.mark.benchmark(group="figure9")
def test_figure9_sdc_large_modes(benchmark, study_of, report):
    rows = benchmark.pedantic(_measure, args=(study_of,), rounds=1, iterations=1)
    lines = [
        f"{'workload':<14} {'SB':>8} | SDC "
        + " ".join(f"{m}x1".rjust(8) for m in MODES)
        + " | DUE(5x1)"
    ]
    for wl, (sb, pm) in rows.items():
        lines.append(
            f"{wl:<14} {sb:8.4f} |     "
            + " ".join(f"{pm[m][0]:8.4f}" for m in MODES)
            + f" | {pm[5][1]:8.4f}"
        )
    active = {wl: v for wl, v in rows.items() if v[0] > 1e-4}
    mean = {m: np.mean([v[1][m][0] for v in active.values()]) for m in MODES}
    due5 = np.mean([v[1][5][1] for v in active.values()])
    lines.append(
        f"{'mean':<14} {'':>8} |     "
        + " ".join(f"{mean[m]:8.4f}" for m in MODES)
        + f" | {due5:8.4f}"
    )
    lines.append(f"6x1/5x1 SDC jump = {mean[6] / mean[5]:.2f}x; "
                 f"8x1/6x1 plateau = {mean[8] / mean[6]:.2f}x")
    report("figure9_sdc_large_modes", lines)

    # Shape target 1: SDC jumps substantially from 5x1 to 6x1.
    assert mean[6] > 1.3 * mean[5]
    # Shape target 2: plateau (at most slight increase) from 6x1 to 8x1.
    assert mean[8] <= 1.35 * mean[6]
    assert mean[7] >= mean[6] - 1e-9
    # Shape target 3: 5x1 retains a detected component (one word sees only
    # 2 bits); 6x1 is all-SDC.
    assert due5 > 0
    due6 = np.mean([v[1][6][1] for v in active.values()])
    assert due6 <= due5
