"""Direct tests for MemoryConsumption and fill-map merging."""

import numpy as np

from repro.arch import Apu, GlobalMemory, ProgramBuilder, imm, s, v
from repro.arch.liveness import analyze_liveness
from repro.core.lifetime import MemoryConsumption, merge_fill_maps


def _trace(build_fn, outputs, n_threads=16):
    mem = GlobalMemory()
    bufs = {}
    for name in ("a", "b", "c"):
        bufs[name] = mem.alloc(name, 64)
    mem.view_u32("a")[:] = np.arange(16, dtype=np.uint32)
    p = ProgramBuilder()
    build_fn(p)
    apu = Apu(memory=mem, n_cus=1)
    apu.launch(p.build(), n_threads, [bufs["a"], bufs["b"], bufs["c"]])
    apu.finish()
    ranges = [mem.buffer(n) for n in outputs]
    analyze_liveness(
        apu.records,
        {w: prog.n_vregs for w, prog in apu.wf_programs.items()},
        mem.size, ranges, lds_size=apu.lds_bytes,
    )
    return apu, mem, ranges, bufs


def _copy_a_to_b(p):
    p.shl(v(2), v(0), imm(2))
    p.iadd(v(3), v(2), s(2))
    p.load(v(4), v(3))
    p.iadd(v(5), v(2), s(3))
    p.store(v(4), v(5))


class TestMemoryConsumption:
    def test_output_byte_live_after_store(self):
        apu, mem, ranges, bufs = _trace(_copy_a_to_b, outputs=("b",))
        mc = MemoryConsumption(apu.records, mem.size, ranges)
        store_t = max(r.t for r in apu.records if r.op == "v_store")
        assert mc.live_after(bufs["b"], store_t)
        assert mc.read_after(bufs["b"], store_t)

    def test_scratch_byte_dead_after_store(self):
        apu, mem, ranges, bufs = _trace(_copy_a_to_b, outputs=())
        mc = MemoryConsumption(apu.records, mem.size, [])
        store_t = max(r.t for r in apu.records if r.op == "v_store")
        assert not mc.live_after(bufs["b"], store_t)
        assert not mc.read_after(bufs["b"], store_t)

    def test_overwrite_kills_earlier_value(self):
        def body(p):
            _copy_a_to_b(p)
            p.store(imm(0), v(5))  # second store to b

        apu, mem, ranges, bufs = _trace(body, outputs=("b",))
        mc = MemoryConsumption(apu.records, mem.size, ranges)
        stores = sorted(r.t for r in apu.records if r.op == "v_store")
        first, second = stores[0], stores[-1]
        assert first < second
        # The value as of just after the first store is overwritten before
        # the host reads; as of the second store it is live.
        assert not mc.live_after(bufs["b"], first)
        assert mc.live_after(bufs["b"], second)

    def test_live_load_consumes(self):
        def body(p):
            _copy_a_to_b(p)
            # read b back and store into c
            p.load(v(6), v(5))
            p.iadd(v(7), v(2), s(4))
            p.store(v(6), v(7))

        apu, mem, ranges, bufs = _trace(body, outputs=("c",))
        mc = MemoryConsumption(apu.records, mem.size, ranges)
        first_store = min(r.t for r in apu.records if r.op == "v_store")
        # b is not an output, but its value is consumed by the load that
        # feeds c.
        assert mc.live_after(bufs["b"], first_store)

    def test_untracked_address(self):
        apu, mem, ranges, bufs = _trace(_copy_a_to_b, outputs=("b",))
        mc = MemoryConsumption(apu.records, mem.size, ranges)
        # 'a' is never stored by the kernel: no instance tracking needed.
        assert not mc.live_after(bufs["a"], 0)


class TestMergeFillMaps:
    def test_union_semantics(self):
        r1 = np.array([True, False, False])
        l1 = np.array([True, False, False])
        r2 = np.array([False, True, False])
        l2 = np.array([False, False, False])
        merged = merge_fill_maps([{1: (r1, l1)}, {1: (r2, l2), 2: (r2, l2)}])
        assert merged[1][0].tolist() == [True, True, False]
        assert merged[1][1].tolist() == [True, False, False]
        assert 2 in merged

    def test_copies_do_not_alias(self):
        r = np.array([True])
        l = np.array([False])
        merged = merge_fill_maps([{7: (r, l)}])
        merged[7][0][0] = False
        assert r[0]  # original unchanged

    def test_empty(self):
        assert merge_fill_maps([]) == {}
