"""Tests for the fault-injection framework and ACE-interference campaign."""

import numpy as np
import pytest

from repro.arch import Apu, GlobalMemory, ProgramBuilder, imm, s, v
from repro.faultinject import (
    BenchmarkCampaign,
    InjectionOutcome,
    InjectionSpec,
    run_campaign,
)
from repro.faultinject.campaign import _Runner
from repro.runtime import TaskOutcome
from repro.workloads import REGISTRY


class TestInjectionHook:
    def _copy_program(self):
        p = ProgramBuilder()
        p.shl(v(2), v(0), imm(2))
        p.iadd(v(3), v(2), s(2))
        p.load(v(4), v(3))
        p.iadd(v(5), v(2), s(3))
        p.store(v(4), v(5))
        return p.build()

    def _run(self, inject=None):
        mem = GlobalMemory()
        a = mem.alloc("a", 64)
        b = mem.alloc("b", 64)
        mem.view_u32("a")[:] = np.arange(16, dtype=np.uint32)
        apu = Apu(memory=mem, n_cus=1)
        if inject:
            apu.inject_fault(*inject)
        apu.launch(self._copy_program(), 16, [a, b])
        apu.finish()
        return mem.view_u32("b").copy()

    def test_no_injection_is_clean(self):
        assert (self._run() == np.arange(16)).all()

    def test_flip_in_live_register_corrupts_output(self):
        # Flip bit 0 of v0 (the tid register) in lane 3 before execution:
        # lane 3's addresses change, corrupting the copy.
        out = self._run(inject=(0, 0, 3, 1, 0))
        assert not (out == np.arange(16)).all()

    def test_flip_in_unused_register_is_masked(self):
        out = self._run(inject=(0, 9, 3, 1, 0))
        assert (out == np.arange(16)).all()

    def test_flip_after_completion_is_masked(self):
        out = self._run(inject=(0, 0, 3, 1, 10**6))
        assert (out == np.arange(16)).all()

    def test_flip_out_of_range_register_ignored(self):
        out = self._run(inject=(0, 500, 3, 1, 0))
        assert (out == np.arange(16)).all()


class TestInjectionSpec:
    def test_bitmask(self):
        spec = InjectionSpec(0, 1, 2, (0, 3), 5)
        assert spec.bitmask == 0b1001

    def test_bitmask_wraps_at_32(self):
        spec = InjectionSpec(0, 1, 2, (31,), 5)
        assert spec.bitmask == 1 << 31


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return _Runner(REGISTRY["transpose"], seed=0, n_cus=1)

    def test_golden_snapshot_nonempty(self, runner):
        assert len(runner.golden) == 32 * 32 * 4

    def test_masked_for_noop_injection(self, runner):
        # Register far beyond anything the kernel uses.
        spec = InjectionSpec(0, 200, 0, (0,), 0)
        assert runner.inject(spec) == InjectionOutcome.MASKED

    def test_deterministic_verdicts(self, runner):
        rng = np.random.default_rng(7)
        spec = runner.random_spec(rng)
        assert runner.inject(spec) == runner.inject(spec)

    def test_random_spec_in_bounds(self, runner):
        rng = np.random.default_rng(1)
        for _ in range(20):
            spec = runner.random_spec(rng, n_bits=3)
            assert 0 <= spec.lane < 16
            assert all(0 <= b < 32 for b in spec.bits)
            assert spec.wf in runner.windows

    @pytest.mark.parametrize("n_bits", [1, 2, 3, 4, 8])
    def test_random_spec_never_collapses_bits(self, runner, n_bits):
        """Regression: near bit 31 the old clamping folded group members
        into duplicates, silently flipping fewer bits than requested."""
        rng = np.random.default_rng(2)
        for _ in range(200):
            spec = runner.random_spec(rng, n_bits=n_bits)
            assert len(spec.bits) == n_bits
            assert len(set(spec.bits)) == n_bits
            assert spec.bits[-1] <= 31
            assert spec.bits == tuple(
                range(spec.bits[0], spec.bits[0] + n_bits)
            )

    def test_cycle_budget_overrun_classified_as_hang(self):
        """An injection that would exceed max_cycles is a HANG, not CRASH."""
        r = _Runner(REGISTRY["transpose"], seed=0, n_cus=1, max_cycles=5)
        spec = InjectionSpec(0, 200, 0, (0,), 0)
        assert r.inject(spec) == InjectionOutcome.HANG


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign(
            "transpose", n_single=24, max_groups_per_mode=6, seed=0, n_cus=1
        )

    def test_outcome_counts_sum(self, campaign):
        assert sum(campaign.single_outcomes.values()) == 24

    def test_finds_some_sdc_bits(self, campaign):
        assert campaign.n_sdc_ace_bits >= 1
        assert campaign.single_outcomes.get(InjectionOutcome.SDC, 0) == (
            campaign.n_sdc_ace_bits
        )

    def test_multibit_modes_run(self, campaign):
        assert set(campaign.multibit) == {2, 3, 4}
        for injected, interfering in campaign.multibit.values():
            assert 0 <= interfering <= injected

    def test_interference_is_rare(self, campaign):
        """The paper's Table II conclusion: ACE interference ~0.1%."""
        injected = sum(n for n, _ in campaign.multibit.values())
        interfering = campaign.interference_total()
        assert injected > 0
        assert interfering <= max(1, injected // 10)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            run_campaign("nope")

    def test_no_failures_in_clean_run(self, campaign):
        assert campaign.n_failed == 0
        assert campaign.failures == {}

    def test_dict_round_trip(self, campaign):
        assert BenchmarkCampaign.from_dict(campaign.to_dict()) == campaign


class TestCampaignRuntime:
    """The campaign driven through the fault-tolerant runtime."""

    ARGS = dict(n_single=10, max_groups_per_mode=3, seed=0, n_cus=1)

    @pytest.fixture(scope="class")
    def reference(self):
        return run_campaign("transpose", **self.ARGS)

    def test_journaled_run_matches_plain_run(self, reference, tmp_path):
        journaled = run_campaign(
            "transpose", journal=tmp_path / "j.jsonl", **self.ARGS
        )
        assert journaled == reference

    def test_killed_campaign_resumes_identically(self, reference, tmp_path):
        """Truncate the journal mid-record (the SIGKILL signature) and
        re-run: the result must equal the uninterrupted campaign's."""
        journal = tmp_path / "j.jsonl"
        run_campaign("transpose", journal=journal, **self.ARGS)
        lines = journal.read_text().splitlines()
        journal.write_text(
            "\n".join(lines[:5]) + "\n" + lines[5][: len(lines[5]) // 2]
        )
        resumed = run_campaign("transpose", journal=journal, **self.ARGS)
        assert resumed == reference

    def test_process_isolation_matches_inline(self, reference):
        isolated = run_campaign(
            "transpose", jobs=2, timeout=120, **self.ARGS
        )
        assert isolated == reference

    def test_timeout_surfaces_in_failure_breakdown(self):
        """A simulation killed at its wall-clock budget becomes a TIMEOUT
        failure with provenance — the campaign completes regardless."""
        c = run_campaign(
            "transpose", n_single=3, max_groups_per_mode=1, seed=0,
            n_cus=1, jobs=1, timeout=0.01,
        )
        assert c.failures.get(TaskOutcome.TIMEOUT) == 3
        assert c.n_failed == 3
        assert c.single_outcomes == {}
        assert c.multibit == {2: (0, 0), 3: (0, 0), 4: (0, 0)}
