"""Baseline workloads: vector add and parallel reduction.

``vectoradd`` is the quickstart kernel (streaming, no reuse); ``reduction``
sums a float array with per-thread strided accumulation, an intra-wavefront
butterfly (``shuffle_xor``) and a second single-wavefront pass over the
per-wavefront partials.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..arch.gpu import Apu
from ..arch.isa import ProgramBuilder, fimm, imm, s, v
from ..arch.memory import GlobalMemory
from .base import Workload
from .util import addr_of, addr_of_tid

__all__ = ["VectorAdd", "Reduction"]


class VectorAdd(Workload):
    """c[i] = a[i] + b[i] over 256 uint32 elements."""

    name = "vectoradd"
    outputs = ("c",)
    N = 256

    def setup(self, mem: GlobalMemory) -> None:
        self.a = self.rng.integers(0, 1 << 31, self.N, dtype=np.uint32)
        self.b = self.rng.integers(0, 1 << 31, self.N, dtype=np.uint32)
        self.base_a = mem.alloc("a", self.N * 4)
        self.base_b = mem.alloc("b", self.N * 4)
        self.base_c = mem.alloc("c", self.N * 4)
        mem.view_u32("a")[:] = self.a
        mem.view_u32("b")[:] = self.b

    def launch(self, apu: Apu) -> None:
        p = ProgramBuilder()
        addr_of_tid(p, s(2), v(2))
        p.load(v(3), v(2))
        addr_of_tid(p, s(3), v(4))
        p.load(v(5), v(4))
        p.iadd(v(6), v(3), v(5))
        addr_of_tid(p, s(4), v(7))
        p.store(v(6), v(7))
        apu.launch(
            p.build(), self.N, [self.base_a, self.base_b, self.base_c],
            name=self.name,
        )

    def expected(self) -> Dict[str, np.ndarray]:
        return {"c": self.a + self.b}


def emit_butterfly_reduce(p: ProgramBuilder, acc, tmp) -> None:
    """Sum ``acc`` across the 16 lanes with a shuffle_xor butterfly.

    After this, every lane holds the wavefront total (float32 adds in
    butterfly order — the numpy references reproduce the same order).
    """
    for step in (1, 2, 4, 8):
        p.shuffle_xor(tmp, acc, step)
        p.fadd(acc, acc, tmp)


def butterfly_reduce_ref(vals: np.ndarray) -> np.ndarray:
    """Numpy emulation of :func:`emit_butterfly_reduce` (float32 order)."""
    acc = vals.astype(np.float32).copy()
    lanes = np.arange(16)
    for step in (1, 2, 4, 8):
        acc = acc + acc[lanes ^ step]
    return acc


class Reduction(Workload):
    """sum(x) over 1024 float32 elements (two-pass butterfly reduction)."""

    name = "reduction"
    outputs = ("total",)
    N = 1024
    THREADS = 256

    def setup(self, mem: GlobalMemory) -> None:
        self.x = self.rng.random(self.N, dtype=np.float32)
        self.base_x = mem.alloc("x", self.N * 4)
        self.base_partials = mem.alloc("partials", (self.THREADS // 16) * 4)
        self.base_total = mem.alloc("total", 4)
        mem.view_f32("x")[:] = self.x

    def _phase1(self) -> ProgramBuilder:
        p = ProgramBuilder()
        p.mov(v(2), fimm(0.0))
        # Strided accumulation: x[tid], x[tid+256], ...
        for j in range(self.N // self.THREADS):
            addr_of(p, s(2), v(0), v(3))
            p.load(v(4), v(3), offset=j * self.THREADS * 4)
            p.fadd(v(2), v(2), v(4))
        emit_butterfly_reduce(p, v(2), v(5))
        # Lane 0 stores the wavefront partial at partials[wf_id].
        p.mov(v(6), s(0))
        addr_of(p, s(3), v(6), v(7))
        p.cmp("eq", v(1), imm(0))
        p.store(v(2), v(7), pred=True)
        return p

    def _phase2(self) -> ProgramBuilder:
        p = ProgramBuilder()
        addr_of_tid(p, s(2), v(2))
        p.load(v(3), v(2))
        emit_butterfly_reduce(p, v(3), v(4))
        p.mov(v(5), s(3))
        p.cmp("eq", v(1), imm(0))
        p.store(v(3), v(5), pred=True)
        return p

    def launch(self, apu: Apu) -> None:
        apu.launch(
            self._phase1().build(), self.THREADS,
            [self.base_x, self.base_partials], name=f"{self.name}.partial",
        )
        apu.launch(
            self._phase2().build(), 16,
            [self.base_partials, self.base_total], name=f"{self.name}.final",
        )

    def expected(self) -> Dict[str, np.ndarray]:
        x = self.x.reshape(self.N // self.THREADS, self.THREADS)
        acc = np.zeros(self.THREADS, dtype=np.float32)
        for chunk in x:
            acc = acc + chunk
        # Per-wavefront butterfly over [wf, lane] layout, then the final pass.
        wf_totals = np.empty(self.THREADS // 16, dtype=np.float32)
        for w in range(self.THREADS // 16):
            wf_totals[w] = butterfly_reduce_ref(acc[w * 16 : (w + 1) * 16])[0]
        total = butterfly_reduce_ref(wf_totals)[0]
        return {"total": np.array([total], dtype=np.float32)}
