"""The fabric worker node: lease, execute, journal locally, report.

A :class:`FabricWorker` polls its coordinator for task leases, rebuilds
the task function from the leased :class:`JobSpec` (cached per job
digest, so an injection job pays its golden run once per node), executes
each task inline, and *appends the record to its local shard journal
before reporting it* — that ordering is the replication: once a task has
run, its result survives the loss of either end of the link.

Fault behaviour:

* **heartbeats** — a daemon thread renews the leases of every held task
  at ``lease_ttl / 3``; if the thread is blacked out (chaos) or the node
  dies, the coordinator's lease sweep re-dispatches the work.
* **partition tolerance** — a report that cannot be delivered stays in
  the outbox and is retried before each poll; heartbeats keep the lease
  alive meanwhile (up to the coordinator's per-task timeout cap), and if
  the lease expires anyway the coordinator's idempotent finalize drops
  the eventual duplicate.
* **node-level chaos** — a :class:`~repro.runtime.chaos.ChaosPolicy`
  can kill the node at a dispatch (``node_kill`` — the process exits
  hard, exactly like SIGKILL), drop/delay/duplicate its data-plane RPCs
  and partition whole windows of them (via the RPC client), and black
  out heartbeat windows (``heartbeat_blackout``, applied here).  The
  data plane and the heartbeat plane fail independently, which is what
  makes "reports lost but lease alive" and "lease lost but node healthy"
  both reachable states in tests.
* **graceful exit** — on shutdown the worker flushes its outbox and
  sends ``goodbye`` so un-started leases requeue immediately instead of
  waiting out their TTL.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ... import obs
from ...obs import get_metrics, get_tracer
from ..chaos import ChaosPolicy, ChaosSpec
from ..errors import TaskOutcome, classify_exception
from ..journal import Journal, PathLike
from ..retry import RetryPolicy
from . import tasks as task_registry
from .merge import SPAN_SHARD_SUFFIX
from .protocol import JobSpec, RpcError, RpcUnavailable
from .rpc import DEFAULT_RPC_TIMEOUT, RpcClient

__all__ = ["FabricWorker", "run_worker"]


class FabricWorker:
    """One worker node: see the module docstring for semantics."""

    def __init__(
        self,
        address: Tuple[str, int],
        node: str,
        *,
        shard_dir: Optional[PathLike] = None,
        chaos: Optional[ChaosPolicy] = None,
        rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
        rpc_retry: Optional[RetryPolicy] = None,
        max_tasks: int = 2,
        capture_spans: bool = False,
    ) -> None:
        if not node:
            raise ValueError("worker node id must be non-empty")
        self.node = node
        self.chaos = chaos
        self.max_tasks = max_tasks
        self.capture_spans = capture_spans
        #: data plane: register/lease/report/goodbye (chaos applies here)
        self.client = RpcClient(
            tuple(address), node,
            timeout=rpc_timeout, retry=rpc_retry, chaos=chaos,
        )
        #: heartbeat plane: chaos-free transport; blackout chaos skips
        #: whole beats instead (see module docstring)
        self.hb_client = RpcClient(
            tuple(address), node, timeout=min(2.0, rpc_timeout),
        )
        self.shard_journal: Optional[Journal] = None
        self.span_shard: Optional[Path] = None
        if shard_dir is not None:
            root = Path(shard_dir)
            root.mkdir(parents=True, exist_ok=True)
            self.shard_journal = Journal(root / f"{node}.jsonl")
            self.span_shard = root / f"{node}{SPAN_SHARD_SUFFIX}"
        self.lease_ttl = 4.0
        self.poll = 0.15
        self._seq = 0
        self._fns: Dict[str, Any] = {}
        self._outbox: List[Dict[str, Any]] = []
        self._held: set = set()
        self._held_lock = threading.Lock()
        self._stop = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        """Ask :meth:`serve` (possibly from another thread) to exit."""
        self._stop.set()

    def serve(
        self,
        *,
        idle_exit: Optional[float] = None,
        register_timeout: float = 30.0,
        orphan_exit: Optional[float] = 60.0,
    ) -> None:
        """Run the poll/execute/report loop until stopped.

        ``idle_exit`` exits after that many seconds without work (used by
        test fleets and one-shot CLIs); ``register_timeout`` bounds how
        long an orphan worker waits for a coordinator to appear; and
        ``orphan_exit`` exits once the coordinator has been unreachable
        that long (a partition this wide means the leases are long gone
        anyway — the shard journal carries anything unreported).
        """
        if self.capture_spans and not get_tracer():
            # Interior spans (simulate/inject/...) record to the global
            # tracer; a dedicated worker process installs its own.
            obs.enable(metrics=False, tracing=True)
        if not self._register(register_timeout):
            return
        # snapshot the interval before the thread starts: lease_ttl is
        # only rewritten by _register, which has already returned
        hb = threading.Thread(
            target=self._heartbeat_loop,
            args=(max(0.05, self.lease_ttl / 3.0),),
            name=f"fabric-hb-{self.node}",
            daemon=True,
        )
        hb.start()
        idle_since: Optional[float] = None
        last_ok = time.monotonic()
        try:
            while not self._stop.is_set():
                self._flush_reports()
                try:
                    lease = self.client.call(
                        "lease", {"max_tasks": self.max_tasks}
                    )
                except RpcError:
                    now = time.monotonic()
                    if (
                        orphan_exit is not None
                        and now - last_ok >= orphan_exit
                    ):
                        break
                    self._stop.wait(self.poll)
                    continue
                last_ok = time.monotonic()
                if lease.get("shutdown"):
                    break
                tasks = lease.get("tasks") or []
                if not tasks:
                    if idle_exit is not None:
                        now = time.monotonic()
                        if idle_since is None:
                            idle_since = now
                        elif now - idle_since >= idle_exit:
                            break
                    self._stop.wait(float(lease.get("poll", self.poll)))
                    continue
                idle_since = None
                self._execute_batch(lease, tasks)
        finally:
            self._stop.set()
            hb.join(timeout=2.0)
            self._flush_reports()
            try:
                self.client.call("goodbye", {})
            except RpcError:
                pass
            if self.shard_journal is not None:
                self.shard_journal.close()

    # -- control plane -------------------------------------------------------

    def _register(self, register_timeout: float) -> bool:
        deadline = time.monotonic() + register_timeout
        while not self._stop.is_set():
            try:
                reg = self.client.call("register", {})
            except RpcError:
                if time.monotonic() >= deadline:
                    return False
                self._stop.wait(0.2)
                continue
            self.lease_ttl = float(reg.get("lease_ttl", self.lease_ttl))
            self.poll = float(reg.get("poll_interval", self.poll))
            return True
        return False

    def _heartbeat_loop(self, interval: float) -> None:
        beat = 0
        while not self._stop.wait(interval):
            beat += 1
            if self.chaos is not None and self.chaos.heartbeat_blackout_active(
                self.node, beat
            ):
                get_metrics().counter("chaos.heartbeat_blackout").inc()
                continue
            with self._held_lock:
                ids = sorted(self._held)
            if not ids:
                continue
            try:
                self.hb_client.call("heartbeat", {"tasks": ids})
            except RpcError:
                pass  # missed beat; the next one may land

    def _flush_reports(self) -> bool:
        """Deliver the outbox; returns True when it is empty."""
        if not self._outbox:
            return True
        try:
            resp = self.client.call("report", {"records": self._outbox})
        except RpcUnavailable:
            # Partitioned: keep the records (the shard journal already
            # holds them durably) and retry before the next poll.
            get_metrics().counter("fabric.reports_deferred").inc()
            return False
        except RpcError:
            # The coordinator rejected the batch outright: drop it — the
            # shard journal still holds every record for the merge path.
            get_metrics().counter("fabric.reports_rejected").inc()
            self._outbox = []
            return True
        acked = set(resp.get("acked") or [])
        self._outbox = [
            e for e in self._outbox if e["record"]["task"] not in acked
        ]
        with self._held_lock:
            self._held.difference_update(acked)
        return not self._outbox

    # -- execution -----------------------------------------------------------

    def _fn_for(self, job: JobSpec):
        fn = self._fns.get(job.digest)
        if fn is None:
            fn = task_registry.resolve(job).build(job.ctx)
            self._fns[job.digest] = fn
        return fn

    def _execute_batch(self, lease: Dict[str, Any], tasks: List[Dict]) -> None:
        with self._held_lock:
            self._held.update(t["id"] for t in tasks)
        try:
            job = JobSpec.from_dict(lease.get("job"))
            fn = self._fn_for(job)
        except Exception as exc:
            # The job cannot be rebuilt on this node (unknown kind, bad
            # context): report each task as an infra failure rather than
            # silently timing the leases out.
            error = f"job rebuild failed on {self.node}: " \
                    f"{type(exc).__name__}: {exc}"
            for t in tasks:
                self._queue_record(
                    t, TaskOutcome.INFRA_ERROR, None, error, 0.0, [],
                )
            self._flush_reports()
            return
        for t in tasks:
            if self._stop.is_set():
                return  # un-run leases simply expire and re-dispatch
            task_id = str(t["id"])
            attempt = int(t.get("attempt", 1))
            if self.chaos is not None and self.chaos.node_kill_action(
                task_id, attempt
            ):
                # Node death, the real thing: no goodbye, no flush — the
                # shard journal and the coordinator's lease sweep are
                # what recover from this.
                get_metrics().counter("chaos.node_kill").inc()
                os._exit(66)
            self._execute_one(fn, t, task_id, attempt)
            self._flush_reports()

    def _execute_one(self, fn, t: Dict, task_id: str, attempt: int) -> None:
        tracer = get_tracer()
        mark = len(tracer.events) if tracer else 0
        t0_wall = time.perf_counter()
        t0 = time.monotonic()
        try:
            with tracer.span("fabric_task", id=task_id, node=self.node):
                value = fn(t.get("payload"))
            outcome, error = TaskOutcome.OK, ""
        except Exception as exc:
            value = None
            outcome = classify_exception(exc)
            error = f"{type(exc).__name__}: {exc}"
        duration = time.monotonic() - t0
        spans: List[Dict] = []
        if tracer:
            # Ship the task's interior spans re-based to the task start,
            # then drop them locally: the coordinator owns the timeline.
            base = t0_wall - tracer.t0
            for e in tracer.events[mark:]:
                d = e.to_dict()
                d["start"] = round(d["start"] - base, 9)
                spans.append(d)
            del tracer.events[mark:]
        self._queue_record(t, outcome, value, error, duration, spans)

    def _queue_record(
        self,
        t: Dict,
        outcome: str,
        value: Any,
        error: str,
        duration: float,
        spans: List[Dict],
    ) -> None:
        from ..executor import TaskResult

        task_id = str(t["id"])
        attempt = int(t.get("attempt", 1))
        result = TaskResult(
            task_id, outcome, value, error,
            attempts=attempt, duration=duration,
        )
        rec = result.to_record(t.get("meta"))
        rec["node"] = self.node
        self._seq += 1
        rec["seq"] = self._seq
        # Replicate FIRST: once this append returns, the record survives
        # the loss of this node, the link, or the coordinator.
        if self.shard_journal is not None:
            self.shard_journal.append(rec)
        if self.span_shard is not None and spans:
            with open(self.span_shard, "a", encoding="utf-8") as fh:
                fh.write(
                    json.dumps(
                        {"task": task_id, "node": self.node, "spans": spans},
                        sort_keys=True,
                    )
                    + "\n"
                )
        self._outbox.append({"record": rec, "spans": spans})
        get_metrics().counter("fabric.tasks_executed").inc()


def run_worker(
    address: Union[Tuple[str, int], Sequence],
    node: str,
    *,
    shard_dir: Optional[PathLike] = None,
    chaos_spec: Optional[Union[str, ChaosSpec]] = None,
    chaos_seed: int = 0,
    rpc_timeout: float = DEFAULT_RPC_TIMEOUT,
    max_tasks: int = 2,
    idle_exit: Optional[float] = None,
    capture_spans: bool = True,
    register_timeout: float = 30.0,
    orphan_exit: Optional[float] = 60.0,
) -> None:
    """Process entry point: build a worker and serve until told to stop.

    Pickles cleanly for ``multiprocessing`` spawn (chaos travels as a
    spec, not a policy) and doubles as the ``repro campaign --fabric
    worker`` implementation.
    """
    chaos = None
    if chaos_spec:
        spec = (
            ChaosSpec.from_string(chaos_spec)
            if isinstance(chaos_spec, str) else chaos_spec
        )
        if spec.any_enabled():
            chaos = ChaosPolicy(spec, seed=chaos_seed)
    host, port = address[0], int(address[1])
    worker = FabricWorker(
        (host, port), node,
        shard_dir=shard_dir, chaos=chaos, rpc_timeout=rpc_timeout,
        max_tasks=max_tasks, capture_spans=capture_spans,
    )
    worker.serve(
        idle_exit=idle_exit,
        register_timeout=register_timeout,
        orphan_exit=orphan_exit,
    )
