"""Concurrency / lock-discipline rules (family C) — whole-program.

The fabric, guard and report layers run real threads: every HTTP
request executes a handler-class method on a server thread while the
driver mutates the same objects from the main thread.  A data race here
does not crash — it silently skews counters, leases and AVF roll-ups,
which is precisely the failure mode a bit-for-bit reproduction cannot
tolerate.  These rules run from the whole-program index
(:mod:`repro.staticcheck.index` / :mod:`repro.staticcheck.callgraph`),
so a lock acquired in one file protects — or fails to protect — state
mutated from another.

All five rules emit from :meth:`finalize_project`; their per-file
``check`` never fires, which is what lets cache hits skip them safely.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Set,
    Tuple,
)

from ..findings import Finding, Module, Rule
from ..registry import register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import CallGraph, NodeKey
    from ..index import ProjectIndex

__all__ = [
    "UnsyncSharedState",
    "BareAcquire",
    "BlockingUnderLock",
    "LockOrderInversion",
    "DeadlineDropped",
]

#: methods whose writes are construction, not racing mutation
_INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

#: dotted-call suffixes that block (C603); matched against the resolved
#: dotted name's trailing segments
_BLOCKING_SUFFIXES: Tuple[str, ...] = (
    "time.sleep",
    "socket.create_connection",
    "socket.socket",
    "subprocess.run",
    "subprocess.Popen",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "sqlite3.connect",
    "urllib.request.urlopen",
    "http.client.HTTPConnection",
    "http.client.HTTPSConnection",
    "ioutil.atomic_write",
)

#: in-tree receiver types whose methods do I/O (C603)
_BLOCKING_TYPES = frozenset({"Journal", "RpcClient"})

#: network constructors/calls that need a timeout (C605, F303's set),
#: mapped to the positional index a timeout argument would occupy
_NETWORK_SINKS: Dict[str, int] = {
    "http.client.HTTPConnection": 2,
    "http.client.HTTPSConnection": 2,
    "socket.create_connection": 1,
    "urllib.request.urlopen": 2,
}


def _node_label(graph: "CallGraph", key: "NodeKey") -> str:
    relpath, cls, func = graph.nodes[key]
    if cls is None:
        return f"{relpath}:{func.name}"
    return f"{relpath}:{cls}.{func.name}"


def _suffix_match(dotted: str, suffixes: Tuple[str, ...]) -> bool:
    for suffix in suffixes:
        if dotted == suffix or dotted.endswith("." + suffix):
            return True
    return False


class _ProjectRule(Rule):
    """Base for C-family rules: project-pass only."""

    project_rule = True
    family = "concurrency"
    scope = None

    def check(self, module: Module) -> Iterator[Finding]:
        return iter(())


@register
class UnsyncSharedState(_ProjectRule):
    code = "C601"
    slug = "unsync-shared-state"
    summary = (
        "instance attribute written on a thread-entry path and "
        "accessed elsewhere without a common lock"
    )
    rationale = (
        "Handler threads and the driver share coordinator/guard/report "
        "objects; an attribute written from one side and read or "
        "written from the other without one common lock is a data race "
        "— torn multi-step updates (`self.x += 1`, dict grown during "
        "iteration) silently corrupt lease tables and metric roll-ups. "
        "Writes in __init__ are construction and exempt; threading "
        "Lock/Event fields are their own synchronization."
    )

    def finalize_project(
        self, project: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        reachable = graph.thread_reachable()
        # (class relpath, class name, attr) -> list of access sites
        access: Dict[
            Tuple[str, str, str], List[Dict[str, Any]]
        ] = {}
        for key, relpath, cls, func in graph.iter_nodes():
            in_thread = key in reachable
            if func.name in _INIT_METHODS:
                continue
            for write in func.writes:
                owner = graph.type_info(write["owner"], relpath, cls)
                if owner is None or not owner.get("name"):
                    continue
                target = graph.class_for_name(str(owner["name"]), relpath)
                if target is None:
                    continue
                held = graph.effective_held(key, list(write["held"]))
                access.setdefault(
                    (target[0], target[1].name, str(write["attr"])), []
                ).append(
                    {
                        "kind": "write",
                        "thread": in_thread,
                        "node": key,
                        "path": relpath,
                        "line": int(write["line"]),
                        "col": int(write["col"]),
                        "held": held,
                        "snippet": str(write["snippet"]),
                    }
                )
            if cls is None:
                continue
            for attr, (line, col, held_texts) in sorted(
                func.reads.items()
            ):
                held = graph.effective_held(key, list(held_texts))
                access.setdefault((relpath, cls, attr), []).append(
                    {
                        "kind": "read",
                        "thread": in_thread,
                        "node": key,
                        "path": relpath,
                        "line": int(line),
                        "col": int(col),
                        "held": held,
                        "snippet": "",
                    }
                )
        for (cls_rel, cls_name, attr) in sorted(access):
            summary = project.files[cls_rel].classes.get(cls_name)
            if summary is None:
                continue
            if attr in summary.locks or attr in summary.events:
                continue
            sites = access[(cls_rel, cls_name, attr)]
            thread_writes = [
                s for s in sites if s["thread"] and s["kind"] == "write"
            ]
            other_writes = [
                s for s in sites if not s["thread"] and s["kind"] == "write"
            ]
            thread_any = [s for s in sites if s["thread"]]
            other_any = [s for s in sites if not s["thread"]]
            involved: List[Dict[str, Any]] = []
            if thread_writes and other_any:
                involved = thread_writes + other_any
            elif other_writes and thread_any:
                involved = other_writes + thread_any
            if not involved:
                continue
            common: FrozenSet[str] = involved[0]["held"]
            for site in involved[1:]:
                common = common & site["held"]
            if common:
                continue
            anchor = (thread_writes or other_writes)[0]
            partner = next(
                s for s in involved
                if bool(s["thread"]) != bool(anchor["thread"])
            )
            yield Finding(
                path=str(anchor["path"]),
                line=int(anchor["line"]),
                col=int(anchor["col"]),
                rule=self.code,
                message=(
                    f"attribute {attr!r} of {cls_name} is written in "
                    f"{_node_label(graph, anchor['node'])} (thread-entry "
                    f"path: {bool(anchor['thread'])}) and "
                    f"{partner['kind']} in "
                    f"{_node_label(graph, partner['node'])} at "
                    f"{partner['path']}:{partner['line']} without a "
                    "common lock"
                ),
                snippet=str(anchor["snippet"]),
            )


@register
class BareAcquire(_ProjectRule):
    code = "C602"
    slug = "bare-acquire"
    summary = (
        "lock.acquire() outside a with-block and without a "
        "try/finally release"
    )
    rationale = (
        "An acquire whose release is not structurally guaranteed leaks "
        "the lock on the first exception and deadlocks every other "
        "thread touching it.  `with lock:` (or acquire immediately "
        "followed by try/finally release) closes on every exit path."
    )

    def finalize_project(
        self, project: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        for _key, relpath, _cls, func in graph.iter_nodes():
            for acq in func.acquires:
                if acq["released"]:
                    continue
                yield Finding(
                    path=relpath,
                    line=int(acq["line"]),
                    col=int(acq["col"]),
                    rule=self.code,
                    message=(
                        f"{acq['recv']}.acquire() without a with-block "
                        "or try/finally release; the lock leaks on the "
                        "first exception"
                    ),
                    snippet=str(acq["snippet"]),
                )


@register
class BlockingUnderLock(_ProjectRule):
    code = "C603"
    slug = "blocking-under-lock"
    summary = (
        "blocking call (sleep / socket / subprocess / sqlite / journal "
        "I/O) while a lock is held"
    )
    rationale = (
        "A lock held across a blocking operation serializes every "
        "other thread behind that I/O: one slow RPC inside the "
        "coordinator lock stalls all lease renewals at once, turning a "
        "network hiccup into a campaign-wide pause.  Snapshot under "
        "the lock, then do I/O outside it.  Waiting on the held "
        "Condition itself (`cond.wait()`) is the one sanctioned "
        "blocking-while-held pattern and is exempt."
    )

    def finalize_project(
        self, project: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        for key, relpath, cls, func in graph.iter_nodes():
            for site in func.calls:
                held_texts = list(site["held"])
                held = graph.effective_held(key, held_texts)
                if not held:
                    continue
                # waiting on the lock you hold is Condition protocol
                recv = site.get("recv")
                if recv is not None and recv in held_texts:
                    continue
                name = graph.resolved_target_name(
                    site["t"], relpath, cls
                )
                if name is None:
                    continue
                blocking = False
                if site["t"][0] == "dotted":
                    blocking = _suffix_match(name, _BLOCKING_SUFFIXES)
                else:
                    owner = name.rpartition(".")[0]
                    blocking = owner in _BLOCKING_TYPES
                if not blocking:
                    continue
                yield Finding(
                    path=relpath,
                    line=int(site["line"]),
                    col=int(site["col"]),
                    rule=self.code,
                    message=(
                        f"blocking call {name} while holding "
                        f"{', '.join(sorted(held))}; move the I/O "
                        "outside the critical section"
                    ),
                    snippet=str(site["snippet"]),
                )


@register
class LockOrderInversion(_ProjectRule):
    code = "C604"
    slug = "lock-order-inversion"
    summary = (
        "two locks acquired in opposite orders on different paths "
        "(deadlock candidate)"
    )
    rationale = (
        "If one path takes A then B while another takes B then A, two "
        "threads interleaving those paths deadlock permanently — the "
        "classic ABBA hang, invisible to tests until load makes the "
        "window.  Pick one global order (document it where the locks "
        "are declared) and acquire in that order everywhere."
    )

    def finalize_project(
        self, project: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        # ordered pair -> first site observed, deterministically
        pairs: Dict[Tuple[str, str], Dict[str, Any]] = {}
        entry = graph.entry_locks()
        for key, relpath, cls, func in graph.iter_nodes():
            for site in list(func.calls) + list(func.writes):
                held_texts = list(site["held"])
                if not held_texts:
                    continue
                syn = [
                    graph.lock_id(text, relpath, cls, func.name)
                    for text in held_texts
                ]
                ordered = [s for s in syn if s is not None]
                prop = entry.get(key, frozenset())
                sequences: List[Tuple[str, str]] = []
                for i, first in enumerate(ordered):
                    for second in ordered[i + 1:]:
                        sequences.append((first, second))
                for outer in sorted(prop):
                    for inner in ordered:
                        sequences.append((outer, inner))
                for first, second in sequences:
                    if first == second:
                        continue
                    record = {
                        "path": relpath,
                        "line": int(site["line"]),
                        "col": int(site["col"]),
                        "snippet": str(site["snippet"]),
                        "node": key,
                    }
                    existing = pairs.get((first, second))
                    if existing is None or (
                        record["path"], record["line"]
                    ) < (existing["path"], existing["line"]):
                        pairs[(first, second)] = record
        seen: Set[Tuple[str, str]] = set()
        for first, second in sorted(pairs):
            if (second, first) not in pairs:
                continue
            unordered = tuple(sorted((first, second)))
            if unordered in seen:
                continue
            seen.add(unordered)
            a = pairs[(unordered[0], unordered[1])]
            b = pairs[(unordered[1], unordered[0])]
            yield Finding(
                path=str(b["path"]),
                line=int(b["line"]),
                col=int(b["col"]),
                rule=self.code,
                message=(
                    f"locks {unordered[1]} and {unordered[0]} acquired "
                    f"in opposite orders: here {unordered[1]} is taken "
                    f"before {unordered[0]}, but {a['path']}:{a['line']} "
                    "takes them the other way around (ABBA deadlock "
                    "candidate)"
                ),
                snippet=str(b["snippet"]),
            )


@register
class DeadlineDropped(_ProjectRule):
    code = "C605"
    slug = "deadline-dropped"
    summary = (
        "network call reachable from an HTTP handler that loses the "
        "deadline on the way down"
    )
    rationale = (
        "F303 checks the fabric's own modules; this rule walks the "
        "call graph from every handler entry.  A helper outside the "
        "fabric scope opening an untimed connection — or a caller with "
        "a deadline_ms in hand invoking a deadline-aware callee "
        "without forwarding it — re-creates exactly the unbounded "
        "wait the lease/orphan machinery exists to rule out."
    )

    def finalize_project(
        self, project: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        reachable = graph.handler_reachable()
        for key in sorted(reachable):
            relpath, cls, func = graph.nodes[key]
            scopes = set(project.files[relpath].scopes)
            caller_params = {p for p, _t in func.params}
            for site in func.calls:
                name = graph.resolved_target_name(site["t"], relpath, cls)
                sink_pos = None
                if name is not None and site["t"][0] == "dotted":
                    for sink, pos in _NETWORK_SINKS.items():
                        if name == sink or name.endswith("." + sink):
                            sink_pos = pos
                            break
                # (a) untimed sink outside F303's fabric/executor beat
                if (
                    sink_pos is not None
                    and name is not None
                    and not site["timeout"]
                    and int(site["nargs"]) <= sink_pos
                    and not ({"fabric", "executor"} & scopes)
                ):
                    yield Finding(
                        path=relpath,
                        line=int(site["line"]),
                        col=int(site["col"]),
                        rule=self.code,
                        message=(
                            f"untimed network call {name} reachable "
                            f"from an HTTP handler (via "
                            f"{_node_label(graph, key)}); pass "
                            "timeout= so a partition cannot hang the "
                            "serving thread"
                        ),
                        snippet=str(site["snippet"]),
                    )
                    continue
                # (b) deadline_ms in hand, not forwarded
                if "deadline_ms" not in caller_params:
                    continue
                target = graph.resolve_call(site["t"], relpath, cls)
                if target is None:
                    continue
                callee = graph.nodes[target][2]
                callee_params = [p for p, _t in callee.params]
                if "deadline_ms" not in callee_params:
                    continue
                if "deadline_ms" in site["kw"]:
                    continue
                positional = [
                    p for p in callee_params if p not in ("self", "cls")
                ]
                idx = positional.index("deadline_ms")
                if int(site["nargs"]) > idx:
                    continue
                yield Finding(
                    path=relpath,
                    line=int(site["line"]),
                    col=int(site["col"]),
                    rule=self.code,
                    message=(
                        f"call to {_node_label(graph, target)} drops "
                        "deadline_ms: the caller has a deadline in "
                        "hand but does not forward it, so the "
                        "downstream wait is unbounded"
                    ),
                    snippet=str(site["snippet"]),
                )
