"""The live dashboard service: routes, liveness, error discipline."""

import json
import urllib.error
import urllib.request

import pytest

from repro.report import ReportService, build_report
from repro.store import ResultStore

from ..store.conftest import avf_row


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "r.sqlite"
    with ResultStore(path) as store:
        store.put_avf_rows(
            [
                avf_row(workload="matmul", structure="vgpr", sdc_avf=0.1),
                avf_row(workload="transpose", structure="vgpr",
                        mode="4x1", sdc_avf=0.3),
            ]
        )
    return path


@pytest.fixture
def service(store_path):
    with ReportService(store_path) as svc:
        yield svc


def _get(service, path):
    with urllib.request.urlopen(service.endpoint + path, timeout=10) as r:
        return r.status, r.read()


def _get_json(service, path):
    status, body = _get(service, path)
    return status, json.loads(body)


class TestRoutes:
    def test_healthz(self, service):
        assert _get(service, "/healthz") == (200, b"ok\n")

    def test_index_matches_static_build(self, service, store_path,
                                        tmp_path):
        status, live = _get(service, "/")
        assert status == 200
        with ResultStore(store_path) as store:
            static = build_report(store, tmp_path / "out")
        assert live == static.read_bytes()

    def test_summary(self, service):
        status, payload = _get_json(service, "/api/summary")
        assert status == 200
        assert payload["avf_results"] == 2
        assert payload["workloads"] == ["matmul", "transpose"]

    def test_query_rows_and_filters(self, service):
        _, payload = _get_json(service, "/api/query")
        assert payload["count"] == 2
        _, payload = _get_json(service, "/api/query?workload=matmul")
        assert payload["count"] == 1
        assert payload["rows"][0]["sdc_avf"] == 0.1

    def test_query_repeated_param_is_in_list(self, service):
        _, payload = _get_json(
            service, "/api/query?workload=matmul&workload=transpose"
        )
        assert payload["count"] == 2

    def test_query_group_by(self, service):
        _, payload = _get_json(
            service,
            "/api/query?group_by=workload&value=sdc_avf&agg=mean",
        )
        groups = {tuple(g["key"]): g["value"] for g in payload["groups"]}
        assert groups == {
            ("matmul",): pytest.approx(0.1),
            ("transpose",): pytest.approx(0.3),
        }

    def test_mttf_empty(self, service):
        _, payload = _get_json(service, "/api/mttf")
        assert payload == {"rows": []}


class TestErrors:
    def test_unknown_route_is_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(service, "/nope")
        assert err.value.code == 404

    def test_unknown_query_param_is_400(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(service, "/api/query?benchmark=matmul")
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert "unknown query parameter" in body["error"]

    def test_bad_int_filter_is_400(self, service):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(service, "/api/query?seed=banana")
        assert err.value.code == 400


class TestLiveness:
    def test_dashboard_reflects_rows_ingested_after_start(
        self, service, store_path
    ):
        """The 'live' in live dashboard: a campaign writing through WAL
        shows up on the next request, no restart or push needed."""
        _, before = _get_json(service, "/api/summary")
        assert before["avf_results"] == 2
        with ResultStore(store_path) as store:
            store.put_avf_rows([avf_row(workload="stencil")])
        _, after = _get_json(service, "/api/summary")
        assert after["avf_results"] == 3
        assert "stencil" in after["workloads"]

    def test_stop_is_idempotent_and_restartable(self, store_path):
        svc = ReportService(store_path)
        svc.start()
        port = svc.address[1]
        assert port != 0
        svc.stop()
        svc.stop()  # second stop: no-op
        svc.start()
        try:
            assert _get(svc, "/healthz")[0] == 200
        finally:
            svc.stop()
