"""Fault-tolerant task executor for injection campaigns and AVF sweeps.

Every campaign-scale entry point dispatches its work through an
:class:`Executor`, which provides, in one place:

* **process isolation** — tasks run in worker processes created with the
  ``spawn`` start method, so a hung or segfaulting simulation cannot take
  the campaign driver down with it;
* **wall-clock timeouts** — a worker that exceeds its per-task budget is
  killed and reaped, and the task surfaces as ``TIMEOUT``;
* **bounded retries** — infrastructure failures (worker death, timeout)
  are re-queued per a :class:`~repro.runtime.retry.RetryPolicy`; semantic
  outcomes are never retried;
* **checkpoint/resume** — with a :class:`~repro.runtime.journal.Journal`,
  every final result is durably appended, and a re-run skips tasks the
  journal already holds;
* **graceful degradation** — a task that exhausts its retries yields a
  failure-labelled :class:`TaskResult` instead of an exception, so one
  broken injection cannot abort a thousand good ones.

``jobs=0`` selects *inline* mode: tasks run in the calling process with
the same taxonomy, retry and journal behaviour but no isolation (and
therefore no timeout enforcement).  Inline mode is the fast default for
small campaigns; process mode additionally parallelises across
``jobs`` workers.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import warnings
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as _conn_wait
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from ..obs import ProgressMeter, get_metrics, get_tracer
from .errors import ExecutorError, TaskOutcome, classify_exception
from .journal import Journal, PathLike
from .retry import RetryPolicy

__all__ = ["Task", "TaskResult", "Executor", "run_tasks"]

_INFINITY = float("inf")


@dataclass(frozen=True)
class Task:
    """One unit of work: an id (journal key), a payload, and provenance."""

    id: str
    payload: Any = None
    #: JSON-safe provenance (e.g. the injection spec) recorded in the journal
    meta: Optional[dict] = None


@dataclass
class TaskResult:
    """Final, post-retry result of one task."""

    task_id: str
    outcome: str
    value: Any = None
    error: str = ""
    attempts: int = 1
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome == TaskOutcome.OK

    def to_record(self, meta: Optional[dict] = None) -> dict:
        rec = {
            "task": self.task_id,
            "outcome": self.outcome,
            "value": self.value,
            "error": self.error,
            "attempts": self.attempts,
            "duration": round(self.duration, 6),
        }
        if meta:
            rec["meta"] = meta
        return rec

    @classmethod
    def from_record(cls, rec: dict) -> "TaskResult":
        return cls(
            task_id=rec["task"],
            outcome=rec["outcome"],
            value=rec.get("value"),
            error=rec.get("error", ""),
            attempts=int(rec.get("attempts", 1)),
            duration=float(rec.get("duration", 0.0)),
        )


def _worker_main(conn: Connection, fn, initializer, initargs) -> None:
    """Worker process loop: init once, then evaluate tasks until EOF."""
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as exc:  # report init failure, don't hang the parent
        _safe_send(conn, ("init_error", f"{type(exc).__name__}: {exc}"))
        return
    _safe_send(conn, ("ready", None))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        try:
            value = fn(msg)
        except Exception as exc:
            _safe_send(
                conn,
                (classify_exception(exc), f"{type(exc).__name__}: {exc}"),
            )
        else:
            _safe_send(conn, (TaskOutcome.OK, value))


def _safe_send(conn: Connection, msg) -> None:
    try:
        conn.send(msg)
    except (BrokenPipeError, OSError):
        pass


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("proc", "conn", "state", "task", "attempt", "start",
                 "deadline", "prior_duration")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.state = "starting"  # starting | idle | busy
        self.task: Optional[Task] = None
        self.attempt = 0
        self.start = 0.0
        self.deadline = _INFINITY
        self.prior_duration = 0.0


@dataclass
class _Pending:
    """A task awaiting (re-)execution."""

    task: Task
    attempt: int = 1
    not_before: float = 0.0
    duration: float = 0.0  # accumulated across failed attempts


class Executor:
    """Runs tasks through isolated workers (or inline) with retries,
    timeouts and journaling.  See the module docstring for semantics."""

    def __init__(
        self,
        fn: Optional[Callable[[Any], Any]] = None,
        *,
        jobs: int = 0,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        journal: Optional[Union[Journal, PathLike]] = None,
        initializer: Optional[Callable[..., None]] = None,
        initargs: tuple = (),
        mp_context: str = "spawn",
        progress: Union[bool, str] = False,
    ) -> None:
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = inline)")
        self.fn = fn
        self.jobs = jobs
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.journal = (
            journal if isinstance(journal, Journal) or journal is None
            else Journal(journal)
        )
        self.initializer = initializer
        self.initargs = initargs
        self.mp_context = mp_context
        #: False = silent; True or a label string = periodic progress
        #: snapshot lines (with ETA) on stderr while tasks run
        self.progress = progress
        self._meter: Optional[ProgressMeter] = None
        if timeout is not None and jobs == 0:
            warnings.warn(
                "timeout requires process isolation (jobs >= 1); "
                "inline tasks will not be interrupted",
                stacklevel=2,
            )

    @property
    def inline(self) -> bool:
        return self.jobs == 0

    # -- public API ---------------------------------------------------------

    def run(
        self,
        tasks: Iterable[Task],
        fn: Optional[Callable[[Any], Any]] = None,
    ) -> Dict[str, TaskResult]:
        """Execute ``tasks``, returning final results keyed by task id.

        Tasks already present in the journal are *not* re-executed; their
        journaled results are returned as-is, which is what makes a killed
        campaign resumable and deterministic.
        """
        fn = fn or self.fn
        if fn is None:
            raise ValueError("no task function: pass fn to Executor or run()")
        tasks = list(tasks)
        ids = [t.id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate task ids")
        results: Dict[str, TaskResult] = {}
        journaled = self.journal.load() if self.journal else {}
        pending = []
        for t in tasks:
            rec = journaled.get(t.id)
            if rec is not None:
                results[t.id] = TaskResult.from_record(rec)
            else:
                pending.append(t)
        if results:
            # Resumed-from-journal work is visible to the caller (e.g. the
            # CLI's "resumed N completed tasks" notice) via this counter.
            get_metrics().counter("runtime.tasks_resumed").inc(len(results))
        if pending:
            self._meter = None
            if self.progress:
                label = self.progress if isinstance(self.progress, str) else "tasks"
                self._meter = ProgressMeter(len(pending), label)
            try:
                if self.inline:
                    self._run_inline(fn, pending, results)
                else:
                    self._run_isolated(fn, pending, results)
            finally:
                if self._meter is not None:
                    self._meter.finish()
                    self._meter = None
        return results

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shared -------------------------------------------------------------

    def _finalize(
        self, task: Task, result: TaskResult, results: Dict[str, TaskResult]
    ) -> None:
        results[task.id] = result
        if self.journal is not None:
            self.journal.append(result.to_record(task.meta))
        mx = get_metrics()
        if mx:
            mx.counter("runtime.tasks_completed").inc()
            mx.counter(f"runtime.outcome.{result.outcome}").inc()
            mx.histogram("runtime.task_seconds").observe(result.duration)
        get_tracer().add_event(
            "task", result.duration,
            id=task.id, outcome=result.outcome, attempts=result.attempts,
        )
        if self._meter is not None:
            self._meter.advance()

    # -- inline mode --------------------------------------------------------

    def _run_inline(
        self, fn, pending: List[Task], results: Dict[str, TaskResult]
    ) -> None:
        if self.initializer is not None:
            self.initializer(*self.initargs)
        for task in pending:
            attempt = 0
            total = 0.0
            while True:
                attempt += 1
                t0 = time.monotonic()
                try:
                    value = fn(task.payload)
                    outcome, error = TaskOutcome.OK, ""
                except Exception as exc:
                    value = None
                    outcome = classify_exception(exc)
                    error = f"{type(exc).__name__}: {exc}"
                total += time.monotonic() - t0
                if not self.retry.should_retry(outcome, attempt):
                    self._finalize(
                        task,
                        TaskResult(task.id, outcome, value, error,
                                   attempts=attempt, duration=total),
                        results,
                    )
                    break
                get_metrics().counter("runtime.retries").inc()
                time.sleep(self.retry.delay(task.id, attempt))

    # -- process mode -------------------------------------------------------

    def _run_isolated(
        self, fn, pending: List[Task], results: Dict[str, TaskResult]
    ) -> None:
        ctx = mp.get_context(self.mp_context)
        queue: deque = deque(_Pending(t) for t in pending)
        n_workers = min(self.jobs, len(pending))
        workers = [self._spawn(ctx, fn) for _ in range(n_workers)]
        n_done = 0
        total = len(pending)
        try:
            while n_done < total:
                now = time.monotonic()
                self._dispatch(queue, workers, ctx, fn, now)
                self._pump(queue, workers, results, ctx, fn)
                n_done = len([t for t in pending if t.id in results])
        finally:
            self._shutdown(workers)

    def _spawn(self, ctx, fn) -> _Worker:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, fn, self.initializer, self.initargs),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def _dispatch(self, queue, workers, ctx, fn, now) -> None:
        """Hand runnable tasks to idle workers."""
        for i, w in enumerate(workers):
            if w.state != "idle" or not queue:
                continue
            entry = self._pop_runnable(queue, now)
            if entry is None:
                break
            try:
                w.conn.send(entry.task.payload)
            except (BrokenPipeError, OSError):
                # Worker silently died while idle: replace it, requeue.
                self._reap(w)
                workers[i] = self._spawn(ctx, fn)
                queue.appendleft(entry)
                continue
            w.state = "busy"
            w.task = entry.task
            w.attempt = entry.attempt
            w.start = now
            w.deadline = (
                now + self.timeout if self.timeout is not None else _INFINITY
            )
            w.prior_duration = entry.duration

    @staticmethod
    def _pop_runnable(queue: deque, now: float) -> Optional[_Pending]:
        for _ in range(len(queue)):
            entry = queue.popleft()
            if entry.not_before <= now:
                return entry
            queue.append(entry)
        return None

    def _pump(self, queue, workers, results, ctx, fn) -> None:
        """Wait for worker messages / deadlines and process them."""
        now = time.monotonic()
        wake_times = [
            w.deadline for w in workers
            if w.state == "busy" and w.deadline != _INFINITY
        ]
        wake_times += [e.not_before for e in queue if e.not_before > now]
        conns = [w.conn for w in workers if w.state in ("starting", "busy")]
        timeout = None
        if wake_times:
            timeout = max(0.0, min(wake_times) - now)
        if conns:
            ready = _conn_wait(conns, timeout=timeout)
        else:
            time.sleep(min(timeout, 0.05) if timeout else 0.01)
            ready = []
        for conn in ready:
            w = next(w for w in workers if w.conn is conn)
            try:
                kind, data = conn.recv()
            except (EOFError, OSError):
                self._on_worker_exit(w, workers, queue, results, ctx, fn)
                continue
            if kind == "ready":
                w.state = "idle"
            elif kind == "init_error":
                self._shutdown(workers)
                raise ExecutorError(f"worker initialisation failed: {data}")
            else:
                self._on_attempt_done(w, kind, data, queue, results)
        # Enforce wall-clock deadlines.
        now = time.monotonic()
        for i, w in enumerate(workers):
            if w.state == "busy" and now >= w.deadline:
                task, attempt = w.task, w.attempt
                duration = now - w.start + w.prior_duration
                self._reap(w)
                workers[i] = self._spawn(ctx, fn)
                self._settle_failure(
                    task, attempt, TaskOutcome.TIMEOUT,
                    f"killed after {self.timeout:.3f}s wall-clock",
                    duration, queue, results,
                )

    def _on_worker_exit(self, w, workers, queue, results, ctx, fn) -> None:
        """The worker's pipe broke: it died (segfault, OOM-kill, exit)."""
        task, attempt, start = w.task, w.attempt, w.start
        state = w.state
        self._reap(w)
        idx = workers.index(w)
        if state == "starting":
            self._shutdown(workers)
            raise ExecutorError(
                "worker died during initialisation "
                f"(exit code {w.proc.exitcode})"
            )
        workers[idx] = self._spawn(ctx, fn)
        if state == "busy" and task is not None:
            duration = (
                time.monotonic() - start + w.prior_duration
            )
            self._settle_failure(
                task, attempt, TaskOutcome.WORKER_DIED,
                f"worker exited with code {w.proc.exitcode}",
                duration, queue, results,
            )

    def _on_attempt_done(self, w, outcome, data, queue, results) -> None:
        task, attempt = w.task, w.attempt
        duration = (
            time.monotonic() - w.start + w.prior_duration
        )
        w.state = "idle"
        w.task = None
        if outcome == TaskOutcome.OK:
            self._finalize(
                task,
                TaskResult(task.id, outcome, data, attempts=attempt,
                           duration=duration),
                results,
            )
        else:
            self._settle_failure(
                task, attempt, outcome, data, duration, queue, results
            )

    def _settle_failure(
        self, task, attempt, outcome, error, duration, queue, results
    ) -> None:
        """Retry an attempt failure if policy allows, else finalise it."""
        mx = get_metrics()
        if mx:
            if outcome == TaskOutcome.TIMEOUT:
                mx.counter("runtime.timeouts").inc()
            elif outcome == TaskOutcome.WORKER_DIED:
                mx.counter("runtime.worker_deaths").inc()
        if self.retry.should_retry(outcome, attempt):
            if mx:
                mx.counter("runtime.retries").inc()
            queue.append(
                _Pending(
                    task,
                    attempt=attempt + 1,
                    not_before=(
                        time.monotonic() + self.retry.delay(task.id, attempt)
                    ),
                    duration=duration,
                )
            )
        else:
            self._finalize(
                task,
                TaskResult(task.id, outcome, None, error,
                           attempts=attempt, duration=duration),
                results,
            )

    def _reap(self, w: _Worker) -> None:
        try:
            w.conn.close()
        except OSError:
            pass
        if w.proc.is_alive():
            w.proc.kill()
        w.proc.join(5)

    def _shutdown(self, workers: List[_Worker]) -> None:
        for w in workers:
            _safe_send(w.conn, None)
        deadline = time.monotonic() + 2.0
        for w in workers:
            w.proc.join(max(0.0, deadline - time.monotonic()))
            self._reap(w)


def run_tasks(
    fn: Callable[[Any], Any], tasks: Iterable[Task], **options
) -> Dict[str, TaskResult]:
    """One-shot convenience wrapper: build an Executor, run, close."""
    with Executor(fn, **options) as ex:
        return ex.run(tasks)
