"""Periodic progress snapshots with throughput and ETA.

Long campaigns (thousands of isolated injection simulations) previously
ran silent until the final table.  A :class:`ProgressMeter` emits a
one-line snapshot at most every ``interval`` seconds::

    [inject] 120/4000 (3.0%)  rate 6.2/s  eta 10m26s

Lines go to ``stderr`` by default so they never pollute parseable
stdout (``--json`` output, result tables).  Updates between emission
windows cost two comparisons, so the meter can be driven from tight
loops.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressMeter", "format_duration"]


def format_duration(seconds: float) -> str:
    """Compact human duration: ``42s``, ``3m07s``, ``2h05m``."""
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressMeter:
    """Rate-limited progress reporter for a task stream of known size."""

    def __init__(
        self,
        total: int,
        label: str = "",
        *,
        interval: float = 5.0,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.total = max(0, int(total))
        self.label = label
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self._t0 = time.monotonic()
        self._last_emit = self._t0
        self.lines_emitted = 0

    def advance(self, n: int = 1) -> None:
        """Mark ``n`` more tasks done; emit a snapshot if the window is up."""
        self.done += n
        now = time.monotonic()
        if now - self._last_emit >= self.interval:
            self._emit(now)

    def finish(self) -> None:
        """Emit a final snapshot (only if at least one was emitted before,
        so short runs stay silent)."""
        if self.lines_emitted:
            self._emit(time.monotonic())

    def snapshot(self) -> str:
        """The current progress line (without emitting it)."""
        return self._format(time.monotonic())

    def _format(self, now: float) -> str:
        elapsed = max(now - self._t0, 1e-9)
        rate = self.done / elapsed
        pct = 100.0 * self.done / self.total if self.total else 0.0
        if rate > 0 and self.done < self.total:
            eta = format_duration((self.total - self.done) / rate)
        else:
            eta = "0s" if self.done >= self.total else "?"
        label = f"[{self.label}] " if self.label else ""
        return (
            f"{label}{self.done}/{self.total} ({pct:.1f}%)  "
            f"rate {rate:.1f}/s  eta {eta}"
        )

    def _emit(self, now: float) -> None:
        self._last_emit = now
        self.lines_emitted += 1
        print(self._format(now), file=self.stream, flush=True)
