"""Interleaving-style study on the L1 cache (paper Figure 4, miniature).

Compares the 2x1 DUE MB-AVF (normalised to single-bit AVF) of three x2
interleaving styles — logical, way-physical and index-physical — across a
handful of workloads.  The paper's finding: logical interleaving has the
highest ACE locality and therefore the lowest MB-AVF.

Run with:  python examples/cache_interleaving_study.py
"""

from repro.core import AvfStudy, FaultMode, Interleaving, Parity
from repro.experiments import scaled_apu_kwargs
from repro.workloads import run

WORKLOADS = ("matmul", "dct", "srad", "minife")
STYLES = (
    ("logical", Interleaving.LOGICAL),
    ("way-physical", Interleaving.WAY_PHYSICAL),
    ("index-physical", Interleaving.INDEX_PHYSICAL),
)


def main() -> None:
    header = f"{'workload':<12} {'SB-AVF':>8}" + "".join(
        f" {name:>15}" for name, _ in STYLES
    )
    print(header)
    print("-" * len(header))
    for wl in WORKLOADS:
        result = run(wl, apu_kwargs=scaled_apu_kwargs())
        study = AvfStudy(result.apu, result.output_ranges)
        sb = study.cache_avf("l1", FaultMode.linear(1), Parity()).due_avf
        row = f"{wl:<12} {sb:8.4f}"
        for _, style in STYLES:
            mb = study.cache_avf(
                "l1", FaultMode.linear(2), Parity(), style=style, factor=2
            ).due_avf
            ratio = mb / sb if sb else float("nan")
            row += f" {ratio:13.2f}x"
        print(row)
    print("\n(values are 2x1 MB-AVF normalised to SB-AVF; the paper finds")
    print(" logical interleaving consistently closest to the 1.0x minimum)")


if __name__ == "__main__":
    main()
