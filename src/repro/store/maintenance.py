"""Store self-healing: verify a results database, rebuild a corrupt one.

The store is a *derived* artifact: every row in it was folded in from a
durable journal (or is reproducible from a seed), so a corrupted store
file is an inconvenience, not data loss.  This module turns that into
an operational guarantee:

* :func:`verify_store` — ``PRAGMA integrity_check`` (or the cheaper
  ``quick_check``) plus schema/table/row-count sanity, reported as a
  structured verdict instead of an exception.
* :func:`rebuild_store` — quarantine the damaged file (``os.replace``
  to ``<name>.corrupt-N``, WAL/SHM sidecars included), create a fresh
  store, and replay journals/shards through the normal idempotent
  ingest.  Because every writer keys rows by canonical identity and
  uses ``INSERT OR IGNORE``, the rebuild is a pure replay: it converges
  to the same query results as a store that was never corrupted (the
  byte-identical ``/api/query`` test in ``tests/store`` holds this).

Exposed on the CLI as ``repro store verify`` / ``repro store rebuild``
(runbook: docs/results-store.md).
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..obs import get_metrics, get_tracer
from .db import PathLike, ResultStore
from .ingest import ingest_journal
from .schema import SCHEMA_VERSION, schema_version

__all__ = ["verify_store", "rebuild_store", "quarantine_store"]

#: every table the current schema version must contain
REQUIRED_TABLES = (
    "meta", "avf_results", "injections", "mttf_rows", "campaigns",
)

#: sqlite sidecar suffixes that must travel with a quarantined file
_SIDECAR_SUFFIXES = ("-wal", "-shm")


def verify_store(
    path: PathLike, *, quick: bool = False
) -> Dict[str, Any]:
    """Check one store file; returns ``{"ok": bool, "checks": ...,
    "problems": [...]}`` and never raises for a damaged file.

    Checks, in order: the file exists and opens, sqlite integrity
    (``quick_check`` when ``quick``), the stamped schema version is one
    this build understands, every required table is present, and every
    table answers a row count.  Any failure is a problem string; a
    store with an empty ``problems`` list is healthy.
    """
    target = Path(path)
    report: Dict[str, Any] = {
        "path": str(target),
        "ok": False,
        "checks": {},
        "problems": [],
    }
    problems: List[str] = report["problems"]
    checks: Dict[str, Any] = report["checks"]
    mx = get_metrics()
    if mx:
        mx.counter("store.verify_runs").inc()
    with get_tracer().span("store_verify", path=str(target)):
        if not target.exists():
            problems.append("store file does not exist")
        else:
            try:
                with ResultStore(target) as store:
                    _verify_open_store(store, checks, problems, quick)
            except (sqlite3.Error, RuntimeError, ValueError, OSError) as exc:
                problems.append(
                    f"cannot open store: {type(exc).__name__}: {exc}"
                )
    report["ok"] = not problems
    if mx and problems:
        mx.counter("store.verify_failures").inc()
    return report


def _verify_open_store(
    store: ResultStore,
    checks: Dict[str, Any],
    problems: List[str],
    quick: bool,
) -> None:
    verdict = store.integrity_check(quick=quick)
    checks["integrity"] = verdict
    if verdict != "ok":
        problems.append(f"integrity_check: {verdict}")
    stamped = schema_version(store._conn)
    checks["schema_version"] = stamped
    if stamped != SCHEMA_VERSION:
        problems.append(
            f"schema version {stamped} != expected {SCHEMA_VERSION}"
        )
    present = {
        str(row[0]) for row in store._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "ORDER BY name"
        )
    }
    missing = sorted(set(REQUIRED_TABLES) - present)
    if missing:
        problems.append("missing tables: " + ", ".join(missing))
    counts: Dict[str, int] = {}
    try:
        summary = store.summary()
        for table in ("avf_results", "injections", "mttf_rows",
                      "campaigns"):
            counts[table] = int(summary[table])
    except (sqlite3.Error, KeyError, TypeError, ValueError) as exc:
        problems.append(
            f"row counts unreadable: {type(exc).__name__}: {exc}"
        )
    checks["rows"] = counts


def quarantine_store(path: PathLike) -> str:
    """Move a damaged store file (and WAL/SHM sidecars) out of the way.

    The file is renamed — never deleted — to ``<name>.corrupt-N`` with
    the first free N, so repeated rebuilds keep every generation of
    evidence for a post-mortem.  Returns the quarantine path.
    """
    target = Path(path)
    for n in range(1, 1000):
        parked = target.with_name(f"{target.name}.corrupt-{n}")
        if not parked.exists():
            break
    else:  # pragma: no cover - 999 quarantined generations
        raise RuntimeError(f"no free quarantine name for {target}")
    os.replace(target, parked)
    for suffix in _SIDECAR_SUFFIXES:
        sidecar = Path(str(target) + suffix)
        if sidecar.exists():
            os.replace(sidecar, str(parked) + suffix)
    return str(parked)


def rebuild_store(
    path: PathLike,
    journals: Sequence[PathLike] = (),
    *,
    shard_dir: Optional[PathLike] = None,
    workload: Optional[str] = None,
    seed: int = 0,
) -> Dict[str, Any]:
    """Quarantine ``path`` (if present) and reconstruct it from journals.

    ``journals`` are canonical campaign journals; ``shard_dir`` (with a
    canonical journal to merge into) additionally folds fabric node
    shards in first, exactly like a coordinator commit, so records the
    lost store had but the canonical journal missed are recovered too.
    The replay runs through :func:`~repro.store.ingest.ingest_journal`
    — the same idempotent path every live campaign uses — so rebuilding
    twice, or rebuilding on top of a healthy store, changes nothing.

    Returns ``{"quarantined": path-or-None, "journals": N,
    "ingested": ..., "deduped": ..., "verify": verify_store(...)}``.
    """
    target = Path(path)
    journal_paths = [Path(j) for j in journals]
    if shard_dir is not None:
        if not journal_paths:
            raise ValueError(
                "rebuilding from a shard dir needs a canonical journal "
                "to merge the shards into"
            )
        # Lazy import: store modules must not drag the fabric in for
        # plain local verify/rebuild use.
        from ..runtime.fabric.merge import merge_shards

        merge_shards(journal_paths[0], shard_dir)
    result: Dict[str, Any] = {
        "path": str(target),
        "quarantined": None,
        "journals": len(journal_paths),
        "ingested": 0,
        "deduped": 0,
    }
    with get_tracer().span(
        "store_rebuild", path=str(target), journals=len(journal_paths),
    ):
        if target.exists():
            result["quarantined"] = quarantine_store(target)
        with ResultStore(target) as store:
            for journal in journal_paths:
                counts = ingest_journal(
                    store, journal, workload=workload, seed=seed
                )
                result["ingested"] += counts["ingested"]
                result["deduped"] += counts["deduped"]
    mx = get_metrics()
    if mx:
        mx.counter("store.rebuilds").inc()
    result["verify"] = verify_store(target, quick=True)
    return result
