"""Tests for quantized (windowed worst-case) AVF."""

import numpy as np
import pytest

from repro.core import AvfStudy, FaultMode, Parity
from repro.core.intervals import Outcome
from repro.workloads import run


@pytest.fixture(scope="module")
def series_result():
    r = run("minife")
    study = AvfStudy(r.apu, r.output_ranges)
    edges = np.linspace(0, study.end_cycle, 11).astype(int)
    return study.cache_avf(
        "l1", FaultMode.linear(1), Parity(), series_edges=edges
    )


class TestQuantizedAvf:
    def test_max_at_least_mean(self, series_result):
        res = series_result
        q = res.quantized_avf(Outcome.TRUE_DUE, Outcome.FALSE_DUE)
        assert q >= res.due_avf - 1e-12

    def test_percentile_below_max(self, series_result):
        res = series_result
        q_max = res.quantized_avf(reduce="max")
        q50 = res.quantized_avf(reduce="p50")
        assert q50 <= q_max
        assert q50 >= 0

    def test_default_covers_all_outcomes(self, series_result):
        res = series_result
        all_q = res.quantized_avf()
        due_q = res.quantized_avf(Outcome.TRUE_DUE, Outcome.FALSE_DUE)
        assert all_q >= due_q - 1e-12

    def test_unknown_reduction(self, series_result):
        with pytest.raises(ValueError):
            series_result.quantized_avf(reduce="median")

    def test_requires_series(self):
        r = run("vectoradd")
        study = AvfStudy(r.apu, r.output_ranges)
        res = study.cache_avf("l1", FaultMode.linear(1), Parity())
        with pytest.raises(ValueError):
            res.quantized_avf()

    def test_phases_make_quantized_exceed_average(self, series_result):
        """MiniFE has strong phases: its worst window is well above the
        whole-run average — the reason quantized AVF exists."""
        res = series_result
        q = res.quantized_avf(Outcome.TRUE_DUE, Outcome.FALSE_DUE)
        assert q > 1.2 * res.due_avf
