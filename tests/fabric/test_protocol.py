"""Wire-protocol unit tests: envelopes, job specs, entrypoints."""

import json

import pytest

from repro.runtime.fabric import JobSpec, RpcError, stub_job
from repro.runtime.fabric.protocol import (
    PROTOCOL_VERSION,
    decode_request,
    encode_error,
    encode_request,
    encode_response,
)
from repro.runtime.fabric.tasks import ENTRYPOINTS, resolve


class TestEnvelopes:
    def test_request_round_trip(self):
        body = encode_request(
            "lease", {"max_tasks": 3}, node="n0", seq=7, deadline_ms=5000
        )
        env = decode_request(body)
        assert env["v"] == PROTOCOL_VERSION
        assert env["method"] == "lease"
        assert env["node"] == "n0"
        assert env["seq"] == 7
        assert env["deadline_ms"] == 5000
        assert env["params"] == {"max_tasks": 3}

    def test_every_request_carries_a_deadline_field(self):
        body = encode_request("register", {}, node="n0", seq=0,
                              deadline_ms=1500)
        assert decode_request(body)["deadline_ms"] == 1500

    @pytest.mark.parametrize(
        "body",
        [
            b"not json",
            b"[1, 2]",
            json.dumps({"v": 99, "method": "lease", "node": "n",
                        "params": {}}).encode(),
            json.dumps({"v": 1, "method": "format_disk", "node": "n",
                        "params": {}}).encode(),
            json.dumps({"v": 1, "method": "lease", "node": "",
                        "params": {}}).encode(),
            json.dumps({"v": 1, "method": "lease", "node": "n",
                        "params": []}).encode(),
        ],
        ids=["not-json", "not-object", "version-skew", "unknown-method",
             "empty-node", "params-not-object"],
    )
    def test_malformed_requests_rejected(self, body):
        with pytest.raises(RpcError):
            decode_request(body)

    def test_response_shapes(self):
        ok = json.loads(encode_response({"x": 1}))
        assert ok == {"ok": True, "result": {"x": 1}}
        err = json.loads(encode_error("boom"))
        assert err == {"ok": False, "error": "boom"}


class TestJobSpec:
    def test_digest_is_stable_and_ctx_sensitive(self):
        a = JobSpec("stub", {"mul": 2})
        b = JobSpec("stub", {"mul": 2})
        c = JobSpec("stub", {"mul": 3})
        assert a.digest == b.digest
        assert a.digest != c.digest

    def test_dict_round_trip(self):
        job = stub_job(mul=5)
        clone = JobSpec.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.digest == job.digest

    @pytest.mark.parametrize("data", [None, [], {}, {"kind": 3}])
    def test_malformed_spec_rejected(self, data):
        with pytest.raises(RpcError):
            JobSpec.from_dict(data)


class TestEntrypoints:
    def test_registered_kinds(self):
        assert {"stub", "injection", "sweep"} <= set(ENTRYPOINTS)

    def test_stub_build_and_encode(self):
        job = stub_job(mul=4)
        fn = resolve(job).build(job.ctx)
        assert fn(10) == 40
        # stub payloads are already JSON-safe: encode is the identity
        assert resolve(job).encode(10) == 10

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown fabric task kind"):
            resolve(JobSpec("warp-drive", {}))
