"""Rule plugins: importing this package registers every rule.

Add a new rule by creating a :class:`~repro.staticcheck.findings.Rule`
subclass decorated with :func:`~repro.staticcheck.registry.register` in
one of these modules (or a new module imported here).  See
``docs/static-analysis.md`` for the authoring walkthrough.
"""

from . import (
    concurrency,
    determinism,
    forksafety,
    numpy_hygiene,
    obs_discipline,
    persistence_sql,
)

__all__ = [
    "concurrency",
    "determinism",
    "forksafety",
    "numpy_hygiene",
    "obs_discipline",
    "persistence_sql",
]
