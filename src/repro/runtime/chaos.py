"""Deterministic self-fault-injection for the campaign runtime.

The rest of this package injects faults into *simulated* hardware; this
module injects faults into the *runtime itself*, so the crash-consistency
and graceful-degradation claims of :mod:`repro.runtime` are adversarially
exercised instead of trusted (the way RepTFD replays transient faults at
hardware and OpenSEA checks protection circuits semi-formally).

A :class:`ChaosPolicy` is a seeded, pure decision engine: whether fault
``point`` fires for ``key`` is a function of ``(seed, point, key)`` only,
so one seed reproduces one exact failure schedule — a failing chaos run
is a bug report, not a flake.  Executor-side decisions are keyed on
``(task_id, attempt)``: a retry of the same task rolls fresh dice, which
is what lets a chaos-ridden campaign still converge to the fault-free
result, while a probability of 1.0 models a *poison* payload that kills
every worker it touches.

Chaos is **off by default everywhere**: the hooks in
:class:`~repro.runtime.executor.Executor` and
:class:`~repro.runtime.journal.Journal` accept ``chaos=None`` and cost a
single ``is None`` test when disabled.  The CLI exposes it behind the
dev-only ``--chaos-spec``/``--chaos-seed`` flags; resuming a killed
campaign should drop those flags, since journal decisions are keyed per
task and would otherwise replay the same write faults.

Fault points
------------

========== ================= ============================================
side       point             effect
========== ================= ============================================
executor   ``worker_crash``  worker ``os._exit``\\ s mid-task (hard death)
executor   ``worker_hang``   worker sleeps forever (reclaimed by timeout)
executor   ``slow_task``     worker sleeps ``slow_seconds`` before running
executor   ``task_error``    task raises :class:`ChaosError` (storm)
journal    ``journal_corrupt``  record bytes flipped on disk, run continues
journal    ``journal_truncate`` partial line written, then simulated crash
journal    ``journal_enospc``   append raises ``OSError(ENOSPC)``
journal    ``journal_eio``      append raises ``OSError(EIO)``
fabric     ``node_kill``     worker *node* ``os._exit``\\ s before a task
fabric     ``rpc_drop``      an RPC attempt vanishes (no request sent)
fabric     ``rpc_delay``     RPC delayed ``rpc_delay_seconds`` before send
fabric     ``rpc_dup``       request sent twice (tests idempotent handlers)
fabric     ``rpc_partition`` coordinator<->worker link down for a window
                             of ``partition_span`` consecutive RPCs
fabric     ``heartbeat_blackout`` a window of heartbeats silently skipped
service    ``request_oversized`` client sends a body past the server cap
service    ``request_malformed`` client sends bytes that are not JSON
service    ``request_slow``  client stalls ``slow_request_seconds`` first
store      ``store_locked``  a write txn begins with "database is locked"
store      ``store_enospc``  commit raises ``OSError(ENOSPC)`` mid-ingest
store      ``store_corrupt`` store file bytes flipped (applied by tests)
========== ================= ============================================

The fabric points (:mod:`repro.runtime.fabric`) model *node-level*
infrastructure failure: ``node_kill`` is keyed on ``(task id, dispatch)``
like the executor points, the RPC points on ``(node, seq)`` where ``seq``
is the node's monotonic RPC counter, and the two *window* points
(``rpc_partition``, ``heartbeat_blackout``) on ``(node, seq // span)`` so
one firing blacks out a contiguous stretch of traffic — a partition, not
a lone lost packet.

The service points model a *hostile or buggy client* of either HTTP
surface (keyed on ``(client, seq)`` and applied by the RPC client or a
test driver: the serving layer must shed them, never die), and the
store points model a *failing persistence dependency* (keyed on the
store's write-transaction counter; ``store_locked`` rolls fresh dice
per retry attempt so the locked-db retry converges exactly like a
chaos-ridden task retry does).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from .errors import InfraError

__all__ = ["ChaosError", "ChaosSpec", "ChaosPolicy", "apply_worker_action"]

#: fault points applied by the executor, keyed on (task id, attempt)
EXECUTOR_POINTS = ("worker_crash", "worker_hang", "task_error", "slow_task")
#: fault points applied by the journal, keyed on task id
JOURNAL_POINTS = (
    "journal_enospc", "journal_eio", "journal_truncate", "journal_corrupt"
)
#: node-level fault points applied by the distributed fabric
FABRIC_POINTS = (
    "node_kill", "rpc_drop", "rpc_delay", "rpc_dup", "rpc_partition",
    "heartbeat_blackout",
)
#: hostile-client fault points applied against an HTTP surface
SERVICE_POINTS = ("request_oversized", "request_malformed", "request_slow")
#: persistence fault points applied inside the results store
STORE_POINTS = ("store_locked", "store_enospc", "store_corrupt")
#: spec fields that are magnitudes, not probabilities
_MAGNITUDE_FIELDS = (
    "slow_seconds", "rpc_delay_seconds", "partition_span",
    "slow_request_seconds",
)


class ChaosError(InfraError):
    """The fault the ``task_error`` point raises inside a task.

    Subclasses :class:`InfraError` so the taxonomy reports it as
    ``infra_error`` — a harness failure, never a simulation verdict.
    """


@dataclass(frozen=True)
class ChaosSpec:
    """Per-point fault probabilities (all default 0.0 = never fire)."""

    worker_crash: float = 0.0
    worker_hang: float = 0.0
    task_error: float = 0.0
    slow_task: float = 0.0
    journal_corrupt: float = 0.0
    journal_truncate: float = 0.0
    journal_enospc: float = 0.0
    journal_eio: float = 0.0
    node_kill: float = 0.0
    rpc_drop: float = 0.0
    rpc_delay: float = 0.0
    rpc_dup: float = 0.0
    rpc_partition: float = 0.0
    heartbeat_blackout: float = 0.0
    request_oversized: float = 0.0
    request_malformed: float = 0.0
    request_slow: float = 0.0
    store_locked: float = 0.0
    store_enospc: float = 0.0
    store_corrupt: float = 0.0
    #: added latency when ``slow_task`` fires
    slow_seconds: float = 0.05
    #: added latency when ``rpc_delay`` fires
    rpc_delay_seconds: float = 0.02
    #: consecutive RPCs (or heartbeats) lost per partition/blackout window
    partition_span: int = 6
    #: client stall when ``request_slow`` fires
    slow_request_seconds: float = 0.2

    def __post_init__(self) -> None:
        if self.partition_span < 1:
            raise ValueError("partition_span must be >= 1")
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in _MAGNITUDE_FIELDS:
                if value < 0:
                    raise ValueError(f"{f.name} must be >= 0")
            elif not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"chaos probability {f.name} must be in [0, 1], "
                    f"got {value}"
                )

    @classmethod
    def from_string(cls, text: str) -> "ChaosSpec":
        """Parse ``"worker_crash=0.2,journal_corrupt=0.1"`` (CLI form)."""
        known = {f.name for f in fields(cls)}
        kwargs: Dict[str, float] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            name, sep, value = item.partition("=")
            name = name.strip()
            if not sep or name not in known:
                raise ValueError(
                    f"bad chaos spec item {item!r}; known points: "
                    + ", ".join(sorted(known))
                )
            try:
                kwargs[name] = (
                    int(value) if name == "partition_span" else float(value)
                )
            except ValueError:
                raise ValueError(f"bad chaos probability in {item!r}")
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def any_enabled(self) -> bool:
        """True when any fault point has a non-zero probability."""
        return any(
            getattr(self, f.name) for f in fields(self)
            if f.name not in _MAGNITUDE_FIELDS
        )


class ChaosPolicy:
    """Seeded decision engine mapping (point, key) -> fire / don't fire."""

    def __init__(self, spec: ChaosSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    def __repr__(self) -> str:
        active = {
            k: v for k, v in self.spec.to_dict().items()
            if v and k != "slow_seconds"
        }
        return f"ChaosPolicy(seed={self.seed}, {active})"

    def _unit(self, point: str, key: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{point}:{key}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)

    def should(self, point: str, key: str) -> bool:
        """Whether fault ``point`` fires for ``key`` (pure, replayable)."""
        prob = getattr(self.spec, point)
        return prob > 0.0 and self._unit(point, key) < prob

    # -- executor side -------------------------------------------------------

    def task_action(
        self, task_id: str, attempt: int
    ) -> Optional[Tuple[str, float]]:
        """The chaos directive to ship with one task attempt, if any.

        At most one point fires per attempt; harsher faults win so a
        spec mixing several points still produces each failure shape.
        """
        key = f"{task_id}@{attempt}"
        if self.should("worker_crash", key):
            return ("crash", 0.0)
        if self.should("worker_hang", key):
            return ("hang", 0.0)
        if self.should("task_error", key):
            return ("error", 0.0)
        if self.should("slow_task", key):
            return ("slow", self.spec.slow_seconds)
        return None

    # -- journal side --------------------------------------------------------

    def journal_action(self, task_key: str) -> Optional[str]:
        """The fault to apply to one journal append, if any."""
        for point in JOURNAL_POINTS:
            if self.should(point, task_key):
                return point
        return None

    # -- fabric (node) side --------------------------------------------------

    def node_kill_action(self, task_id: str, dispatch: int) -> bool:
        """Whether the worker *node* dies before running this dispatch.

        Keyed on ``(task id, dispatch)`` — the coordinator's per-task
        dispatch counter — so a re-dispatched task rolls fresh dice and a
        chaos-ridden fabric campaign still converges, exactly like the
        executor's ``worker_crash`` point.
        """
        return self.should("node_kill", f"{task_id}@{dispatch}")

    def rpc_action(self, node: str, seq: int) -> Optional[Tuple[str, float]]:
        """The fault (if any) for RPC number ``seq`` from ``node``.

        ``rpc_partition`` wins and is keyed on the *window* ``seq //
        partition_span``, so when it fires every RPC in that window —
        leases, reports and heartbeats alike — fails with a connection
        error: a link partition, not a lost packet.  The per-RPC points
        (drop, dup, delay) are keyed on ``seq`` itself.
        """
        span = self.spec.partition_span
        if self.should("rpc_partition", f"{node}#{seq // span}"):
            return ("partition", 0.0)
        key = f"{node}#{seq}"
        if self.should("rpc_drop", key):
            return ("drop", 0.0)
        if self.should("rpc_dup", key):
            return ("dup", 0.0)
        if self.should("rpc_delay", key):
            return ("delay", self.spec.rpc_delay_seconds)
        return None

    # -- service (HTTP surface) side -----------------------------------------

    def request_action(
        self, client: str, seq: int
    ) -> Optional[Tuple[str, float]]:
        """The hostile-client fault for request ``seq`` from ``client``.

        Keyed like :meth:`rpc_action` on the client's monotonic request
        counter, so a retried request rolls fresh dice and a chaos-ridden
        client still converges once the server has shed the bad attempt.
        """
        key = f"{client}#{seq}"
        if self.should("request_oversized", key):
            return ("oversized", 0.0)
        if self.should("request_malformed", key):
            return ("malformed", 0.0)
        if self.should("request_slow", key):
            return ("slow", self.spec.slow_request_seconds)
        return None

    # -- store (persistence) side --------------------------------------------

    def store_locked_active(self, seq: int, attempt: int) -> bool:
        """Whether write transaction ``seq`` hits "database is locked"
        on ``attempt``.

        Keyed per attempt, so the store's bounded deterministic-backoff
        retry rolls fresh dice and converges — while a probability of
        1.0 models a permanently locked database that exhausts it.
        """
        return self.should("store_locked", f"txn#{seq}@{attempt}")

    def store_enospc_active(self, seq: int) -> bool:
        """Whether write transaction ``seq`` hits ENOSPC at commit.

        Keyed on the transaction alone — a full disk does not go away
        on retry; the caller must surface the error (and the journal,
        not the store, remains the durable record).
        """
        return self.should("store_enospc", f"txn#{seq}")

    def heartbeat_blackout_active(self, node: str, beat: int) -> bool:
        """Whether heartbeat number ``beat`` from ``node`` is swallowed.

        Window-keyed like :meth:`rpc_action`'s partition: one firing
        silences ``partition_span`` consecutive heartbeats, long enough
        for the coordinator to expire the node's leases.
        """
        span = self.spec.partition_span
        return self.should("heartbeat_blackout", f"{node}#{beat // span}")


def apply_worker_action(action: Optional[Tuple[str, float]]) -> None:
    """Execute a chaos directive inside a worker, before the task runs.

    Runs worker-side (directives are decided in the parent and shipped
    with the payload so they stay keyed on the task id and attempt, which
    workers never see).  ``crash`` uses ``os._exit`` — no atexit, no
    cleanup, the same signature as a segfault or OOM kill.
    """
    if action is None:
        return
    kind, arg = action
    if kind == "crash":
        import os

        os._exit(66)
    elif kind == "hang":
        # Reclaimed only by the executor's wall-clock deadline: models a
        # wedged worker, not a slow one.
        time.sleep(3600.0)
    elif kind == "error":
        raise ChaosError("chaos: injected task exception")
    elif kind == "slow":
        time.sleep(arg)
