"""Ablation: tag-array vulnerability vs data-array vulnerability.

The paper measures data arrays; its infrastructure extends naturally to
address-based structures (Biswas et al., ref [7]).  This ablation measures
the L1 tag array under the conservative address-structure model and checks
the expected relations:

* per bit, tags are *more* vulnerable than data (a tag is ACE while any
  byte of its 64-byte line is ACE);
* the MB/SB behaviour (union effect, interleaving benefit) carries over.
"""

import pytest

from repro.core import FaultMode, NoProtection, Parity

WORKLOADS = ("matmul", "srad", "minife")


def _measure(study_of):
    rows = {}
    for wl in WORKLOADS:
        study = study_of(wl)
        data_sb = study.cache_avf("l1", FaultMode.linear(1), NoProtection()).sdc_avf
        tag_sb = study.tag_avf("l1", FaultMode.linear(1), NoProtection()).sdc_avf
        tag_2x1 = study.tag_avf("l1", FaultMode.linear(2), Parity()).sdc_avf
        tag_2x1_ilv = study.tag_avf(
            "l1", FaultMode.linear(2), Parity(), factor=2
        ).sdc_avf
        rows[wl] = (data_sb, tag_sb, tag_2x1, tag_2x1_ilv)
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_tag_arrays(benchmark, study_of, report):
    rows = benchmark.pedantic(_measure, args=(study_of,), rounds=1, iterations=1)
    lines = [
        f"{'workload':<10} {'data SB':>9} {'tag SB':>9} "
        f"{'tag 2x1 SDC':>12} {'tag 2x1 SDC x2':>15}"
    ]
    for wl, (d, t, t2, t2i) in rows.items():
        lines.append(f"{wl:<10} {d:9.4f} {t:9.4f} {t2:12.4f} {t2i:15.4f}")
    report("ablation_tag_arrays", lines)

    for wl, (data_sb, tag_sb, tag_2x1, tag_2x1_ilv) in rows.items():
        # Tags at least as vulnerable per bit as the data they guard.
        assert tag_sb >= data_sb - 1e-12, wl
        # Interleaving the tag array removes the parity-defeating 2x1 SDC.
        assert tag_2x1_ilv == 0.0, wl
        assert tag_2x1 >= 0.0
