"""Error-protection schemes and their reactions to multi-bit faults.

A *protection domain* is a region of data covered by one element of a
protection scheme (one parity bit, one ECC word, one CRC word).  When a
spatial multi-bit fault overlaps a domain, the *overlapped region* is the set
of faulty bits that land in that domain; the scheme's *reaction* depends only
on how many faulty bits the domain sees (Sec. V-A of the paper).

The mapping from (reaction, region ACEness) to a fault outcome implements
the classification rules of Sec. V-B and VII-B:

====================  ==========  ============  =======
reaction              region ACE  region        region
                                  READ_DEAD     UNACE
====================  ==========  ============  =======
``CORRECTED``         unACE       unACE         unACE
``DETECTED``          true DUE    false DUE     unACE
``UNDETECTED``        SDC         unACE         unACE
``MISCORRECTED``      SDC         unACE [#]_    unACE
====================  ==========  ============  =======

.. [#] With ``miscorrect_corrupts=True`` a miscorrection on dead data is
   classified SDC, modelling the decoder flipping an additional (possibly
   live) bit in the domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict

from .intervals import AceClass, IntervalSet, Outcome

__all__ = [
    "Reaction",
    "ProtectionScheme",
    "NoProtection",
    "Parity",
    "SecDed",
    "DecTed",
    "Crc",
    "classify_region",
    "SCHEMES",
]


class Reaction(Enum):
    """How a protection domain responds to ``n`` faulty bits at read time."""

    NO_FAULT = "no_fault"
    CORRECTED = "corrected"
    DETECTED = "detected"
    UNDETECTED = "undetected"
    MISCORRECTED = "miscorrected"


def _hamming_check_bits(data_bits: int) -> int:
    """Check bits for a SEC Hamming code extended to SEC-DED (+1 parity)."""
    r = 0
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r + 1


@dataclass(frozen=True)
class ProtectionScheme:
    """Base class for protection schemes.

    Subclasses define :meth:`react` (the reaction to ``n`` simultaneous bit
    faults inside one domain) and :meth:`check_bits` (storage overhead).
    """

    def react(self, n_faulty_bits: int) -> Reaction:
        raise NotImplementedError

    def check_bits(self, data_bits: int) -> int:
        raise NotImplementedError

    def area_overhead(self, data_bits: int) -> float:
        """Check-bit storage overhead as a fraction of the data bits."""
        return self.check_bits(data_bits) / data_bits

    @property
    def name(self) -> str:
        return type(self).__name__.lower()


@dataclass(frozen=True)
class NoProtection(ProtectionScheme):
    """Unprotected storage: every fault is silently consumed."""

    def react(self, n_faulty_bits: int) -> Reaction:
        return Reaction.NO_FAULT if n_faulty_bits == 0 else Reaction.UNDETECTED

    def check_bits(self, data_bits: int) -> int:
        return 0

    @property
    def name(self) -> str:
        return "none"


@dataclass(frozen=True)
class Parity(ProtectionScheme):
    """Single parity bit per domain: detects every odd-weight fault.

    Even-weight faults cancel in the parity sum and pass undetected.  This is
    the property behind the paper's Sec. VIII finding that parity can *beat*
    ECC for detection of large fault modes: parity detects any odd overlapped
    region, while SEC-DED is blind beyond 2 bits.
    """

    def react(self, n_faulty_bits: int) -> Reaction:
        if n_faulty_bits == 0:
            return Reaction.NO_FAULT
        return Reaction.DETECTED if n_faulty_bits % 2 == 1 else Reaction.UNDETECTED

    def check_bits(self, data_bits: int) -> int:
        return 1

    @property
    def name(self) -> str:
        return "parity"


@dataclass(frozen=True)
class SecDed(ProtectionScheme):
    """Single-error-correct, double-error-detect ECC (extended Hamming).

    Corrects 1 bit, detects 2.  Three or more faulty bits alias onto a valid
    or single-error syndrome: the decoder either misses the error or
    "corrects" a healthy bit (miscorrection), so the reaction is
    :attr:`Reaction.MISCORRECTED`.
    """

    def react(self, n_faulty_bits: int) -> Reaction:
        if n_faulty_bits == 0:
            return Reaction.NO_FAULT
        if n_faulty_bits == 1:
            return Reaction.CORRECTED
        if n_faulty_bits == 2:
            return Reaction.DETECTED
        return Reaction.MISCORRECTED

    def check_bits(self, data_bits: int) -> int:
        return _hamming_check_bits(data_bits)

    @property
    def name(self) -> str:
        return "secded"


@dataclass(frozen=True)
class DecTed(ProtectionScheme):
    """Double-error-correct, triple-error-detect BCH-style ECC."""

    def react(self, n_faulty_bits: int) -> Reaction:
        if n_faulty_bits == 0:
            return Reaction.NO_FAULT
        if n_faulty_bits <= 2:
            return Reaction.CORRECTED
        if n_faulty_bits == 3:
            return Reaction.DETECTED
        return Reaction.MISCORRECTED

    def check_bits(self, data_bits: int) -> int:
        # A binary 2-error-correcting BCH code needs 2*m parity symbols with
        # 2**m >= data_bits + check_bits + 1, plus one overall parity bit for
        # triple-error detection.  For 128 data bits this gives 17 check bits
        # (the 13% overhead quoted in the paper's introduction).
        m = 1
        while (1 << m) < data_bits + 2 * m + 2:
            m += 1
        return 2 * m + 1

    @property
    def name(self) -> str:
        return "dected"


@dataclass(frozen=True)
class Crc(ProtectionScheme):
    """Cyclic redundancy check: detection only, strong against bursts.

    A CRC with ``r`` check bits detects any burst of length <= ``r`` and, if
    its generator polynomial contains the factor (x + 1), any odd-weight
    error.  It corrects nothing; every detection is a DUE.
    """

    r: int = 8
    detects_odd: bool = True

    def react(self, n_faulty_bits: int) -> Reaction:
        if n_faulty_bits == 0:
            return Reaction.NO_FAULT
        if n_faulty_bits <= self.r:
            return Reaction.DETECTED
        if self.detects_odd and n_faulty_bits % 2 == 1:
            return Reaction.DETECTED
        return Reaction.UNDETECTED

    def check_bits(self, data_bits: int) -> int:
        return self.r

    @property
    def name(self) -> str:
        return f"crc{self.r}"


#: Registry of the schemes used throughout the paper's evaluation.
SCHEMES: Dict[str, ProtectionScheme] = {
    "none": NoProtection(),
    "parity": Parity(),
    "secded": SecDed(),
    "dected": DecTed(),
    "crc8": Crc(8),
}


def classify_region(
    reaction: Reaction,
    ace: IntervalSet,
    *,
    miscorrect_corrupts: bool = False,
) -> IntervalSet:
    """Map an overlapped region's ACE intervals to fault outcomes (eq. 6).

    ``ace`` carries :class:`AceClass` labels; the result carries
    :class:`Outcome` labels.  Corrected regions contribute nothing; detected
    regions raise true DUEs on ACE time and false DUEs on read-dead time;
    undetected regions turn ACE time into SDC and mask everything else.
    """
    if reaction in (Reaction.NO_FAULT, Reaction.CORRECTED):
        return IntervalSet()
    if reaction is Reaction.DETECTED:
        table = {
            int(AceClass.ACE): int(Outcome.TRUE_DUE),
            int(AceClass.READ_DEAD): int(Outcome.FALSE_DUE),
        }
    elif reaction is Reaction.MISCORRECTED and miscorrect_corrupts:
        table = {
            int(AceClass.ACE): int(Outcome.SDC),
            int(AceClass.READ_DEAD): int(Outcome.SDC),
        }
    else:  # UNDETECTED, or MISCORRECTED treated as silent corruption of live data
        table = {
            int(AceClass.ACE): int(Outcome.SDC),
            int(AceClass.READ_DEAD): 0,
        }
    return ace.map_class(lambda c: table.get(c, 0))
