"""Tests for the protection-design optimizer."""

import pytest

from repro.core import AvfStudy, Interleaving, Parity
from repro.core.designer import (
    VGPR_DESIGN_PALETTE,
    DesignPoint,
    DesignResult,
    choose_design,
    evaluate_designs,
)
from repro.workloads import run


@pytest.fixture(scope="module")
def results():
    r = run("matmul")
    study = AvfStudy(r.apu, r.output_ranges)
    return evaluate_designs([study])


class TestEvaluateDesigns:
    def test_covers_palette(self, results):
        assert len(results) == len(VGPR_DESIGN_PALETTE)
        assert {r.label for r in results} == {
            p.label for p in VGPR_DESIGN_PALETTE
        }

    def test_rates_are_sane(self, results):
        for r in results:
            assert r.sdc_rate >= 0
            assert r.due_rate >= 0
            assert 0 < r.area_overhead < 0.5

    def test_area_overheads_match_paper(self, results):
        by_label = {r.label: r for r in results}
        assert by_label["parity tx4"].area_overhead == pytest.approx(1 / 32)
        assert by_label["secded rx2"].area_overhead == pytest.approx(7 / 32)

    def test_inter_thread_never_worse_on_sdc(self, results):
        by_label = {r.label: r for r in results}
        for scheme in ("parity", "secded"):
            for f in (2, 4):
                rx = by_label[f"{scheme} rx{f}"].sdc_rate
                tx = by_label[f"{scheme} tx{f}"].sdc_rate
                assert tx <= rx + 1e-9


class TestChooseDesign:
    def _fake(self, label, sdc, due, area):
        point = DesignPoint(label, Parity(), Interleaving.INTRA_THREAD, 2)
        return DesignResult(point, sdc, due, area)

    def test_picks_cheapest_feasible(self):
        results = [
            self._fake("cheap-bad", sdc=5.0, due=1.0, area=0.03),
            self._fake("cheap-good", sdc=0.5, due=1.0, area=0.03),
            self._fake("pricey-good", sdc=0.1, due=0.2, area=0.22),
        ]
        best = choose_design(results, sdc_target=1.0)
        assert best.label == "cheap-good"

    def test_due_target_filters(self):
        results = [
            self._fake("detect-happy", sdc=0.5, due=30.0, area=0.03),
            self._fake("balanced", sdc=0.6, due=0.5, area=0.22),
        ]
        best = choose_design(results, sdc_target=1.0, due_target=1.0)
        assert best.label == "balanced"

    def test_no_feasible_design(self):
        results = [self._fake("weak", sdc=9.0, due=9.0, area=0.03)]
        assert choose_design(results, sdc_target=0.1) is None

    def test_tie_breaks_on_sdc(self):
        results = [
            self._fake("a", sdc=0.9, due=0.0, area=0.03),
            self._fake("b", sdc=0.4, due=0.0, area=0.03),
        ]
        assert choose_design(results, sdc_target=1.0).label == "b"

    def test_end_to_end_prefers_parity_interleaving(self, results):
        """On real measurements, parity+interleaving meets mid targets at
        a fraction of SEC-DED's area (the Sec. VIII conclusion)."""
        worst = max(r.sdc_rate for r in results)
        best = choose_design(results, sdc_target=worst + 1)
        assert best is not None
        assert best.area_overhead == pytest.approx(1 / 32)  # parity wins
