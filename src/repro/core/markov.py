"""Markov-chain MTTF model for protection words (MACAU-style, Sec. III).

The paper contrasts MB-AVF analysis with MACAU (Suh et al.), which computes
*intrinsic* MTTFs of protected structures under accumulating single-bit,
temporal multi-bit and spatial multi-bit faults using Markov chains.  This
module implements that style of model as a continuous-time Markov chain per
protection word:

* state ``i`` = number of latent (uncorrected but correctable) faulty bits
  accumulated in the word;
* single-bit strikes arrive at the word's strike rate and advance the
  state; crossing the code's correction capability absorbs into failure;
* periodic scrubbing returns the word to state 0 at rate ``1/T_scrub``;
* spatial multi-bit strikes whose per-word flip count defeats the code
  absorb into failure from *any* state (the effect MACAU cannot model under
  interleaving, which the paper calls out — here it is a rate input that an
  MB-AVF analysis or Table I data can provide).

The MTTF is the expected absorption time from state 0, obtained from the
fundamental matrix of the transient part of the generator.  A cache of
``W`` independent words is a series system: ``MTTF_cache = MTTF_word``
computed with word rates, divided by ``W`` in the exponential approximation
(we expose both).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .protection import ProtectionScheme, Reaction

__all__ = ["WordMarkovModel", "word_mttf_hours", "cache_mttf_hours"]

_FIT = 1e-9
MBIT = float(1 << 20)


@dataclass(frozen=True)
class WordMarkovModel:
    """CTMC description of one protection word.

    ``word_bits``
        data bits covered by one code word.
    ``correctable``
        latent faults the code tolerates (1 for SEC-DED, 2 for DEC-TED,
        0 for parity or no protection).
    ``raw_fit_per_mbit``
        single-bit strike rate from accelerated testing.
    ``scrub_interval_hours``
        mean time between scrubs of the word (None = never scrubbed).
    ``smbf_defeat_fit``
        arrival rate (FIT) of spatial multi-bit strikes whose per-word flip
        count defeats the code — e.g. from Table I fractions, reduced by
        interleaving.  These absorb directly into failure.
    """

    word_bits: int = 32
    correctable: int = 1
    raw_fit_per_mbit: float = 1.0
    scrub_interval_hours: Optional[float] = None
    smbf_defeat_fit: float = 0.0

    @property
    def sbf_rate_per_hour(self) -> float:
        """Single-bit strike rate of the whole word, per hour."""
        return self.raw_fit_per_mbit * _FIT / MBIT * self.word_bits

    @property
    def smbf_rate_per_hour(self) -> float:
        return self.smbf_defeat_fit * _FIT

    @property
    def scrub_rate_per_hour(self) -> float:
        if not self.scrub_interval_hours:
            return 0.0
        return 1.0 / self.scrub_interval_hours

    def generator(self) -> np.ndarray:
        """Transient part of the CTMC generator (states 0..correctable).

        Failure is the implicit absorbing state; rows sum to the negated
        total outflow including absorption.
        """
        c = self.correctable
        lam = self.sbf_rate_per_hour
        mu = self.scrub_rate_per_hour
        nu = self.smbf_rate_per_hour
        q = np.zeros((c + 1, c + 1))
        for i in range(c + 1):
            out = lam + nu  # next strike, or a defeating spatial burst
            if i > 0 and mu > 0:
                q[i, 0] += mu
                out += mu
            if i < c:
                q[i, i + 1] += lam
            q[i, i] -= out
        return q

    def mttf_hours(self) -> float:
        """Expected time to absorption (failure) starting fault-free.

        Solved by backward substitution with ``t_i = a_i + b_i * t_0``
        (expected absorption time from state ``i`` expressed through the
        scrub return to state 0), which stays numerically stable even when
        the scrub rate dwarfs the strike rate — a regime where the naive
        fundamental-matrix solve loses all its pivots.
        """
        lam = self.sbf_rate_per_hour
        mu = self.scrub_rate_per_hour
        nu = self.smbf_rate_per_hour
        if lam == 0 and nu == 0:
            return math.inf
        c = self.correctable
        a_next = 0.0  # absorption state: t = 0
        b_next = 0.0
        for i in range(c, -1, -1):
            mu_i = mu if i > 0 else 0.0
            out = lam + nu + mu_i
            if out == 0:
                return math.inf
            a_next = (1.0 + lam * a_next) / out
            b_next = (lam * b_next + mu_i) / out
        denom = 1.0 - b_next
        if denom <= 0:
            return math.inf
        return a_next / denom


def word_mttf_hours(
    scheme: ProtectionScheme,
    *,
    word_bits: int = 32,
    raw_fit_per_mbit: float = 1.0,
    scrub_interval_hours: Optional[float] = None,
    smbf_defeat_fit: float = 0.0,
) -> float:
    """MTTF of one word protected by ``scheme`` under accumulating faults.

    The correction capability is derived from the scheme's reactions: the
    largest ``n`` with ``react(n) == CORRECTED``.
    """
    c = 0
    n = 1
    while scheme.react(n) is Reaction.CORRECTED:
        c = n
        n += 1
    model = WordMarkovModel(
        word_bits=word_bits,
        correctable=c,
        raw_fit_per_mbit=raw_fit_per_mbit,
        scrub_interval_hours=scrub_interval_hours,
        smbf_defeat_fit=smbf_defeat_fit,
    )
    return model.mttf_hours()


def cache_mttf_hours(
    scheme: ProtectionScheme,
    cache_bytes: int,
    *,
    word_bits: int = 32,
    raw_fit_per_mbit: float = 1.0,
    scrub_interval_hours: Optional[float] = None,
    smbf_defeat_fraction: float = 0.0,
) -> float:
    """MTTF of a whole cache of independent protection words.

    ``smbf_defeat_fraction`` is the fraction of strikes that are spatial
    multi-bit faults large enough to defeat the code in some word (per-word
    rates are derived from it).  Words fail independently; the cache is a
    series system, approximated exponentially as ``MTTF_word / n_words``.
    """
    n_words = cache_bytes * 8 // word_bits
    word_strike_fit = raw_fit_per_mbit / MBIT * word_bits
    mttf_word = word_mttf_hours(
        scheme,
        word_bits=word_bits,
        raw_fit_per_mbit=raw_fit_per_mbit,
        scrub_interval_hours=scrub_interval_hours,
        smbf_defeat_fit=word_strike_fit * smbf_defeat_fraction,
    )
    if math.isinf(mttf_word):
        return math.inf
    return mttf_word / n_words
