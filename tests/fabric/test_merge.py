"""Replicated-journal merge: shard edge cases and resume equivalence.

The merge contract (see ``repro.runtime.fabric.merge``): folding node
shards into the canonical journal loses nothing, duplicates nothing,
prefers successes over failures, never overwrites the coordinator's
commit, and quarantines corrupt shard lines instead of believing them.
"""

import json

import pytest

from repro.runtime import Task, TaskOutcome
from repro.runtime.fabric import SPAN_SHARD_SUFFIX, find_shards, merge_shards
from repro.runtime.journal import Journal
from repro.runtime.executor import load_journaled_results

from .conftest import journaled_ids


def record(task, *, outcome=TaskOutcome.OK, value=None, attempts=1,
           seq=1, node="n0", error=""):
    return {
        "task": task, "outcome": outcome, "value": value, "error": error,
        "attempts": attempts, "duration": 0.001, "seq": seq, "node": node,
    }


def write_shard(path, records):
    j = Journal(path)
    for rec in records:
        j.append(rec)
    j.close()
    return path


class TestFindShards:
    def test_skips_span_shards_and_quarantine_sidecars(self, tmp_path):
        write_shard(tmp_path / "n0.jsonl", [record("a")])
        write_shard(tmp_path / "n1.jsonl", [record("b", node="n1")])
        (tmp_path / f"n0{SPAN_SHARD_SUFFIX}").write_text("{}\n")
        (tmp_path / "n9.jsonl.quarantine").write_text("junk\n")
        assert [p.name for p in find_shards(tmp_path)] == [
            "n0.jsonl", "n1.jsonl"
        ]

    def test_missing_dir_is_empty(self, tmp_path):
        assert find_shards(tmp_path / "nowhere") == []


class TestMergeEdgeCases:
    def test_duplicate_across_shards_prefers_success(self, tmp_path):
        # At-least-once execution: node n0 was partitioned mid-task, the
        # re-dispatch on n1 succeeded — the success must win regardless
        # of shard order.
        write_shard(tmp_path / "n0.jsonl", [
            record("dup", outcome=TaskOutcome.WORKER_DIED, attempts=2,
                   error="boom"),
        ])
        write_shard(tmp_path / "n1.jsonl", [
            record("dup", value=42, attempts=1, node="n1"),
        ])
        canonical = tmp_path / "campaign.jsonl"
        stats = merge_shards(canonical, tmp_path)
        assert stats == {
            "merged": 1, "present": 0, "duplicates": 1, "shards": 2
        }
        rec = Journal(canonical).load()["dup"]
        assert rec["outcome"] == TaskOutcome.OK
        assert rec["value"] == 42

    def test_duplicate_ok_records_higher_attempts_win(self, tmp_path):
        write_shard(tmp_path / "n0.jsonl", [record("t", value=1, attempts=1)])
        write_shard(tmp_path / "n1.jsonl",
                    [record("t", value=1, attempts=3, node="n1")])
        canonical = tmp_path / "campaign.jsonl"
        merge_shards(canonical, tmp_path)
        assert Journal(canonical).load()["t"]["attempts"] == 3

    def test_interleaved_seq_merges_deterministically(self, tmp_path):
        # Shard file order is append order, which under retries is NOT
        # seq order; the merge replays each shard by its per-node seq,
        # shards in sorted path order.
        shards = tmp_path / "shards"
        write_shard(shards / "n0.jsonl", [
            record("a2", seq=2), record("a1", seq=1), record("a3", seq=3),
        ])
        write_shard(shards / "n1.jsonl", [
            record("b2", seq=2, node="n1"), record("b1", seq=1, node="n1"),
        ])
        canonical = tmp_path / "campaign.jsonl"
        merge_shards(canonical, shards)
        assert journaled_ids(canonical) == ["a1", "a2", "a3", "b1", "b2"]
        # Deterministic: merging the same shards into a fresh canonical
        # journal yields the identical record order.
        again = tmp_path / "campaign2.jsonl"
        merge_shards(again, shards)
        assert journaled_ids(again) == journaled_ids(canonical)

    def test_corrupt_shard_line_is_quarantined_not_merged(self, tmp_path):
        shard = write_shard(tmp_path / "n0.jsonl", [
            record("good1", seq=1), record("bad", seq=2),
            record("good2", seq=3),
        ])
        # Flip the middle record's value without updating its CRC.
        lines = shard.read_text().splitlines()
        lines[1] = lines[1].replace('"bad"', '"mangled"')
        shard.write_text("\n".join(lines) + "\n")
        canonical = tmp_path / "campaign.jsonl"
        with pytest.warns(UserWarning, match="quarantined"):
            stats = merge_shards(canonical, tmp_path)
        assert stats["merged"] == 2
        assert sorted(journaled_ids(canonical)) == ["good1", "good2"]
        # Forensics sidecar exists; the damaged task simply re-runs.
        quarantine = tmp_path / "n0.jsonl.quarantine"
        assert quarantine.exists()
        assert "crc_mismatch" in quarantine.read_text()

    def test_canonical_record_never_overwritten(self, tmp_path):
        canonical = tmp_path / "campaign.jsonl"
        write_shard(canonical, [record("x", value="commit")])
        write_shard(tmp_path / "shards" / "n0.jsonl",
                    [record("x", value="late-duplicate")])
        stats = merge_shards(canonical, tmp_path / "shards")
        assert stats == {
            "merged": 0, "present": 1, "duplicates": 0, "shards": 1
        }
        assert Journal(canonical).load()["x"]["value"] == "commit"
        assert journaled_ids(canonical) == ["x"]  # no second line

    def test_explicit_shard_list(self, tmp_path):
        a = write_shard(tmp_path / "a.jsonl", [record("a")])
        b = write_shard(tmp_path / "b.jsonl", [record("b", node="n1")])
        canonical = tmp_path / "campaign.jsonl"
        stats = merge_shards(canonical, [a, b])
        assert stats["merged"] == 2
        assert stats["shards"] == 2


class TestMergedResumeEquivalence:
    """A resume from merged shards must equal a single-journal resume."""

    def _tasks(self):
        return [Task(f"eq/{i:02d}", i) for i in range(10)]

    def test_merged_resume_equals_single_journal_resume(self, tmp_path):
        tasks = self._tasks()
        # The undisturbed single-host journal: all ten records in one
        # canonical file.
        single = tmp_path / "single.jsonl"
        write_shard(single, [
            record(t.id, value=t.payload * 2, seq=i + 1)
            for i, t in enumerate(tasks)
        ])
        # The disturbed fabric equivalent: the coordinator committed the
        # first four records before dying; nodes n0/n1 hold the rest in
        # their shards, overlapping on one re-dispatched task.
        merged = tmp_path / "merged.jsonl"
        write_shard(merged, [
            record(t.id, value=t.payload * 2, seq=i + 1)
            for i, t in enumerate(tasks[:4])
        ])
        shard_dir = tmp_path / "shards"
        write_shard(shard_dir / "n0.jsonl", [
            record(t.id, value=t.payload * 2, seq=i + 1)
            for i, t in enumerate(tasks[4:8])
        ])
        write_shard(shard_dir / "n1.jsonl", [
            record(t.id, value=t.payload * 2, seq=i + 1, node="n1")
            for i, t in enumerate(tasks[7:])
        ])
        stats = merge_shards(merged, shard_dir)
        assert stats["merged"] == 6
        assert stats["duplicates"] == 1  # the doubly-executed task
        res_single, pend_single = load_journaled_results(
            Journal(single), tasks
        )
        res_merged, pend_merged = load_journaled_results(
            Journal(merged), tasks
        )
        assert pend_single == [] and pend_merged == []
        assert {
            k: (r.outcome, r.value) for k, r in res_single.items()
        } == {
            k: (r.outcome, r.value) for k, r in res_merged.items()
        }
        # Zero lost, zero duplicated records in the merged journal.
        ids = journaled_ids(merged)
        assert sorted(ids) == sorted(t.id for t in tasks)
        assert len(ids) == len(set(ids))

    def test_partial_merge_leaves_rest_pending(self, tmp_path):
        tasks = self._tasks()
        merged = tmp_path / "merged.jsonl"
        shard_dir = tmp_path / "shards"
        write_shard(shard_dir / "n0.jsonl", [
            record(t.id, value=t.payload * 2, seq=i + 1)
            for i, t in enumerate(tasks[:3])
        ])
        merge_shards(merged, shard_dir)
        results, pending = load_journaled_results(Journal(merged), tasks)
        assert sorted(results) == [t.id for t in tasks[:3]]
        assert [t.id for t in pending] == [t.id for t in tasks[3:]]
