"""Table II: ACE interference in multi-bit faults (fault injection).

Single-bit injections into the VGPR identify SDC ACE bits; multi-bit
injections on groups containing those bits count how often program-level
interactions between the flips mask the corruption (ACE interference).

Shape target: interference is very rare (the paper finds 2 groups out of
1730 SDC ACE bits, ~0.1%), validating single-bit ACE analysis as the basis
for SDC MB-AVF.  The campaign here is scaled down (tens of injections per
benchmark instead of 5000) but runs the identical procedure.
"""

import pytest

from repro.faultinject import ace_interference_study
from repro.workloads.suite import OPENCL_SAMPLES

N_SINGLE = 30
MAX_GROUPS = 8


def _run_study():
    return ace_interference_study(
        OPENCL_SAMPLES, n_single=N_SINGLE, modes=(2, 3, 4),
        max_groups_per_mode=MAX_GROUPS, seed=0, n_cus=2,
    )


@pytest.mark.benchmark(group="table2")
def test_table2_ace_interference(benchmark, report):
    campaigns = benchmark.pedantic(_run_study, rounds=1, iterations=1)
    lines = [
        f"{'benchmark':<18} {'SDC ACE bits':>13} "
        f"{'2x1':>6} {'3x1':>6} {'4x1':>6}"
    ]
    total_groups = 0
    total_interference = 0
    total_sdc_bits = 0
    for c in campaigns:
        cells = []
        for m in (2, 3, 4):
            injected, interfering = c.multibit.get(m, (0, 0))
            total_groups += injected
            total_interference += interfering
            cells.append(f"{interfering:6d}")
        total_sdc_bits += c.n_sdc_ace_bits
        lines.append(
            f"{c.benchmark:<18} {c.n_sdc_ace_bits:13d} " + " ".join(cells)
        )
    lines.append(
        f"{'total':<18} {total_sdc_bits:13d}   groups={total_groups} "
        f"interference={total_interference}"
    )
    rate = total_interference / total_groups if total_groups else 0.0
    lines.append(f"interference rate: {rate:.2%} (paper: ~0.1%)")
    report("table2_ace_interference", lines)

    # Shape targets: the campaign finds SDC ACE bits, and interference
    # among multi-bit groups containing them is rare.
    assert total_sdc_bits > 0
    assert total_groups > 0
    assert rate <= 0.05
