"""Persistence-layer SQL rules (family P).

The results store's injection-safety and idempotence guarantees rest on
one discipline: *values never enter SQL text*.  Statements are constant
strings (or assembled by the store's own identifier-whitelisting
builders) and every value travels as a ``?`` parameter.  P501 pins that
invariant at the call sites where it can be broken — ``execute()`` and
friends — so a future "quick fix" that f-strings a workload name into a
WHERE clause fails CI instead of shipping a SQL-injectable, cache-
busting query path.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..findings import Finding, Module, Rule
from ..registry import register

__all__ = ["InterpolatedSql"]

#: sqlite3 statement sinks (method names on Connection/Cursor)
_EXECUTE_METHODS = frozenset(("execute", "executemany", "executescript"))


def _interpolation(node: ast.expr) -> Optional[str]:
    """How ``node`` builds a string dynamically, or None if it does not.

    Constants, plain names and attribute/subscript reads are fine — the
    query builders (:func:`repro.store.query.build_where`) hand finished
    statements around as variables.  What is not fine, at the statement
    argument position, is assembling text *in place* from runtime
    values.
    """
    if isinstance(node, ast.JoinedStr):
        return "an f-string"
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Mod):
            return "%-interpolation"
        if isinstance(node.op, ast.Add):
            return "string concatenation"
        return None
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "format":
            return "str.format()"
        if isinstance(func, ast.Attribute) and func.attr == "join":
            return "str.join()"
    return None


@register
class InterpolatedSql(Rule):
    code = "P501"
    slug = "interpolated-sql"
    family = "persistence"
    summary = (
        "SQL statement assembled inline (f-string/concat/%/format/join) "
        "at an execute() call in the results store"
    )
    rationale = (
        "Store statements are parameterized: constant SQL (or the "
        "store's identifier-whitelisting builders) plus '?' "
        "placeholders for every value.  Interpolating values into the "
        "statement text at an execute() site is a SQL injection "
        "surface, breaks sqlite's statement cache, and silently skips "
        "the type adaptation that keeps the canonical-key UNIQUE "
        "constraints honest.  Build the text in a named builder that "
        "only ever splices whitelisted column names, pass it as a "
        "variable, and ship the values separately."
    )
    scope = "store"

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _EXECUTE_METHODS
            ):
                continue
            if not node.args:
                continue
            how = _interpolation(node.args[0])
            if how is None:
                continue
            yield module.finding(
                node, self.code,
                f".{func.attr}() builds its SQL with {how}; use a "
                "constant statement (or a whitelisting builder bound to "
                "a variable) with '?' parameters",
            )
