"""Property-based tests (hypothesis) on the core data structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.avf import StructureLifetimes, compute_mb_avf, compute_sb_avf
from repro.core.faultmodes import FaultMode
from repro.core.intervals import AceClass, IntervalSet, sweep_max
from repro.core.layout import Interleaving, SramArray, build_cache_array
from repro.core.mttf import mttf_smbf_hours, mttf_tmbf_hours
from repro.core.protection import (
    SCHEMES,
    NoProtection,
    Parity,
    Reaction,
    SecDed,
    classify_region,
)

# -- strategies ---------------------------------------------------------------


@st.composite
def interval_sets(draw, max_cycle=200, max_intervals=6, max_class=3):
    """A random valid IntervalSet (sorted, disjoint, classed)."""
    n = draw(st.integers(0, max_intervals))
    points = draw(
        st.lists(
            st.integers(0, max_cycle), min_size=2 * n, max_size=2 * n, unique=True
        )
    )
    points.sort()
    ivals = []
    for k in range(n):
        cls = draw(st.integers(1, max_class))
        ivals.append((points[2 * k], points[2 * k + 1], cls))
    return IntervalSet(ivals)


class TestIntervalProperties:
    @given(st.lists(interval_sets(), max_size=5), st.integers(0, 200))
    def test_sweep_max_is_pointwise_max(self, sets, cycle):
        merged = sweep_max(sets)
        expected = max((s.class_at(cycle) for s in sets), default=0)
        assert merged.class_at(cycle) == expected

    @given(interval_sets())
    def test_clip_never_grows(self, iset):
        clipped = iset.clip(50, 150)
        for cls in (1, 2, 3):
            assert clipped.total(cls) <= iset.total(cls)

    @given(interval_sets())
    def test_clip_full_window_is_identity(self, iset):
        assert iset.clip(-1, 10**9).intervals() == iset.intervals()

    @given(interval_sets())
    def test_map_class_preserves_duration(self, iset):
        mapped = iset.map_class(lambda c: 1)
        total_before = sum(iset.total(c) for c in (1, 2, 3))
        assert mapped.total_at_least(1) == total_before

    @given(interval_sets())
    def test_durations_match_totals(self, iset):
        durs = iset.durations(4)
        for cls in (1, 2, 3):
            assert durs[cls] == iset.total(cls)

    @given(st.lists(interval_sets(), min_size=1, max_size=4))
    def test_sweep_idempotent(self, sets):
        once = sweep_max(sets)
        twice = sweep_max([once])
        assert once.intervals() == twice.intervals()

    @given(interval_sets(), st.integers(0, 150), st.integers(1, 60))
    def test_bucket_accumulate_conserves_time(self, iset, start, width):
        span_lo, span_hi = iset.span()
        edges = list(range(0, 260, 20))
        out = [[0] * 4 for _ in range(len(edges) - 1)]
        iset.bucket_accumulate(edges, out)
        for cls in (1, 2, 3):
            clipped = iset.clip(edges[0], edges[-1])
            assert sum(row[cls] for row in out) == clipped.total(cls)


class TestProtectionProperties:
    @given(st.sampled_from(sorted(SCHEMES)), st.integers(0, 16))
    def test_reaction_defined_everywhere(self, name, n):
        r = SCHEMES[name].react(n)
        assert isinstance(r, Reaction)
        if n == 0:
            assert r is Reaction.NO_FAULT
        else:
            assert r is not Reaction.NO_FAULT

    @given(st.integers(1, 64))
    def test_parity_detects_exactly_odd(self, n):
        r = Parity().react(n)
        assert (r is Reaction.DETECTED) == (n % 2 == 1)

    @given(st.integers(8, 512))
    def test_check_bit_overheads_ordered(self, data_bits):
        # Stronger codes never need fewer check bits.
        assert SCHEMES["secded"].check_bits(data_bits) >= 1
        assert (
            SCHEMES["dected"].check_bits(data_bits)
            > SCHEMES["secded"].check_bits(data_bits)
        )

    @given(interval_sets(max_class=2), st.sampled_from(list(Reaction)))
    def test_classified_time_never_exceeds_input(self, ace, reaction):
        out = classify_region(reaction, ace)
        assert out.total_at_least(1) <= ace.total_at_least(1)


class TestFaultModeProperties:
    @given(st.integers(1, 16))
    def test_linear_geometry(self, m):
        mode = FaultMode.linear(m)
        assert mode.n_bits == m
        assert mode.width == m and mode.height == 1
        assert (0, 0) in mode.offsets

    @given(st.integers(1, 5), st.integers(1, 5))
    def test_rect_geometry(self, h, w):
        mode = FaultMode.rect(h, w)
        assert mode.n_bits == h * w
        assert mode.height == h and mode.width == w

    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)),
            min_size=1, max_size=8, unique=True,
        )
    )
    def test_normalisation_anchors_origin(self, offsets):
        mode = FaultMode("custom", tuple(offsets))
        assert min(r for r, _ in mode.offsets) == 0
        assert min(c for _, c in mode.offsets) == 0
        assert mode.n_bits == len(offsets)


def _toy_lifetimes(spans, window=100):
    """Two-byte toy structure with hypothesis-chosen ACE spans."""
    isets = []
    for lo, hi in spans:
        if lo < hi:
            isets.append(IntervalSet([(lo, hi, int(AceClass.ACE))]))
        else:
            isets.append(IntervalSet())
    return StructureLifetimes("toy", isets, 0, window)


def _toy_array(interleaved: bool) -> SramArray:
    if interleaved:
        domain_of = np.array([[c % 2 for c in range(16)]], dtype=np.int32)
    else:
        domain_of = np.array([[c // 8 for c in range(16)]], dtype=np.int32)
    return SramArray(
        "toy", domain_of.copy(), domain_of, 1,
        2 if interleaved else 1,
        Interleaving.LOGICAL if interleaved else Interleaving.NONE,
    )


class TestAvfEngineProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 100)),
            min_size=2, max_size=2,
        ),
        st.booleans(),
        st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_unprotected_mb_avf_bounds(self, spans, interleaved, m):
        """SB-AVF <= MB-AVF <= M * SB-AVF for any lifetimes (Sec. IV-D)."""
        arr = _toy_array(interleaved)
        lt = _toy_lifetimes(spans)
        sb = compute_sb_avf(arr, lt, NoProtection()).sdc_avf
        mb = compute_mb_avf(arr, lt, FaultMode.linear(m), NoProtection()).sdc_avf
        assert sb - 1e-12 <= mb <= m * sb + 1e-12

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 100)),
            min_size=2, max_size=2,
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_avfs_partition_at_most_one(self, spans, m):
        arr = _toy_array(True)
        lt = _toy_lifetimes(spans)
        res = compute_mb_avf(arr, lt, FaultMode.linear(m), Parity())
        total = res.sdc_avf + res.true_due_avf + res.false_due_avf
        assert 0.0 <= total <= 1.0 + 1e-12

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 100)),
            min_size=2, max_size=2,
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_secded_never_worse_than_parity_at_sdc(self, spans, m):
        arr = _toy_array(True)
        lt = _toy_lifetimes(spans)
        # At 2 bits per domain or fewer, SEC-DED's SDC cannot exceed
        # no-protection's SDC.
        if m <= 4:  # x2 interleave -> at most 2 faulty bits per domain
            unp = compute_mb_avf(arr, lt, FaultMode.linear(m), NoProtection())
            sec = compute_mb_avf(arr, lt, FaultMode.linear(m), SecDed())
            assert sec.sdc_avf <= unp.sdc_avf + 1e-12

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 100)),
            min_size=2, max_size=2,
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_due_preemption_conserves_total(self, spans, m):
        """The Sec. VIII rule reclassifies SDC as DUE, never changes totals."""
        arr = _toy_array(True)
        lt = _toy_lifetimes(spans)
        mode = FaultMode.linear(m)
        plain = compute_mb_avf(arr, lt, mode, Parity())
        pre = compute_mb_avf(arr, lt, mode, Parity(), due_preempts_sdc=True)
        assert pre.sdc_avf <= plain.sdc_avf + 1e-12
        assert pre.total_avf == pytest.approx(plain.total_avf, abs=1e-12)


class TestLayoutProperties:
    @given(
        st.sampled_from([2, 4, 8]),
        st.sampled_from([2, 4]),
        st.sampled_from(
            [Interleaving.LOGICAL, Interleaving.WAY_PHYSICAL,
             Interleaving.INDEX_PHYSICAL]
        ),
        st.sampled_from([1, 2]),
    )
    @settings(max_examples=30, deadline=None)
    def test_cache_layout_bijection(self, n_sets, n_ways, style, factor):
        arr = build_cache_array(
            n_sets, n_ways, 64, style=style, factor=factor
        )
        counts = np.bincount(arr.byte_of.ravel())
        assert (counts == 8).all()
        assert (arr.byte_of.ravel() // 4 == arr.domain_of.ravel()).all()


class TestMttfProperties:
    @given(
        st.floats(0.001, 1000.0),
        st.floats(0.0001, 0.5),
        st.integers(1 << 20, 1 << 32),
    )
    def test_smbf_mttf_positive_and_monotone(self, fit, frac, bits):
        base = mttf_smbf_hours(bits, fit, frac)
        assert base > 0
        assert mttf_smbf_hours(bits, fit * 2, frac) < base
        assert mttf_smbf_hours(bits, fit, min(frac * 2, 1.0)) < base

    @given(st.floats(0.001, 1000.0), st.floats(1.0, 1e7))
    def test_tmbf_decreases_with_lifetime(self, fit, hours):
        bits = 1 << 28
        assert mttf_tmbf_hours(bits, fit, hours * 2) < mttf_tmbf_hours(
            bits, fit, hours
        )
