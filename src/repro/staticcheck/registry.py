"""Rule registry: every rule class registers itself at import time.

``all_rules()`` returns *fresh instances* so cross-file rules start each
run with empty accumulators.  Rule modules live in
:mod:`repro.staticcheck.rules`; importing that package populates the
registry as a side effect (triggered lazily here, so the registry is
always complete no matter which entry point imported first).
"""

from __future__ import annotations

from typing import Dict, List, Type

from .findings import Rule

__all__ = ["register", "all_rules", "rule_classes", "get_rule"]

_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (keyed by code)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    existing = _REGISTRY.get(cls.code)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate rule code {cls.code}: {existing.__name__} "
            f"and {cls.__name__}"
        )
    _REGISTRY[cls.code] = cls
    return cls


def _load() -> None:
    from . import rules  # noqa: F401  (imports register every rule)


def rule_classes() -> Dict[str, Type[Rule]]:
    """Code -> rule class for every registered rule."""
    _load()
    return dict(sorted(_REGISTRY.items()))


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by code."""
    return [cls() for cls in rule_classes().values()]


def get_rule(code: str) -> Type[Rule]:
    _load()
    return _REGISTRY[code]
