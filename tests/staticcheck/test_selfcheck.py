"""Self-check: the shipped tree stays clean against the shipped baseline.

This is the test-suite copy of the CI gate: linting ``src/repro`` must
match ``tools/staticcheck_baseline.json`` exactly — and the baseline must
hold ZERO determinism- and atomic-IO-family debt (those violations were
fixed, not baselined).  The injection tests prove the gate actually
bites: planting a violation in a scratch copy of ``core/avf.py`` is
caught.
"""

from repro.staticcheck import compare, run
from repro.staticcheck.baseline import load

from .conftest import BASELINE, SRC_REPRO


class TestShippedTreeIsClean:
    def test_lint_matches_committed_baseline(self):
        result = run([SRC_REPRO])
        comparison = compare(result.findings, load(BASELINE))
        assert comparison.clean, (
            "src/repro drifted from tools/staticcheck_baseline.json:\n"
            + "\n".join(f.location() + " " + f.rule for f in comparison.new)
            + "".join(f"\nstale: {s}" for s in comparison.stale)
        )

    def test_no_parse_errors_in_tree(self):
        assert run([SRC_REPRO]).parse_errors == []

    def test_baseline_has_no_determinism_or_atomic_io_debt(self):
        baseline = load(BASELINE)
        dirty = [
            (rule, path) for (rule, path) in baseline
            if rule.startswith("D") or rule == "F302"
        ]
        assert dirty == [], (
            "determinism/atomic-IO findings must be fixed, never "
            f"baselined: {dirty}"
        )


class TestInjectedViolationsAreCaught:
    def _scratch_avf(self, tmp_path, extra=""):
        scratch = tmp_path / "avf.py"
        scratch.write_text(
            (SRC_REPRO / "core" / "avf.py").read_text() + extra
        )
        return scratch

    def test_clean_copy_of_avf_has_no_findings(self, tmp_path):
        # the file's own D104 interning sites carry inline suppressions
        result = run([self._scratch_avf(tmp_path)])
        assert result.findings == []

    def test_injected_unseeded_rng_is_caught(self, tmp_path):
        scratch = self._scratch_avf(
            tmp_path,
            "\n\ndef _tainted_jitter():\n"
            "    return np.random.rand()\n",
        )
        findings = run([scratch]).findings
        assert [f.rule for f in findings] == ["D101"]
        assert "np.random.rand" in findings[0].message
        assert findings[0].snippet == "return np.random.rand()"

    def test_injected_wall_clock_needs_deterministic_scope(self, tmp_path):
        # dropped at tmp root the file has no scopes, so D102 stays quiet;
        # under a core/ directory (as in the real tree) it fires.
        taint = "\n\nimport time\n\ndef _stamp():\n    return time.time()\n"
        flat = self._scratch_avf(tmp_path, taint)
        assert run([flat]).findings == []

        core = tmp_path / "core"
        core.mkdir()
        nested = core / "avf.py"
        nested.write_text(flat.read_text())
        findings = run([tmp_path]).findings
        assert [(f.path, f.rule) for f in findings] == [
            ("core/avf.py", "D102")
        ]
