#!/usr/bin/env python
"""Condense pytest-benchmark JSON into the repo's BENCH_engine.json form.

pytest-benchmark's ``--benchmark-json`` output is large and machine-coupled;
the perf trajectory only needs per-bench min/mean seconds.  This tool
extracts them::

    python tools/bench_report.py run.json -o BENCH_engine.json

With ``--before`` it emits a before/after comparison (plus speedup ratios
computed on the min, the noise-robust statistic)::

    python tools/bench_report.py after.json --before before.json -o BENCH_engine.json

The output shape is stable::

    {"benches": {name: {"min": s, "mean": s}}}                      # single
    {"before": {...}, "after": {...}, "speedup_min": {name: x}}     # compared
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def condense(path: str) -> Dict[str, Dict[str, float]]:
    """Per-bench {min, mean} seconds from a pytest-benchmark JSON file."""
    with open(path) as fh:
        data = json.load(fh)
    return {
        b["name"]: {
            "min": b["stats"]["min"],
            "mean": b["stats"]["mean"],
        }
        for b in data["benchmarks"]
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("after", help="pytest-benchmark JSON file")
    parser.add_argument(
        "--before", default=None,
        help="optional baseline pytest-benchmark JSON to compare against",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="write here instead of stdout",
    )
    args = parser.parse_args(argv)

    after = condense(args.after)
    if args.before is None:
        payload = {"benches": after}
    else:
        before = condense(args.before)
        payload = {
            "before": before,
            "after": after,
            "speedup_min": {
                name: round(before[name]["min"] / stats["min"], 2)
                for name, stats in after.items()
                if name in before and stats["min"] > 0
            },
        }
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
