"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_mode, main
from repro.core import FaultMode


class TestParseMode:
    def test_linear(self):
        assert _parse_mode("3x1") == FaultMode.linear(3)

    def test_rect(self):
        assert _parse_mode("2x2") == FaultMode.rect(2, 2)

    def test_case_insensitive(self):
        assert _parse_mode("4X1") == FaultMode.linear(4)

    def test_bad_mode(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_mode("banana")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "minife" in out

    def test_run(self, capsys):
        assert main(["run", "vectoradd"]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "OK" in out

    def test_avf(self, capsys):
        assert main(
            ["avf", "vectoradd", "--structure", "l2", "--mode", "2x1",
             "--scheme", "parity"]
        ) == 0
        out = capsys.readouterr().out
        assert "DUE MB-AVF" in out
        assert "SDC MB-AVF" in out

    def test_avf_vgpr(self, capsys):
        assert main(
            ["avf", "vectoradd", "--structure", "vgpr", "--mode", "2x1",
             "--style", "inter_thread", "--factor", "2"]
        ) == 0
        assert "vgpr" in capsys.readouterr().out

    def test_ser(self, capsys):
        assert main(
            ["ser", "vectoradd", "--structure", "vgpr", "--scheme", "parity",
             "--style", "inter_thread", "--factor", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "SER" in out and "8x1" in out

    def test_inject(self, capsys):
        assert main(
            ["inject", "vectoradd", "--singles", "5", "--groups", "2",
             "--cus", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "SDC ACE bits" in out

    def test_mttf(self, capsys):
        assert main(["mttf"]) == 0
        assert "tMBF" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not-a-workload"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestCampaignRuntimeFlags:
    """The fault-tolerant runtime options on ``inject`` and ``campaign``."""

    def test_inject_isolated_with_resume(self, capsys, tmp_path):
        """The acceptance path: --jobs/--timeout/--retries/--resume end to
        end on an OpenCL-sample benchmark, then a resumed re-run."""
        journal = tmp_path / "campaign.jsonl"
        argv = [
            "inject", "transpose", "--singles", "4", "--groups", "2",
            "--cus", "1", "--jobs", "2", "--timeout", "60",
            "--retries", "1", "--resume", str(journal),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "SDC ACE bits" in first
        assert journal.exists() and journal.read_text().count("\n") >= 4
        # Everything is journaled now, so the re-run replays the journal.
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_campaign_subcommand(self, capsys, tmp_path):
        assert main(
            ["campaign", "transpose", "vectoradd", "--singles", "3",
             "--groups", "1", "--cus", "1",
             "--resume", str(tmp_path / "suite.jsonl")]
        ) == 0
        out = capsys.readouterr().out
        assert "benchmark: transpose" in out
        assert "benchmark: vectoradd" in out
        assert "total SDC ACE bits" in out

    def test_timeout_without_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["inject", "transpose", "--timeout", "5"])

    def test_negative_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["inject", "transpose", "--jobs", "-1"])

    def test_negative_retries_rejected(self):
        with pytest.raises(SystemExit):
            main(["inject", "transpose", "--retries", "-2"])

    def test_directory_journal_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["inject", "transpose", "--resume", str(tmp_path)])

    def test_campaign_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["campaign", "transpose", "not-a-benchmark"])
