"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  Simulations
are expensive relative to AVF measurements, so one `AvfStudy` per workload
is built lazily and shared across all benchmarks in the session.

Each benchmark writes its rows to ``benchmarks/results/<name>.txt`` (and to
stdout) so the regenerated tables survive pytest's output capture.
"""

import pathlib
from typing import Iterable

import pytest

from repro.experiments import StudyCache

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def study_of():
    """study_of(name) -> cached AvfStudy under the experiment config."""
    return StudyCache()


@pytest.fixture(scope="session")
def report():
    """report(name, lines): persist + print one experiment's output rows."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, lines: Iterable[str]) -> None:
        text = "\n".join(lines) + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        print(f"\n=== {name} ===")
        print(text)

    return _report
