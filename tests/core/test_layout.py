"""Unit tests for physical layouts and interleaving styles."""

import numpy as np
import pytest

from repro.core.layout import (
    Interleaving,
    build_cache_array,
    build_regfile_array,
    cache_byte_index,
    regfile_byte_index,
)


class TestIndexHelpers:
    def test_cache_byte_index(self):
        assert cache_byte_index(0, 0, 0, n_ways=4, line_bytes=64) == 0
        assert cache_byte_index(0, 1, 0, n_ways=4, line_bytes=64) == 64
        assert cache_byte_index(1, 0, 5, n_ways=4, line_bytes=64) == 4 * 64 + 5

    def test_regfile_byte_index(self):
        assert regfile_byte_index(0, 0, 0, n_regs=8) == 0
        assert regfile_byte_index(0, 1, 0, n_regs=8) == 4
        assert regfile_byte_index(1, 0, 2, n_regs=8) == 8 * 4 + 2


class TestCacheLayoutInvariants:
    @pytest.mark.parametrize(
        "style,factor",
        [
            (Interleaving.NONE, 1),
            (Interleaving.LOGICAL, 2),
            (Interleaving.LOGICAL, 4),
            (Interleaving.WAY_PHYSICAL, 2),
            (Interleaving.WAY_PHYSICAL, 4),
            (Interleaving.INDEX_PHYSICAL, 2),
            (Interleaving.INDEX_PHYSICAL, 4),
        ],
    )
    def test_complete_and_consistent(self, style, factor):
        n_sets, n_ways, line_bytes, domain_bytes = 8, 4, 64, 4
        arr = build_cache_array(
            n_sets, n_ways, line_bytes,
            domain_bytes=domain_bytes, style=style, factor=factor,
        )
        total_bits = n_sets * n_ways * line_bytes * 8
        assert arr.n_bits == total_bits
        # Every byte appears exactly 8 times (once per bit).
        counts = np.bincount(arr.byte_of.ravel())
        assert (counts == 8).all()
        assert len(counts) == n_sets * n_ways * line_bytes
        # Every domain appears exactly domain_bits times.
        dcounts = np.bincount(arr.domain_of.ravel())
        assert (dcounts == domain_bytes * 8).all()
        # Domain/byte maps agree with the domain-covers-consecutive-bytes rule.
        assert (arr.byte_of.ravel() // domain_bytes == arr.domain_of.ravel()).all()

    def test_no_interleave_adjacent_bits_same_domain(self):
        arr = build_cache_array(4, 2, 64, style=Interleaving.NONE)
        # Without interleaving, bits 0..31 of a row share a domain.
        assert len(set(arr.domain_of[0, :32].tolist())) == 1

    def test_x2_alternates_domains(self):
        arr = build_cache_array(
            4, 2, 64, style=Interleaving.LOGICAL, factor=2
        )
        row = arr.domain_of[0]
        # Adjacent bits belong to different domains within a cluster.
        assert row[0] != row[1]
        assert row[0] == row[2]

    def test_logical_keeps_bits_in_same_line(self):
        n_sets, n_ways, line_bytes = 4, 2, 64
        arr = build_cache_array(
            n_sets, n_ways, line_bytes, style=Interleaving.LOGICAL, factor=2
        )
        lines = arr.byte_of // line_bytes
        for r in range(arr.rows):
            assert len(set(lines[r].tolist())) == 1

    def test_way_physical_mixes_ways_not_sets(self):
        n_sets, n_ways, line_bytes = 4, 4, 64
        arr = build_cache_array(
            n_sets, n_ways, line_bytes, style=Interleaving.WAY_PHYSICAL, factor=2
        )
        line_of = arr.byte_of // line_bytes
        set_of = line_of // n_ways
        way_of = line_of % n_ways
        # Adjacent bits: same set, different way.
        assert (set_of[:, :-1] == set_of[:, 1:]).all()
        assert (way_of[0, 0] != way_of[0, 1])

    def test_index_physical_mixes_sets_not_ways(self):
        n_sets, n_ways, line_bytes = 4, 4, 64
        arr = build_cache_array(
            n_sets, n_ways, line_bytes, style=Interleaving.INDEX_PHYSICAL, factor=2
        )
        line_of = arr.byte_of // line_bytes
        set_of = line_of // n_ways
        way_of = line_of % n_ways
        assert (way_of[:, :-1] == way_of[:, 1:]).all()
        assert set_of[0, 0] != set_of[0, 1]
        # Indices in a cluster are adjacent.
        assert abs(int(set_of[0, 0]) - int(set_of[0, 1])) == 1

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            build_cache_array(4, 2, 64, style=Interleaving.WAY_PHYSICAL, factor=3)
        with pytest.raises(ValueError):
            build_cache_array(3, 2, 64, style=Interleaving.INDEX_PHYSICAL, factor=2)
        with pytest.raises(ValueError):
            build_cache_array(4, 2, 64, factor=0)

    def test_line_not_multiple_of_domain(self):
        with pytest.raises(ValueError):
            build_cache_array(4, 2, 62, domain_bytes=4)

    def test_regfile_style_rejected_for_cache(self):
        with pytest.raises(ValueError):
            build_cache_array(4, 2, 64, style=Interleaving.INTER_THREAD, factor=2)


class TestRegfileLayout:
    @pytest.mark.parametrize(
        "style,factor",
        [
            (Interleaving.NONE, 1),
            (Interleaving.INTRA_THREAD, 2),
            (Interleaving.INTRA_THREAD, 4),
            (Interleaving.INTER_THREAD, 2),
            (Interleaving.INTER_THREAD, 4),
        ],
    )
    def test_complete(self, style, factor):
        n_threads, n_regs = 16, 8
        arr = build_regfile_array(n_threads, n_regs, style=style, factor=factor)
        assert arr.n_bits == n_threads * n_regs * 32
        counts = np.bincount(arr.byte_of.ravel())
        assert (counts == 8).all()
        assert (arr.byte_of.ravel() // 4 == arr.domain_of.ravel()).all()

    def test_intra_thread_adjacency(self):
        arr = build_regfile_array(
            4, 4, style=Interleaving.INTRA_THREAD, factor=2
        )
        n_regs = 4
        thread_of = arr.domain_of // n_regs
        reg_of = arr.domain_of % n_regs
        # Adjacent bits: same thread, different register.
        assert (thread_of[:, :-1] == thread_of[:, 1:]).all()
        assert reg_of[0, 0] != reg_of[0, 1]

    def test_inter_thread_adjacency(self):
        arr = build_regfile_array(
            4, 4, style=Interleaving.INTER_THREAD, factor=2
        )
        n_regs = 4
        thread_of = arr.domain_of // n_regs
        reg_of = arr.domain_of % n_regs
        # Within a cluster: same register, different thread.  (Cluster
        # boundaries switch register, so only check inside the first cluster.)
        assert reg_of[0, 0] == reg_of[0, 1]
        assert thread_of[0, 0] != thread_of[0, 1]
        # A row only mixes threads from one thread-group.
        factor = 2
        assert len(set((thread_of[0] // factor).tolist())) == 1

    def test_group_count(self):
        arr = build_regfile_array(4, 4, style=Interleaving.INTER_THREAD, factor=2)
        # 2x1 groups per row = cols - 1.
        assert arr.n_groups(1, 2) == arr.rows * (arr.cols - 1)

    def test_cache_style_rejected_for_regfile(self):
        with pytest.raises(ValueError):
            build_regfile_array(4, 4, style=Interleaving.WAY_PHYSICAL, factor=2)

    def test_bad_factors(self):
        with pytest.raises(ValueError):
            build_regfile_array(4, 3, style=Interleaving.INTRA_THREAD, factor=2)
        with pytest.raises(ValueError):
            build_regfile_array(3, 4, style=Interleaving.INTER_THREAD, factor=2)
