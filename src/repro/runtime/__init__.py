"""Fault-tolerant campaign runtime.

Process-isolated task execution with wall-clock timeouts, bounded
retries, a structured outcome taxonomy, and a JSONL checkpoint journal
that makes long injection campaigns and AVF sweeps restartable.
"""

from .errors import (
    ExecutorError,
    InfraError,
    SimulationCrash,
    SimulationError,
    SimulationHang,
    TaskOutcome,
    classify_exception,
)
from .executor import Executor, Task, TaskResult, run_tasks
from .journal import Journal
from .retry import RetryPolicy

__all__ = [
    "Executor",
    "ExecutorError",
    "InfraError",
    "Journal",
    "RetryPolicy",
    "SimulationCrash",
    "SimulationError",
    "SimulationHang",
    "Task",
    "TaskOutcome",
    "TaskResult",
    "classify_exception",
    "run_tasks",
]
