"""Schema migrations: fresh create, reopen, concurrency, refusal."""

import sqlite3

import pytest

from repro.store import ResultStore
from repro.store.schema import (
    MIGRATIONS,
    SCHEMA_VERSION,
    migrate,
    schema_version,
)

from .conftest import avf_row


def _tables(conn):
    return {
        r[0] for r in conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        )
    }


class TestMigrate:
    def test_empty_database_is_version_zero(self):
        conn = sqlite3.connect(":memory:")
        assert schema_version(conn) == 0

    def test_fresh_migrate_reaches_current_version(self):
        conn = sqlite3.connect(":memory:")
        assert migrate(conn) == SCHEMA_VERSION
        assert schema_version(conn) == SCHEMA_VERSION
        assert {"meta", "avf_results", "injections", "mttf_rows",
                "campaigns"} <= _tables(conn)

    def test_migrate_is_idempotent(self):
        conn = sqlite3.connect(":memory:")
        migrate(conn)
        assert migrate(conn) == SCHEMA_VERSION

    def test_newer_schema_is_refused(self, store_path):
        # A database stamped by a future build must not be misread.
        ResultStore(store_path).close()
        conn = sqlite3.connect(store_path)
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(RuntimeError, match="upgrade the code"):
            ResultStore(store_path)

    def test_migrations_are_append_only_and_versioned(self):
        assert SCHEMA_VERSION == len(MIGRATIONS)
        assert SCHEMA_VERSION >= 1


class TestOpen:
    def test_directory_path_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="directory"):
            ResultStore(tmp_path)

    def test_parent_directories_are_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "results.sqlite"
        with ResultStore(path) as store:
            assert store.integrity_check() == "ok"
        assert path.exists()

    def test_wal_mode_is_active(self, store):
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert str(mode).lower() == "wal"

    def test_rows_survive_reopen(self, store_path):
        with ResultStore(store_path) as store:
            store.put_avf_rows([avf_row()])
        with ResultStore(store_path) as store:
            assert len(store.query()) == 1
            assert store.schema_version == SCHEMA_VERSION

    def test_racing_opens_migrate_once(self, store_path):
        # Two handles on the same fresh file: the loser of the migration
        # race sees the bumped version and does nothing.
        a = ResultStore(store_path)
        b = ResultStore(store_path)
        try:
            a.put_avf_rows([avf_row()])
            assert len(b.query()) == 1
        finally:
            a.close()
            b.close()

    def test_summary_counts(self, store):
        store.put_avf_rows(
            [avf_row(), avf_row(workload="transpose", structure="vgpr")]
        )
        info = store.summary()
        assert info["avf_results"] == 2
        assert info["injections"] == 0
        assert info["workloads"] == ["matmul", "transpose"]
        assert info["structures"] == ["l1", "vgpr"]
        assert info["schema_version"] == SCHEMA_VERSION
