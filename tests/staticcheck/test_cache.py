"""Incremental-cache, --changed closure and SARIF reporter tests."""

import json
import subprocess

import pytest

from repro.staticcheck.cli import changed_relpaths, main
from repro.staticcheck.engine import run
from repro.staticcheck.reporters import render_json, render_sarif

BAD_SET = "def f(values):\n    for v in {1, 2}:\n        values.append(v)\n"
CLEAN = "def g():\n    return 3\n"


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "dirty.py").write_text(BAD_SET)
    (tmp_path / "src" / "clean.py").write_text(CLEAN)
    return tmp_path / "src"


class TestLintCache:
    def test_second_run_hits_for_every_file(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        cold = run([tree], cache_path=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        warm = run([tree], cache_path=cache)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)

    def test_edit_invalidates_only_that_file(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        run([tree], cache_path=cache)
        (tree / "clean.py").write_text(CLEAN + "\n# touched\n")
        res = run([tree], cache_path=cache)
        assert (res.cache_hits, res.cache_misses) == (1, 1)

    def test_cached_findings_identical_to_cold(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        cold = run([tree], cache_path=cache)
        warm = run([tree], cache_path=cache)
        assert warm.findings == cold.findings

    def test_corrupt_cache_ignored_and_rebuilt(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        run([tree], cache_path=cache)
        cache.write_text("{ not json !")
        res = run([tree], cache_path=cache)
        assert res.cache_misses == 2
        assert json.loads(cache.read_text())  # rebuilt, loadable again
        assert run([tree], cache_path=cache).cache_hits == 2

    def test_warm_and_cold_reports_byte_identical(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        cold = render_json(run([tree], cache_path=cache))
        warm = render_json(run([tree], cache_path=cache))
        assert warm == cold

    def test_parse_error_survives_the_cache(self, tree, tmp_path):
        (tree / "broken.py").write_text("def oops(:\n")
        cache = tmp_path / "cache.json"
        cold = run([tree], cache_path=cache)
        warm = run([tree], cache_path=cache)
        assert cold.parse_errors == warm.parse_errors == ["broken.py"]
        assert [f.rule for f in warm.findings if f.path == "broken.py"] == [
            "E001"
        ]


class TestParallel:
    def test_pool_matches_serial(self, tree):
        serial = run([tree])
        pooled = run([tree], jobs=2)
        assert pooled.findings == serial.findings


class TestChangedClosure:
    def _tree(self, tmp_path):
        root = tmp_path / "src"
        root.mkdir()
        (root / "base.py").write_text(BAD_SET)
        (root / "top.py").write_text("import base\n" + BAD_SET)
        return root

    def test_changed_leaf_pulls_in_importers(self, tmp_path):
        root = self._tree(tmp_path)
        res = run([root], changed={"base.py"})
        assert sorted({f.path for f in res.findings}) == [
            "base.py", "top.py",
        ]

    def test_changed_root_stays_alone(self, tmp_path):
        root = self._tree(tmp_path)
        res = run([root], changed={"top.py"})
        assert sorted({f.path for f in res.findings}) == ["top.py"]

    def test_empty_changed_set_reports_nothing(self, tmp_path):
        root = self._tree(tmp_path)
        res = run([root], changed=set())
        assert res.findings == []
        assert res.index_files == 2  # index still built over everything


class TestChangedRelpathsGit:
    def test_maps_git_paths_into_lint_relpaths(self, tmp_path, monkeypatch):
        def git(*args):
            subprocess.run(
                ["git", *args], cwd=tmp_path, check=True,
                capture_output=True,
            )

        git("init", "-q")
        git("config", "user.email", "t@example.com")
        git("config", "user.name", "t")
        pkg = tmp_path / "src" / "pkg"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text(CLEAN)
        (pkg / "b.py").write_text(CLEAN)
        git("add", ".")
        git("commit", "-q", "-m", "seed")
        (pkg / "a.py").write_text(BAD_SET)   # modified
        (pkg / "c.py").write_text(CLEAN)     # untracked
        monkeypatch.chdir(tmp_path)
        assert changed_relpaths([pkg.parent]) == {"pkg/a.py", "pkg/c.py"}
        assert changed_relpaths([pkg / "a.py"]) == {"a.py"}

    def test_outside_a_repo_returns_none(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path))
        assert changed_relpaths([tmp_path]) is None


class TestSarifReporter:
    def test_sarif_structure(self, fixture_result):
        log = json.loads(render_sarif(fixture_result))
        assert log["version"] == "2.1.0"
        runs = log["runs"]
        assert len(runs) == 1
        driver = runs[0]["tool"]["driver"]
        assert driver["name"] == "repro.staticcheck"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert len(rule_ids) == len(set(rule_ids))
        assert "C601" in rule_ids and "D101" in rule_ids
        assert "E001" in rule_ids  # synthetic parse-error rule

    def test_results_carry_locations_and_rule_index(self, fixture_result):
        log = json.loads(render_sarif(fixture_result))
        sarif_run = log["runs"][0]
        results = sarif_run["results"]
        assert len(results) == len(fixture_result.findings)
        rules = sarif_run["tool"]["driver"]["rules"]
        for res in results:
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"]
            assert loc["region"]["startLine"] >= 1
            assert loc["region"]["startColumn"] >= 1
            assert rules[res["ruleIndex"]]["id"] == res["ruleId"]

    def test_cli_format_sarif(self, tree, capsys):
        assert main([str(tree), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "D103"
