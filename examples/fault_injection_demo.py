"""Fault-injection campaign demo (paper Sec. VII-A / Table II, miniature).

Injects random single-bit transient faults into the vector register file of
a running kernel, identifies the SDC ACE bits (injections that corrupt the
program output), then injects multi-bit faults on groups containing those
bits to look for ACE interference — cases where the extra flips cancel the
corruption.  The paper (and this reproduction) finds interference is rare,
which is what licenses estimating SDC MB-AVF from single-bit ACE analysis.

Run with:  python examples/fault_injection_demo.py
"""

from repro.faultinject import run_campaign


def main() -> None:
    campaign = run_campaign(
        "transpose", n_single=40, modes=(2, 3, 4), max_groups_per_mode=10,
    )
    print(f"benchmark: {campaign.benchmark}")
    print(f"single-bit injections: {campaign.n_single_injections}")
    for outcome, count in sorted(campaign.single_outcomes.items()):
        print(f"  {outcome:<8} {count}")
    print(f"SDC ACE bits identified: {campaign.n_sdc_ace_bits}")
    print("\nmulti-bit groups built from SDC ACE bits + adjacent bits:")
    print(f"{'mode':<6} {'injected':>9} {'ACE interference':>17}")
    for m, (injected, interfering) in sorted(campaign.multibit.items()):
        print(f"{m}x1    {injected:9d} {interfering:17d}")
    total = sum(n for n, _ in campaign.multibit.values())
    inter = campaign.interference_total()
    if total:
        print(f"\ninterference rate: {inter}/{total} "
              f"({inter / total:.1%}) — the paper reports ~0.1%")


if __name__ == "__main__":
    main()
