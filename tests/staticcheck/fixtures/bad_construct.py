"""O403 fixture: direct registry/tracer construction outside repro.obs."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def silo():
    reg = MetricsRegistry()
    tr = Tracer()
    return reg, tr
