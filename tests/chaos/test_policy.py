"""Unit tests for the deterministic chaos decision engine."""

import time

import pytest

from repro.runtime import (
    CampaignInterrupted,
    ChaosError,
    ChaosPolicy,
    ChaosSpec,
    InfraError,
    JournalRecordError,
    JournalWriteError,
    TaskResult,
)
from repro.runtime.chaos import (
    EXECUTOR_POINTS,
    JOURNAL_POINTS,
    SERVICE_POINTS,
    STORE_POINTS,
    apply_worker_action,
)

from .conftest import CHAOS_SEED


class TestChaosSpec:
    def test_defaults_are_all_off(self):
        spec = ChaosSpec()
        assert all(
            getattr(spec, p) == 0.0
            for p in EXECUTOR_POINTS + JOURNAL_POINTS
        )

    def test_from_string_round_trip(self):
        spec = ChaosSpec.from_string(
            "worker_crash=0.2, journal_corrupt=0.1,slow_seconds=0.5"
        )
        assert spec.worker_crash == 0.2
        assert spec.journal_corrupt == 0.1
        assert spec.slow_seconds == 0.5
        assert spec.worker_hang == 0.0

    def test_from_string_empty_means_no_chaos(self):
        assert ChaosSpec.from_string("") == ChaosSpec()

    def test_from_string_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="known points"):
            ChaosSpec.from_string("warp_drive=0.5")

    def test_from_string_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            ChaosSpec.from_string("worker_crash=often")

    def test_probability_bounds_validated(self):
        with pytest.raises(ValueError):
            ChaosSpec(worker_crash=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(journal_eio=-0.1)
        with pytest.raises(ValueError):
            ChaosSpec(slow_seconds=-1.0)

    def test_to_dict_covers_every_field(self):
        d = ChaosSpec().to_dict()
        assert set(EXECUTOR_POINTS + JOURNAL_POINTS) <= set(d)
        assert "slow_seconds" in d


class TestChaosPolicyDeterminism:
    def test_same_seed_same_schedule(self):
        spec = ChaosSpec(worker_crash=0.5, journal_corrupt=0.5)
        a = ChaosPolicy(spec, seed=CHAOS_SEED)
        b = ChaosPolicy(spec, seed=CHAOS_SEED)
        for i in range(50):
            for attempt in (1, 2, 3):
                assert a.task_action(f"t{i}", attempt) == b.task_action(
                    f"t{i}", attempt
                )
            assert a.journal_action(f"t{i}") == b.journal_action(f"t{i}")

    def test_different_seeds_differ_somewhere(self):
        spec = ChaosSpec(worker_crash=0.5)
        a = ChaosPolicy(spec, seed=CHAOS_SEED)
        b = ChaosPolicy(spec, seed=CHAOS_SEED + 1)
        assert any(
            a.task_action(f"t{i}", 1) != b.task_action(f"t{i}", 1)
            for i in range(64)
        )

    def test_zero_probability_never_fires(self):
        policy = ChaosPolicy(ChaosSpec(), seed=CHAOS_SEED)
        for i in range(64):
            assert policy.task_action(f"t{i}", 1) is None
            assert policy.journal_action(f"t{i}") is None

    def test_certain_probability_always_fires(self):
        policy = ChaosPolicy(ChaosSpec(worker_crash=1.0), seed=CHAOS_SEED)
        for i in range(16):
            assert policy.task_action(f"t{i}", 1) == ("crash", 0.0)

    def test_retries_roll_fresh_dice(self):
        """Executor decisions are keyed on (task id, attempt): the same
        task must both fire and not fire across enough attempts, which is
        what lets chaos campaigns converge to the fault-free result."""
        policy = ChaosPolicy(ChaosSpec(worker_crash=0.5), seed=CHAOS_SEED)
        fired = {
            policy.task_action("stable-id", attempt) is not None
            for attempt in range(1, 65)
        }
        assert fired == {True, False}

    def test_journal_decisions_keyed_per_task(self):
        """Journal faults replay for the same task id — the reason a
        resumed campaign must drop its chaos flags."""
        policy = ChaosPolicy(
            ChaosSpec(journal_enospc=0.5), seed=CHAOS_SEED
        )
        for i in range(16):
            first = policy.journal_action(f"t{i}")
            assert all(
                policy.journal_action(f"t{i}") == first for _ in range(3)
            )


class TestChaosPriorities:
    def test_harsher_executor_fault_wins(self):
        spec = ChaosSpec(
            worker_crash=1.0, worker_hang=1.0, task_error=1.0, slow_task=1.0
        )
        policy = ChaosPolicy(spec, seed=CHAOS_SEED)
        assert policy.task_action("t", 1) == ("crash", 0.0)

    def test_harsher_journal_fault_wins(self):
        spec = ChaosSpec(
            journal_enospc=1.0, journal_eio=1.0,
            journal_truncate=1.0, journal_corrupt=1.0,
        )
        policy = ChaosPolicy(spec, seed=CHAOS_SEED)
        assert policy.journal_action("t") == "journal_enospc"

    def test_slow_action_carries_duration(self):
        policy = ChaosPolicy(
            ChaosSpec(slow_task=1.0, slow_seconds=0.25), seed=CHAOS_SEED
        )
        assert policy.task_action("t", 1) == ("slow", 0.25)


class TestServiceAndStorePoints:
    def test_defaults_are_all_off(self):
        spec = ChaosSpec()
        assert all(
            getattr(spec, p) == 0.0
            for p in SERVICE_POINTS + STORE_POINTS
        )

    def test_from_string_accepts_service_and_store_points(self):
        spec = ChaosSpec.from_string(
            "request_oversized=0.2,store_locked=0.3,"
            "slow_request_seconds=0.05"
        )
        assert spec.request_oversized == 0.2
        assert spec.store_locked == 0.3
        assert spec.slow_request_seconds == 0.05

    def test_request_action_deterministic(self):
        spec = ChaosSpec(
            request_oversized=0.3, request_malformed=0.3, request_slow=0.3
        )
        a = ChaosPolicy(spec, seed=CHAOS_SEED)
        b = ChaosPolicy(spec, seed=CHAOS_SEED)
        for seq in range(50):
            assert a.request_action("n0", seq) == b.request_action(
                "n0", seq
            )

    def test_request_action_harsher_fault_wins(self):
        spec = ChaosSpec(
            request_oversized=1.0, request_malformed=1.0,
            request_slow=1.0, slow_request_seconds=0.1,
        )
        policy = ChaosPolicy(spec, seed=CHAOS_SEED)
        assert policy.request_action("n0", 0) == ("oversized", 0.0)

    def test_request_slow_carries_duration(self):
        policy = ChaosPolicy(
            ChaosSpec(request_slow=1.0, slow_request_seconds=0.07),
            seed=CHAOS_SEED,
        )
        assert policy.request_action("n0", 0) == ("slow", 0.07)

    def test_store_locked_rolls_fresh_dice_per_attempt(self):
        """Lock contention is keyed (txn, attempt) so a bounded retry
        can actually make progress — the same txn must both collide and
        not collide across enough attempts."""
        policy = ChaosPolicy(ChaosSpec(store_locked=0.5), seed=CHAOS_SEED)
        fired = {
            policy.store_locked_active(7, attempt)
            for attempt in range(64)
        }
        assert fired == {True, False}

    def test_store_enospc_replays_per_txn(self):
        """A full disk does not empty itself between attempts: the
        decision is keyed on the txn alone and replays identically."""
        policy = ChaosPolicy(ChaosSpec(store_enospc=0.5), seed=CHAOS_SEED)
        for seq in range(16):
            first = policy.store_enospc_active(seq)
            assert all(
                policy.store_enospc_active(seq) == first for _ in range(3)
            )


class TestApplyWorkerAction:
    def test_none_is_a_no_op(self):
        assert apply_worker_action(None) is None

    def test_error_raises_chaos_error(self):
        with pytest.raises(ChaosError):
            apply_worker_action(("error", 0.0))

    def test_slow_sleeps_then_returns(self):
        t0 = time.monotonic()
        apply_worker_action(("slow", 0.01))
        assert time.monotonic() - t0 >= 0.01


class TestErrorTaxonomy:
    """The new error types slot into the hierarchies callers already
    catch: chaos failures are infra failures, write failures are OSErrors,
    a drain is an interrupt."""

    def test_chaos_error_is_infra(self):
        assert issubclass(ChaosError, InfraError)

    def test_journal_write_error_is_os_error(self):
        assert issubclass(JournalWriteError, OSError)

    def test_campaign_interrupted_is_keyboard_interrupt(self):
        assert issubclass(CampaignInterrupted, KeyboardInterrupt)
        stop = CampaignInterrupted(3, 10, journal_path="j.jsonl")
        assert stop.completed == 3
        assert stop.total == 10
        assert stop.journal_path == "j.jsonl"

    def test_journal_record_error_is_value_error(self):
        assert issubclass(JournalRecordError, ValueError)

    def test_from_record_wraps_bare_exceptions(self):
        with pytest.raises(JournalRecordError):
            TaskResult.from_record({})
        with pytest.raises(JournalRecordError):
            TaskResult.from_record({"task": "a", "outcome": 7})
        with pytest.raises(JournalRecordError):
            TaskResult.from_record(
                {"task": "a", "outcome": "ok", "attempts": "many"}
            )
