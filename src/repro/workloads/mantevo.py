"""Mantevo-style mini-apps: MiniFE (CG solver) and CoMD (MD force loop).

``minife`` mirrors the structure of the Mantevo finite-element mini-app the
paper uses for its phase studies (Fig. 5/8): a conjugate-gradient solve over
a 5-point Laplacian in ELL format, built from many small kernels (spmv, dot
products, scalar division, axpy) whose alternation produces the distinct
cache-usage phases the paper observes.

``comd`` is a molecular-dynamics force loop: each thread owns a particle and
accumulates a cutoff-limited pair force over all others (O(N^2), the CoMD
reference kernel shape), then integrates positions.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..arch.gpu import Apu
from ..arch.isa import ProgramBuilder, fimm, imm, s, v
from ..arch.memory import GlobalMemory
from .base import Workload
from .util import addr_of, addr_of_tid

__all__ = ["MiniFe", "CoMD"]


def _emit_butterfly_fadd(p: ProgramBuilder, acc, tmp) -> None:
    for step in (1, 2, 4, 8):
        p.shuffle_xor(tmp, acc, step)
        p.fadd(acc, acc, tmp)


def _butterfly_ref(vals: np.ndarray) -> np.float32:
    acc = vals.astype(np.float32).copy()
    lanes = np.arange(16)
    for step in (1, 2, 4, 8):
        acc = acc + acc[lanes ^ step]
    return acc[0]


class MiniFe(Workload):
    """Conjugate-gradient solve of a 16x16 5-point Laplacian (3 iterations)."""

    name = "minife"
    outputs = ("x",)
    GRID = 16
    ELL = 5
    ITERS = 3

    # -- problem assembly --------------------------------------------------

    def setup(self, mem: GlobalMemory) -> None:
        g = self.GRID
        n = g * g
        self.n = n
        cols = np.zeros((n, self.ELL), dtype=np.uint32)
        vals = np.zeros((n, self.ELL), dtype=np.float32)
        for r in range(g):
            for c in range(g):
                i = r * g + c
                cols[i, 0], vals[i, 0] = i, 4.0
                k = 1
                for rr, cc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1)):
                    if 0 <= rr < g and 0 <= cc < g:
                        cols[i, k], vals[i, k] = rr * g + cc, -1.0
                    else:
                        cols[i, k], vals[i, k] = i, 0.0  # padding
                    k += 1
        self.cols, self.vals = cols, vals
        self.b = self.rng.random(n, dtype=np.float32)
        self.base_cols = mem.alloc("cols", n * self.ELL * 4)
        self.base_vals = mem.alloc("vals", n * self.ELL * 4)
        self.base_b = mem.alloc("b", n * 4)
        self.base_x = mem.alloc("x", n * 4)
        self.base_r = mem.alloc("r", n * 4)
        self.base_p = mem.alloc("pvec", n * 4)
        self.base_ap = mem.alloc("ap", n * 4)
        self.base_partials = mem.alloc("partials", (n // 16) * 4)
        # scal: [0]=rr, [1]=pap, [2]=alpha, [3]=rrnew, [4]=beta
        self.base_scal = mem.alloc("scal", 5 * 4)
        mem.view_u32("cols")[:] = cols.ravel()
        mem.view_f32("vals")[:] = vals.ravel()
        mem.view_f32("b")[:] = self.b

    # -- kernels ---------------------------------------------------------------

    def _init_kernel(self) -> ProgramBuilder:
        # x = 0; r = b; p = b.  args: s2=b s3=x s4=r s5=p
        p = ProgramBuilder()
        addr_of_tid(p, s(2), v(2))
        p.load(v(3), v(2))
        addr_of_tid(p, s(3), v(4))
        p.store(imm(0), v(4))
        addr_of_tid(p, s(4), v(5))
        p.store(v(3), v(5))
        addr_of_tid(p, s(5), v(6))
        p.store(v(3), v(6))
        return p

    def _spmv_kernel(self) -> ProgramBuilder:
        # ap[i] = sum_k vals[i,k] * p[cols[i,k]].  args: s2=cols s3=vals s4=p s5=ap
        p = ProgramBuilder()
        p.imul(v(2), v(0), imm(self.ELL))
        addr_of(p, s(2), v(2), v(3))
        addr_of(p, s(3), v(2), v(4))
        p.mov(v(5), fimm(0.0))
        for k in range(self.ELL):
            p.load(v(6), v(3), offset=k * 4)      # column index
            p.load(v(7), v(4), offset=k * 4)      # matrix value
            addr_of(p, s(4), v(6), v(8))
            p.load(v(9), v(8))                    # p[col]
            p.fmac(v(5), v(7), v(9))
        addr_of_tid(p, s(5), v(10))
        p.store(v(5), v(10))
        return p

    def _dot_partial_kernel(self) -> ProgramBuilder:
        # partials[wf] = sum over wavefront of u[i]*w[i].  args: s2=u s3=w s4=partials
        p = ProgramBuilder()
        addr_of_tid(p, s(2), v(2))
        p.load(v(3), v(2))
        addr_of_tid(p, s(3), v(4))
        p.load(v(5), v(4))
        p.fmul(v(6), v(3), v(5))
        _emit_butterfly_fadd(p, v(6), v(7))
        p.mov(v(8), s(0))
        addr_of(p, s(4), v(8), v(9))
        p.cmp("eq", v(1), imm(0))
        p.store(v(6), v(9), pred=True)
        return p

    def _dot_final_kernel(self) -> ProgramBuilder:
        # *dst = sum(partials).  args: s2=partials s3=dst address
        p = ProgramBuilder()
        addr_of_tid(p, s(2), v(2))
        p.load(v(3), v(2))
        _emit_butterfly_fadd(p, v(3), v(4))
        p.mov(v(5), s(3))
        p.cmp("eq", v(1), imm(0))
        p.store(v(3), v(5), pred=True)
        return p

    def _div_kernel(self) -> ProgramBuilder:
        # *dst = *num / *den.  args: s2=&num s3=&den s4=&dst
        p = ProgramBuilder()
        p.mov(v(2), s(2))
        p.load(v(3), v(2))
        p.mov(v(4), s(3))
        p.load(v(5), v(4))
        p.frcp(v(6), v(5))
        p.fmul(v(6), v(6), v(3))
        p.mov(v(7), s(4))
        p.cmp("eq", v(1), imm(0))
        p.store(v(6), v(7), pred=True)
        return p

    def _copy_scalar_kernel(self) -> ProgramBuilder:
        # *dst = *src.  args: s2=&src s3=&dst
        p = ProgramBuilder()
        p.mov(v(2), s(2))
        p.load(v(3), v(2))
        p.mov(v(4), s(3))
        p.cmp("eq", v(1), imm(0))
        p.store(v(3), v(4), pred=True)
        return p

    def _axpy_kernel(self, op: str) -> ProgramBuilder:
        """args: s2=dst vec, s3=other vec, s4=&scalar.

        op 'x+ap': dst += scalar*other;  op 'r-aq': dst -= scalar*other;
        op 'p=r+bp': dst = other + scalar*dst.
        """
        p = ProgramBuilder()
        p.mov(v(2), s(4))
        p.load(v(3), v(2))                    # scalar
        addr_of_tid(p, s(2), v(4))
        p.load(v(5), v(4))                    # dst element
        addr_of_tid(p, s(3), v(6))
        p.load(v(7), v(6))                    # other element
        if op == "x+ap":
            p.fmac(v(5), v(3), v(7))
            p.store(v(5), v(4))
        elif op == "r-aq":
            p.fmul(v(8), v(3), v(7))
            p.fsub(v(5), v(5), v(8))
            p.store(v(5), v(4))
        elif op == "p=r+bp":
            p.fmul(v(8), v(3), v(5))
            p.fadd(v(8), v(8), v(7))
            p.store(v(8), v(4))
        else:  # pragma: no cover
            raise ValueError(op)
        return p

    # -- driver -------------------------------------------------------------

    def launch(self, apu: Apu) -> None:
        n = self.n
        scal = self.base_scal
        rr_a, pap_a, alpha_a = scal, scal + 4, scal + 8
        rrnew_a, beta_a = scal + 12, scal + 16
        init = self._init_kernel().build()
        spmv = self._spmv_kernel().build()
        dot_p = self._dot_partial_kernel().build()
        dot_f = self._dot_final_kernel().build()
        div = self._div_kernel().build()
        cpy = self._copy_scalar_kernel().build()
        ax_x = self._axpy_kernel("x+ap").build()
        ax_r = self._axpy_kernel("r-aq").build()
        ax_p = self._axpy_kernel("p=r+bp").build()

        def dot(u: int, w: int, dst: int, tag: str) -> None:
            apu.launch(dot_p, n, [u, w, self.base_partials],
                       name=f"{self.name}.dotp.{tag}")
            apu.launch(dot_f, 16, [self.base_partials, dst],
                       name=f"{self.name}.dotf.{tag}")

        apu.launch(init, n, [self.base_b, self.base_x, self.base_r, self.base_p],
                   name=f"{self.name}.init")
        dot(self.base_r, self.base_r, rr_a, "rr0")
        for it in range(self.ITERS):
            apu.launch(spmv, n, [self.base_cols, self.base_vals, self.base_p,
                                 self.base_ap], name=f"{self.name}.spmv{it}")
            dot(self.base_p, self.base_ap, pap_a, f"pap{it}")
            apu.launch(div, 16, [rr_a, pap_a, alpha_a],
                       name=f"{self.name}.alpha{it}")
            apu.launch(ax_x, n, [self.base_x, self.base_p, alpha_a],
                       name=f"{self.name}.xupd{it}")
            apu.launch(ax_r, n, [self.base_r, self.base_ap, alpha_a],
                       name=f"{self.name}.rupd{it}")
            dot(self.base_r, self.base_r, rrnew_a, f"rr{it}")
            apu.launch(div, 16, [rrnew_a, rr_a, beta_a],
                       name=f"{self.name}.beta{it}")
            apu.launch(cpy, 16, [rrnew_a, rr_a], name=f"{self.name}.rrcp{it}")
            apu.launch(ax_p, n, [self.base_p, self.base_r, beta_a],
                       name=f"{self.name}.pupd{it}")

    # -- reference -----------------------------------------------------------

    def _dot_ref(self, u: np.ndarray, w: np.ndarray) -> np.float32:
        prod = (u * w).astype(np.float32)
        partials = np.array(
            [_butterfly_ref(prod[k * 16 : (k + 1) * 16])
             for k in range(self.n // 16)],
            dtype=np.float32,
        )
        return _butterfly_ref(partials)

    def expected(self) -> Dict[str, np.ndarray]:
        one = np.float32(1.0)
        x = np.zeros(self.n, dtype=np.float32)
        r = self.b.copy()
        pv = self.b.copy()
        rr = self._dot_ref(r, r)
        for _ in range(self.ITERS):
            ap = np.zeros(self.n, dtype=np.float32)
            for k in range(self.ELL):
                ap = ap + self.vals[:, k] * pv[self.cols[:, k]]
            pap = self._dot_ref(pv, ap)
            alpha = np.float32(one / pap) * rr
            x = x + alpha * pv
            r = r - alpha * ap
            rrnew = self._dot_ref(r, r)
            beta = np.float32(one / rr) * rrnew
            rr = rrnew
            pv = r + beta * pv
        return {"x": x}


class CoMD(Workload):
    """O(N^2) cutoff pair-force molecular dynamics, 64 particles, 2 steps."""

    name = "comd"
    outputs = ("px", "py", "pz")
    N = 64
    EPS = 0.01
    CUTOFF2 = 4.0
    DT = 0.001

    def setup(self, mem: GlobalMemory) -> None:
        n = self.N
        self.pos = (self.rng.random((3, n), dtype=np.float32) * 4).astype(
            np.float32
        )
        names = ["px", "py", "pz", "fx", "fy", "fz"]
        self.bases = {nm: mem.alloc(nm, n * 4) for nm in names}
        for axis, nm in enumerate(("px", "py", "pz")):
            mem.view_f32(nm)[:] = self.pos[axis]

    def _force_kernel(self) -> ProgramBuilder:
        # args: s2..s4 = px,py,pz; s5..s7 = fx,fy,fz
        p = ProgramBuilder()
        for axis in range(3):
            addr_of_tid(p, s(2 + axis), v(14))
            p.load(v(2 + axis), v(14))        # own coordinates v2..v4
            p.mov(v(5 + axis), fimm(0.0))     # force acc v5..v7
        p.s_mov(s(10), imm(0))
        p.label("j")
        p.mov(v(16), s(10))
        for axis in range(3):
            addr_of(p, s(2 + axis), v(16), v(14))
            p.load(v(17), v(14))              # other coordinate
            p.fsub(v(8 + axis), v(17), v(2 + axis))  # dx,dy,dz in v8..v10
        p.fmul(v(11), v(8), v(8))
        p.fmac(v(11), v(9), v(9))
        p.fmac(v(11), v(10), v(10))
        p.fadd(v(11), v(11), fimm(self.EPS))  # r2 (softened)
        p.frcp(v(12), v(11))
        p.fmul(v(12), v(12), v(12))           # simplified repulsive kernel
        p.fcmp("lt", v(11), fimm(self.CUTOFF2))
        for axis in range(3):
            p.fmul(v(13), v(12), v(8 + axis))
            p.cndmask(v(13), v(13), fimm(0.0))
            p.fadd(v(5 + axis), v(5 + axis), v(13))
        p.s_iadd(s(10), s(10), imm(1))
        p.s_cmp("lt", s(10), imm(self.N))
        p.cbranch("j")
        for axis in range(3):
            addr_of_tid(p, s(5 + axis), v(14))
            p.store(v(5 + axis), v(14))
        return p

    def _update_kernel(self) -> ProgramBuilder:
        # pos += dt * force.  args: s2..s4 = px..pz, s5..s7 = fx..fz
        p = ProgramBuilder()
        for axis in range(3):
            addr_of_tid(p, s(2 + axis), v(14))
            p.load(v(2), v(14))
            addr_of_tid(p, s(5 + axis), v(15))
            p.load(v(3), v(15))
            p.fmac(v(2), v(3), fimm(self.DT))
            p.store(v(2), v(14))
        return p

    def launch(self, apu: Apu) -> None:
        force = self._force_kernel().build()
        update = self._update_kernel().build()
        args = [self.bases[nm] for nm in ("px", "py", "pz", "fx", "fy", "fz")]
        for step in range(2):
            apu.launch(force, self.N, args, name=f"{self.name}.force{step}")
            apu.launch(update, self.N, args, name=f"{self.name}.move{step}")

    def expected(self) -> Dict[str, np.ndarray]:
        pos = self.pos.copy()
        eps = np.float32(self.EPS)
        cut = np.float32(self.CUTOFF2)
        dt = np.float32(self.DT)
        one = np.float32(1.0)
        zero = np.float32(0.0)
        for _ in range(2):
            f = np.zeros_like(pos)
            for j in range(self.N):
                d = pos[:, j : j + 1] - pos
                r2 = d[0] * d[0]
                r2 = r2 + d[1] * d[1]
                r2 = r2 + d[2] * d[2]
                r2 = r2 + eps
                sj = one / r2
                sj = sj * sj
                m = r2 < cut
                for axis in range(3):
                    f[axis] = f[axis] + np.where(m, sj * d[axis], zero)
            pos = pos + f * dt
        return {nm: pos[a] for a, nm in enumerate(("px", "py", "pz"))}
