"""Observability-discipline rules (family O).

``repro.obs`` keeps its < 2% disabled-overhead contract only while
instrumented code follows the pattern PR 2 established: spans are
context-managed (so an exception can never leak an open span and skew
every enclosing duration), metric names are globally consistent, and
collection objects are only created by :mod:`repro.obs` itself — code
elsewhere must go through the ``get_metrics()``/``get_tracer()`` no-op
singletons.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from ..astutil import dotted_name, resolve_call
from ..findings import Finding, Module, Rule
from ..registry import register

__all__ = ["SpanContext", "MetricNameCollision", "DirectObsConstruction"]


def _is_tracer_receiver(func: ast.Attribute, module: Module) -> bool:
    """Whether ``<recv>.span(...)`` plausibly targets a tracer.

    Heuristic: the receiver is a ``get_tracer()`` call, or a name/attr
    whose final segment mentions ``tracer``.  This keeps the rule away
    from unrelated ``span`` methods (e.g. ``IntervalSet.span()``), whose
    call sites take no arguments anyway.
    """
    recv = func.value
    if isinstance(recv, ast.Call):
        name = resolve_call(recv, module.aliases)
        return name is not None and name.rpartition(".")[2] == "get_tracer"
    name = dotted_name(recv)
    if name is None:
        return False
    return "tracer" in name.rpartition(".")[2].lower()


@register
class SpanContext(Rule):
    code = "O401"
    slug = "span-context"
    family = "obs"
    summary = (
        "tracer span opened without a with-statement (no guaranteed "
        "close on exceptions)"
    )
    rationale = (
        "A span that is entered but never exited corrupts the tracer's "
        "depth counter, mis-nests every later span and leaks the open "
        "duration into enclosing stages.  `with tracer.span(...)` "
        "closes on every path, including exceptions."
    )
    scope = None

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and _is_tracer_receiver(node.func, module)
            ):
                continue
            parent = module.parent(node)
            if isinstance(parent, (ast.withitem, ast.Return)):
                continue
            yield module.finding(
                node, self.code,
                "tracer span not used as a context manager; write "
                "`with ....span(...):` so it closes on every exit path",
            )


@register
class MetricNameCollision(Rule):
    code = "O402"
    slug = "metric-name-collision"
    family = "obs"
    summary = (
        "one metric name registered as different instrument kinds "
        "across the codebase"
    )
    rationale = (
        "MetricsRegistry keys counters, gauges and histograms in "
        "separate namespaces, so the same name used as two kinds "
        "produces two silently diverging series — and a Prometheus "
        "exposition with duplicate metric names of conflicting types, "
        "which scrapers reject."
    )
    scope = None

    _KINDS = ("counter", "gauge", "histogram")

    def __init__(self) -> None:
        #: metric name -> kind -> [(module, node line/col for findings)]
        self._sites: Dict[str, Dict[str, List[Tuple[Module, ast.Call]]]] = {}

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._KINDS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            name = node.args[0].value
            kinds = self._sites.setdefault(name, {})
            kinds.setdefault(node.func.attr, []).append((module, node))
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        for name in sorted(self._sites):
            kinds = self._sites[name]
            if len(kinds) < 2:
                continue
            # The majority kind is taken as intended; every site of the
            # other kinds is a finding (ties break toward the first kind
            # in _KINDS order so output is deterministic).
            ranked = sorted(
                kinds,
                key=lambda k: (-len(kinds[k]), self._KINDS.index(k)),
            )
            canonical = ranked[0]
            anchor_mod, anchor = kinds[canonical][0]
            for kind in ranked[1:]:
                for module, node in kinds[kind]:
                    yield module.finding(
                        node, self.code,
                        f"metric {name!r} registered as a {kind} here but "
                        f"as a {canonical} at "
                        f"{anchor_mod.relpath}:{anchor.lineno}",
                    )


@register
class DirectObsConstruction(Rule):
    code = "O403"
    slug = "direct-obs-construction"
    family = "obs"
    summary = (
        "MetricsRegistry/Tracer constructed outside repro.obs instead "
        "of using the no-op singletons"
    )
    rationale = (
        "Instrumented code must read get_metrics()/get_tracer() so that "
        "disabled mode stays a shared falsy no-op (the < 2% overhead "
        "contract) and enabling observability swaps every caller at "
        "once.  A privately constructed registry records into a silo "
        "nobody exports."
    )
    scope = None

    _CLASSES = {"MetricsRegistry", "Tracer", "NullRegistry", "NullTracer"}

    def check(self, module: Module) -> Iterator[Finding]:
        if "obs" in module.scopes:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, module.aliases)
            if name is None:
                continue
            if name.rpartition(".")[2] in self._CLASSES:
                yield module.finding(
                    node, self.code,
                    f"direct {name.rpartition('.')[2]}() construction "
                    "outside repro.obs; use obs.get_metrics()/"
                    "get_tracer() (or obs.enable()) instead",
                )
