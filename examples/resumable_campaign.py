"""Kill-safe fault-injection campaign with checkpoint/resume.

Runs a Table II-style campaign through the fault-tolerant runtime
(`repro.runtime`): every injection executes in an isolated worker process
under a wall-clock timeout, infrastructure failures are retried with
backoff, and each result is durably appended to a JSONL journal.  To see
the resume behaviour, Ctrl-C (or even SIGKILL) the script partway through
and run it again: journaled injections are skipped and the final result is
identical to an uninterrupted run.

Run with:  python examples/resumable_campaign.py [journal.jsonl]
"""

import sys

from repro.faultinject import run_campaign
from repro.runtime import Journal, RetryPolicy


def main() -> None:
    journal_path = sys.argv[1] if len(sys.argv) > 1 else "campaign.jsonl"
    done_before = len(Journal(journal_path).load())
    if done_before:
        print(f"resuming: {done_before} injections already journaled "
              f"in {journal_path}")

    campaign = run_campaign(
        "transpose",
        n_single=40, modes=(2, 3, 4), max_groups_per_mode=10,
        jobs=2,                       # two isolated worker processes
        timeout=60.0,                 # kill any simulation past 60s
        retry=RetryPolicy(            # retry worker death / timeout twice
            max_attempts=3, backoff=1.0, jitter=0.1,
        ),
        journal=journal_path,
    )

    print(f"benchmark: {campaign.benchmark}")
    for outcome, count in sorted(campaign.single_outcomes.items()):
        print(f"  {outcome:<8} {count}")
    print(f"SDC ACE bits: {campaign.n_sdc_ace_bits}")
    for m, (injected, interfering) in sorted(campaign.multibit.items()):
        print(f"  {m}x1 groups: {injected}, ACE interference: {interfering}")
    if campaign.n_failed:
        breakdown = ", ".join(
            f"{k}={v}" for k, v in sorted(campaign.failures.items())
        )
        print(f"  failed (after retries): {campaign.n_failed} ({breakdown})")
    print(f"\njournal: {journal_path} — delete it to start fresh, or "
          "re-run this script to verify nothing re-executes.")


if __name__ == "__main__":          # required: workers use the spawn
    main()                          # start method and re-import this file
