"""The persistent results store: one sqlite3 file, WAL mode, typed API.

Design (see docs/results-store.md):

* **WAL + busy timeout** — many readers plus one writer at a time, and
  concurrent ingesting processes queue on the write lock instead of
  failing (the two-process convergence test in ``tests/store`` holds
  this).
* **Immediate transactions** — every write batch runs inside one
  ``BEGIN IMMEDIATE .. COMMIT``, so a SIGKILL mid-ingest leaves a store
  that passes ``PRAGMA integrity_check`` and simply misses the torn
  batch (re-ingest completes it; sqlite's WAL plays the journal role
  that :func:`repro.ioutil.atomic_write` plays for whole-file writes).
* **Idempotent upserts** — all writers use ``INSERT OR IGNORE`` against
  the canonical-key constraints in :mod:`repro.store.schema`; the
  returned ``(ingested, deduped)`` counts feed the ``store.ingested`` /
  ``store.deduped`` counters.
* **Parameterized SQL only** — values never enter statement text
  (staticcheck rule P501 gates this for every module under ``store/``).
"""

from __future__ import annotations

import errno
import json
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs import get_metrics, get_tracer
from .query import AvfRow, FILTER_COLUMNS, QueryResult, build_where
from .schema import SCHEMA_VERSION, migrate

__all__ = ["ResultStore", "engine_version", "open_store"]

PathLike = Union[str, Path]

#: bounded deterministic backoff for "database is locked" at BEGIN:
#: attempts and delays are fixed (no jitter) so a locked-db schedule
#: replays exactly — chaos tests depend on that.
_LOCK_RETRY_ATTEMPTS = 5
_LOCK_RETRY_BASE = 0.05
_LOCK_RETRY_CAP = 0.5

_AVF_COLUMNS = (
    "workload", "structure", "scheme", "style", "factor", "mode",
    "ser_model", "seed", "engine_version", "due_avf", "sdc_avf",
    "true_due_avf", "false_due_avf", "total_avf", "n_groups",
    "window_cycles", "source",
)

_INSERT_AVF = (
    "INSERT OR IGNORE INTO avf_results ("
    + ", ".join(_AVF_COLUMNS)
    + ") VALUES (" + ", ".join("?" for _ in _AVF_COLUMNS) + ")"
)

_INJ_COLUMNS = (
    "source", "task", "benchmark", "outcome", "verdict", "attempts",
    "duration", "node", "wf", "reg", "lane", "cycle", "bits",
)

_INSERT_INJECTION = (
    "INSERT OR IGNORE INTO injections ("
    + ", ".join(_INJ_COLUMNS)
    + ") VALUES (" + ", ".join("?" for _ in _INJ_COLUMNS) + ")"
)

_MTTF_COLUMNS = (
    "cache_bytes", "raw_fit_per_mbit", "engine_version",
    "mttf_smbf_01pct", "mttf_smbf_5pct", "mttf_tmbf_unbounded",
    "mttf_tmbf_100yr",
)

_INSERT_MTTF = (
    "INSERT OR IGNORE INTO mttf_rows ("
    + ", ".join(_MTTF_COLUMNS)
    + ") VALUES (" + ", ".join("?" for _ in _MTTF_COLUMNS) + ")"
)

_CAMPAIGN_COLUMNS = (
    "benchmark", "seed", "n_cus", "engine_version", "n_single",
    "sdc_ace_bits", "interference", "model_sdc_avf", "single_outcomes",
    "multibit", "failures",
)

_INSERT_CAMPAIGN = (
    "INSERT OR IGNORE INTO campaigns ("
    + ", ".join(_CAMPAIGN_COLUMNS)
    + ") VALUES (" + ", ".join("?" for _ in _CAMPAIGN_COLUMNS) + ")"
)

_SELECT_AVF = "SELECT " + ", ".join(_AVF_COLUMNS) + " FROM avf_results"

#: deterministic default ordering: the canonical key tuple
_AVF_ORDER = (
    " ORDER BY workload, structure, scheme, style, factor, mode, "
    "ser_model, seed, engine_version"
)


def engine_version() -> str:
    """The engine version stamped on rows written by this process."""
    from .. import __version__

    return __version__


class ResultStore:
    """Open (creating/migrating as needed) a results database.

    Context-manager friendly; safe to share a path — not an instance —
    across processes.  All write methods return ``(ingested, deduped)``
    row counts and bump the ``store.ingested`` / ``store.deduped``
    counters.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        timeout: float = 30.0,
        chaos: Optional[Any] = None,
    ) -> None:
        self.path = Path(path)
        if self.path.is_dir():
            raise ValueError(
                f"store path {self.path} is a directory; pass a file path"
            )
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        #: dev-only persistence fault injection
        #: (a :class:`~repro.runtime.chaos.ChaosPolicy`; None = off)
        self.chaos = chaos
        self._txn_seq = 0
        # Autocommit mode: transactions are explicit BEGIN IMMEDIATE
        # blocks (see _txn), never the driver's implicit ones.
        self._conn = sqlite3.connect(
            str(self.path), timeout=timeout, isolation_level=None,
            check_same_thread=False,
        )
        self._conn.row_factory = sqlite3.Row
        # Belt and braces against "database is locked": the connect
        # timeout installs Python's busy handler, and busy_timeout makes
        # sqlite itself wait out held locks — including code paths the
        # Python handler does not cover.  (PRAGMA values cannot be bound
        # parameters; the statement is assembled from our own int.)
        busy_pragma = "PRAGMA busy_timeout = " + str(int(timeout * 1000))
        self._conn.execute(busy_pragma)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        migrate(self._conn)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """One immediate write transaction; rolls back on error.

        ``BEGIN IMMEDIATE`` is where a concurrently-held write lock
        surfaces, so that is where the bounded deterministic-backoff
        retry lives: concurrent dashboard reads plus campaign writes
        must queue, never surface a raw ``database is locked``.
        """
        seq = self._txn_seq = self._txn_seq + 1
        self._begin_immediate(seq)
        try:
            yield self._conn
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        if self.chaos is not None and self.chaos.store_enospc_active(seq):
            self._conn.execute("ROLLBACK")
            raise OSError(
                errno.ENOSPC, "chaos: no space left on device (mid-ingest)"
            )
        self._conn.execute("COMMIT")

    def _begin_immediate(self, seq: int) -> None:
        """Take the write lock, retrying "database is locked" with a
        bounded deterministic backoff (no jitter: replayable)."""
        delay = _LOCK_RETRY_BASE
        for attempt in range(_LOCK_RETRY_ATTEMPTS):
            try:
                if self.chaos is not None and (
                    self.chaos.store_locked_active(seq, attempt)
                ):
                    raise sqlite3.OperationalError(
                        "database is locked (chaos)"
                    )
                self._conn.execute("BEGIN IMMEDIATE")
                return
            except sqlite3.OperationalError as exc:
                message = str(exc)
                if "locked" not in message and "busy" not in message:
                    raise
                if attempt + 1 >= _LOCK_RETRY_ATTEMPTS:
                    raise
                mx = get_metrics()
                if mx:
                    mx.counter("store.locked_retries").inc()
                time.sleep(delay)
                delay = min(delay * 2.0, _LOCK_RETRY_CAP)

    def _count_writes(
        self, attempted: int, before: int
    ) -> Tuple[int, int]:
        ingested = self._conn.total_changes - before
        deduped = attempted - ingested
        mx = get_metrics()
        if mx:
            mx.counter("store.ingested").inc(ingested)
            mx.counter("store.deduped").inc(deduped)
        return ingested, deduped

    # -- maintenance ---------------------------------------------------------

    @property
    def schema_version(self) -> int:
        return SCHEMA_VERSION

    def integrity_check(self, *, quick: bool = False) -> str:
        """sqlite's own structural check: 'ok' or a fault description.

        ``quick=True`` runs ``PRAGMA quick_check`` (no cross-index
        verification) — cheap enough for a readiness probe.
        """
        pragma = (
            "PRAGMA quick_check" if quick else "PRAGMA integrity_check"
        )
        rows = self._conn.execute(pragma).fetchall()
        return "; ".join(str(r[0]) for r in rows)

    def summary(self) -> Dict[str, Any]:
        """Row counts plus distinct key values, for dashboards and CLI."""
        out: Dict[str, Any] = {"path": str(self.path)}
        out["avf_results"] = self._scalar(
            "SELECT COUNT(*) FROM avf_results"
        )
        out["injections"] = self._scalar("SELECT COUNT(*) FROM injections")
        out["mttf_rows"] = self._scalar("SELECT COUNT(*) FROM mttf_rows")
        out["campaigns"] = self._scalar("SELECT COUNT(*) FROM campaigns")
        out["workloads"] = [
            str(r[0]) for r in self._conn.execute(
                "SELECT DISTINCT workload FROM avf_results ORDER BY workload"
            )
        ]
        out["structures"] = [
            str(r[0]) for r in self._conn.execute(
                "SELECT DISTINCT structure FROM avf_results "
                "ORDER BY structure"
            )
        ]
        out["schema_version"] = SCHEMA_VERSION
        return out

    def _scalar(self, sql: str) -> int:
        row = self._conn.execute(sql).fetchone()
        return int(row[0]) if row is not None else 0

    # -- writers -------------------------------------------------------------

    def put_avf_rows(
        self, rows: Iterable[Union[AvfRow, Mapping[str, Any]]]
    ) -> Tuple[int, int]:
        """Idempotently insert AVF measurements; returns (new, deduped)."""
        params: List[Tuple] = []
        for row in rows:
            data = row.to_dict() if isinstance(row, AvfRow) else dict(row)
            data.setdefault("ser_model", "none")
            data.setdefault("seed", 0)
            data.setdefault("engine_version", engine_version())
            data.setdefault(
                "total_avf",
                float(data["due_avf"]) + float(data["sdc_avf"]),
            )
            data.setdefault("n_groups", None)
            data.setdefault("window_cycles", None)
            data.setdefault("source", None)
            params.append(tuple(data[c] for c in _AVF_COLUMNS))
        if not params:
            return 0, 0
        before = self._conn.total_changes
        with self._txn() as conn:
            conn.executemany(_INSERT_AVF, params)
        return self._count_writes(len(params), before)

    def put_injection_rows(
        self, rows: Iterable[Mapping[str, Any]]
    ) -> Tuple[int, int]:
        """Idempotently insert injection records keyed by (source, task)."""
        params = []
        for row in rows:
            data = dict(row)
            bits = data.get("bits")
            if bits is not None and not isinstance(bits, str):
                data["bits"] = json.dumps(list(bits))
            for column in _INJ_COLUMNS:
                data.setdefault(column, None)
            data.setdefault("attempts", 1)
            data.setdefault("duration", 0.0)
            params.append(tuple(data[c] for c in _INJ_COLUMNS))
        if not params:
            return 0, 0
        before = self._conn.total_changes
        with self._txn() as conn:
            conn.executemany(_INSERT_INJECTION, params)
        return self._count_writes(len(params), before)

    def put_mttf_rows(
        self,
        rows: Iterable[Any],
        *,
        cache_bytes: int = 32 << 20,
    ) -> Tuple[int, int]:
        """Insert :class:`~repro.core.mttf.Figure2Row` records."""
        version = engine_version()
        params = [
            (
                int(cache_bytes), float(r.raw_fit_per_mbit), version,
                float(r.mttf_smbf_01pct), float(r.mttf_smbf_5pct),
                float(r.mttf_tmbf_unbounded), float(r.mttf_tmbf_100yr),
            )
            for r in rows
        ]
        if not params:
            return 0, 0
        before = self._conn.total_changes
        with self._txn() as conn:
            conn.executemany(_INSERT_MTTF, params)
        return self._count_writes(len(params), before)

    def put_campaign(
        self, campaign: Any, *, seed: int = 0, n_cus: int = 2
    ) -> Tuple[int, int]:
        """Insert one :class:`~repro.faultinject.campaign.BenchmarkCampaign`
        summary keyed by (benchmark, seed, n_cus, engine version)."""
        params = (
            campaign.benchmark, int(seed), int(n_cus), engine_version(),
            int(campaign.n_single_injections),
            int(campaign.n_sdc_ace_bits),
            int(campaign.interference_total()),
            campaign.model_sdc_avf,
            json.dumps(campaign.single_outcomes, sort_keys=True),
            json.dumps(
                {str(m): list(v) for m, v in campaign.multibit.items()},
                sort_keys=True,
            ),
            json.dumps(campaign.failures, sort_keys=True),
        )
        before = self._conn.total_changes
        with self._txn() as conn:
            conn.execute(_INSERT_CAMPAIGN, params)
        return self._count_writes(1, before)

    # -- readers -------------------------------------------------------------

    def query(
        self,
        *,
        order_by: Optional[Sequence[str]] = None,
        limit: Optional[int] = None,
        **filters: Any,
    ) -> QueryResult:
        """Filtered AVF rows, deterministically ordered.

        Keyword filters name :data:`~repro.store.query.FILTER_COLUMNS`
        (scalars or sequences); ``order_by`` names filter columns to sort
        by instead of the full canonical key.  The query is answered
        entirely from the store — no simulation, no AVF engine.
        """
        where, params = build_where(filters)
        sql = _SELECT_AVF + where
        if order_by:
            for column in order_by:
                if column not in FILTER_COLUMNS:
                    raise KeyError(f"unknown order column {column!r}")
            sql += " ORDER BY " + ", ".join(order_by)
        else:
            sql += _AVF_ORDER
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        start = time.perf_counter()
        with get_tracer().span("query", table="avf_results") as span:
            rows = [
                self._row_to_avf(r)
                for r in self._conn.execute(sql, params)
            ]
            span.set(rows=len(rows))
        mx = get_metrics()
        if mx:
            mx.histogram("store.query_latency").observe(
                time.perf_counter() - start
            )
            mx.counter("store.queries").inc()
        return QueryResult(rows)

    @staticmethod
    def _row_to_avf(row: sqlite3.Row) -> AvfRow:
        data = {key: row[key] for key in row.keys()}
        for column in ("n_groups", "window_cycles"):
            if data.get(column) is not None:
                data[column] = int(data[column])
        return AvfRow(**data)

    def mttf_rows(
        self, *, cache_bytes: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Stored Figure 2 rows (dicts), ordered by cache size and rate."""
        sql = "SELECT " + ", ".join(_MTTF_COLUMNS) + " FROM mttf_rows"
        params: List[Any] = []
        if cache_bytes is not None:
            sql += " WHERE cache_bytes = ?"
            params.append(int(cache_bytes))
        sql += " ORDER BY cache_bytes, raw_fit_per_mbit, engine_version"
        return [
            {key: r[key] for key in r.keys()}
            for r in self._conn.execute(sql, params)
        ]

    def campaigns(self) -> List[Dict[str, Any]]:
        """Stored campaign summaries with their JSON fields decoded."""
        sql = (
            "SELECT " + ", ".join(_CAMPAIGN_COLUMNS)
            + " FROM campaigns ORDER BY benchmark, seed, n_cus"
        )
        out = []
        for r in self._conn.execute(sql):
            data = {key: r[key] for key in r.keys()}
            for field in ("single_outcomes", "multibit", "failures"):
                data[field] = json.loads(data[field])
            out.append(data)
        return out

    def injection_stats(self) -> List[Dict[str, Any]]:
        """Per-benchmark verdict counts over every stored injection."""
        sql = (
            "SELECT benchmark, verdict, COUNT(*) AS n FROM injections "
            "GROUP BY benchmark, verdict ORDER BY benchmark, verdict"
        )
        return [
            {
                "benchmark": r["benchmark"],
                "verdict": r["verdict"],
                "count": int(r["n"]),
            }
            for r in self._conn.execute(sql)
        ]


@contextmanager
def open_store(
    store: Union[ResultStore, PathLike]
) -> Iterator[ResultStore]:
    """Yield a :class:`ResultStore` from an instance or a path.

    Producers take ``store=`` as either form; a path is opened for the
    duration of the block and closed after, an instance is borrowed and
    left open (the caller owns its lifecycle).
    """
    if isinstance(store, ResultStore):
        yield store
        return
    owned = ResultStore(store)
    try:
        yield owned
    finally:
        owned.close()
