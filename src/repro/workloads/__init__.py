"""The paper's workloads (Rodinia / AMD OpenCL samples / Mantevo analogues)."""

from .base import Workload, WorkloadRun, run_workload
from .suite import EVALUATION_SET, OPENCL_SAMPLES, REGISTRY, names, run

__all__ = [
    "Workload",
    "WorkloadRun",
    "run_workload",
    "EVALUATION_SET",
    "OPENCL_SAMPLES",
    "REGISTRY",
    "names",
    "run",
]
