"""N-family fixture; opts into kernel scope via the pragma below."""
# staticcheck: scope=kernel

import numpy as np


def kernels(values):
    a = np.array(values)
    z = np.zeros(4)
    f = np.asarray(values, dtype=np.float32)
    h = np.float32(1.5)
    c = a.astype(np.int64)
    ok = np.arange(8, dtype=np.int64)
    ok2 = c.astype(np.int64, copy=False)
    return a, z, f, h, c, ok, ok2
