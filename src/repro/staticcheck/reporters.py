"""Render lint results as human text or machine JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .baseline import Comparison
from .engine import RunResult
from .findings import Finding
from .registry import rule_classes

__all__ = ["render_text", "render_json"]


def _finding_lines(findings: List[Finding], tag: str = "") -> List[str]:
    out: List[str] = []
    for f in findings:
        suffix = f" [{tag}]" if tag else ""
        out.append(f"{f.location()}: {f.rule} {f.message}{suffix}")
        if f.snippet:
            out.append(f"    {f.snippet.strip()}")
    return out


def render_text(
    result: RunResult, comparison: Optional[Comparison] = None
) -> str:
    """Human-readable report; baseline-aware when a comparison is given."""
    lines: List[str] = []
    if comparison is None:
        lines.extend(_finding_lines(result.findings))
        counts = result.by_rule()
        total = len(result.findings)
        summary = (
            f"{total} finding{'s' if total != 1 else ''} in "
            f"{result.files_scanned} files"
        )
        if counts:
            summary += " (" + ", ".join(
                f"{rule}:{n}" for rule, n in counts.items()
            ) + ")"
        lines.append(summary)
        return "\n".join(lines)

    if comparison.new:
        lines.append("new findings (not in baseline):")
        lines.extend(_finding_lines(comparison.new))
    if comparison.stale:
        lines.append("stale baseline entries (debt paid down — shrink "
                      "the baseline with --update-baseline):")
        for rule, path, allowed, current in comparison.stale:
            lines.append(
                f"  {path}: {rule} baseline allows {allowed}, "
                f"found {current}"
            )
    verdict = "clean" if comparison.clean else "FAILED"
    lines.append(
        f"{verdict}: {len(comparison.new)} new, {comparison.baselined} "
        f"baselined, {len(comparison.stale)} stale "
        f"({result.files_scanned} files scanned)"
    )
    return "\n".join(lines)


def render_json(
    result: RunResult, comparison: Optional[Comparison] = None
) -> str:
    """Machine-readable report (stable key order, newline-terminated)."""
    payload: Dict[str, object] = {
        "files_scanned": result.files_scanned,
        "files_skipped": result.files_skipped,
        "parse_errors": result.parse_errors,
        "rules": {
            cls.code: cls.describe() for cls in rule_classes().values()
        },
        "counts": result.by_rule(),
        "findings": [f.to_dict() for f in result.findings],
    }
    if comparison is not None:
        payload["baseline"] = {
            "clean": comparison.clean,
            "new": [f.to_dict() for f in comparison.new],
            "baselined": comparison.baselined,
            "stale": [
                {
                    "rule": rule,
                    "path": path,
                    "baseline_count": allowed,
                    "current_count": current,
                }
                for rule, path, allowed, current in comparison.stale
            ],
        }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
