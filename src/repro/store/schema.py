"""Results-store schema: versioned migrations over stdlib sqlite3.

The store is keyed by the canonical configuration tuple the whole
reproduction revolves around::

    (workload, structure, protection scheme, layout/interleaving,
     fault mode geometry, SER model, seed, engine version)

Every table encodes idempotence in its DDL: the AVF table carries a
UNIQUE constraint over that tuple, the injection table is keyed by
journal record identity ``(source, task)``, and all writers go through
``INSERT OR IGNORE`` inside an immediate transaction — re-ingesting any
artifact (a journal, a merged fabric shard set, a batch of
:class:`~repro.core.avf.MbAvfResult`) changes no rows.

Migrations are append-only: ``MIGRATIONS[i]`` upgrades a version-``i``
database to version ``i + 1``, and the current version lives in the
``meta`` table so two processes racing to open the same file apply the
upgrade exactly once (the loser's ``BEGIN IMMEDIATE`` re-reads the
version and finds nothing left to do).
"""

from __future__ import annotations

import sqlite3
from typing import Tuple

__all__ = ["SCHEMA_VERSION", "MIGRATIONS", "migrate", "schema_version"]

_V1 = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS avf_results (
    workload        TEXT NOT NULL,
    structure       TEXT NOT NULL,
    scheme          TEXT NOT NULL,
    style           TEXT NOT NULL,
    factor          INTEGER NOT NULL,
    mode            TEXT NOT NULL,
    ser_model       TEXT NOT NULL DEFAULT 'none',
    seed            INTEGER NOT NULL DEFAULT 0,
    engine_version  TEXT NOT NULL,
    due_avf         REAL NOT NULL,
    sdc_avf         REAL NOT NULL,
    true_due_avf    REAL NOT NULL,
    false_due_avf   REAL NOT NULL,
    total_avf       REAL NOT NULL,
    n_groups        INTEGER,
    window_cycles   INTEGER,
    source          TEXT,
    UNIQUE (workload, structure, scheme, style, factor, mode,
            ser_model, seed, engine_version)
);
CREATE TABLE IF NOT EXISTS injections (
    source    TEXT NOT NULL,
    task      TEXT NOT NULL,
    benchmark TEXT NOT NULL,
    outcome   TEXT NOT NULL,
    verdict   TEXT,
    attempts  INTEGER NOT NULL DEFAULT 1,
    duration  REAL NOT NULL DEFAULT 0.0,
    node      TEXT,
    wf        INTEGER,
    reg       INTEGER,
    lane      INTEGER,
    cycle     INTEGER,
    bits      TEXT,
    PRIMARY KEY (source, task)
);
CREATE TABLE IF NOT EXISTS mttf_rows (
    cache_bytes         INTEGER NOT NULL,
    raw_fit_per_mbit    REAL NOT NULL,
    engine_version      TEXT NOT NULL,
    mttf_smbf_01pct     REAL NOT NULL,
    mttf_smbf_5pct      REAL NOT NULL,
    mttf_tmbf_unbounded REAL NOT NULL,
    mttf_tmbf_100yr     REAL NOT NULL,
    PRIMARY KEY (cache_bytes, raw_fit_per_mbit, engine_version)
);
CREATE TABLE IF NOT EXISTS campaigns (
    benchmark       TEXT NOT NULL,
    seed            INTEGER NOT NULL,
    n_cus           INTEGER NOT NULL,
    engine_version  TEXT NOT NULL,
    n_single        INTEGER NOT NULL,
    sdc_ace_bits    INTEGER NOT NULL,
    interference    INTEGER NOT NULL,
    model_sdc_avf   REAL,
    single_outcomes TEXT NOT NULL,
    multibit        TEXT NOT NULL,
    failures        TEXT NOT NULL,
    PRIMARY KEY (benchmark, seed, n_cus, engine_version)
);
CREATE INDEX IF NOT EXISTS idx_avf_workload
    ON avf_results (workload, structure);
CREATE INDEX IF NOT EXISTS idx_injections_benchmark
    ON injections (benchmark);
"""

#: ``MIGRATIONS[i]`` is the SQL script lifting schema version i to i + 1.
MIGRATIONS: Tuple[str, ...] = (_V1,)

#: the schema version this build of the code reads and writes
SCHEMA_VERSION = len(MIGRATIONS)

_GET_VERSION = "SELECT value FROM meta WHERE key = 'schema_version'"
_SET_VERSION = (
    "INSERT INTO meta (key, value) VALUES ('schema_version', ?) "
    "ON CONFLICT (key) DO UPDATE SET value = excluded.value"
)


def schema_version(conn: sqlite3.Connection) -> int:
    """The on-disk schema version (0 = empty database)."""
    row = conn.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table' "
        "AND name = 'meta'"
    ).fetchone()
    if row is None:
        return 0
    got = conn.execute(_GET_VERSION).fetchone()
    return int(got[0]) if got is not None else 0


def migrate(conn: sqlite3.Connection) -> int:
    """Apply every pending migration; returns the resulting version.

    Safe under concurrency: the version check re-runs inside one
    ``BEGIN IMMEDIATE`` transaction per step, so a process that lost the
    race sees the bumped version and skips the step.  A database written
    by a *newer* build is refused rather than misread.
    """
    version = schema_version(conn)
    if version > SCHEMA_VERSION:
        raise RuntimeError(
            f"results store is schema version {version}, but this build "
            f"only understands <= {SCHEMA_VERSION}; upgrade the code"
        )
    while version < SCHEMA_VERSION:
        conn.execute("BEGIN IMMEDIATE")
        try:
            current = schema_version(conn)
            if current == version:
                for statement in _statements(MIGRATIONS[version]):
                    conn.execute(statement)
                conn.execute(_SET_VERSION, (str(version + 1),))
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")
        version = schema_version(conn)
    return version


def _statements(script: str):
    """Split a DDL script on ';' (none of our DDL embeds semicolons)."""
    for chunk in script.split(";"):
        statement = chunk.strip()
        if statement:
            yield statement
