"""Finding and rule primitives for the invariant linter.

A :class:`Finding` is one rule violation at one source location; a
:class:`Rule` is a pluggable AST check producing findings.  Rules are
small classes (not functions) so cross-file rules can accumulate state
in ``check`` and emit in ``finalize`` — see
:class:`~repro.staticcheck.rules.obs_discipline.MetricNameCollision`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    ClassVar,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .callgraph import CallGraph
    from .index import ProjectIndex

__all__ = ["Finding", "Module", "Rule"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # posix path relative to the scan root
    line: int  # 1-based
    col: int  # 0-based (ast convention)
    rule: str  # rule code, e.g. "D101"
    message: str
    snippet: str = ""  # the stripped source line, for reports

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }


@dataclass
class Module:
    """One parsed source file plus everything rules need to inspect it.

    ``scopes`` classifies the module (``deterministic``, ``kernel``,
    ``persistence``, ``executor``, ``fabric``, ``obs``, ``runtime``)
    from its path
    and any ``# staticcheck: scope=...`` pragma; rules declare the scope
    they apply to.  ``suppressions`` maps line numbers to the rule codes
    suppressed there (``None`` = all rules).
    """

    path: str  # absolute filesystem path
    relpath: str  # posix path relative to the scan root
    source: str
    tree: ast.Module
    lines: List[str]
    scopes: FrozenSet[str]
    #: line -> suppressed codes (None = every rule) from inline pragmas
    suppressions: Dict[int, Optional[FrozenSet[str]]] = field(
        default_factory=dict
    )
    #: child AST node -> parent AST node, for context-sensitive rules
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: dotted-name aliases from imports (``np`` -> ``numpy``, ...)
    aliases: Dict[str, str] = field(default_factory=dict)

    def suppressed(self, line: int, code: str) -> bool:
        """Whether an inline pragma suppresses ``code`` on ``line``."""
        if line not in self.suppressions:
            return False
        codes = self.suppressions[line]
        return codes is None or code in codes

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, node: ast.AST, rule: str, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.relpath,
            line=line,
            col=col,
            rule=rule,
            message=message,
            snippet=self.snippet(line),
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes, implement :meth:`check`, and —
    for rules needing whole-project context — :meth:`finalize`, which
    runs once after every module has been checked.
    """

    #: stable short code, e.g. ``"D101"`` (letter = family)
    code: ClassVar[str] = ""
    #: human slug, e.g. ``"unseeded-rng"``
    slug: ClassVar[str] = ""
    #: family name: determinism | numpy | forksafety | obs
    family: ClassVar[str] = ""
    #: one-line description for ``--list-rules`` and the docs
    summary: ClassVar[str] = ""
    #: why violating this undermines the reproduction's claims
    rationale: ClassVar[str] = ""
    #: module scope this rule applies to (None = every module)
    scope: ClassVar[Optional[str]] = None

    def applies(self, module: Module) -> bool:
        return self.scope is None or self.scope in module.scopes

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finalize(self) -> Iterator[Finding]:
        """Yield cross-module findings after every module was checked."""
        return iter(())

    #: whole-program rules run exclusively from :meth:`finalize_project`
    #: (their :meth:`check` never fires); per-file rules leave this False
    #: so cached files can skip them safely
    project_rule: ClassVar[bool] = False

    def finalize_project(
        self, project: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        """Yield findings from the whole-program index.

        Runs once per lint with the :class:`ProjectIndex` built over
        *every* scanned file (cached or fresh) and its
        :class:`CallGraph`.  Unlike :meth:`check`/:meth:`finalize`, this
        hook sees cross-file structure: class inventories, lock fields,
        thread-entry seeding and resolved call edges.
        """
        return iter(())

    @classmethod
    def describe(cls) -> Dict[str, str]:
        return {
            "code": cls.code,
            "slug": cls.slug,
            "family": cls.family,
            "summary": cls.summary,
            "scope": cls.scope or "all",
        }


def walk_with_parents(
    tree: ast.Module,
) -> Tuple[List[ast.AST], Dict[ast.AST, ast.AST]]:
    """All nodes of ``tree`` plus a child -> parent map."""
    parents: Dict[ast.AST, ast.AST] = {}
    nodes: List[ast.AST] = [tree]
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parents[child] = node
            nodes.append(child)
            stack.append(child)
    return nodes, parents
