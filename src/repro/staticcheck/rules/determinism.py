"""Determinism rules (family D).

The equivalence suite (``tests/core/test_vectorized_equivalence.py``)
and the chaos convergence suite are *replay* checks: they are only sound
if a given seed always produces the same trajectory.  These rules flag
the classic ways Python code silently loses that property: hidden global
RNG state, wall clocks, set iteration order, and identity-based keys.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import dotted_name, keyword_arg, resolve_call
from ..findings import Finding, Module, Rule
from ..registry import register

__all__ = ["UnseededRng", "WallClock", "SetIterationOrder", "IdentityKey"]

#: stdlib ``random`` module-level functions (the shared global generator)
_GLOBAL_RANDOM_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}

#: ``numpy.random`` legacy global-state functions
_NP_LEGACY_FNS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "exponential",
    "gamma", "get_state", "geometric", "normal", "permutation",
    "poisson", "rand", "randint", "randn", "random", "random_sample",
    "ranf", "sample", "seed", "set_state", "shuffle",
    "standard_normal", "uniform",
}

#: clock / entropy reads that make a deterministic module's output vary
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "os.urandom",
    "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbelow",
    "secrets.choice",
}


def _module_calls(module: Module) -> Iterator[ast.Call]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield node


@register
class UnseededRng(Rule):
    code = "D101"
    slug = "unseeded-rng"
    family = "determinism"
    summary = (
        "global-state or unseeded RNG use (stdlib random module "
        "functions, numpy legacy np.random.*, default_rng() without "
        "a seed)"
    )
    rationale = (
        "Campaign results must be a pure function of the seed: the "
        "resume/equivalence/chaos suites replay runs and compare "
        "bit-for-bit.  Hidden global RNG state (or an entropy-seeded "
        "generator) makes two runs of the same seed diverge."
    )
    scope = None

    def check(self, module: Module) -> Iterator[Finding]:
        for call in _module_calls(module):
            name = resolve_call(call, module.aliases)
            if name is None:
                continue
            head, _, tail = name.rpartition(".")
            if head == "random" and tail in _GLOBAL_RANDOM_FNS:
                yield module.finding(
                    call, self.code,
                    f"call to random.{tail} uses the process-global RNG; "
                    "thread an explicit seeded generator instead",
                )
            elif name == "random.Random" and not call.args:
                yield module.finding(
                    call, self.code,
                    "random.Random() without a seed draws from OS "
                    "entropy; pass an explicit seed",
                )
            elif head == "numpy.random" and tail in _NP_LEGACY_FNS:
                yield module.finding(
                    call, self.code,
                    f"np.random.{tail} mutates numpy's legacy global "
                    "state; use np.random.default_rng(seed)",
                )
            elif name == "numpy.random.default_rng" and not call.args \
                    and keyword_arg(call, "seed") is None:
                yield module.finding(
                    call, self.code,
                    "default_rng() without a seed draws from OS entropy; "
                    "pass the campaign seed",
                )
            elif name == "numpy.random.RandomState" and not call.args:
                yield module.finding(
                    call, self.code,
                    "RandomState() without a seed draws from OS entropy; "
                    "pass an explicit seed",
                )


@register
class WallClock(Rule):
    code = "D102"
    slug = "wall-clock"
    family = "determinism"
    summary = (
        "clock or entropy read (time.time, datetime.now, os.urandom, "
        "uuid4, ...) inside a deterministic module"
    )
    rationale = (
        "The simulator, the AVF engine and the injection campaign must "
        "be bit-for-bit replayable from a seed; any clock read that "
        "feeds results breaks the reference-equivalence and "
        "chaos-convergence checks.  Timing belongs in repro.obs, which "
        "is outside this scope."
    )
    scope = "deterministic"

    def check(self, module: Module) -> Iterator[Finding]:
        for call in _module_calls(module):
            name = resolve_call(call, module.aliases)
            if name in _WALL_CLOCK_CALLS:
                yield module.finding(
                    call, self.code,
                    f"{name}() is nondeterministic; deterministic modules "
                    "must not read clocks or entropy (route timing "
                    "through repro.obs)",
                )


def _is_set_expr(node: ast.AST) -> bool:
    """Set literal, set comprehension, or set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


@register
class SetIterationOrder(Rule):
    code = "D103"
    slug = "set-iteration-order"
    family = "determinism"
    summary = (
        "iterating a set into ordered output (for-loop over a set "
        "expression, list/tuple/enumerate/join of a set) without "
        "sorted()"
    )
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "randomisation of the process; feeding it into any ordered "
        "output (lists, files, journals, reports) makes runs differ. "
        "Wrap in sorted() to pin the order."
    )
    scope = None

    _ORDERED_CONSUMERS = {"list", "tuple", "enumerate", "reversed"}

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield module.finding(
                    node.iter, self.code,
                    "for-loop over a set has nondeterministic order; "
                    "iterate sorted(...) instead",
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield module.finding(
                            gen.iter, self.code,
                            "comprehension over a set produces "
                            "nondeterministic order; iterate sorted(...)",
                        )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name in self._ORDERED_CONSUMERS
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield module.finding(
                        node, self.code,
                        f"{name}() over a set freezes a nondeterministic "
                        "order; use sorted(...)",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield module.finding(
                        node, self.code,
                        "str.join over a set produces nondeterministic "
                        "output; join sorted(...)",
                    )


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


@register
class IdentityKey(Rule):
    code = "D104"
    slug = "id-key"
    family = "determinism"
    summary = (
        "id() used as a dict/set key (subscript, dict literal, "
        ".get/.setdefault/.pop/.add argument)"
    )
    rationale = (
        "id() values are arena addresses: they vary run to run and can "
        "be recycled after garbage collection, so id-keyed tables leak "
        "allocation order into results and can silently alias two "
        "objects.  Acceptable only for within-pass interning of objects "
        "kept alive for the table's whole lifetime — suppress inline "
        "with a justification where that is proven."
    )
    scope = None

    _KEYED_METHODS = {"get", "setdefault", "pop", "add", "discard"}

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Subscript) and _is_id_call(node.slice):
                yield module.finding(
                    node, self.code,
                    "id() used as a subscript key; identity keys are "
                    "allocation-order dependent",
                )
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and _is_id_call(key):
                        yield module.finding(
                            key, self.code,
                            "id() used as a dict-literal key; identity "
                            "keys are allocation-order dependent",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._KEYED_METHODS
                and node.args
                and _is_id_call(node.args[0])
            ):
                yield module.finding(
                    node, self.code,
                    f"id() passed to .{node.func.attr}(); identity keys "
                    "are allocation-order dependent",
                )
