"""D102 fixture: wall-clock reads; 'core/' makes this deterministic scope."""

import os
import time
import uuid
from datetime import datetime


def stamps():
    t = time.time()
    m = time.monotonic()
    now = datetime.now()
    entropy = os.urandom(8)
    tag = uuid.uuid4()
    return t, m, now, entropy, tag
