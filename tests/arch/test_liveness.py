"""Tests for dynamic-dead-instruction and logic-masking analysis."""


from repro.arch import Apu, GlobalMemory, ProgramBuilder, imm, s, v
from repro.arch.liveness import analyze_liveness


def _analyze(program, n_threads, args, mem, outputs):
    apu = Apu(memory=mem, n_cus=1)
    apu.launch(program, n_threads, args)
    apu.finish()
    ranges = [mem.buffer(o) for o in outputs]
    analyze_liveness(
        apu.records,
        {w: p.n_vregs for w, p in apu.wf_programs.items()},
        mem.size,
        ranges,
        lds_size=apu.lds_bytes,
    )
    return apu.records


def _recs_of(records, op):
    return [r for r in records if r.op == op]


class TestDeadCode:
    def test_unused_value_is_dead(self):
        mem = GlobalMemory()
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        p.imul(v(2), v(0), imm(3))     # used
        p.imul(v(3), v(0), imm(5))     # never used -> dead
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(9), v(9), s(2))
        p.store(v(2), v(9))
        recs = _analyze(p.build(), 16, [out], mem, ["out"])
        muls = _recs_of(recs, "v_mul")
        assert muls[0].live
        assert not muls[1].live

    def test_transitively_dead_chain(self):
        mem = GlobalMemory()
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        p.imul(v(2), v(0), imm(3))     # feeds v3
        p.iadd(v(3), v(2), imm(1))     # feeds v4
        p.ixor(v(4), v(3), imm(7))     # never used
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(9), v(9), s(2))
        p.store(imm(1), v(9))
        recs = _analyze(p.build(), 16, [out], mem, ["out"])
        assert not _recs_of(recs, "v_mul")[0].live
        assert not _recs_of(recs, "v_xor")[0].live

    def test_store_to_scratch_buffer_is_dead(self):
        mem = GlobalMemory()
        scratch = mem.alloc("scratch", 64)
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(8), v(9), s(2))       # &scratch
        p.store(imm(5), v(8))          # written, never read -> dead
        p.iadd(v(9), v(9), s(3))       # &out
        p.store(imm(6), v(9))
        recs = _analyze(p.build(), 16, [scratch, out], mem, ["out"])
        stores = _recs_of(recs, "v_store")
        assert not stores[0].live
        assert stores[1].live
        assert (stores[1].mem_needed[stores[1].acc_mask] != 0).all()

    def test_overwritten_store_is_dead(self):
        mem = GlobalMemory()
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(9), v(9), s(2))
        p.store(imm(1), v(9))          # overwritten before any read -> dead
        p.store(imm(2), v(9))
        recs = _analyze(p.build(), 16, [out], mem, ["out"])
        stores = _recs_of(recs, "v_store")
        assert not stores[0].live
        assert stores[1].live

    def test_load_feeding_output_is_live(self):
        mem = GlobalMemory()
        inp = mem.alloc("in", 64)
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(8), v(9), s(2))
        p.load(v(2), v(8))
        p.iadd(v(9), v(9), s(3))
        p.store(v(2), v(9))
        recs = _analyze(p.build(), 16, [inp, out], mem, ["out"])
        ld = _recs_of(recs, "v_load")[0]
        assert ld.live
        assert (ld.load_needed[ld.acc_mask] == 0xFFFFFFFF).all()


class TestLogicMasking:
    def _masked_load(self, body, out_bytes=64):
        mem = GlobalMemory()
        inp = mem.alloc("in", 64)
        out = mem.alloc("out", out_bytes)
        p = ProgramBuilder()
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(8), v(9), s(2))
        p.load(v(2), v(8))
        body(p)
        p.iadd(v(9), v(9), s(3))
        p.store(v(3), v(9))
        recs = _analyze(p.build(), 16, [inp, out], mem, ["out"])
        return _recs_of(recs, "v_load")[0]

    def test_and_masks_bits(self):
        ld = self._masked_load(lambda p: p.iand(v(3), v(2), imm(0xFF)))
        assert (ld.load_needed[ld.acc_mask] == 0xFF).all()

    def test_or_masks_set_bits(self):
        ld = self._masked_load(lambda p: p.ior(v(3), v(2), imm(0xFFFF0000)))
        assert (ld.load_needed[ld.acc_mask] == 0x0000FFFF).all()

    def test_shr_shifts_needed_bits(self):
        # v3 = (v2 >> 16) & 0xFF needs bits 16..23 of v2.
        def body(p):
            p.shr(v(3), v(2), imm(16))
            p.iand(v(3), v(3), imm(0xFF))

        ld = self._masked_load(body)
        assert (ld.load_needed[ld.acc_mask] == 0x00FF0000).all()

    def test_byte_store_needs_low_byte(self):
        mem = GlobalMemory()
        inp = mem.alloc("in", 64)
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(8), v(9), s(2))
        p.load(v(2), v(8))
        p.iadd(v(9), v(0), s(3))
        p.store_u8(v(2), v(9))
        recs = _analyze(p.build(), 16, [inp, out], mem, ["out"])
        ld = _recs_of(recs, "v_load")[0]
        assert (ld.load_needed[ld.acc_mask] == 0xFF).all()

    def test_cmp_needs_everything(self):
        def body(p):
            p.cmp("lt", v(2), imm(100))
            p.cndmask(v(3), imm(1), imm(0))

        ld = self._masked_load(body)
        assert (ld.load_needed[ld.acc_mask] == 0xFFFFFFFF).all()

    def test_cndmask_uses_snapshot(self):
        """Only the taken side of a select keeps its producer live."""
        mem = GlobalMemory()
        inp = mem.alloc("in", 64)
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(8), v(9), s(2))
        p.load(v(2), v(8))
        p.imul(v(4), v(0), imm(9))
        p.cmp("lt", v(0), imm(16))     # uniformly true -> v2 side taken
        p.cndmask(v(3), v(2), v(4))
        p.iadd(v(9), v(9), s(3))
        p.store(v(3), v(9))
        recs = _analyze(p.build(), 16, [inp, out], mem, ["out"])
        assert _recs_of(recs, "v_load")[0].live
        assert not _recs_of(recs, "v_mul")[0].live  # untaken side is dead


class TestLdsLiveness:
    def test_value_through_lds_stays_live(self):
        mem = GlobalMemory()
        inp = mem.alloc("in", 64)
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(8), v(9), s(2))
        p.load(v(2), v(8))
        p.shl(v(7), v(1), imm(2))
        p.lds_store(v(2), v(7))
        p.lds_load(v(3), v(7))
        p.iadd(v(9), v(9), s(3))
        p.store(v(3), v(9))
        recs = _analyze(p.build(), 16, [inp, out], mem, ["out"])
        assert _recs_of(recs, "v_load")[0].live
        assert _recs_of(recs, "lds_store")[0].live

    def test_unread_lds_store_is_dead(self):
        mem = GlobalMemory()
        inp = mem.alloc("in", 64)
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(8), v(9), s(2))
        p.load(v(2), v(8))
        p.shl(v(7), v(1), imm(2))
        p.lds_store(v(2), v(7))        # never loaded back
        p.iadd(v(9), v(9), s(3))
        p.store(imm(4), v(9))
        recs = _analyze(p.build(), 16, [inp, out], mem, ["out"])
        assert not _recs_of(recs, "lds_store")[0].live
        assert not _recs_of(recs, "v_load")[0].live
