"""The lint engine: file discovery, parsing, scoping, suppression, rules.

One :func:`run` walks a source tree, parses every ``.py`` file once,
classifies each module into *scopes* (``deterministic``, ``kernel``,
``persistence``, ...) from its path, runs every registered rule that
applies, filters findings through inline suppressions, then gives
cross-file rules a ``finalize`` pass.  The run is instrumented like any
other workload: a ``lint`` span plus ``staticcheck.*`` counters, so
``repro stats`` and the Prometheus exporter see linter traffic too.

Suppression pragmas (in comments)::

    x = whatever()   # staticcheck: ignore[D101]   one rule, this line
    y = whatever()   # staticcheck: ignore         every rule, this line
    # staticcheck: skip-file                        (first 10 lines)
    # staticcheck: scope=kernel,deterministic       add scopes (fixtures)
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..obs import get_metrics, get_tracer
from .findings import Finding, Module, Rule, walk_with_parents
from .astutil import collect_aliases
from .registry import all_rules

__all__ = ["run", "scan_paths", "load_module", "RunResult", "classify_scopes"]

#: rule code reserved for files the engine itself cannot parse
PARSE_ERROR = "E001"

_PRAGMA = re.compile(
    r"#\s*staticcheck:\s*(?P<verb>ignore|skip-file|scope)"
    r"(?:\s*(?:\[(?P<codes>[^\]]*)\]|=(?P<scopes>[\w,\s-]+)))?"
)

#: directories whose modules must be replayable from a seed alone
_DETERMINISTIC_DIRS = {"core", "faultinject", "arch", "workloads"}
#: modules holding the vectorized engine kernels (strict numpy hygiene)
_KERNEL_SUFFIXES = ("core/intervals.py", "core/avf.py")


def classify_scopes(relpath: str) -> Set[str]:
    """Scopes implied by a module's path within the package."""
    rel = relpath.replace("\\", "/")
    parts = rel.split("/")
    scopes: Set[str] = set()
    if _DETERMINISTIC_DIRS & set(parts):
        scopes.add("deterministic")
    if rel.endswith(_KERNEL_SUFFIXES):
        scopes.add("kernel")
    if "runtime" in parts:
        scopes.update(("runtime", "persistence"))
    if "obs" in parts:
        scopes.update(("obs", "persistence"))
    if "store" in parts:
        scopes.update(("store", "persistence"))
    if rel.endswith("core/serialize.py"):
        scopes.add("persistence")
    if rel.endswith("runtime/executor.py"):
        scopes.add("executor")
    if "fabric" in parts:
        scopes.add("fabric")
    if "report" in parts or rel.endswith("runtime/guard.py"):
        scopes.add("service")
    return scopes


@dataclass
class RunResult:
    """Everything one lint run produced."""

    root: str
    findings: List[Finding]
    files_scanned: int
    files_skipped: int = 0
    #: files that failed to parse (also present as E001 findings)
    parse_errors: List[str] = field(default_factory=list)

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))


def _parse_pragmas(
    source: str,
) -> Tuple[Dict[int, Optional[FrozenSet[str]]], Set[str], bool]:
    """(line -> suppressed codes | None, extra scopes, skip_file)."""
    suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
    scopes: Set[str] = set()
    skip = False
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, ValueError):
        return suppressions, scopes, skip
    for line, text in comments:
        m = _PRAGMA.search(text)
        if not m:
            continue
        verb = m.group("verb")
        if verb == "skip-file" and line <= 10:
            skip = True
        elif verb == "scope" and m.group("scopes"):
            scopes.update(
                s.strip() for s in m.group("scopes").split(",") if s.strip()
            )
        elif verb == "ignore":
            codes = m.group("codes")
            if codes is None:
                suppressions[line] = None
            else:
                parsed = frozenset(
                    c.strip().upper() for c in codes.split(",") if c.strip()
                )
                prior = suppressions.get(line, frozenset())
                if prior is None:
                    continue
                suppressions[line] = parsed | prior
    return suppressions, scopes, skip


def load_module(path: Path, relpath: str) -> Optional[Module]:
    """Parse one file into a :class:`Module`; None means skip-file.

    Raises :class:`SyntaxError` when the file does not parse — the
    caller turns that into an ``E001`` finding rather than aborting the
    whole run.
    """
    source = path.read_text(encoding="utf-8", errors="replace")
    suppressions, extra_scopes, skip = _parse_pragmas(source)
    if skip:
        return None
    tree = ast.parse(source, filename=str(path))
    _, parents = walk_with_parents(tree)
    return Module(
        path=str(path),
        relpath=relpath.replace("\\", "/"),
        source=source,
        tree=tree,
        lines=source.splitlines(),
        scopes=frozenset(classify_scopes(relpath) | extra_scopes),
        suppressions=suppressions,
        parents=parents,
        aliases=collect_aliases(tree),
    )


def scan_paths(
    paths: Sequence[Union[str, Path]]
) -> List[Tuple[Path, str]]:
    """Expand files/directories into sorted ``(path, relpath)`` pairs.

    A directory contributes every ``*.py`` under it (relative to that
    directory, so package-internal paths like ``core/avf.py`` drive the
    scope classification); a bare file contributes itself under its
    file name.  ``__pycache__`` is skipped.
    """
    out: List[Tuple[Path, str]] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" in f.parts:
                    continue
                out.append((f, f.relative_to(p).as_posix()))
        else:
            out.append((p, p.name))
    return sorted(out, key=lambda pair: pair[1])


def run(
    paths: Sequence[Path],
    rules: Optional[Iterable[Rule]] = None,
) -> RunResult:
    """Lint ``paths`` with every registered (or the given) rule."""
    tracer = get_tracer()
    metrics = get_metrics()
    files = scan_paths(paths)
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    modules: Dict[str, Module] = {}
    parse_errors: List[str] = []
    skipped = 0
    with tracer.span("lint", files=len(files), rules=len(active)) as span:
        for path, relpath in files:
            try:
                module = load_module(path, relpath)
            except SyntaxError as exc:
                parse_errors.append(relpath)
                findings.append(
                    Finding(
                        path=relpath.replace("\\", "/"),
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        rule=PARSE_ERROR,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            if module is None:
                skipped += 1
                continue
            modules[module.relpath] = module
            for rule in active:
                if not rule.applies(module):
                    continue
                findings.extend(rule.check(module))
        for rule in active:
            findings.extend(rule.finalize())
        # Inline suppression is applied centrally so finalize()-produced
        # findings honour pragmas too.
        kept = [
            f for f in findings
            if f.rule == PARSE_ERROR
            or f.path not in modules
            or not modules[f.path].suppressed(f.line, f.rule)
        ]
        kept.sort()
        span.set(findings=len(kept))
    if metrics:
        metrics.counter("staticcheck.files_scanned").inc(len(files))
        metrics.counter("staticcheck.findings").inc(len(kept))
        for f in kept:
            metrics.counter(f"staticcheck.findings.{f.rule}").inc()
    return RunResult(
        root=str(paths[0]) if len(paths) == 1 else "",
        findings=kept,
        files_scanned=len(files),
        files_skipped=skipped,
        parse_errors=parse_errors,
    )
