"""End-to-end AvfStudy pipeline tests on real workloads."""

import numpy as np
import pytest

from repro.core import (
    AvfStudy,
    FaultMode,
    Interleaving,
    NoProtection,
    Parity,
    SecDed,
)
from repro.core.intervals import Outcome
from repro.workloads import run


@pytest.fixture(scope="module")
def matmul_study():
    r = run("matmul")
    return AvfStudy(r.apu, r.output_ranges)


@pytest.fixture(scope="module")
def minife_study():
    r = run("minife")
    return AvfStudy(r.apu, r.output_ranges)


class TestCacheAvf:
    def test_unprotected_sb_is_ace_fraction(self, matmul_study):
        res = matmul_study.cache_avf("l1", FaultMode.linear(1), NoProtection())
        assert 0 < res.sdc_avf < 1
        assert res.due_avf == 0.0

    def test_parity_converts_sdc_to_due(self, matmul_study):
        unprot = matmul_study.cache_avf("l1", FaultMode.linear(1), NoProtection())
        par = matmul_study.cache_avf("l1", FaultMode.linear(1), Parity())
        assert par.sdc_avf == 0.0
        # Parity detects everything a fault would have corrupted, plus dead
        # reads (false DUE), so DUE AVF >= the unprotected SDC AVF.
        assert par.due_avf >= unprot.sdc_avf

    def test_secded_eliminates_single_bit_errors(self, matmul_study):
        res = matmul_study.cache_avf("l1", FaultMode.linear(1), SecDed())
        assert res.total_avf == 0.0

    def test_mb_avf_within_theoretical_bounds(self, matmul_study):
        """Sec. IV-D: SB-AVF <= MB-AVF <= M x SB-AVF (unprotected)."""
        sb = matmul_study.cache_avf("l1", FaultMode.linear(1), NoProtection())
        for m in (2, 3, 4):
            mb = matmul_study.cache_avf("l1", FaultMode.linear(m), NoProtection())
            assert mb.sdc_avf >= sb.sdc_avf - 1e-12
            assert mb.sdc_avf <= m * sb.sdc_avf + 1e-12

    def test_mb_avf_grows_with_fault_mode(self, matmul_study):
        """Sec. VI-C: larger fault modes have larger (unprotected) MB-AVF."""
        avfs = [
            matmul_study.cache_avf("l1", FaultMode.linear(m), NoProtection()).sdc_avf
            for m in (1, 2, 4, 8)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(avfs, avfs[1:]))

    def test_l2_also_measurable(self, matmul_study):
        res = matmul_study.cache_avf("l2", FaultMode.linear(2), Parity())
        assert res.n_groups > 0
        assert 0 <= res.total_avf <= 1

    def test_interleaving_splits_2x1_under_parity(self, matmul_study):
        plain = matmul_study.cache_avf("l1", FaultMode.linear(2), Parity())
        ilv = matmul_study.cache_avf(
            "l1", FaultMode.linear(2), Parity(),
            style=Interleaving.LOGICAL, factor=2,
        )
        # x2 interleaving puts each bit of a 2x1 fault in its own parity
        # word: everything becomes detectable.
        assert ilv.sdc_avf == 0.0
        assert plain.sdc_avf > 0.0

    def test_results_merge_over_cus(self, matmul_study):
        res = matmul_study.cache_avf("l1", FaultMode.linear(1), Parity())
        n_cus = len(matmul_study.apu.memsys.l1s)
        one_cu_groups = res.n_groups // n_cus
        assert res.n_groups == one_cu_groups * n_cus

    def test_invalid_level(self, matmul_study):
        with pytest.raises(ValueError):
            matmul_study.cache_avf("l3", FaultMode.linear(1), Parity())

    def test_series(self, minife_study):
        edges = np.linspace(0, minife_study.end_cycle, 9, dtype=int)
        res = minife_study.cache_avf(
            "l1", FaultMode.linear(2), Parity(), series_edges=edges,
        )
        series = res.series_avf(Outcome.TRUE_DUE)
        assert len(series) == 8
        assert (series >= 0).all() and (series <= 1).all()
        assert series.max() > 0


class TestVgprAvf:
    def test_basic(self, minife_study):
        res = minife_study.vgpr_avf(FaultMode.linear(1), Parity())
        assert 0 < res.due_avf < 1

    def test_inter_thread_preempts_sdc(self, minife_study):
        """Sec. VIII: simultaneous read converts SDC+DUE overlap to DUE."""
        intra = minife_study.vgpr_avf(
            FaultMode.linear(3), Parity(),
            style=Interleaving.INTRA_THREAD, factor=2,
        )
        inter = minife_study.vgpr_avf(
            FaultMode.linear(3), Parity(),
            style=Interleaving.INTER_THREAD, factor=2,
        )
        assert inter.sdc_avf <= intra.sdc_avf + 1e-12

    def test_force_preempt_flag(self, minife_study):
        forced = minife_study.vgpr_avf(
            FaultMode.linear(3), Parity(),
            style=Interleaving.INTRA_THREAD, factor=2, due_preempts_sdc=True,
        )
        plain = minife_study.vgpr_avf(
            FaultMode.linear(3), Parity(),
            style=Interleaving.INTRA_THREAD, factor=2,
        )
        assert forced.sdc_avf <= plain.sdc_avf + 1e-12


class TestAceLocality:
    def test_in_unit_range(self, matmul_study):
        for style, factor in (
            (Interleaving.LOGICAL, 2),
            (Interleaving.WAY_PHYSICAL, 2),
            (Interleaving.INDEX_PHYSICAL, 2),
        ):
            loc = matmul_study.cache_ace_locality("l1", style=style, factor=factor)
            assert 0.0 <= loc <= 1.0

    def test_logical_interleaving_has_higher_locality(self, matmul_study):
        """Sec. VI-B: same-line bits are ACE together more than cross-line."""
        logical = matmul_study.cache_ace_locality(
            "l1", style=Interleaving.LOGICAL, factor=2
        )
        way = matmul_study.cache_ace_locality(
            "l1", style=Interleaving.WAY_PHYSICAL, factor=2
        )
        assert logical >= way - 1e-9
