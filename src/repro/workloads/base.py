"""Workload framework: GPU benchmarks with golden numpy references.

The paper evaluates on Rodinia, the AMD OpenCL samples and Mantevo
(Sec. VI-A).  Each workload here re-implements one of those kernels for the
:mod:`repro.arch` ISA and carries a numpy *reference implementation*; every
run is verified bit-for-bit (integer kernels) or to float32 tolerance
against the reference, so AVF numbers are never computed on a miscompiled
kernel.

A workload declares its *output buffers* — the data the host consumes — which
seed the liveness analysis (everything else the kernel computes is live only
if it transitively feeds those buffers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.gpu import Apu, LaunchStats
from ..arch.memory import GlobalMemory
from ..obs import get_tracer

__all__ = ["Workload", "WorkloadRun", "run_workload"]


@dataclass
class WorkloadRun:
    """A completed, verified workload execution ready for AVF analysis."""

    name: str
    apu: Apu
    memory: GlobalMemory
    output_ranges: List[Tuple[int, int]]
    stats: List[LaunchStats] = field(default_factory=list)

    @property
    def total_instructions(self) -> int:
        return sum(s.instructions for s in self.stats)

    @property
    def end_cycle(self) -> int:
        return self.apu.cycle


class Workload:
    """Base class for benchmark kernels.

    Subclasses set :attr:`name` and :attr:`outputs` and implement
    :meth:`setup` (allocate + initialise buffers, stash numpy copies of the
    inputs), :meth:`launch` (run the kernels on the device) and
    :meth:`expected` (numpy reference results keyed by output buffer name).
    """

    name: str = "workload"
    #: names of the buffers the host reads after the run
    outputs: Sequence[str] = ()
    #: absolute float32 comparison tolerance (0 = exact integer compare)
    rtol: float = 0.0

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)

    # -- to implement ---------------------------------------------------------

    def setup(self, mem: GlobalMemory) -> None:
        raise NotImplementedError

    def launch(self, apu: Apu) -> None:
        raise NotImplementedError

    def expected(self) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    # -- verification -----------------------------------------------------------

    def verify(self, mem: GlobalMemory) -> None:
        """Compare device results against the numpy reference."""
        for name, ref in self.expected().items():
            ref = np.asarray(ref)
            if ref.dtype == np.float32:
                got = mem.view_f32(name)[: ref.size]
                if not np.allclose(got, ref.ravel(), rtol=max(self.rtol, 1e-4),
                                   atol=1e-5, equal_nan=True):
                    worst = np.abs(got - ref.ravel()).max()
                    raise AssertionError(
                        f"{self.name}: output {name!r} mismatch (max err {worst})"
                    )
            else:
                got = mem.view_u32(name)[: ref.size]
                if not (got == ref.ravel().astype(np.uint32)).all():
                    bad = int((got != ref.ravel().astype(np.uint32)).sum())
                    raise AssertionError(
                        f"{self.name}: output {name!r} mismatch ({bad} words)"
                    )


def run_workload(
    workload: Workload,
    *,
    n_cus: int = 4,
    check: bool = True,
    apu_kwargs: Optional[dict] = None,
) -> WorkloadRun:
    """Execute a workload to completion on a fresh device.

    The device is ``finish()``-ed (caches flushed) and, unless ``check`` is
    disabled, outputs are verified against the workload's numpy reference.
    """
    with get_tracer().span("simulate", workload=workload.name, n_cus=n_cus):
        mem = GlobalMemory()
        workload.setup(mem)
        apu = Apu(n_cus=n_cus, memory=mem, **(apu_kwargs or {}))
        workload.launch(apu)
        apu.finish()
        if check:
            workload.verify(mem)
    ranges = [mem.buffer(name) for name in workload.outputs]
    return WorkloadRun(workload.name, apu, mem, ranges, list(apu.launches))
