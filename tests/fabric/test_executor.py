"""FabricExecutor integration: thread fleets, fallback, drain, resume.

Covers the executor-shaped contract end to end over real HTTP on
localhost — journaled skip, at-least-once finalize, graceful
degradation to local execution, signal-style drain via ``stop_after``,
and span provenance — without spawning processes (node-death scenarios
live in ``test_chaos_fabric.py``).
"""

import json

import pytest

from repro.obs.trace import Tracer
from repro.runtime import CampaignInterrupted, Task, TaskOutcome
from repro.runtime.fabric import FabricExecutor, stub_job
from repro.runtime.journal import Journal

from .conftest import (
    expected_map,
    journaled_ids,
    outcome_map,
    stub_tasks,
)


class TestFleetExecution:
    def test_fleet_runs_all_tasks(self, coordinator, thread_fleet,
                                  tmp_path):
        thread_fleet(2)
        tasks = stub_tasks("fleet", 12)
        journal = tmp_path / "campaign.jsonl"
        ex = FabricExecutor(
            coordinator, stub_job(), journal=journal, drain_signals=False,
        )
        results = ex.run(tasks)
        ex.close()
        assert outcome_map(results) == expected_map(tasks)
        # one journal record per task, stamped with node provenance
        ids = journaled_ids(journal)
        assert sorted(ids) == [t.id for t in tasks]
        assert len(ids) == len(set(ids))
        nodes = {
            json.loads(line)["node"]
            for line in journal.read_text().splitlines()
        }
        assert nodes <= {"t0", "t1", "local"}
        assert nodes & {"t0", "t1"}, "no task ran on the fleet"

    def test_worker_failures_surface_as_labelled_results(
        self, coordinator, thread_fleet, tmp_path
    ):
        thread_fleet(1)
        tasks = stub_tasks("mix", 4) + [Task("mix/bad", "not-an-int")]
        ex = FabricExecutor(
            coordinator, stub_job(),
            journal=tmp_path / "j.jsonl", drain_signals=False,
        )
        results = ex.run(tasks)
        ex.close()
        assert results["mix/bad"].outcome == TaskOutcome.INFRA_ERROR
        assert "ValueError" in results["mix/bad"].error
        ok = {k: v for k, v in results.items() if k != "mix/bad"}
        assert all(r.outcome == TaskOutcome.OK for r in ok.values())

    def test_duplicate_task_ids_rejected(self, coordinator):
        ex = FabricExecutor(coordinator, stub_job(), drain_signals=False)
        with pytest.raises(ValueError, match="duplicate task ids"):
            ex.run([Task("same", 1), Task("same", 2)])


class TestGracefulDegradation:
    def test_fleetless_campaign_demotes_to_local(self, coordinator,
                                                 tmp_path):
        # No worker ever registers: after worker_grace the driver pulls
        # every task to local execution — the campaign must still finish.
        tasks = stub_tasks("alone", 6)
        journal = tmp_path / "j.jsonl"
        ex = FabricExecutor(
            coordinator, stub_job(), journal=journal,
            worker_grace=0.05, drain_signals=False,
        )
        results = ex.run(tasks)
        ex.close()
        assert outcome_map(results) == expected_map(tasks)
        nodes = {
            json.loads(line)["node"]
            for line in journal.read_text().splitlines()
        }
        assert nodes == {"local"}

    def test_local_fn_receives_original_payload(self, coordinator):
        # With a driver-side local_fn the demoted path must feed the
        # *original* payload, not the JSON-encoded one.
        seen = []

        def local_fn(payload):
            seen.append(payload)
            return payload * 10

        tasks = [Task("orig/0", 7)]
        ex = FabricExecutor(
            coordinator, stub_job(), local_fn=local_fn,
            worker_grace=0.05, drain_signals=False,
        )
        results = ex.run(tasks)
        assert results["orig/0"].value == 70
        assert seen == [7]


class TestDrainAndResume:
    def test_stop_after_drains_to_campaign_interrupted(
        self, coordinator, tmp_path
    ):
        tasks = stub_tasks("drain", 8)
        journal = tmp_path / "j.jsonl"
        ex = FabricExecutor(
            coordinator, stub_job(), journal=journal,
            worker_grace=0.05, drain_signals=False, stop_after=3,
        )
        with pytest.raises(CampaignInterrupted) as exc_info:
            ex.run(tasks)
        assert exc_info.value.completed >= 3
        assert exc_info.value.total == 8
        done = journaled_ids(journal)
        assert len(done) == len(set(done))
        assert 3 <= len(done) < 8

    def test_resume_completes_without_reexecution(self, coordinator,
                                                  tmp_path):
        tasks = stub_tasks("resume", 8)
        journal = tmp_path / "j.jsonl"
        ex = FabricExecutor(
            coordinator, stub_job(), journal=journal,
            worker_grace=0.05, drain_signals=False, stop_after=3,
        )
        with pytest.raises(CampaignInterrupted):
            ex.run(tasks)
        already = set(journaled_ids(journal))
        ex2 = FabricExecutor(
            coordinator, stub_job(), journal=journal,
            worker_grace=0.05, drain_signals=False,
        )
        results = ex2.run(tasks)
        ex2.close()
        assert outcome_map(results) == expected_map(tasks)
        # journaled records were not re-executed: their lines are intact
        # and appear exactly once
        ids = journaled_ids(journal)
        assert sorted(ids) == [t.id for t in tasks]
        assert len(ids) == len(set(ids))
        assert already <= set(ids)

    def test_fully_journaled_run_never_touches_the_fleet(self, tmp_path):
        # All results already journaled: run() must return without even
        # starting the coordinator (it is not started by this test).
        from repro.runtime.fabric import FabricCoordinator

        tasks = stub_tasks("done", 3)
        journal = Journal(tmp_path / "j.jsonl")
        for t in tasks:
            journal.append({
                "task": t.id, "outcome": TaskOutcome.OK,
                "value": t.payload * 2, "error": "", "attempts": 1,
                "duration": 0.0,
            })
        journal.close()
        coord = FabricCoordinator()
        ex = FabricExecutor(
            coord, stub_job(), journal=tmp_path / "j.jsonl",
            drain_signals=False,
        )
        results = ex.run(tasks)
        ex.close()
        assert outcome_map(results) == expected_map(tasks)
        assert coord._server is None, "coordinator was started needlessly"


class TestSpanMerging:
    def test_merge_foreign_rebases_and_stamps_provenance(self):
        tracer = Tracer()
        tracer.merge_foreign(
            [
                {"name": "inject", "start": 0.25, "duration": 0.1,
                 "depth": 1, "args": {"id": "t/00"}},
                "junk",
                {"name": "missing-fields"},
            ],
            offset=2.0,
            node="n0",
        )
        assert len(tracer.events) == 1
        span = tracer.events[0]
        assert span.name == "inject"
        assert span.start == pytest.approx(2.25)
        assert span.depth == 1
        assert span.args["id"] == "t/00"
        assert span.args["node"] == "n0"

    def test_worker_spans_reach_the_session_trace(self, coordinator,
                                                  thread_fleet):
        # The report path carries spans; _merge_spans folds them into the
        # driver's tracer with node provenance.  Simulate the worker side
        # by reporting a record with spans directly.
        from repro import obs

        tasks = stub_tasks("spans", 1)
        ex = FabricExecutor(coordinator, stub_job(), drain_signals=False)
        registry, tracer = obs.enable()
        try:
            rnd = coordinator.begin_round(stub_job(), tasks)
            coordinator.handle({
                "v": 1, "method": "lease", "node": "n0", "seq": 0,
                "deadline_ms": 1000, "params": {"max_tasks": 1},
            })
            rec = {
                "task": tasks[0].id, "outcome": TaskOutcome.OK, "value": 0,
                "error": "", "attempts": 1, "duration": 0.05,
            }
            spans = [{"name": "fabric_task", "start": 0.0,
                      "duration": 0.05, "depth": 0,
                      "args": {"id": tasks[0].id}}]
            coordinator.handle({
                "v": 1, "method": "report", "node": "n0", "seq": 1,
                "deadline_ms": 1000,
                "params": {"records": [{"record": rec, "spans": spans}]},
            })
            results = {}
            for node, r, s in coordinator.take_inbox():
                ex._absorb(node, r, s, results)
            merged = [e for e in tracer.events
                      if e.name == "fabric_task"
                      and e.args.get("node") == "n0"]
            assert len(merged) == 1
            # the driver's own finalize event also carries provenance
            assert any(e.name == "task" and e.args.get("node") == "n0"
                       for e in tracer.events)
            assert registry.counter("fabric.worker_spans_merged").value == 1
        finally:
            coordinator.end_round()
            obs.disable()
