"""Typed query surface over the results store.

:meth:`repro.store.ResultStore.query` returns a :class:`QueryResult`:
a list of frozen :class:`AvfRow` records plus numpy-friendly accessors
(``column()`` -> ``np.ndarray``) and in-process grouping/aggregation, so
analysis and the report renderers never touch SQL.  The WHERE clause is
assembled exclusively from the whitelisted column names below with ``?``
placeholders — the only dynamic parts of any statement are identifiers
this module owns, never values (enforced project-wide by staticcheck
rule P501).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

__all__ = ["AvfRow", "QueryResult", "FILTER_COLUMNS", "build_where"]


@dataclass(frozen=True)
class AvfRow:
    """One stored AVF measurement (one row of ``avf_results``)."""

    workload: str
    structure: str
    scheme: str
    style: str
    factor: int
    mode: str
    ser_model: str
    seed: int
    engine_version: str
    due_avf: float
    sdc_avf: float
    true_due_avf: float
    false_due_avf: float
    total_avf: float
    n_groups: Optional[int] = None
    window_cycles: Optional[int] = None
    source: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: avf_results columns legal in filters, group keys and ORDER BY
FILTER_COLUMNS: Tuple[str, ...] = (
    "workload", "structure", "scheme", "style", "factor", "mode",
    "ser_model", "seed", "engine_version", "source",
)

#: avf_results columns holding measured values (aggregatable)
VALUE_COLUMNS: Tuple[str, ...] = (
    "due_avf", "sdc_avf", "true_due_avf", "false_due_avf", "total_avf",
    "n_groups", "window_cycles",
)

_KEY_COLUMNS = frozenset(FILTER_COLUMNS)

_AGGREGATES: Dict[str, Callable[[Sequence[float]], float]] = {
    "mean": lambda xs: float(np.mean(np.asarray(xs, dtype=np.float64))),
    "min": lambda xs: float(np.min(np.asarray(xs, dtype=np.float64))),
    "max": lambda xs: float(np.max(np.asarray(xs, dtype=np.float64))),
    "sum": lambda xs: float(np.sum(np.asarray(xs, dtype=np.float64))),
    "count": lambda xs: float(len(xs)),
}


def build_where(
    filters: Mapping[str, Any]
) -> Tuple[str, List[Any]]:
    """(WHERE clause, parameters) from a column -> value(s) mapping.

    Scalar values become ``col = ?``; sequences become ``col IN (?,...)``.
    Only :data:`FILTER_COLUMNS` are accepted — anything else raises, so a
    typo'd filter fails loudly instead of silently matching everything.
    """
    clauses: List[str] = []
    params: List[Any] = []
    for key in sorted(filters):
        if key not in _KEY_COLUMNS:
            raise KeyError(
                f"unknown filter column {key!r}; valid: "
                + ", ".join(FILTER_COLUMNS)
            )
        value = filters[key]
        if isinstance(value, (list, tuple, frozenset, set)):
            values = sorted(value) if isinstance(value, (set, frozenset)) \
                else list(value)
            if not values:
                clauses.append("1 = 0")
                continue
            placeholders = ", ".join("?" for _ in values)
            clauses.append(f"{key} IN ({placeholders})")
            params.extend(values)
        else:
            clauses.append(f"{key} = ?")
            params.append(value)
    where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
    return where, params


class QueryResult:
    """Rows returned by :meth:`~repro.store.ResultStore.query`.

    Sequence-like (``len``, iteration, indexing) over :class:`AvfRow`,
    with columnar access for numpy consumers and small in-process
    aggregation helpers for report rendering.
    """

    def __init__(self, rows: Sequence[AvfRow]) -> None:
        self.rows: List[AvfRow] = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, i: int) -> AvfRow:
        return self.rows[i]

    def __bool__(self) -> bool:
        return bool(self.rows)

    def column(self, name: str) -> np.ndarray:
        """One column as an ndarray (float64 for values, object for keys)."""
        values = [getattr(r, name) for r in self.rows]
        if name in VALUE_COLUMNS:
            return np.asarray(
                [np.nan if v is None else float(v) for v in values],
                dtype=np.float64,
            )
        # Key columns are heterogeneous strings/ints for grouping, not
        # kernel inputs; object dtype is the honest container here.
        return np.asarray(values, dtype=object)  # staticcheck: ignore[N202]

    def to_arrays(
        self, names: Iterable[str]
    ) -> Dict[str, np.ndarray]:
        """Several columns at once (a poor man's dataframe)."""
        return {name: self.column(name) for name in names}

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [r.to_dict() for r in self.rows]

    def aggregate(self, value: str = "sdc_avf", agg: str = "mean") -> float:
        """One aggregate over the whole result set."""
        if not self.rows:
            raise ValueError("cannot aggregate an empty result set")
        return _AGGREGATES[agg](
            [float(getattr(r, value) or 0.0) for r in self.rows]
        )

    def group_by(
        self,
        keys: Union[str, Sequence[str]],
        value: str = "sdc_avf",
        agg: str = "mean",
    ) -> Dict[Tuple[Any, ...], float]:
        """Aggregate ``value`` per distinct key tuple.

        ``keys`` are filter-column names; ``agg`` is one of ``mean``,
        ``min``, ``max``, ``sum``, ``count``.  Group order follows the
        sorted key tuples, so renderers iterating the result are
        deterministic.
        """
        if isinstance(keys, str):
            keys = (keys,)
        for key in keys:
            if key not in _KEY_COLUMNS:
                raise KeyError(f"unknown group column {key!r}")
        if agg not in _AGGREGATES:
            raise KeyError(
                f"unknown aggregate {agg!r}; valid: "
                + ", ".join(sorted(_AGGREGATES))
            )
        buckets: Dict[Tuple[Any, ...], List[float]] = {}
        for r in self.rows:
            bucket = tuple(getattr(r, k) for k in keys)
            buckets.setdefault(bucket, []).append(
                float(getattr(r, value) or 0.0)
            )
        fn = _AGGREGATES[agg]
        return {k: fn(vs) for k, vs in sorted(buckets.items())}
