"""Set-associative cache hierarchy with AVF event instrumentation.

Two-level GPU hierarchy as in the paper's experimental setup (Sec. VI-A):
a 16KB L1 per compute unit and a 256KB shared L2, 64-byte lines, byte-level
reads and writes.  The L1 is write-through/no-write-allocate and the L2 is
write-back/write-allocate (the GCN arrangement).

Caches here are *metadata-only*: functional data lives in
:class:`~repro.arch.memory.GlobalMemory`.  Every residency-affecting action
emits an event (fill / read / write / evict) tagged with the global cycle;
the lifetime analysis turns those events into per-byte ACE intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .trace import EvictEvent, FillEvent, ReadEvent, WriteEvent

__all__ = ["CacheConfig", "Cache", "MemSystem"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    n_sets: int
    n_ways: int
    line_bytes: int
    hit_latency: int

    @property
    def capacity(self) -> int:
        return self.n_sets * self.n_ways * self.line_bytes

    def set_of(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.n_sets


#: Default L1: 16KB, 4-way, 64B lines (paper Sec. VI-A).
L1_CONFIG = CacheConfig(n_sets=64, n_ways=4, line_bytes=64, hit_latency=4)
#: Default L2: 256KB, 8-way, 64B lines.
L2_CONFIG = CacheConfig(n_sets=512, n_ways=8, line_bytes=64, hit_latency=24)


class Cache:
    """One cache level: tags, LRU state, dirty byte masks, event log."""

    def __init__(self, name: str, config: CacheConfig, writeback: bool) -> None:
        self.name = name
        self.config = config
        self.writeback = writeback
        self.tags = np.full((config.n_sets, config.n_ways), -1, dtype=np.int64)
        self.lru = np.zeros((config.n_sets, config.n_ways), dtype=np.int64)
        self.dirty = np.zeros(
            (config.n_sets, config.n_ways, config.line_bytes), dtype=bool
        )
        self.events: List[object] = []
        self._lru_clock = 0
        # statistics
        self.hits = 0
        self.misses = 0

    # -- lookup/replacement --------------------------------------------------

    def find(self, line_addr: int) -> Tuple[int, int]:
        """(set, way) of a resident line, way = -1 on miss."""
        s = self.config.set_of(line_addr)
        ways = np.where(self.tags[s] == line_addr)[0]
        return (s, int(ways[0])) if len(ways) else (s, -1)

    def touch(self, s: int, way: int) -> None:
        self._lru_clock += 1
        self.lru[s, way] = self._lru_clock

    def victim_way(self, s: int) -> int:
        empty = np.where(self.tags[s] == -1)[0]
        if len(empty):
            return int(empty[0])
        return int(np.argmin(self.lru[s]))

    # -- operations (all emit events) -----------------------------------------

    def evict(self, s: int, way: int, t: int) -> None:
        """Evict the line at (s, way); writeback dirty bytes first."""
        line = int(self.tags[s, way])
        if line == -1:
            return
        if self.writeback and self.dirty[s, way].any():
            self.events.append(
                ReadEvent(
                    t, s, way, line, "writeback", byte_mask=self.dirty[s, way].copy()
                )
            )
            self.dirty[s, way] = False
        self.events.append(EvictEvent(t, s, way, line))
        self.tags[s, way] = -1

    def install(self, line_addr: int, t: int, fill_id: int) -> Tuple[int, int]:
        """Make room for and fill ``line_addr``; returns its (set, way)."""
        s = self.config.set_of(line_addr)
        way = self.victim_way(s)
        self.evict(s, way, t)
        self.tags[s, way] = line_addr
        self.touch(s, way)
        self.events.append(FillEvent(t, s, way, line_addr, fill_id))
        return s, way

    def read_demand(self, s: int, way: int, t: int, uid: int) -> None:
        self.events.append(
            ReadEvent(t, s, way, int(self.tags[s, way]), "demand", uid=uid)
        )

    def read_for_fill(self, s: int, way: int, t: int, link: int) -> None:
        self.events.append(
            ReadEvent(t, s, way, int(self.tags[s, way]), "fill", link=link)
        )

    def write(
        self, s: int, way: int, t: int, uid: int, byte_offsets: np.ndarray
    ) -> None:
        self.events.append(WriteEvent(t, s, way, int(self.tags[s, way]), uid))
        if self.writeback:
            self.dirty[s, way, byte_offsets] = True

    def flush(self, t: int) -> None:
        """Write back and evict every resident line (end of simulation)."""
        for s in range(self.config.n_sets):
            for way in range(self.config.n_ways):
                if self.tags[s, way] != -1:
                    self.evict(s, way, t)


class MemSystem:
    """The GPU memory system: per-CU L1s over a shared L2 over memory."""

    def __init__(
        self,
        n_cus: int,
        l1_config: CacheConfig = L1_CONFIG,
        l2_config: CacheConfig = L2_CONFIG,
        mem_latency: int = 120,
        store_latency: int = 4,
    ) -> None:
        if l1_config.line_bytes != l2_config.line_bytes:
            raise ValueError("L1 and L2 must share a line size")
        self.line_bytes = l1_config.line_bytes
        self.l1s = [Cache(f"l1.{i}", l1_config, writeback=False) for i in range(n_cus)]
        self.l2 = Cache("l2", l2_config, writeback=True)
        self.mem_latency = mem_latency
        self.store_latency = store_latency
        self._fill_seq = 0

    def _next_fill(self) -> int:
        self._fill_seq += 1
        return self._fill_seq

    # -- internal line operations ---------------------------------------------

    def _l2_read_line(self, line: int, t: int, link: int) -> int:
        """Read a line out of the L2 to fill an L1; returns added latency."""
        s, way = self.l2.find(line)
        if way >= 0:
            self.l2.hits += 1
            lat = self.l2.config.hit_latency
        else:
            self.l2.misses += 1
            s, way = self.l2.install(line, t, self._next_fill())
            lat = self.l2.config.hit_latency + self.mem_latency
        self.l2.touch(s, way)
        self.l2.read_for_fill(s, way, t, link)
        return lat

    def _l1_load_line(self, cu: int, line: int, t: int, uid: int) -> int:
        l1 = self.l1s[cu]
        s, way = l1.find(line)
        if way >= 0:
            l1.hits += 1
            lat = l1.config.hit_latency
        else:
            l1.misses += 1
            fill_id = self._next_fill()
            lat = self.l1s[cu].config.hit_latency + self._l2_read_line(
                line, t, fill_id
            )
            s, way = l1.install(line, t, fill_id)
        l1.touch(s, way)
        l1.read_demand(s, way, t, uid)
        return lat

    def _store_line(
        self, cu: int, line: int, offsets: np.ndarray, t: int, uid: int
    ) -> None:
        # Write-through L1: update a resident copy, never allocate.
        l1 = self.l1s[cu]
        s, way = l1.find(line)
        if way >= 0:
            l1.touch(s, way)
            l1.write(s, way, t, uid, offsets)
        # Write-back, write-allocate L2.
        s, way = self.l2.find(line)
        if way < 0:
            self.l2.misses += 1
            s, way = self.l2.install(line, t, self._next_fill())
        else:
            self.l2.hits += 1
        self.l2.touch(s, way)
        self.l2.write(s, way, t, uid, offsets)

    # -- public interface -------------------------------------------------------

    def load(self, cu: int, addrs: np.ndarray, nbytes: int, t: int, uid: int) -> int:
        """Vector load at per-lane addresses; returns latency in cycles."""
        lines = np.unique(addrs // self.line_bytes * self.line_bytes)
        lat = 0
        for line in lines.tolist():
            lat = max(lat, self._l1_load_line(cu, int(line), t, uid))
        return lat

    def store(self, cu: int, addrs: np.ndarray, nbytes: int, t: int, uid: int) -> int:
        """Vector store; buffered, so latency is small and fixed."""
        lines = addrs // self.line_bytes * self.line_bytes
        for line in np.unique(lines).tolist():
            sel = lines == line
            offs = []
            for a in addrs[sel].tolist():
                base = int(a) - int(line)
                offs.extend(range(base, base + nbytes))
            self._store_line(cu, int(line), np.unique(offs), t, uid)
        return self.store_latency

    def flush(self, t: int) -> None:
        """Drain the whole hierarchy (host reads results after the kernel)."""
        for l1 in self.l1s:
            l1.flush(t)
        self.l2.flush(t)
