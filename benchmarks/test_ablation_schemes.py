"""Ablation: protection-scheme sweep (parity, SEC-DED, DEC-TED, CRC).

The paper evaluates parity and SEC-DED; DEC-TED and CRC are the natural
extension points its Sec. VIII discussion raises (stronger correction vs
detection-only codes).  This sweep measures all four over 1x1-8x1 faults
with x2 logical interleaving and checks the coding-theory orderings:

* DEC-TED corrects everything up to 4 adjacent bits (2 per word) — zero AVF
  for small modes where SEC-DED already detects;
* CRC-8 (detection-only) never produces SDC for any Mx1 mode up to 8;
* stronger codes never have more SDC than weaker ones.
"""

import pytest

from repro.core import SCHEMES, FaultMode, Interleaving

MODES = (1, 2, 3, 4, 6, 8)
SCHEME_NAMES = ("none", "parity", "secded", "dected", "crc8")


def _measure(study_of):
    study = study_of("minife")
    table = {}
    for name in SCHEME_NAMES:
        per_mode = {}
        for m in MODES:
            res = study.cache_avf(
                "l1", FaultMode.linear(m), SCHEMES[name],
                style=Interleaving.LOGICAL, factor=2,
            )
            per_mode[m] = (res.due_avf, res.sdc_avf)
        table[name] = per_mode
    return table


@pytest.mark.benchmark(group="ablation")
def test_ablation_schemes(benchmark, study_of, report):
    table = benchmark.pedantic(_measure, args=(study_of,), rounds=1, iterations=1)
    lines = [f"{'scheme':<8} " + " ".join(
        f"{'DUE' + str(m) + 'x1':>9} {'SDC' + str(m) + 'x1':>9}" for m in MODES
    )]
    for name in SCHEME_NAMES:
        cells = []
        for m in MODES:
            d, s_ = table[name][m]
            cells.append(f"{d:9.4f} {s_:9.4f}")
        lines.append(f"{name:<8} " + " ".join(cells))
    report("ablation_schemes", lines)

    for m in MODES:
        none_due, none_sdc = table["none"][m]
        par_due, par_sdc = table["parity"][m]
        sec_due, sec_sdc = table["secded"][m]
        dec_due, dec_sdc = table["dected"][m]
        crc_due, crc_sdc = table["crc8"][m]
        # No protection: everything ACE is SDC, nothing is detected.
        assert none_due == 0.0
        # CRC-8 detects every Mx1 burst here: zero SDC at every mode.
        assert crc_sdc == 0.0
        # Correction strength ordering on SDC: dected <= secded.
        assert dec_sdc <= sec_sdc + 1e-12
        # With x2 interleaving, an Mx1 fault leaves ceil(M/2) <= 4 bits per
        # word: DEC-TED corrects M <= 4 completely.
        if m <= 4:
            assert dec_due == 0.0 and dec_sdc == 0.0
    # SEC-DED corrects single bits; parity only detects them.
    assert table["secded"][1] == (0.0, 0.0)
    assert table["parity"][1][0] > 0.0
