"""Distributed sweeps: the ``sweep_grid`` entrypoint end to end.

One coordinator plus thread workers serve real (tiny) sweep cells; the
assertions cover cell-granular distribution, local-vs-fabric result
equality, journal resume, and the executor's commit-time store sink.
"""

import pytest

from repro.core import SCHEMES, FaultMode
from repro.experiments import sweep_benchmarks
from repro.store import ResultStore

# fabric cells ship schemes by registry name, so use registry instances
KWARGS = dict(
    modes=[FaultMode.linear(1), FaultMode.linear(2)],
    schemes=[SCHEMES["parity"], SCHEMES["secded"]],
)


@pytest.fixture
def fleet(coordinator, thread_fleet):
    thread_fleet(2)
    return coordinator


class TestSweepGridFabric:
    def test_matches_local_sweep(self, fleet):
        local, _ = sweep_benchmarks(["vectoradd"], "l2", **KWARGS)
        points, failed = sweep_benchmarks(
            ["vectoradd"], "l2", fabric=fleet, **KWARGS
        )
        assert failed == {}
        assert sorted(map(str, points["vectoradd"])) == \
            sorted(map(str, local["vectoradd"]))

    def test_multiple_benchmarks_share_the_fleet(self, fleet):
        points, failed = sweep_benchmarks(
            ["vectoradd", "transpose"], "l2", fabric=fleet,
            modes=[FaultMode.linear(2)], schemes=[SCHEMES["parity"]],
        )
        assert failed == {}
        assert len(points["vectoradd"]) == 1
        assert len(points["transpose"]) == 1

    def test_journaled_fabric_sweep_lands_in_store(self, fleet, tmp_path):
        """The coordinator-finalize sink: a journaled distributed sweep
        is in the store the moment the run returns, with the journal as
        its provenance — and re-running it changes nothing."""
        journal = tmp_path / "grid.jsonl"
        store_path = tmp_path / "results.sqlite"
        points, failed = sweep_benchmarks(
            ["vectoradd"], "vgpr", fabric=fleet,
            journal=journal, store=store_path, **KWARGS
        )
        assert failed == {}
        with ResultStore(store_path) as store:
            rows = store.query()
            assert len(rows) == len(points["vectoradd"]) == 4
            assert {r.workload for r in rows} == {"vectoradd"}
            assert {r.structure for r in rows} == {"vgpr"}
            # provenance: the executor ingested from the journal at
            # commit time (the direct sink afterwards then deduped)
            assert all(
                r.source and r.source.endswith("grid.jsonl") for r in rows
            )

        # resume: every cell is already journaled, re-ingest is a no-op
        again, failed = sweep_benchmarks(
            ["vectoradd"], "vgpr", fabric=fleet,
            journal=journal, store=store_path, **KWARGS
        )
        assert failed == {}
        assert sorted(map(str, again["vectoradd"])) == \
            sorted(map(str, points["vectoradd"]))
        with ResultStore(store_path) as store:
            assert len(store.query()) == 4

    def test_unjournaled_fabric_sweep_still_reaches_store(
        self, fleet, tmp_path
    ):
        """Without a journal the executor has nothing to ingest at
        commit; the direct post-run sink covers the store instead."""
        store_path = tmp_path / "results.sqlite"
        points, failed = sweep_benchmarks(
            ["vectoradd"], "l2", fabric=fleet, store=store_path,
            modes=[FaultMode.linear(2)], schemes=[SCHEMES["parity"]],
        )
        assert failed == {}
        with ResultStore(store_path) as store:
            rows = store.query()
            assert len(rows) == 1
            assert rows[0].source is None
