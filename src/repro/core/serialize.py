"""Serialisation of lifetimes and AVF results.

Industrial AVF infrastructures separate the expensive event-tracking phase
from the cheap analysis phase (Sec. VI-A); this module makes that split
durable: lifetimes extracted from one simulation can be saved and re-used
for any number of later (fault mode x scheme x interleaving) measurements,
and results can be archived alongside the regenerated tables.

Formats: lifetimes use ``.npz`` (flat interval arrays, compact and fast);
results use plain JSON dictionaries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from ..ioutil import atomic_write
from .avf import MbAvfResult, StructureLifetimes
from .faultmodes import FaultMode
from .intervals import IntervalSet, Outcome

__all__ = [
    "save_lifetimes",
    "load_lifetimes",
    "result_to_dict",
    "result_from_dict",
    "save_results",
    "load_results",
]

PathLike = Union[str, Path]


def save_lifetimes(lifetimes: StructureLifetimes, path: PathLike) -> None:
    """Write a structure's lifetimes to a compressed ``.npz`` file.

    All intervals are flattened into three parallel arrays plus a per-byte
    offset index, which keeps files compact (one L2's lifetimes are a few
    hundred KB) and reload exact.
    """
    counts = np.array([len(s) for s in lifetimes.byte_isets], dtype=np.int64)
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    starts = np.empty(total, dtype=np.int64)
    ends = np.empty(total, dtype=np.int64)
    classes = np.empty(total, dtype=np.int8)
    k = 0
    for iset in lifetimes.byte_isets:
        for s_, e_, c_ in iset:
            starts[k] = s_
            ends[k] = e_
            classes[k] = c_
            k += 1
    atomic_write(
        Path(path),
        lambda fh: np.savez_compressed(
            fh,
            name=np.array(lifetimes.name),
            window=np.array([lifetimes.start_cycle, lifetimes.end_cycle]),
            offsets=offsets,
            starts=starts,
            ends=ends,
            classes=classes,
        ),
    )


def load_lifetimes(path: PathLike) -> StructureLifetimes:
    """Read lifetimes written by :func:`save_lifetimes`."""
    with np.load(Path(path), allow_pickle=False) as data:
        offsets = data["offsets"]
        starts = data["starts"]
        ends = data["ends"]
        classes = data["classes"]
        isets: List[IntervalSet] = []
        for b in range(len(offsets) - 1):
            lo, hi = int(offsets[b]), int(offsets[b + 1])
            isets.append(
                IntervalSet(
                    (int(starts[k]), int(ends[k]), int(classes[k]))
                    for k in range(lo, hi)
                )
            )
        window = data["window"]
        return StructureLifetimes(
            str(data["name"]), isets, int(window[0]), int(window[1])
        )


def result_to_dict(result: MbAvfResult) -> Dict:
    """JSON-safe dictionary of an :class:`MbAvfResult`."""
    out = {
        "structure": result.structure,
        "mode": {
            "name": result.mode.name,
            "offsets": [list(o) for o in result.mode.offsets],
        },
        "scheme": result.scheme,
        "n_groups": result.n_groups,
        "window_cycles": result.window_cycles,
        "outcome_cycles": {
            o.name: cyc for o, cyc in result.outcome_cycles.items()
        },
        "due_avf": result.due_avf,
        "sdc_avf": result.sdc_avf,
    }
    if result.series is not None:
        out["series_edges"] = result.series_edges.tolist()
        out["series"] = result.series.tolist()
    return out


def result_from_dict(data: Dict) -> MbAvfResult:
    """Inverse of :func:`result_to_dict` (derived fields recomputed)."""
    mode = FaultMode(
        data["mode"]["name"],
        tuple(tuple(o) for o in data["mode"]["offsets"]),
    )
    series = data.get("series")
    edges = data.get("series_edges")
    return MbAvfResult(
        structure=data["structure"],
        mode=mode,
        scheme=data["scheme"],
        n_groups=data["n_groups"],
        window_cycles=data["window_cycles"],
        outcome_cycles={
            Outcome[name]: cyc
            for name, cyc in data["outcome_cycles"].items()
        },
        series_edges=np.asarray(edges, dtype=np.int64) if edges else None,
        series=np.asarray(series, dtype=np.float64) if series else None,
    )


def save_results(results: Dict[str, MbAvfResult], path: PathLike) -> None:
    """Archive a keyed collection of results as JSON."""
    payload = {key: result_to_dict(r) for key, r in results.items()}
    atomic_write(Path(path), json.dumps(payload, indent=2, sort_keys=True))


def load_results(path: PathLike) -> Dict[str, MbAvfResult]:
    """Read results written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    return {key: result_from_dict(d) for key, d in payload.items()}
