"""A small SIMT instruction set and program builder.

The paper measures AVF on a gem5 APU model (x86 CPU + integrated GPU).  We
substitute a from-scratch SIMT GPU with a compact GCN-flavoured ISA: 16-lane
wavefronts, per-lane 32-bit vector registers (VGPRs), per-wavefront scalar
registers (SGPRs), a vector condition code (VCC), predicated memory access,
local (LDS) scratch memory, and uniform (scalar-condition) control flow.
Divergent control flow is expressed with predication (``cndmask`` /
predicated stores), a standard GPU compilation strategy.

Programs are built with :class:`ProgramBuilder`, a tiny assembler DSL::

    p = ProgramBuilder()
    p.load(v(2), addr=v(0))          # per-lane load
    p.iadd(v(2), v(2), imm(1))
    p.store(v(2), addr=v(0))
    prog = p.build()

Operands are ``('v', i)`` vector registers, ``('s', i)`` scalar registers or
``('imm', value)`` immediates, built with the :func:`v`, :func:`s` and
:func:`imm` helpers.

Register conventions at kernel start:

* ``v0`` — global work-item (thread) id
* ``v1`` — lane id within the wavefront (0-15)
* ``s0`` — workgroup id, ``s1`` — global wavefront id
* ``s2``.. — kernel arguments (buffer base addresses, sizes, scalars)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "WAVEFRONT_LANES",
    "Operand",
    "v",
    "s",
    "imm",
    "fimm",
    "Instr",
    "Program",
    "ProgramBuilder",
    "VECTOR_OPS",
    "SCALAR_OPS",
    "MEM_OPS",
    "CMP_CONDS",
]

#: Lanes per wavefront.  The paper's VGPR case study reads/writes registers
#: for 16 threads at a time (Sec. VIII), so wavefronts are 16 lanes wide.
WAVEFRONT_LANES = 16

Operand = Tuple[str, Union[int, float]]


def v(idx: int) -> Operand:
    """Vector (per-lane) register operand."""
    if idx < 0:
        raise ValueError("register index must be non-negative")
    return ("v", idx)


def s(idx: int) -> Operand:
    """Scalar (per-wavefront) register operand."""
    if idx < 0:
        raise ValueError("register index must be non-negative")
    return ("s", idx)


def imm(value: int) -> Operand:
    """Integer immediate operand."""
    return ("imm", int(value))


def fimm(value: float) -> Operand:
    """Float immediate operand (stored as float32 bit pattern)."""
    import struct

    return ("imm", struct.unpack("<I", struct.pack("<f", float(value)))[0])


CMP_CONDS = ("lt", "le", "eq", "ne", "gt", "ge")

#: Vector ALU ops (dst + sources; no memory access).
VECTOR_OPS = frozenset(
    {
        "v_mov", "v_add", "v_sub", "v_mul", "v_and", "v_or", "v_xor", "v_not",
        "v_shl", "v_shr", "v_ashr", "v_min", "v_max", "v_abs",
        "v_fadd", "v_fsub", "v_fmul", "v_fmac", "v_frcp", "v_fsqrt",
        "v_fexp", "v_flog", "v_fmin", "v_fmax", "v_fabs",
        "v_cvt_i2f", "v_cvt_f2i",
        "v_cmp", "v_fcmp", "v_cndmask",
        "v_shuffle_up", "v_shuffle_xor",
    }
)

#: Scalar ops (uniform across the wavefront).
SCALAR_OPS = frozenset(
    {
        "s_mov", "s_add", "s_sub", "s_mul", "s_shl", "s_shr",
        "s_cmp", "s_branch", "s_cbranch", "s_endpgm", "v_readlane",
    }
)

#: Memory ops (vector addresses, per-lane accesses).
MEM_OPS = frozenset(
    {
        "v_load", "v_store", "v_load_u8", "v_store_u8",
        "lds_load", "lds_store",
    }
)


@dataclass(frozen=True)
class Instr:
    """One static instruction."""

    op: str
    dst: Optional[Operand] = None
    srcs: Tuple[Operand, ...] = ()
    cond: Optional[str] = None          # for v_cmp / s_cmp families
    target: Optional[str] = None        # branch label
    offset: int = 0                     # byte offset for memory ops
    predicated: bool = False            # mask memory access with VCC

    def __post_init__(self) -> None:
        known = VECTOR_OPS | SCALAR_OPS | MEM_OPS
        if self.op not in known:
            raise ValueError(f"unknown op {self.op!r}")
        if self.cond is not None and self.cond not in CMP_CONDS:
            raise ValueError(f"unknown comparison {self.cond!r}")


@dataclass
class Program:
    """A fully-built program: instruction list + resolved branch targets."""

    instrs: List[Instr]
    labels: Dict[str, int]
    n_vregs: int
    n_sregs: int

    def __post_init__(self) -> None:
        for ins in self.instrs:
            if ins.target is not None and ins.target not in self.labels:
                raise ValueError(f"undefined label {ins.target!r}")

    def target_pc(self, label: str) -> int:
        return self.labels[label]

    def __len__(self) -> int:
        return len(self.instrs)


class ProgramBuilder:
    """Incremental assembler for :class:`Program` objects."""

    def __init__(self) -> None:
        self._instrs: List[Instr] = []
        self._labels: Dict[str, int] = {}
        self._max_v = 1  # v0/v1 are preset
        self._max_s = 1  # s0/s1 are preset

    # -- plumbing ----------------------------------------------------------

    def _note(self, *ops: Optional[Operand]) -> None:
        for op in ops:
            if op is None:
                continue
            kind, idx = op
            if kind == "v":
                self._max_v = max(self._max_v, int(idx))
            elif kind == "s":
                self._max_s = max(self._max_s, int(idx))

    def _emit(self, instr: Instr) -> "ProgramBuilder":
        self._note(instr.dst, *instr.srcs)
        self._instrs.append(instr)
        return self

    def label(self, name: str) -> "ProgramBuilder":
        """Define a branch target at the current position."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instrs)
        return self

    def build(self) -> Program:
        """Finalise the program (appends an implicit ``s_endpgm``)."""
        instrs = list(self._instrs)
        if not instrs or instrs[-1].op != "s_endpgm":
            instrs.append(Instr("s_endpgm"))
        return Program(instrs, dict(self._labels), self._max_v + 1, self._max_s + 1)

    # -- vector ALU --------------------------------------------------------

    def mov(self, d: Operand, a: Operand) -> "ProgramBuilder":
        return self._emit(Instr("v_mov", d, (a,)))

    def iadd(self, d, a, b):
        return self._emit(Instr("v_add", d, (a, b)))

    def isub(self, d, a, b):
        return self._emit(Instr("v_sub", d, (a, b)))

    def imul(self, d, a, b):
        return self._emit(Instr("v_mul", d, (a, b)))

    def iand(self, d, a, b):
        return self._emit(Instr("v_and", d, (a, b)))

    def ior(self, d, a, b):
        return self._emit(Instr("v_or", d, (a, b)))

    def ixor(self, d, a, b):
        return self._emit(Instr("v_xor", d, (a, b)))

    def inot(self, d, a):
        return self._emit(Instr("v_not", d, (a,)))

    def shl(self, d, a, b):
        return self._emit(Instr("v_shl", d, (a, b)))

    def shr(self, d, a, b):
        return self._emit(Instr("v_shr", d, (a, b)))

    def ashr(self, d, a, b):
        return self._emit(Instr("v_ashr", d, (a, b)))

    def imin(self, d, a, b):
        return self._emit(Instr("v_min", d, (a, b)))

    def imax(self, d, a, b):
        return self._emit(Instr("v_max", d, (a, b)))

    def iabs(self, d, a):
        return self._emit(Instr("v_abs", d, (a,)))

    # -- vector float ------------------------------------------------------

    def fadd(self, d, a, b):
        return self._emit(Instr("v_fadd", d, (a, b)))

    def fsub(self, d, a, b):
        return self._emit(Instr("v_fsub", d, (a, b)))

    def fmul(self, d, a, b):
        return self._emit(Instr("v_fmul", d, (a, b)))

    def fmac(self, d, a, b):
        """d += a * b (fused multiply-accumulate; d is read and written)."""
        return self._emit(Instr("v_fmac", d, (a, b, d)))

    def frcp(self, d, a):
        return self._emit(Instr("v_frcp", d, (a,)))

    def fsqrt(self, d, a):
        return self._emit(Instr("v_fsqrt", d, (a,)))

    def fexp(self, d, a):
        return self._emit(Instr("v_fexp", d, (a,)))

    def flog(self, d, a):
        return self._emit(Instr("v_flog", d, (a,)))

    def fmin(self, d, a, b):
        return self._emit(Instr("v_fmin", d, (a, b)))

    def fmax(self, d, a, b):
        return self._emit(Instr("v_fmax", d, (a, b)))

    def fabs(self, d, a):
        return self._emit(Instr("v_fabs", d, (a,)))

    def cvt_i2f(self, d, a):
        return self._emit(Instr("v_cvt_i2f", d, (a,)))

    def cvt_f2i(self, d, a):
        return self._emit(Instr("v_cvt_f2i", d, (a,)))

    # -- compares / select / cross-lane -------------------------------------

    def cmp(self, cond: str, a, b):
        """Integer compare; writes the per-lane VCC mask."""
        return self._emit(Instr("v_cmp", None, (a, b), cond=cond))

    def fcmp(self, cond: str, a, b):
        return self._emit(Instr("v_fcmp", None, (a, b), cond=cond))

    def cndmask(self, d, a, b):
        """d = VCC ? a : b (per lane)."""
        return self._emit(Instr("v_cndmask", d, (a, b)))

    def shuffle_up(self, d, a, delta: int):
        """Lane i reads a[i-delta]; lanes < delta read 0."""
        return self._emit(Instr("v_shuffle_up", d, (a, imm(delta))))

    def shuffle_xor(self, d, a, mask: int):
        """Lane i reads a[i ^ mask] (butterfly exchange)."""
        return self._emit(Instr("v_shuffle_xor", d, (a, imm(mask))))

    def readlane(self, sd, a, lane: int):
        """Scalar dst = vector src at a fixed lane."""
        return self._emit(Instr("v_readlane", sd, (a, imm(lane))))

    # -- memory --------------------------------------------------------------

    def load(self, d, addr, offset: int = 0, pred: bool = False):
        """Per-lane 32-bit load from global memory at ``addr + offset``."""
        return self._emit(
            Instr("v_load", d, (addr,), offset=offset, predicated=pred)
        )

    def store(self, src, addr, offset: int = 0, pred: bool = False):
        """Per-lane 32-bit store to global memory."""
        return self._emit(
            Instr("v_store", None, (src, addr), offset=offset, predicated=pred)
        )

    def load_u8(self, d, addr, offset: int = 0, pred: bool = False):
        """Per-lane zero-extended byte load."""
        return self._emit(
            Instr("v_load_u8", d, (addr,), offset=offset, predicated=pred)
        )

    def store_u8(self, src, addr, offset: int = 0, pred: bool = False):
        """Per-lane byte store (low 8 bits of the source)."""
        return self._emit(
            Instr("v_store_u8", None, (src, addr), offset=offset, predicated=pred)
        )

    def lds_load(self, d, addr, offset: int = 0, pred: bool = False):
        """Per-lane 32-bit load from workgroup-local scratch (LDS)."""
        return self._emit(
            Instr("lds_load", d, (addr,), offset=offset, predicated=pred)
        )

    def lds_store(self, src, addr, offset: int = 0, pred: bool = False):
        """Per-lane 32-bit store to workgroup-local scratch (LDS)."""
        return self._emit(
            Instr("lds_store", None, (src, addr), offset=offset, predicated=pred)
        )

    # -- scalar / control ----------------------------------------------------

    def s_mov(self, sd, a):
        return self._emit(Instr("s_mov", sd, (a,)))

    def s_iadd(self, sd, a, b):
        return self._emit(Instr("s_add", sd, (a, b)))

    def s_isub(self, sd, a, b):
        return self._emit(Instr("s_sub", sd, (a, b)))

    def s_imul(self, sd, a, b):
        return self._emit(Instr("s_mul", sd, (a, b)))

    def s_shl(self, sd, a, b):
        return self._emit(Instr("s_shl", sd, (a, b)))

    def s_shr(self, sd, a, b):
        return self._emit(Instr("s_shr", sd, (a, b)))

    def s_cmp(self, cond: str, a, b):
        """Scalar compare; writes SCC (used by cbranch)."""
        return self._emit(Instr("s_cmp", None, (a, b), cond=cond))

    def branch(self, label: str):
        return self._emit(Instr("s_branch", target=label))

    def cbranch(self, label: str, if_scc: bool = True):
        """Branch if SCC is true (``if_scc``) or false."""
        ins = Instr("s_cbranch", srcs=(imm(1 if if_scc else 0),), target=label)
        return self._emit(ins)

    def endpgm(self):
        return self._emit(Instr("s_endpgm"))
