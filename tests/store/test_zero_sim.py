"""Acceptance: ``repro query`` and ``repro report build`` answer from
the store alone — zero simulation, zero AVF-engine work.

The proof is observational: with tracing enabled, the only spans a
reader emits are store spans ("query"); none of the engine or campaign
spans ("integrate", "golden", "model", "singles", "multibit") ever
fire, and no ``avf.*`` / ``campaign.*`` counters move.
"""

import json

import pytest

from repro import obs
from repro.cli import main

from .conftest import avf_row

#: spans only simulation/AVF-engine work can emit
_ENGINE_SPANS = frozenset(
    ("integrate", "golden", "model", "singles", "multibit", "sweep")
)


@pytest.fixture
def seeded_path(store, store_path):
    store.put_avf_rows(
        [avf_row(), avf_row(workload="transpose", sdc_avf=0.5)]
    )
    return store_path


@pytest.fixture
def traced():
    registry, tracer = obs.enable()
    try:
        yield registry, tracer
    finally:
        obs.disable()


def _engine_activity(registry, tracer):
    spans = {e.name for e in tracer.events} & _ENGINE_SPANS
    counters = {
        name for name in registry.snapshot()["counters"]
        if name.startswith(("avf.", "campaign.", "sim."))
    }
    return spans | counters


class TestQueryIsSimulationFree:
    def test_rows(self, seeded_path, traced, capsys):
        registry, tracer = traced
        assert main(["query", "--store", str(seeded_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
        assert _engine_activity(registry, tracer) == set()
        assert "query" in {e.name for e in tracer.events}

    def test_group_by(self, seeded_path, traced, capsys):
        registry, tracer = traced
        assert main(
            ["query", "--store", str(seeded_path),
             "--group-by", "workload", "--agg", "mean", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["groups"]) == 2
        assert _engine_activity(registry, tracer) == set()

    def test_store_counters_do_move(self, seeded_path, traced, capsys):
        registry, tracer = traced
        main(["query", "--store", str(seeded_path), "--json"])
        capsys.readouterr()
        assert registry.snapshot()["counters"].get("store.queries", 0) >= 1


class TestReportBuildIsSimulationFree:
    def test_build(self, seeded_path, traced, tmp_path, capsys):
        registry, tracer = traced
        out = tmp_path / "report"
        assert main(
            ["report", "build", "--store", str(seeded_path),
             "--out", str(out)]
        ) == 0
        assert (out / "index.html").exists()
        assert _engine_activity(registry, tracer) == set()
