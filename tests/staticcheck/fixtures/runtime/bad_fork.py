"""F301 fixture: forking and stray signal handlers."""

import multiprocessing
import os
import signal


def spawn_badly():
    pid = os.fork()
    ctx = multiprocessing.get_context("fork")
    signal.signal(signal.SIGTERM, lambda *_: None)
    return pid, ctx
