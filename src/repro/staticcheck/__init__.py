"""repro.staticcheck — AST-based invariant linter for this codebase.

The reproduction's claims rest on invariants no unit test can watch
everywhere at once: bit-replayable determinism from a seed, int64/float64
kernel dtype discipline, spawn-only fork safety with atomic whole-file
writes, and no-op-singleton observability.  This package checks them
statically, with a ratcheting committed baseline so existing debt can
only shrink.

Use it three ways::

    repro lint src/repro --baseline tools/staticcheck_baseline.json
    python -m repro.staticcheck src/repro --format=json
    from repro.staticcheck import run  # programmatic

See ``docs/static-analysis.md`` for the rule catalogue, suppression
syntax, and the baseline-ratchet workflow.
"""

from .baseline import compare, counts_for
from .engine import RunResult, run
from .findings import Finding, Module, Rule
from .registry import all_rules, get_rule, register, rule_classes

__all__ = [
    "Finding",
    "Module",
    "Rule",
    "RunResult",
    "run",
    "compare",
    "counts_for",
    "register",
    "all_rules",
    "rule_classes",
    "get_rule",
]
