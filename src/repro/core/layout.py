"""Physical bit layouts: mapping logical state to SRAM geometry.

MB-AVF depends on *which bits are physically adjacent*, which is decided by
the array's interleaving style (Sec. II-C, VI-B, VIII of the paper):

* **logical** interleaving — each data word is split into ``I`` interleaved
  check words; physically adjacent bits belong to the *same* cache line /
  register but different protection domains.
* **way-physical** interleaving — adjacent bits come from lines in different
  *ways* of the same set.
* **index-physical** interleaving — adjacent bits come from lines at adjacent
  *indices* (sets).
* **intra-thread** interleaving (register files, "rxI") — adjacent bits come
  from different registers of the same GPU thread.
* **inter-thread** interleaving (register files, "txI") — adjacent bits come
  from the same register of different GPU threads.

A :class:`SramArray` materialises the layout as two dense (rows x cols) maps:
``byte_of`` (which tracked byte each physical bit belongs to) and
``domain_of`` (which protection domain covers it).  By convention domain
``d`` covers tracked bytes ``[d * domain_bytes, (d+1) * domain_bytes)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "Interleaving",
    "SramArray",
    "build_cache_array",
    "build_regfile_array",
    "build_tag_array",
    "cache_byte_index",
    "regfile_byte_index",
]


class Interleaving(Enum):
    """Interleaving styles from the paper's evaluation."""

    NONE = "none"
    LOGICAL = "logical"
    WAY_PHYSICAL = "way"
    INDEX_PHYSICAL = "index"
    INTRA_THREAD = "intra_thread"
    INTER_THREAD = "inter_thread"


@dataclass
class SramArray:
    """Physical geometry of a tracked structure.

    ``byte_of[r, c]`` is the tracked byte id stored at physical bit (r, c);
    ``domain_of[r, c]`` is the protection domain id covering that bit.
    """

    name: str
    byte_of: np.ndarray
    domain_of: np.ndarray
    domain_bytes: int
    interleave_factor: int
    style: Interleaving
    #: AVF-engine enumeration memo, keyed (mode, canonical lifetime ids);
    #: populated lazily by core.avf._signatures_for
    _sig_memo: Optional[Dict[Any, Any]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.byte_of.shape != self.domain_of.shape:
            raise ValueError("byte_of and domain_of must have the same shape")
        if self.byte_of.ndim != 2:
            raise ValueError("layout maps must be 2-D (rows x cols)")

    @property
    def rows(self) -> int:
        return self.byte_of.shape[0]

    @property
    def cols(self) -> int:
        return self.byte_of.shape[1]

    @property
    def n_bits(self) -> int:
        return self.byte_of.size

    @property
    def n_bytes(self) -> int:
        return int(self.byte_of.max()) + 1

    @property
    def n_domains(self) -> int:
        return int(self.domain_of.max()) + 1

    def n_groups(self, mode_height: int, mode_width: int) -> int:
        """Number of fault groups of an HxW bounding box in this array."""
        if mode_height > self.rows or mode_width > self.cols:
            return 0
        return (self.rows - mode_height + 1) * (self.cols - mode_width + 1)


def _assemble(
    name: str,
    rows_of_clusters: Sequence[Sequence[Sequence[int]]],
    domain_bytes: int,
    factor: int,
    style: Interleaving,
) -> SramArray:
    """Build an :class:`SramArray` from per-row lists of interleave clusters.

    Each cluster is a list of ``I`` domain ids whose bits are bit-interleaved
    across ``I * domain_bits`` physical columns: physical position ``q``
    inside the cluster holds bit ``q // I`` of domain ``cluster[q % I]``.
    """
    domain_bits = domain_bytes * 8
    width = len(rows_of_clusters[0]) * len(rows_of_clusters[0][0]) * domain_bits
    byte_of = np.empty((len(rows_of_clusters), width), dtype=np.int32)
    domain_of = np.empty_like(byte_of)
    for r, clusters in enumerate(rows_of_clusters):
        col = 0
        for cluster in clusters:
            ilv = len(cluster)
            for q in range(ilv * domain_bits):
                dom = cluster[q % ilv]
                bit = q // ilv
                domain_of[r, col] = dom
                byte_of[r, col] = dom * domain_bytes + bit // 8
                col += 1
        if col != width:
            raise ValueError("rows must all have the same physical width")
    return SramArray(name, byte_of, domain_of, domain_bytes, factor, style)


def cache_byte_index(
    set_idx: int, way: int, offset: int, n_ways: int, line_bytes: int
) -> int:
    """Tracked byte id of (set, way, offset) in a cache data array."""
    return (set_idx * n_ways + way) * line_bytes + offset


def build_cache_array(
    n_sets: int,
    n_ways: int,
    line_bytes: int,
    *,
    domain_bytes: int = 4,
    style: Interleaving = Interleaving.NONE,
    factor: int = 1,
    name: str = "cache",
) -> SramArray:
    """Physical layout of a set-associative cache's data array.

    Each cache line is divided into protection domains of ``domain_bytes``
    bytes.  ``factor`` (the ``I`` in "xI interleaving") chooses how many
    domains are bit-interleaved per cluster; ``style`` chooses where the
    cluster's companion domains come from.
    """
    if factor < 1:
        raise ValueError("interleave factor must be >= 1")
    if style is Interleaving.NONE:
        factor = 1
    if line_bytes % domain_bytes:
        raise ValueError("line size must be a multiple of the domain size")
    domains_per_line = line_bytes // domain_bytes

    def line_domain(set_idx: int, way: int, k: int) -> int:
        return (
            cache_byte_index(set_idx, way, 0, n_ways, line_bytes) // domain_bytes + k
        )

    rows: List[List[List[int]]] = []
    if style in (Interleaving.NONE, Interleaving.LOGICAL):
        if domains_per_line % factor:
            raise ValueError("logical interleaving factor must divide domains/line")
        # One row per line; clusters of `factor` consecutive domains of the
        # same line are bit-interleaved (= each factor*domain-bit data word is
        # split into `factor` check words).
        for s in range(n_sets):
            for w in range(n_ways):
                rows.append(
                    [
                        [line_domain(s, w, g * factor + i) for i in range(factor)]
                        for g in range(domains_per_line // factor)
                    ]
                )
    elif style is Interleaving.WAY_PHYSICAL:
        if n_ways % factor:
            raise ValueError("way interleaving factor must divide associativity")
        # One row per (set, way-group); cluster k interleaves domain k of the
        # `factor` lines in the group.
        for s in range(n_sets):
            for wg in range(n_ways // factor):
                rows.append(
                    [
                        [line_domain(s, wg * factor + i, k) for i in range(factor)]
                        for k in range(domains_per_line)
                    ]
                )
    elif style is Interleaving.INDEX_PHYSICAL:
        if n_sets % factor:
            raise ValueError("index interleaving factor must divide set count")
        # One row per (set-group, way); cluster k interleaves domain k of the
        # lines at `factor` adjacent indices.
        for sg in range(n_sets // factor):
            for w in range(n_ways):
                rows.append(
                    [
                        [line_domain(sg * factor + i, w, k) for i in range(factor)]
                        for k in range(domains_per_line)
                    ]
                )
    else:
        raise ValueError(f"{style} is not a cache interleaving style")
    return _assemble(name, rows, domain_bytes, factor, style)


def build_tag_array(
    n_sets: int,
    n_ways: int,
    *,
    tag_bytes: int = 3,
    factor: int = 1,
    name: str = "tags",
) -> SramArray:
    """Physical layout of a cache's tag array.

    One row per set holding every way's tag; each tag is its own protection
    domain (tag parity/ECC is per entry).  ``factor`` bit-interleaves the
    tags of ``factor`` adjacent ways, the usual tag-array MBF mitigation.
    Tracked byte ids are ``(set * n_ways + way) * tag_bytes + b``.
    """
    if factor < 1 or n_ways % factor:
        raise ValueError("interleave factor must divide the way count")

    def tag_domain(set_idx: int, way: int) -> int:
        return set_idx * n_ways + way

    rows: List[List[List[int]]] = []
    for s in range(n_sets):
        rows.append(
            [
                [tag_domain(s, wg * factor + i) for i in range(factor)]
                for wg in range(n_ways // factor)
            ]
        )
    style = Interleaving.NONE if factor == 1 else Interleaving.WAY_PHYSICAL
    return _assemble(name, rows, tag_bytes, factor, style)


def regfile_byte_index(thread: int, reg: int, byte: int, n_regs: int, reg_bytes: int = 4) -> int:
    """Tracked byte id of (thread, register, byte) in a register file."""
    return (thread * n_regs + reg) * reg_bytes + byte


def build_regfile_array(
    n_threads: int,
    n_regs: int,
    *,
    reg_bytes: int = 4,
    style: Interleaving = Interleaving.INTRA_THREAD,
    factor: int = 1,
    name: str = "vgpr",
) -> SramArray:
    """Physical layout of a (vector) register file.

    Every register is one protection domain (the paper assumes each 32-bit
    register has its own ECC or parity).  ``intra_thread`` ("rxI") interleaves
    ``I`` consecutive registers of the same thread; ``inter_thread`` ("txI")
    interleaves the same register of ``I`` adjacent threads.
    """
    if factor < 1:
        raise ValueError("interleave factor must be >= 1")

    def reg_domain(thread: int, reg: int) -> int:
        return thread * n_regs + reg

    rows: List[List[List[int]]] = []
    if style in (Interleaving.NONE, Interleaving.INTRA_THREAD):
        if style is Interleaving.NONE:
            factor = 1
        if n_regs % factor:
            raise ValueError("intra-thread factor must divide register count")
        for t in range(n_threads):
            rows.append(
                [
                    [reg_domain(t, g * factor + i) for i in range(factor)]
                    for g in range(n_regs // factor)
                ]
            )
    elif style is Interleaving.INTER_THREAD:
        if n_threads % factor:
            raise ValueError("inter-thread factor must divide thread count")
        for tg in range(n_threads // factor):
            rows.append(
                [
                    [reg_domain(tg * factor + i, r) for i in range(factor)]
                    for r in range(n_regs)
                ]
            )
    else:
        raise ValueError(f"{style} is not a register-file interleaving style")
    return _assemble(name, rows, reg_bytes, factor, style)
