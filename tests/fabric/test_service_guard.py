"""Overload protection on the fabric RPC surface.

Unit-level: hostile requests (oversized, negative, malformed
Content-Length), shed and rate-limited admissions, and server-side
``deadline_ms`` enforcement, all observed through real HTTP against a
live coordinator.

Acceptance (``service_chaos`` marker): a flood of junk clients plus
chaos-mangled worker requests hammer an undersized coordinator while a
campaign runs — the coordinator sheds (503/413/400) instead of dying,
and the campaign still completes with zero lost and zero duplicated
journal records.
"""

import http.client
import json
import os
import threading
import time

import pytest

from repro import obs
from repro.runtime.chaos import ChaosPolicy, ChaosSpec
from repro.runtime.fabric import FabricCoordinator, FabricExecutor, stub_job
from repro.runtime.fabric.protocol import encode_request
from repro.runtime.guard import GuardConfig

from .conftest import (
    ThreadWorker,
    expected_map,
    journaled_ids,
    outcome_map,
    stub_tasks,
)

#: the service-chaos CI job runs two fixed seeds; assertions hold for any
SERVICE_SEED = int(os.environ.get("REPRO_SERVICE_SEED", "1"))


def raw_post(address, body=b"", headers=None, timeout=5.0):
    """One bare POST to /rpc; returns (status, headers, payload bytes)."""
    conn = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        conn.putrequest("POST", "/rpc")
        conn.putheader("Content-Type", "application/json")
        sent = dict(headers or {})
        sent.setdefault("Content-Length", str(len(body)))
        for name, value in sent.items():
            conn.putheader(name, value)
        conn.endheaders()
        if body:
            conn.send(body)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def envelope(method="register", node="probe", seq=0, deadline_ms=None):
    return encode_request(
        method, {}, node=node, seq=seq, deadline_ms=deadline_ms
    )


def slow_post(address, total=8000, chunk=1000, pause=0.02, timeout=5.0):
    """A slowloris-style client: trickle ``total`` bytes of body so the
    admission slot stays held for the whole transfer."""
    conn = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        conn.putrequest("POST", "/rpc")
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Content-Length", str(total))
        conn.endheaders()
        body = b"x" * total
        for i in range(0, total, chunk):
            conn.send(body[i:i + chunk])
            time.sleep(pause)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


@pytest.fixture
def tight_coordinator():
    """A coordinator with a deliberately tiny guard for rejection tests."""
    coord = FabricCoordinator(
        guard=GuardConfig(
            max_inflight=1, max_queue=1, queue_timeout=0.2,
            max_body_bytes=1024, retry_after=0.25,
        ),
    )
    coord.start()
    yield coord
    coord.stop()


class TestHostileBodies:
    def test_oversized_content_length_is_413_before_read(
        self, tight_coordinator
    ):
        # The body is never sent: the server must reject on the header
        # alone instead of waiting for bytes that never come.
        status, headers, payload = raw_post(
            tight_coordinator.address,
            headers={"Content-Length": str(50 * 1024 * 1024)},
        )
        assert status == 413
        assert json.loads(payload)["ok"] is False
        # rejection before the body desynchronizes keep-alive framing,
        # so the server closes the connection
        assert headers.get("Connection") == "close"

    def test_negative_content_length_is_400(self, tight_coordinator):
        status, _, payload = raw_post(
            tight_coordinator.address, headers={"Content-Length": "-7"}
        )
        assert status == 400
        assert "Content-Length" in json.loads(payload)["error"]

    def test_malformed_content_length_is_400(self, tight_coordinator):
        status, _, _ = raw_post(
            tight_coordinator.address, headers={"Content-Length": "banana"}
        )
        assert status == 400

    def test_valid_rpc_still_succeeds(self, tight_coordinator):
        status, _, payload = raw_post(
            tight_coordinator.address, body=envelope()
        )
        assert status == 200
        assert json.loads(payload)["ok"] is True


class TestAdmissionOnTheWire:
    def test_shed_is_503_with_retry_after(self, tight_coordinator):
        guard = tight_coordinator.guard
        guard.acquire()  # occupy the only slot; the caller queues, times
        try:             # out after queue_timeout, and is shed
            t0 = time.monotonic()
            status, headers, payload = raw_post(
                tight_coordinator.address, body=envelope()
            )
            waited = time.monotonic() - t0
        finally:
            guard.release()
        assert status == 503
        assert headers.get("Retry-After") == "0.25"
        assert json.loads(payload)["ok"] is False
        # shed after the queue timeout, not after the socket timeout
        assert waited < 3.0

    def test_expired_deadline_is_504(self, tight_coordinator):
        guard = tight_coordinator.guard
        guard.acquire()
        # Release within the queue timeout (0.2s) so the request is
        # admitted — after ~0.1s in the queue, far past its 50ms budget.
        releaser = threading.Timer(0.1, guard.release)
        releaser.start()
        try:
            status, _, payload = raw_post(
                tight_coordinator.address,
                body=envelope(deadline_ms=50),
            )
        finally:
            releaser.join()
        assert status == 504
        assert "deadline" in json.loads(payload)["error"]

    def test_generous_deadline_passes(self, tight_coordinator):
        status, _, _ = raw_post(
            tight_coordinator.address, body=envelope(deadline_ms=60_000)
        )
        assert status == 200

    def test_rate_limit_is_429(self):
        coord = FabricCoordinator(
            guard=GuardConfig(rate=0.000001, burst=1.0, retry_after=0.1),
        )
        coord.start()
        try:
            first, _, _ = raw_post(coord.address, body=envelope(seq=0))
            second, headers, payload = raw_post(
                coord.address, body=envelope(seq=1)
            )
        finally:
            coord.stop()
        assert first == 200
        assert second == 429
        assert headers.get("Retry-After") == "0.1"
        assert json.loads(payload)["ok"] is False


@pytest.mark.service_chaos
class TestOverloadAcceptance:
    def test_flooded_coordinator_sheds_and_campaign_completes(
        self, tmp_path
    ):
        """Acceptance (a): 4x overload + hostile-client chaos — the
        coordinator sheds rather than dies, and the campaign finishes
        with zero lost and zero duplicated records."""
        journal = tmp_path / "campaign.jsonl"
        tasks = stub_tasks("flood", 12)
        coord = FabricCoordinator(
            lease_ttl=1.0, lease_batch=2, poll_interval=0.02,
            guard=GuardConfig(
                max_inflight=2, max_queue=2, queue_timeout=0.05,
                max_body_bytes=64 * 1024, retry_after=0.02,
            ),
        )
        spec = ChaosSpec(
            request_oversized=0.1, request_malformed=0.1,
            request_slow=0.1, slow_request_seconds=0.01,
        )
        stop_flood = threading.Event()
        statuses = []
        statuses_lock = threading.Lock()

        def fast_flooder(i):
            seq = 0
            while not stop_flood.is_set():
                try:
                    status, _, payload = raw_post(
                        coord.address,
                        body=envelope(node=f"flood-{i}", seq=seq),
                        timeout=5.0,
                    )
                except OSError:
                    continue  # connection refused during teardown race
                with statuses_lock:
                    statuses.append(status)
                # every rejection is well-formed JSON, never a hang
                assert json.loads(payload).get("ok") in (True, False)
                seq += 1

        def slow_flooder():
            # Trickling bodies pin admission slots, so the fast flood
            # behind them genuinely overloads the gate.
            while not stop_flood.is_set():
                try:
                    status, _ = slow_post(coord.address)
                except OSError:
                    continue
                with statuses_lock:
                    statuses.append(status)

        with obs.observe() as (registry, _tracer):
            coord.start()
            fleet = [
                ThreadWorker(
                    coord.address, f"n{i}",
                    chaos=ChaosPolicy(spec, seed=SERVICE_SEED + i),
                ).start()
                for i in range(2)
            ]
            flood = [
                threading.Thread(target=fast_flooder, args=(i,),
                                 daemon=True)
                for i in range(6)
            ] + [
                threading.Thread(target=slow_flooder, daemon=True)
                for _ in range(3)
            ]
            for t in flood:
                t.start()
            try:
                ex = FabricExecutor(
                    coord, stub_job(sleep=0.01), journal=journal,
                    worker_grace=2.0, drain_signals=False,
                )
                results = ex.run(tasks)
                ex.close()
            finally:
                stop_flood.set()
                for t in flood:
                    t.join(timeout=10.0)
                for w in fleet:
                    w.stop()
                coord.stop()
            counters = registry.snapshot()["counters"]

        # The campaign survived the flood with exact results ...
        assert outcome_map(results) == expected_map(tasks)
        # ... and the journal holds every task once: zero lost, zero dup.
        ids = journaled_ids(journal)
        assert sorted(ids) == [t.id for t in tasks]
        assert len(ids) == len(set(ids))
        # The flood was real overload: some requests were shed, and every
        # answer was a well-formed HTTP status, not a crash or a hang.
        assert 503 in statuses
        assert set(statuses) <= {200, 400, 413, 429, 503, 504}
        assert counters.get("guard.fabric.shed", 0) > 0
        assert counters.get("guard.fabric.admitted", 0) > 0
