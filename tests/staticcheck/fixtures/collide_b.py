"""O402 fixture, minority half: the same name registered as a gauge."""

from repro.obs import get_metrics


def record():
    get_metrics().gauge("fixture.jobs_active").set(1)
