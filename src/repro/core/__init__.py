"""Core MB-AVF analysis: the paper's primary contribution."""

from .analysis import AvfStudy
from .designer import (
    VGPR_DESIGN_PALETTE,
    DesignPoint,
    DesignResult,
    choose_design,
    evaluate_designs,
)
from .markov import WordMarkovModel, cache_mttf_hours, word_mttf_hours
from .sweep import SweepPoint, sweep_cache_avf, sweep_vgpr_avf, tabulate
from .avf import (
    AvfConfig,
    MbAvfResult,
    StructureLifetimes,
    ace_locality,
    compute_mb_avf,
    compute_mb_avf_batch,
    compute_sb_avf,
    merge_results,
)
from .faultmodes import MX1_MODES, FaultMode
from .intervals import AceClass, IntervalSet, Outcome
from .layout import (
    Interleaving,
    SramArray,
    build_cache_array,
    build_regfile_array,
    build_tag_array,
)
from .lifetime import derive_tag_lifetimes
from .mttf import figure2_sweep, mttf_smbf_hours, mttf_tmbf_hours
from .protection import (
    SCHEMES,
    Crc,
    DecTed,
    NoProtection,
    Parity,
    ProtectionScheme,
    Reaction,
    SecDed,
)
from .ser import (
    TABLE_I,
    TABLE_III,
    StructureSer,
    chip_ser,
    fault_mode_fractions,
    soft_error_rate,
)

__all__ = [
    "AvfStudy",
    "VGPR_DESIGN_PALETTE",
    "DesignPoint",
    "DesignResult",
    "choose_design",
    "evaluate_designs",
    "WordMarkovModel",
    "cache_mttf_hours",
    "word_mttf_hours",
    "SweepPoint",
    "sweep_cache_avf",
    "sweep_vgpr_avf",
    "tabulate",
    "AvfConfig",
    "MbAvfResult",
    "StructureLifetimes",
    "ace_locality",
    "compute_mb_avf",
    "compute_mb_avf_batch",
    "compute_sb_avf",
    "merge_results",
    "MX1_MODES",
    "FaultMode",
    "AceClass",
    "IntervalSet",
    "Outcome",
    "Interleaving",
    "SramArray",
    "build_cache_array",
    "build_regfile_array",
    "build_tag_array",
    "derive_tag_lifetimes",
    "figure2_sweep",
    "mttf_smbf_hours",
    "mttf_tmbf_hours",
    "SCHEMES",
    "Crc",
    "DecTed",
    "NoProtection",
    "Parity",
    "ProtectionScheme",
    "Reaction",
    "SecDed",
    "TABLE_I",
    "TABLE_III",
    "StructureSer",
    "chip_ser",
    "fault_mode_fractions",
    "soft_error_rate",
]
