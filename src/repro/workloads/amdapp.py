"""AMD OpenCL sample suite workloads (Sec. VI-A, Table II).

Re-implementations of MatrixMultiplication, MatrixTranspose, PrefixSum,
ScanLargeArrays, Histogram, FastWalshTransform, DwtHaar1D, DCT and
RecursiveGaussian for the :mod:`repro.arch` ISA.  Each carries an exact
(float32-faithful) numpy reference.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..arch.gpu import Apu
from ..arch.isa import ProgramBuilder, fimm, imm, s, v
from ..arch.memory import GlobalMemory
from .base import Workload
from .util import addr_of, addr_of_tid

__all__ = [
    "MatrixMultiplication",
    "MatrixTranspose",
    "PrefixSum",
    "ScanLargeArrays",
    "Histogram",
    "FastWalshTransform",
    "DwtHaar1D",
    "Dct",
    "RecursiveGaussian",
]


class MatrixMultiplication(Workload):
    """C = A x B, 16x16 float32, one thread per output element."""

    name = "matmul"
    outputs = ("c",)
    N = 16

    def setup(self, mem: GlobalMemory) -> None:
        n = self.N
        self.a = self.rng.random((n, n), dtype=np.float32)
        self.b = self.rng.random((n, n), dtype=np.float32)
        self.base_a = mem.alloc("a", n * n * 4)
        self.base_b = mem.alloc("b", n * n * 4)
        self.base_c = mem.alloc("c", n * n * 4)
        mem.view_f32("a")[:] = self.a.ravel()
        mem.view_f32("b")[:] = self.b.ravel()

    def launch(self, apu: Apu) -> None:
        p = ProgramBuilder()
        p.shr(v(2), v(0), imm(4))          # row
        p.iand(v(3), v(0), imm(15))        # col
        p.shl(v(4), v(2), imm(4))          # row*16
        p.mov(v(5), fimm(0.0))             # acc
        p.s_mov(s(10), imm(0))
        p.label("k")
        p.iadd(v(6), v(4), s(10))          # row*16 + k
        addr_of(p, s(2), v(6), v(7))
        p.load(v(8), v(7))                 # A[row][k]
        p.s_shl(s(11), s(10), imm(4))
        p.iadd(v(6), v(3), s(11))          # k*16 + col
        addr_of(p, s(3), v(6), v(7))
        p.load(v(9), v(7))                 # B[k][col]
        p.fmac(v(5), v(8), v(9))
        p.s_iadd(s(10), s(10), imm(1))
        p.s_cmp("lt", s(10), imm(self.N))
        p.cbranch("k")
        addr_of_tid(p, s(4), v(7))
        p.store(v(5), v(7))
        apu.launch(
            p.build(), self.N * self.N,
            [self.base_a, self.base_b, self.base_c], name=self.name,
        )

    def expected(self) -> Dict[str, np.ndarray]:
        acc = np.zeros((self.N, self.N), dtype=np.float32)
        for k in range(self.N):
            acc = acc + self.a[:, k : k + 1] * self.b[k : k + 1, :]
        return {"c": acc}


class MatrixTranspose(Workload):
    """out = in.T, 32x32 uint32 (strided writes stress index locality)."""

    name = "transpose"
    outputs = ("out",)
    N = 32

    def setup(self, mem: GlobalMemory) -> None:
        n = self.N
        self.x = self.rng.integers(0, 1 << 31, (n, n), dtype=np.uint32)
        self.base_in = mem.alloc("in", n * n * 4)
        self.base_out = mem.alloc("out", n * n * 4)
        mem.view_u32("in")[:] = self.x.ravel()

    def launch(self, apu: Apu) -> None:
        p = ProgramBuilder()
        p.shr(v(2), v(0), imm(5))          # row
        p.iand(v(3), v(0), imm(31))        # col
        addr_of_tid(p, s(2), v(4))
        p.load(v(5), v(4))
        p.shl(v(6), v(3), imm(5))          # col*32
        p.iadd(v(6), v(6), v(2))           # col*32 + row
        addr_of(p, s(3), v(6), v(7))
        p.store(v(5), v(7))
        apu.launch(
            p.build(), self.N * self.N, [self.base_in, self.base_out],
            name=self.name,
        )

    def expected(self) -> Dict[str, np.ndarray]:
        return {"out": self.x.T.copy()}


def emit_wavefront_scan(p: ProgramBuilder, acc, tmp) -> None:
    """Inclusive Hillis-Steele scan of ``acc`` across the 16 lanes."""
    for d in (1, 2, 4, 8):
        p.shuffle_up(tmp, acc, d)
        p.iadd(acc, acc, tmp)


class PrefixSum(Workload):
    """Inclusive prefix sum of 256 uint32 (shuffle-based, 3 passes)."""

    name = "prefixsum"
    outputs = ("out",)
    N = 256

    def setup(self, mem: GlobalMemory) -> None:
        self.x = self.rng.integers(0, 1000, self.N, dtype=np.uint32)
        self.base_in = mem.alloc("in", self.N * 4)
        self.base_out = mem.alloc("out", self.N * 4)
        self.base_sums = mem.alloc("sums", (self.N // 16) * 4)
        mem.view_u32("in")[:] = self.x

    def launch(self, apu: Apu) -> None:
        n_wf = self.N // 16
        # Pass 1: intra-wavefront inclusive scan + block totals.
        p = ProgramBuilder()
        addr_of_tid(p, s(2), v(2))
        p.load(v(3), v(2))
        emit_wavefront_scan(p, v(3), v(4))
        addr_of_tid(p, s(3), v(5))
        p.store(v(3), v(5))
        p.mov(v(6), s(0))
        addr_of(p, s(4), v(6), v(7))
        p.cmp("eq", v(1), imm(15))
        p.store(v(3), v(7), pred=True)
        apu.launch(
            p.build(), self.N,
            [self.base_in, self.base_out, self.base_sums],
            name=f"{self.name}.scan",
        )
        # Pass 2: exclusive scan of the block totals (single wavefront).
        p = ProgramBuilder()
        addr_of_tid(p, s(2), v(2))
        p.load(v(3), v(2))
        emit_wavefront_scan(p, v(3), v(4))
        p.shuffle_up(v(5), v(3), 1)        # exclusive
        addr_of_tid(p, s(2), v(2))
        p.store(v(5), v(2))
        apu.launch(
            p.build(), n_wf, [self.base_sums], name=f"{self.name}.blocks"
        )
        # Pass 3: add block offsets.
        p = ProgramBuilder()
        p.mov(v(2), s(0))
        addr_of(p, s(3), v(2), v(3))
        p.load(v(4), v(3))                 # block offset
        addr_of_tid(p, s(2), v(5))
        p.load(v(6), v(5))
        p.iadd(v(6), v(6), v(4))
        p.store(v(6), v(5))
        apu.launch(
            p.build(), self.N, [self.base_out, self.base_sums],
            name=f"{self.name}.apply",
        )

    def expected(self) -> Dict[str, np.ndarray]:
        return {"out": np.cumsum(self.x.astype(np.uint64)).astype(np.uint32)}


class ScanLargeArrays(Workload):
    """Inclusive scan of 512 uint32 with per-lane sequential chunks of 8."""

    name = "scan"
    outputs = ("out",)
    N = 512
    CHUNK = 8

    def setup(self, mem: GlobalMemory) -> None:
        self.x = self.rng.integers(0, 1000, self.N, dtype=np.uint32)
        self.base_in = mem.alloc("in", self.N * 4)
        self.base_out = mem.alloc("out", self.N * 4)
        self.n_threads = self.N // self.CHUNK
        self.base_sums = mem.alloc("sums", max(16, self.n_threads // 16) * 4)
        mem.view_u32("in")[:] = self.x

    def launch(self, apu: Apu) -> None:
        n_wf = self.n_threads // 16
        # Pass 1: sequential chunk scan + lane/wavefront offsets.
        p = ProgramBuilder()
        p.shl(v(2), v(0), imm(3))          # element base = tid*8
        addr_of(p, s(2), v(2), v(3))
        addr_of(p, s(3), v(2), v(4))
        p.mov(v(5), imm(0))
        for j in range(self.CHUNK):
            p.load(v(6), v(3), offset=j * 4)
            p.iadd(v(5), v(5), v(6))
            p.store(v(5), v(4), offset=j * 4)
        p.mov(v(7), v(5))
        emit_wavefront_scan(p, v(7), v(8))
        p.isub(v(9), v(7), v(5))           # exclusive lane offset
        for j in range(self.CHUNK):
            p.load(v(6), v(4), offset=j * 4)
            p.iadd(v(6), v(6), v(9))
            p.store(v(6), v(4), offset=j * 4)
        p.mov(v(10), s(0))
        addr_of(p, s(4), v(10), v(11))
        p.cmp("eq", v(1), imm(15))
        p.store(v(7), v(11), pred=True)    # wavefront total
        apu.launch(
            p.build(), self.n_threads,
            [self.base_in, self.base_out, self.base_sums],
            name=f"{self.name}.chunks",
        )
        # Pass 2: exclusive scan of wavefront totals.
        p = ProgramBuilder()
        p.cmp("lt", v(0), imm(n_wf))
        p.mov(v(3), imm(0))
        addr_of_tid(p, s(2), v(2))
        p.load(v(3), v(2), pred=True)
        emit_wavefront_scan(p, v(3), v(4))
        p.shuffle_up(v(5), v(3), 1)
        p.store(v(5), v(2), pred=True)
        apu.launch(p.build(), 16, [self.base_sums], name=f"{self.name}.blocks")
        # Pass 3: apply wavefront offsets.
        p = ProgramBuilder()
        p.mov(v(2), s(0))
        addr_of(p, s(3), v(2), v(3))
        p.load(v(4), v(3))
        p.shl(v(5), v(0), imm(3))
        addr_of(p, s(2), v(5), v(6))
        for j in range(self.CHUNK):
            p.load(v(7), v(6), offset=j * 4)
            p.iadd(v(7), v(7), v(4))
            p.store(v(7), v(6), offset=j * 4)
        apu.launch(
            p.build(), self.n_threads, [self.base_out, self.base_sums],
            name=f"{self.name}.apply",
        )

    def expected(self) -> Dict[str, np.ndarray]:
        return {"out": np.cumsum(self.x.astype(np.uint64)).astype(np.uint32)}


class Histogram(Workload):
    """16-bin histogram of 2048 bytes via LDS-private per-lane bins."""

    name = "histogram"
    outputs = ("hist",)
    N = 2048
    BINS = 16
    THREADS = 256

    def setup(self, mem: GlobalMemory) -> None:
        self.x = self.rng.integers(0, 256, self.N, dtype=np.uint8)
        self.base_in = mem.alloc("in", self.N)
        n_wf = self.THREADS // 16
        self.base_partials = mem.alloc("partials", n_wf * self.BINS * 4)
        self.base_hist = mem.alloc("hist", self.BINS * 4)
        mem.view_u8("in")[:] = self.x

    def launch(self, apu: Apu) -> None:
        n_wf = self.THREADS // 16
        per_thread = self.N // self.THREADS
        # Pass 1: per-lane private bins in LDS, reduced per wavefront.
        p = ProgramBuilder()
        p.shl(v(2), v(1), imm(6))          # lane*16 bins*4 bytes
        for b in range(self.BINS):
            p.lds_store(imm(0), v(2), offset=b * 4)
        for j in range(per_thread):
            p.iadd(v(3), v(0), s(2))
            p.load_u8(v(5), v(3), offset=j * self.THREADS)
            p.shr(v(6), v(5), imm(4))      # bin = byte >> 4
            p.shl(v(6), v(6), imm(2))
            p.iadd(v(6), v(6), v(2))
            p.lds_load(v(7), v(6))
            p.iadd(v(7), v(7), imm(1))
            p.lds_store(v(7), v(6))
        # Lane b sums bin b across all 16 lanes' private copies.
        p.mov(v(8), imm(0))
        p.shl(v(9), v(1), imm(2))          # bin offset = lane*4
        for lane in range(16):
            p.lds_load(v(10), v(9), offset=lane * 64)
            p.iadd(v(8), v(8), v(10))
        p.s_shl(s(10), s(0), imm(4))       # wf*16
        p.iadd(v(11), v(1), s(10))
        addr_of(p, s(3), v(11), v(12))
        p.store(v(8), v(12))
        apu.launch(
            p.build(), self.THREADS, [self.base_in, self.base_partials],
            name=f"{self.name}.partial",
        )
        # Pass 2: sum the per-wavefront partials (lane = bin).
        p = ProgramBuilder()
        p.mov(v(2), imm(0))
        addr_of_tid(p, s(2), v(3))
        for w in range(n_wf):
            p.load(v(4), v(3), offset=w * self.BINS * 4)
            p.iadd(v(2), v(2), v(4))
        addr_of_tid(p, s(3), v(5))
        p.store(v(2), v(5))
        apu.launch(
            p.build(), self.BINS, [self.base_partials, self.base_hist],
            name=f"{self.name}.merge",
        )

    def expected(self) -> Dict[str, np.ndarray]:
        return {
            "hist": np.bincount(self.x >> 4, minlength=self.BINS).astype(np.uint32)
        }


class FastWalshTransform(Workload):
    """Walsh-Hadamard transform of 256 int32, one launch per stage."""

    name = "fastwalsh"
    outputs = ("x",)
    N = 256

    def setup(self, mem: GlobalMemory) -> None:
        self.x = self.rng.integers(-100, 100, self.N).astype(np.int32)
        self.base_x = mem.alloc("x", self.N * 4)
        self.base_y = mem.alloc("y", self.N * 4)
        mem.view_i32("x")[:] = self.x

    def _stage(self) -> ProgramBuilder:
        p = ProgramBuilder()
        p.mov(v(2), s(4))                  # stride
        p.ixor(v(3), v(0), v(2))           # partner index
        addr_of_tid(p, s(2), v(4))
        p.load(v(5), v(4))                 # own value
        addr_of(p, s(2), v(3), v(6))
        p.load(v(7), v(6))                 # partner value
        p.iadd(v(8), v(5), v(7))
        p.isub(v(9), v(7), v(5))
        p.iand(v(10), v(0), v(2))
        p.cmp("eq", v(10), imm(0))
        p.cndmask(v(11), v(8), v(9))
        addr_of_tid(p, s(3), v(12))
        p.store(v(11), v(12))
        return p

    def launch(self, apu: Apu) -> None:
        prog = self._stage().build()
        src, dst = self.base_x, self.base_y
        stride = 1
        while stride < self.N:
            apu.launch(
                prog, self.N, [src, dst, stride],
                name=f"{self.name}.s{stride}",
            )
            src, dst = dst, src
            stride *= 2

    def expected(self) -> Dict[str, np.ndarray]:
        x = self.x.astype(np.int64)
        stride = 1
        while stride < self.N:
            y = np.empty_like(x)
            for t in range(self.N):
                partner = t ^ stride
                if t & stride:
                    y[t] = x[partner] - x[t]
                else:
                    y[t] = x[t] + x[partner]
            x = y
            stride *= 2
        return {"x": (x & 0xFFFFFFFF).astype(np.uint32)}


class DwtHaar1D(Workload):
    """1-D Haar wavelet decomposition of 256 float32 (7 levels)."""

    name = "dwthaar"
    outputs = ("out",)
    N = 256
    INV_SQRT2 = float(np.float32(0.7071067811865476))

    def setup(self, mem: GlobalMemory) -> None:
        self.x = self.rng.random(self.N, dtype=np.float32)
        self.base_x = mem.alloc("x", self.N * 4)
        self.base_ta = mem.alloc("ta", (self.N // 2) * 4)
        self.base_tb = mem.alloc("tb", (self.N // 2) * 4)
        self.base_out = mem.alloc("out", self.N * 4)
        mem.view_f32("x")[:] = self.x

    def _level(self) -> ProgramBuilder:
        # args: s2=src, s3=approx dst, s4=detail dst, s5=half
        p = ProgramBuilder()
        p.cmp("lt", v(0), s(5))
        p.shl(v(2), v(0), imm(3))          # 2t * 4 bytes
        p.iadd(v(3), v(2), s(2))
        p.load(v(4), v(3), pred=True)
        p.load(v(5), v(3), offset=4, pred=True)
        p.fadd(v(6), v(4), v(5))
        p.fmul(v(6), v(6), fimm(self.INV_SQRT2))
        p.fsub(v(7), v(4), v(5))
        p.fmul(v(7), v(7), fimm(self.INV_SQRT2))
        addr_of_tid(p, s(3), v(8))
        p.store(v(6), v(8), pred=True)
        addr_of_tid(p, s(4), v(9))
        p.store(v(7), v(9), pred=True)
        return p

    def launch(self, apu: Apu) -> None:
        prog = self._level().build()
        src = self.base_x
        tmps = [self.base_ta, self.base_tb]
        m = self.N
        level = 0
        while m >= 2:
            half = m // 2
            detail_dst = self.base_out + half * 4
            approx_dst = self.base_out if half == 1 else tmps[level % 2]
            apu.launch(
                prog, max(16, half),
                [src, approx_dst, detail_dst, half],
                name=f"{self.name}.l{level}",
            )
            src = approx_dst
            m = half
            level += 1

    def expected(self) -> Dict[str, np.ndarray]:
        out = np.zeros(self.N, dtype=np.float32)
        cur = self.x.copy()
        c = np.float32(self.INV_SQRT2)
        while len(cur) >= 2:
            half = len(cur) // 2
            approx = (cur[0::2] + cur[1::2]) * c
            detail = (cur[0::2] - cur[1::2]) * c
            out[half : 2 * half] = detail
            cur = approx
        out[0] = cur[0]
        return {"out": out}


class Dct(Workload):
    """8x8 block DCT (Z = M X M^T) over 8 blocks of float32."""

    name = "dct"
    outputs = ("z",)
    BLOCKS = 8

    def setup(self, mem: GlobalMemory) -> None:
        n = self.BLOCKS * 64
        self.x = self.rng.random(n, dtype=np.float32)
        k = np.arange(8)
        m = np.cos((2 * k[None, :] + 1) * k[:, None] * np.pi / 16).astype(
            np.float32
        )
        m[0] *= np.float32(1 / np.sqrt(2))
        self.m = (m * 0.5).astype(np.float32)
        self.base_x = mem.alloc("x", n * 4)
        self.base_m = mem.alloc("m", 64 * 4)
        self.base_y = mem.alloc("y", n * 4)
        self.base_z = mem.alloc("z", n * 4)
        mem.view_f32("x")[:] = self.x
        mem.view_f32("m")[:] = self.m.ravel()

    def _stage1(self) -> ProgramBuilder:
        # Y[b][i][u] = sum_j X[b][i][j] * M[u][j]
        p = ProgramBuilder()
        p.shr(v(2), v(0), imm(6))          # block
        p.iand(v(3), v(0), imm(63))
        p.shr(v(4), v(3), imm(3))          # i
        p.iand(v(5), v(3), imm(7))         # u
        p.shl(v(6), v(2), imm(6))          # block*64
        p.shl(v(7), v(4), imm(3))
        p.iadd(v(7), v(7), v(6))           # block*64 + i*8
        addr_of(p, s(2), v(7), v(8))       # &X[b][i][0]
        p.shl(v(9), v(5), imm(3))
        addr_of(p, s(3), v(9), v(10))      # &M[u][0]
        p.mov(v(11), fimm(0.0))
        for j in range(8):
            p.load(v(12), v(8), offset=j * 4)
            p.load(v(13), v(10), offset=j * 4)
            p.fmac(v(11), v(12), v(13))
        addr_of_tid(p, s(4), v(14))
        p.store(v(11), v(14))
        return p

    def _stage2(self) -> ProgramBuilder:
        # Z[b][u][vv] = sum_i M[u][i] * Y[b][i][vv]
        p = ProgramBuilder()
        p.shr(v(2), v(0), imm(6))
        p.iand(v(3), v(0), imm(63))
        p.shr(v(4), v(3), imm(3))          # u
        p.iand(v(5), v(3), imm(7))         # vv
        p.shl(v(6), v(2), imm(6))
        p.iadd(v(7), v(6), v(5))           # block*64 + vv
        addr_of(p, s(2), v(7), v(8))       # &Y[b][0][vv]
        p.shl(v(9), v(4), imm(3))
        addr_of(p, s(3), v(9), v(10))      # &M[u][0]
        p.mov(v(11), fimm(0.0))
        for i in range(8):
            p.load(v(12), v(8), offset=i * 32)
            p.load(v(13), v(10), offset=i * 4)
            p.fmac(v(11), v(13), v(12))
        addr_of_tid(p, s(4), v(14))
        p.store(v(11), v(14))
        return p

    def launch(self, apu: Apu) -> None:
        n = self.BLOCKS * 64
        apu.launch(
            self._stage1().build(), n,
            [self.base_x, self.base_m, self.base_y], name=f"{self.name}.rows",
        )
        apu.launch(
            self._stage2().build(), n,
            [self.base_y, self.base_m, self.base_z], name=f"{self.name}.cols",
        )

    def expected(self) -> Dict[str, np.ndarray]:
        x = self.x.reshape(self.BLOCKS, 8, 8)
        y = np.zeros_like(x)
        for j in range(8):
            y = y + x[:, :, j : j + 1] * self.m[None, None, :, j]
        z = np.zeros_like(x)
        for i in range(8):
            z = z + self.m[None, :, i : i + 1] * y[:, i : i + 1, :]
        return {"z": z.astype(np.float32)}


class RecursiveGaussian(Workload):
    """Separable first-order IIR blur over a 32x32 float32 image."""

    name = "recursivegaussian"
    outputs = ("out",)
    N = 32
    A = float(np.float32(0.4))
    B = float(np.float32(0.6))

    def setup(self, mem: GlobalMemory) -> None:
        n = self.N
        self.x = self.rng.random((n, n), dtype=np.float32)
        self.base_x = mem.alloc("x", n * n * 4)
        self.base_t = mem.alloc("t", n * n * 4)
        self.base_out = mem.alloc("out", n * n * 4)
        mem.view_f32("x")[:] = self.x.ravel()

    def _pass(self, stride_bytes: int, first_shift: int) -> ProgramBuilder:
        """IIR along one axis; thread = row (or column)."""
        p = ProgramBuilder()
        p.shl(v(2), v(0), imm(first_shift))  # start index
        addr_of(p, s(2), v(2), v(3))
        addr_of(p, s(3), v(2), v(4))
        p.load(v(5), v(3))
        p.fmul(v(6), v(5), fimm(self.A))
        p.store(v(6), v(4))
        p.s_mov(s(10), imm(1))
        p.label("col")
        p.iadd(v(3), v(3), imm(stride_bytes))
        p.iadd(v(4), v(4), imm(stride_bytes))
        p.load(v(5), v(3))
        p.fmul(v(7), v(5), fimm(self.A))
        p.fmac(v(7), v(6), fimm(self.B))
        p.mov(v(6), v(7))
        p.store(v(7), v(4))
        p.s_iadd(s(10), s(10), imm(1))
        p.s_cmp("lt", s(10), imm(self.N))
        p.cbranch("col")
        return p

    def launch(self, apu: Apu) -> None:
        # Rows: start = r*32, stride 4 bytes.  Columns: start = c, stride 128.
        apu.launch(
            self._pass(4, 5).build(), self.N, [self.base_x, self.base_t],
            name=f"{self.name}.rows",
        )
        apu.launch(
            self._pass(self.N * 4, 0).build(), self.N,
            [self.base_t, self.base_out], name=f"{self.name}.cols",
        )

    def expected(self) -> Dict[str, np.ndarray]:
        a, b = np.float32(self.A), np.float32(self.B)

        def iir_rows(img: np.ndarray) -> np.ndarray:
            out = np.zeros_like(img)
            out[:, 0] = img[:, 0] * a
            for c in range(1, img.shape[1]):
                out[:, c] = img[:, c] * a + out[:, c - 1] * b
            return out

        t = iir_rows(self.x)
        out = iir_rows(t.T).T
        return {"out": out.astype(np.float32)}
