"""Plain-text rendering of a metrics snapshot and a span summary.

Shared by ``repro stats``, the experiment harness and anything else that
wants a human-readable account of where a run's effort went without
opening the trace in Perfetto.
"""

from __future__ import annotations

from typing import List

from .metrics import MetricsRegistry
from .progress import format_duration
from .trace import Tracer

__all__ = [
    "format_metrics", "format_resilience", "format_spans", "format_report"
]

#: runtime-health counters surfaced as their own report section — these
#: are the "did the campaign degrade, and how" numbers an operator scans
#: first after an overnight run
_RESILIENCE_COUNTERS = {
    "runtime.workers_respawned": "workers respawned",
    "runtime.tasks_poisoned": "tasks quarantined by breaker",
    "runtime.journal_quarantined": "journal records quarantined",
    "runtime.journal_compactions": "journal compactions",
    "runtime.drains": "signal drains",
    "runtime.timeout_unenforced": "unenforceable inline timeouts",
}


def format_metrics(registry: MetricsRegistry) -> str:
    """Render a registry snapshot as aligned ``name value`` lines."""
    snap = registry.snapshot()
    lines: List[str] = []
    if snap["counters"]:
        lines.append("counters:")
        width = max(len(n) for n in snap["counters"])
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<{width}}  {value}")
    if snap["gauges"]:
        lines.append("gauges:")
        width = max(len(n) for n in snap["gauges"])
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:<{width}}  {value:g}")
    if snap["histograms"]:
        lines.append("histograms:")
        for name, h in snap["histograms"].items():
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {name}  count={h['count']} mean={mean:.4f} "
                f"sum={h['sum']:.4f}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def _seconds(value: float) -> str:
    """Sub-minute timings keep millisecond resolution; longer ones read
    as human durations."""
    return f"{value:.3f}s" if value < 60 else format_duration(value)


def format_spans(tracer: Tracer) -> str:
    """Render the tracer's per-name timing summary as a table."""
    summary = tracer.summary()
    if not summary:
        return "(no spans recorded)"
    rows = sorted(summary.items(), key=lambda kv: -kv[1]["total"])
    width = max(len(name) for name, _ in rows)
    width = max(width, len("span"))
    lines = [
        f"{'span':<{width}}  {'count':>6}  {'total':>9}  {'mean':>9}  "
        f"{'max':>9}"
    ]
    for name, s in rows:
        lines.append(
            f"{name:<{width}}  {int(s['count']):>6}  "
            f"{_seconds(s['total']):>9}  {_seconds(s['mean']):>9}  "
            f"{_seconds(s['max']):>9}"
        )
    return "\n".join(lines)


def format_resilience(registry: MetricsRegistry) -> str:
    """Render runtime-health counters (breaker trips, worker respawns,
    journal quarantines, chaos injections); empty string when the run
    needed no self-healing and no chaos was injected."""
    counters = registry.snapshot()["counters"]
    lines: List[str] = []
    for name, label in _RESILIENCE_COUNTERS.items():
        value = counters.get(name, 0)
        if value:
            lines.append(f"  {label}: {value}")
    chaos = {n: v for n, v in counters.items() if n.startswith("chaos.")}
    if chaos:
        injected = ", ".join(
            f"{n.split('.', 1)[1]}={v}" for n, v in chaos.items()
        )
        lines.append(f"  chaos injected: {injected}")
    return "\n".join(lines)


def format_report(registry: MetricsRegistry, tracer: Tracer) -> str:
    """The full text report: span timings, then resilience (when any
    self-healing happened), then metrics."""
    resilience = format_resilience(registry)
    parts = ["== stage timings ==\n" + format_spans(tracer)]
    if resilience:
        parts.append("== resilience ==\n" + resilience)
    parts.append("== metrics ==\n" + format_metrics(registry))
    return "\n\n".join(parts)
