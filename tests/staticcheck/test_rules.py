"""Per-rule fixture tests: exact finding counts, paths and line numbers.

Each fixture under ``fixtures/`` contains deliberate violations at known
lines (plus deliberately-clean look-alikes that must NOT be flagged);
these tests pin the rules to that exact behaviour.
"""

from .conftest import findings_for


class TestDeterminismRules:
    def test_d101_unseeded_rng(self, fixture_findings):
        assert findings_for(fixture_findings, "D101") == [
            ("determinism/bad_rng.py", 10),  # random.random()
            ("determinism/bad_rng.py", 11),  # random.Random() unseeded
            ("determinism/bad_rng.py", 12),  # np.random.rand legacy
            ("determinism/bad_rng.py", 13),  # default_rng() unseeded
            ("determinism/bad_rng.py", 14),  # RandomState() unseeded
            ("suppressed.py", 9),            # the one unsuppressed line
        ]

    def test_d101_seeded_constructors_not_flagged(self, fixture_findings):
        # bad_rng.py lines 15-16 hold default_rng(1234) / random.Random(7)
        flagged_lines = {
            line for path, line in findings_for(fixture_findings, "D101")
            if path == "determinism/bad_rng.py"
        }
        assert 15 not in flagged_lines
        assert 16 not in flagged_lines

    def test_d102_wall_clock_in_deterministic_scope(self, fixture_findings):
        assert findings_for(fixture_findings, "D102") == [
            ("core/bad_clock.py", 10),  # time.time
            ("core/bad_clock.py", 11),  # time.monotonic
            ("core/bad_clock.py", 12),  # datetime.now (via from-import)
            ("core/bad_clock.py", 13),  # os.urandom
            ("core/bad_clock.py", 14),  # uuid.uuid4
        ]

    def test_d103_set_iteration(self, fixture_findings):
        assert findings_for(fixture_findings, "D103") == [
            ("bad_set_order.py", 6),   # for-loop over a set literal
            ("bad_set_order.py", 8),   # list(set(...))
            ("bad_set_order.py", 9),   # comprehension over frozenset()
            ("bad_set_order.py", 10),  # ",".join(set)
        ]

    def test_d103_sorted_set_not_flagged(self, fixture_findings):
        # line 11 is sorted(set(values)) — the fix, not a violation
        assert ("bad_set_order.py", 11) not in findings_for(
            fixture_findings, "D103"
        )

    def test_d104_identity_keys(self, fixture_findings):
        assert findings_for(fixture_findings, "D104") == [
            ("bad_id_key.py", 7),  # table[id(obj)] = ...
            ("bad_id_key.py", 8),  # {id(objs): 0}
            ("bad_id_key.py", 9),  # table.get(id(objs))
        ]


class TestNumpyHygieneRules:
    def test_n201_missing_dtype_kernel_scope_only(self, fixture_findings):
        # kernel_pragma.py opts in via `# staticcheck: scope=kernel`;
        # bad_object_dtype.py (no kernel scope) must not get N201 even
        # though it calls np.array.
        assert findings_for(fixture_findings, "N201") == [
            ("kernel_pragma.py", 8),  # np.array(values)
            ("kernel_pragma.py", 9),  # np.zeros(4)
        ]

    def test_n202_object_dtype_any_scope(self, fixture_findings):
        assert findings_for(fixture_findings, "N202") == [
            ("bad_object_dtype.py", 7),  # dtype=object
            ("bad_object_dtype.py", 8),  # astype(object)
        ]

    def test_n203_float32_leak(self, fixture_findings):
        assert findings_for(fixture_findings, "N203") == [
            ("kernel_pragma.py", 10),  # dtype=np.float32
            ("kernel_pragma.py", 11),  # np.float32(...)
        ]

    def test_n204_astype_copy_intent(self, fixture_findings):
        # line 14 writes copy=False and must be clean
        assert findings_for(fixture_findings, "N204") == [
            ("kernel_pragma.py", 12),
        ]


class TestForkSafetyRules:
    def test_f301_fork_and_signals(self, fixture_findings):
        assert findings_for(fixture_findings, "F301") == [
            ("runtime/bad_fork.py", 9),   # os.fork
            ("runtime/bad_fork.py", 10),  # get_context("fork")
            ("runtime/bad_fork.py", 11),  # signal.signal outside executor
        ]

    def test_f302_truncating_writes(self, fixture_findings):
        assert findings_for(fixture_findings, "F302") == [
            ("runtime/bad_write.py", 9),   # write_text
            ("runtime/bad_write.py", 13),  # open(..., "w")
        ]

    def test_f302_blessed_rename_pattern_not_flagged(self, fixture_findings):
        # blessed_snapshot (line 19's open) sits in a function that calls
        # os.replace, the marker of the tmp+fsync+rename pattern.
        assert ("runtime/bad_write.py", 19) not in findings_for(
            fixture_findings, "F302"
        )

    def test_f303_untimed_network_calls(self, fixture_findings):
        assert findings_for(fixture_findings, "F303") == [
            ("runtime/fabric/bad_socket.py", 13),  # HTTPConnection
            ("runtime/fabric/bad_socket.py", 14),  # create_connection
            ("runtime/fabric/bad_socket.py", 15),  # urlopen
            ("runtime/fabric/bad_socket.py", 16),  # bare socket.socket()
            ("runtime/fabric/bad_socket.py", 21),  # settimeout(None)
        ]

    def test_f303_timed_variants_not_flagged(self, fixture_findings):
        # timed() (lines 25-29) passes timeout= / positional timeout /
        # settimeout(2.0) and must stay clean.
        flagged = {
            line for path, line in findings_for(fixture_findings, "F303")
            if path == "runtime/fabric/bad_socket.py"
        }
        assert not flagged & set(range(24, 31))

    def test_f303_scope_gated_to_fabric_and_executor(self, fixture_findings):
        # runtime/bad_fork.py / bad_write.py sit outside the fabric and
        # executor scopes, so their (absent) network calls aside, the
        # rule must never fire there.
        assert all(
            path.startswith("runtime/fabric/")
            for path, _ in findings_for(fixture_findings, "F303")
        )

    def test_f304_unbounded_body_reads(self, fixture_findings):
        assert findings_for(fixture_findings, "F304") == [
            ("report/bad_body_read.py", 11),  # rfile.read(length)
            ("report/bad_body_read.py", 12),  # rfile.read() no size
        ]

    def test_f304_bounded_variants_not_flagged(self, fixture_findings):
        # bounded() (lines 16-20): constant size, min()-clamped size,
        # and a non-rfile stream read — all clean.
        flagged = {
            line for path, line in findings_for(fixture_findings, "F304")
            if path == "report/bad_body_read.py"
        }
        assert not flagged & set(range(16, 21))

    def test_f304_scope_gated_to_service_and_fabric(self, fixture_findings):
        # Only report/ (service scope) and fabric paths are F304's
        # business; the same call elsewhere must not fire.
        assert all(
            path.startswith("report/")
            for path, _ in findings_for(fixture_findings, "F304")
        )


class TestObsDisciplineRules:
    def test_o401_span_without_with(self, fixture_findings):
        assert findings_for(fixture_findings, "O401") == [
            ("bad_span.py", 7),  # span = tracer.span(...)
            ("bad_span.py", 8),  # bare get_tracer().span(...)
        ]

    def test_o401_with_and_non_tracer_span_not_flagged(
        self, fixture_findings
    ):
        flagged = findings_for(fixture_findings, "O401")
        assert ("bad_span.py", 13) not in flagged  # with-statement
        assert ("bad_span.py", 18) not in flagged  # IntervalSet-style .span()

    def test_o402_cross_file_collision(self, fixture_findings):
        # counter twice in collide_a, gauge once in collide_b: the gauge
        # is the minority kind, so only collide_b is flagged.
        findings = [f for f in fixture_findings if f.rule == "O402"]
        assert [(f.path, f.line) for f in findings] == [("collide_b.py", 7)]
        assert "collide_a.py:7" in findings[0].message

    def test_o403_direct_construction(self, fixture_findings):
        assert findings_for(fixture_findings, "O403") == [
            ("bad_construct.py", 8),  # MetricsRegistry()
            ("bad_construct.py", 9),  # Tracer()
        ]


class TestPersistenceSqlRules:
    def test_p501_interpolated_sql(self, fixture_findings):
        assert findings_for(fixture_findings, "P501") == [
            ("store/bad_sql.py", 9),   # f-string
            ("store/bad_sql.py", 10),  # concatenation
            ("store/bad_sql.py", 11),  # %-interpolation
            ("store/bad_sql.py", 12),  # str.format
            ("store/bad_sql.py", 13),  # executemany f-string
            ("store/bad_sql.py", 14),  # executescript concat
            ("store/bad_sql.py", 15),  # str.join
        ]

    def test_p501_parameterized_and_builder_not_flagged(
        self, fixture_findings
    ):
        # good(): constant SQL with '?' params, a builder-produced
        # variable, and a constant executescript — none flagged.
        flagged = {
            line for path, line in findings_for(fixture_findings, "P501")
            if path == "store/bad_sql.py"
        }
        assert flagged & {19, 20, 21, 22, 23} == set()

    def test_p501_store_scope_only(self, fixture_findings):
        # The same execute() patterns outside a store/ path carry no
        # store scope and are not P501's business.
        assert all(
            f.path.startswith("store/")
            for f in fixture_findings if f.rule == "P501"
        )


class TestEngineBehaviour:
    def test_parse_error_becomes_e001(self, fixture_result):
        assert fixture_result.parse_errors == ["broken_syntax.py"]
        e001 = [f for f in fixture_result.findings if f.rule == "E001"]
        assert len(e001) == 1
        assert e001[0].path == "broken_syntax.py"

    def test_skip_file_pragma(self, fixture_result):
        assert fixture_result.files_skipped == 1
        assert not any(
            f.path == "skipfile.py" for f in fixture_result.findings
        )

    def test_inline_suppressions(self, fixture_findings):
        # suppressed.py: line 7 ignore[D101], line 8 bare ignore, line 9
        # unsuppressed — exactly one finding survives.
        lines = [f.line for f in fixture_findings
                 if f.path == "suppressed.py"]
        assert lines == [9]

    def test_total_finding_count(self, fixture_result):
        assert len(fixture_result.findings) == 56
        assert fixture_result.by_rule() == {
            "C601": 1, "C602": 1, "C603": 1, "C604": 1, "C605": 2,
            "D101": 6, "D102": 5, "D103": 4, "D104": 3, "E001": 1,
            "F301": 3, "F302": 2, "F303": 5, "F304": 2, "N201": 2,
            "N202": 2, "N203": 2, "N204": 1, "O401": 2, "O402": 1,
            "O403": 2, "P501": 7,
        }

    def test_findings_are_sorted_and_carry_snippets(self, fixture_findings):
        assert fixture_findings == sorted(fixture_findings)
        rng = [f for f in fixture_findings
               if f.path == "determinism/bad_rng.py"][0]
        assert rng.snippet == "a = random.random()"
