"""The lint engine: discovery, caching, per-file rules, project rules.

One :func:`run` walks a source tree and analyzes every ``.py`` file in
two layers:

* a **per-file layer** — parse, classify into *scopes*
  (``deterministic``, ``kernel``, ``persistence``, ...), run every
  registered per-file rule, and build the file's
  :class:`~repro.staticcheck.index.FileSummary`.  This layer is
  *incremental*: with a cache file, an unchanged file (same content
  hash) replays its stored findings and summary without re-parsing —
  and *parallel*: misses fan out over a spawn-context process pool
  (``jobs``).
* a **whole-program layer** — the summaries (cached or fresh) form a
  :class:`~repro.staticcheck.index.ProjectIndex` +
  :class:`~repro.staticcheck.callgraph.CallGraph`, and every
  ``project_rule`` (the C-family, O402) emits from
  ``finalize_project``.  Because summaries are cache-stable, these
  rules see the complete program on warm runs too.

Inline suppression is applied centrally (from summaries, so cached
files keep suppressing), findings are sorted, and the run is
instrumented: a ``lint`` span plus ``staticcheck.*`` counters including
``staticcheck.cache_hits`` and ``index.files``.

Suppression pragmas (in comments)::

    x = whatever()   # staticcheck: ignore[D101]   one rule, this line
    y = whatever()   # staticcheck: ignore         every rule, this line
    # staticcheck: skip-file                        (first 10 lines)
    # staticcheck: scope=kernel,deterministic       add scopes (fixtures)
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..obs import get_metrics, get_tracer
from .cache import CacheEntry, LintCache, content_hash, engine_fingerprint
from .callgraph import CallGraph
from .findings import Finding, Module, Rule, walk_with_parents
from .astutil import collect_aliases
from .index import FileSummary, ProjectIndex, build_summary
from .registry import all_rules

__all__ = [
    "run",
    "scan_paths",
    "load_module",
    "RunResult",
    "classify_scopes",
]

#: rule code reserved for files the engine itself cannot parse
PARSE_ERROR = "E001"

_PRAGMA = re.compile(
    r"#\s*staticcheck:\s*(?P<verb>ignore|skip-file|scope)"
    r"(?:\s*(?:\[(?P<codes>[^\]]*)\]|=(?P<scopes>[\w,\s-]+)))?"
)

#: directories whose modules must be replayable from a seed alone
_DETERMINISTIC_DIRS = {"core", "faultinject", "arch", "workloads"}
#: modules holding the vectorized engine kernels (strict numpy hygiene)
_KERNEL_SUFFIXES = ("core/intervals.py", "core/avf.py")


def classify_scopes(relpath: str) -> Set[str]:
    """Scopes implied by a module's path within the package."""
    rel = relpath.replace("\\", "/")
    parts = rel.split("/")
    scopes: Set[str] = set()
    if _DETERMINISTIC_DIRS & set(parts):
        scopes.add("deterministic")
    if rel.endswith(_KERNEL_SUFFIXES):
        scopes.add("kernel")
    if "runtime" in parts:
        scopes.update(("runtime", "persistence"))
    if "obs" in parts:
        scopes.update(("obs", "persistence"))
    if "store" in parts:
        scopes.update(("store", "persistence"))
    if rel.endswith("core/serialize.py"):
        scopes.add("persistence")
    if rel.endswith("runtime/executor.py"):
        scopes.add("executor")
    if "fabric" in parts:
        scopes.add("fabric")
    if "report" in parts or rel.endswith("runtime/guard.py"):
        scopes.add("service")
    return scopes


@dataclass
class RunResult:
    """Everything one lint run produced."""

    root: str
    findings: List[Finding]
    files_scanned: int
    files_skipped: int = 0
    #: files that failed to parse (also present as E001 findings)
    parse_errors: List[str] = field(default_factory=list)
    #: incremental-cache accounting (not part of the JSON report, so
    #: warm and cold runs stay byte-identical)
    cache_hits: int = 0
    cache_misses: int = 0
    #: files contributing summaries to the whole-program index
    index_files: int = 0

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))


def _parse_pragmas(
    source: str,
) -> Tuple[Dict[int, Optional[FrozenSet[str]]], Set[str], bool]:
    """(line -> suppressed codes | None, extra scopes, skip_file)."""
    suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
    scopes: Set[str] = set()
    skip = False
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, ValueError):
        return suppressions, scopes, skip
    for line, text in comments:
        m = _PRAGMA.search(text)
        if not m:
            continue
        verb = m.group("verb")
        if verb == "skip-file" and line <= 10:
            skip = True
        elif verb == "scope" and m.group("scopes"):
            scopes.update(
                s.strip() for s in m.group("scopes").split(",") if s.strip()
            )
        elif verb == "ignore":
            codes = m.group("codes")
            if codes is None:
                suppressions[line] = None
            else:
                parsed = frozenset(
                    c.strip().upper() for c in codes.split(",") if c.strip()
                )
                prior = suppressions.get(line, frozenset())
                if prior is None:
                    continue
                suppressions[line] = parsed | prior
    return suppressions, scopes, skip


def parse_module(source: str, path: str, relpath: str) -> Optional[Module]:
    """Parse source text into a :class:`Module`; None means skip-file.

    Raises :class:`SyntaxError` when the text does not parse — the
    caller turns that into an ``E001`` finding rather than aborting the
    whole run.
    """
    suppressions, extra_scopes, skip = _parse_pragmas(source)
    if skip:
        return None
    tree = ast.parse(source, filename=path)
    _, parents = walk_with_parents(tree)
    return Module(
        path=path,
        relpath=relpath.replace("\\", "/"),
        source=source,
        tree=tree,
        lines=source.splitlines(),
        scopes=frozenset(classify_scopes(relpath) | extra_scopes),
        suppressions=suppressions,
        parents=parents,
        aliases=collect_aliases(tree),
    )


def load_module(path: Path, relpath: str) -> Optional[Module]:
    """Parse one file into a :class:`Module`; None means skip-file."""
    source = path.read_text(encoding="utf-8", errors="replace")
    return parse_module(source, str(path), relpath)


def scan_paths(
    paths: Sequence[Union[str, Path]]
) -> List[Tuple[Path, str]]:
    """Expand files/directories into sorted ``(path, relpath)`` pairs.

    A directory contributes every ``*.py`` under it (relative to that
    directory, so package-internal paths like ``core/avf.py`` drive the
    scope classification); a bare file contributes itself under its
    file name.  ``__pycache__`` is skipped.
    """
    out: List[Tuple[Path, str]] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" in f.parts:
                    continue
                out.append((f, f.relative_to(p).as_posix()))
        else:
            out.append((p, p.name))
    return sorted(out, key=lambda pair: pair[1])


def _analyze_source(
    source: str,
    path: str,
    relpath: str,
    rules: Sequence[Rule],
) -> Tuple[Optional[Module], CacheEntry]:
    """Per-file layer for one file: findings + summary as a cache entry."""
    digest = content_hash(source.encode("utf-8"))
    try:
        module = parse_module(source, path, relpath)
    except SyntaxError as exc:
        return None, CacheEntry(
            hash=digest,
            parse_error=[exc.lineno or 1, (exc.offset or 1) - 1,
                         exc.msg or "syntax error"],
        )
    if module is None:
        return None, CacheEntry(hash=digest, skipped=True)
    findings: List[Finding] = []
    for rule in rules:
        if rule.project_rule or not rule.applies(module):
            continue
        findings.extend(rule.check(module))
    summary = build_summary(module)
    return module, CacheEntry(
        hash=digest,
        findings=[dict(f.to_dict()) for f in findings],
        summary=summary.to_dict(),
    )


def _analyze_file_task(
    args: Tuple[str, str],
) -> Tuple[str, Dict[str, Any]]:
    """Process-pool task: analyze one file with the registered rules.

    Runs in a spawn-context worker, so it re-derives the per-file rule
    set from the registry (rule instances do not cross the pool
    boundary).
    """
    path, relpath = args
    source = Path(path).read_text(encoding="utf-8", errors="replace")
    _module, entry = _analyze_source(source, path, relpath, all_rules())
    return relpath, entry.to_dict()


def _entry_findings(relpath: str, entry: CacheEntry) -> List[Finding]:
    if entry.parse_error is not None:
        line, col, msg = entry.parse_error
        return [
            Finding(
                path=relpath.replace("\\", "/"),
                line=int(line),
                col=int(col),
                rule=PARSE_ERROR,
                message=f"file does not parse: {msg}",
            )
        ]
    return entry.restore_findings()


def run(
    paths: Sequence[Path],
    rules: Optional[Iterable[Rule]] = None,
    *,
    cache_path: Optional[Path] = None,
    jobs: int = 1,
    changed: Optional[Set[str]] = None,
) -> RunResult:
    """Lint ``paths`` with every registered (or the given) rule.

    ``cache_path`` enables the incremental per-file cache (created on
    first use, rebuilt silently when corrupt or version-skewed).
    ``jobs > 1`` fans cache misses out over a spawn-context process
    pool — only available with the default registered rule set, since
    custom rule instances cannot cross the pool boundary.  ``changed``
    restricts *reported* findings to those relpaths plus their
    reverse-dependency closure from the import graph; the index is
    still built over everything, so whole-program rules stay sound.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    files = scan_paths(paths)
    active = list(rules) if rules is not None else all_rules()
    if rules is not None:
        jobs = 1  # custom instances cannot cross the pool boundary
    fingerprint = engine_fingerprint([r.code for r in active])
    cache = LintCache.load(cache_path, fingerprint)
    findings: List[Finding] = []
    entries: Dict[str, CacheEntry] = {}
    parse_errors: List[str] = []
    skipped = 0
    with tracer.span("lint", files=len(files), rules=len(active)) as span:
        pending: List[Tuple[Path, str, str]] = []
        for path, relpath in files:
            try:
                raw = path.read_bytes()
            except OSError:
                continue
            hit = cache.get(relpath, content_hash(raw))
            if hit is not None:
                entries[relpath] = hit
            else:
                pending.append(
                    (path.as_posix(), relpath,
                     raw.decode("utf-8", errors="replace"))
                )
        if jobs > 1 and len(pending) > 1:
            with ProcessPoolExecutor(
                max_workers=jobs, mp_context=get_context("spawn")
            ) as pool:
                for relpath, raw_entry in pool.map(
                    _analyze_file_task,
                    [(p, rp) for p, rp, _src in pending],
                ):
                    entries[relpath] = CacheEntry.from_dict(raw_entry)
                    cache.put(relpath, entries[relpath])
        else:
            for path_str, relpath, source in pending:
                _module, entry = _analyze_source(
                    source, path_str, relpath, active
                )
                entries[relpath] = entry
                cache.put(relpath, entry)
        summaries: List[FileSummary] = []
        for relpath in sorted(entries):
            entry = entries[relpath]
            if entry.skipped:
                skipped += 1
                continue
            if entry.parse_error is not None:
                parse_errors.append(relpath)
            findings.extend(_entry_findings(relpath, entry))
            summary = entry.restore_summary()
            if summary is not None:
                summaries.append(summary)
        parse_errors.sort()
        project = ProjectIndex(summaries)
        graph = CallGraph(project)
        for rule in active:
            if rule.project_rule:
                findings.extend(rule.finalize_project(project, graph))
        # legacy cross-file hook: runs over freshly-parsed modules only
        # (project rules see cached files too — new cross-file rules
        # should use finalize_project)
        for rule in active:
            findings.extend(rule.finalize())
        # Inline suppression is applied centrally — from summaries, so
        # pragmas keep working on cache hits and for project findings.
        kept = [
            f for f in findings
            if f.rule == PARSE_ERROR
            or not project.suppressed(f.path, f.line, f.rule)
        ]
        if changed is not None:
            visible = project.reverse_closure(set(changed))
            kept = [f for f in kept if f.path in visible]
        kept.sort()
        span.set(findings=len(kept), cache_hits=cache.hits)
    if cache_path is not None:
        cache.prune([rp for _p, rp in files])
        cache.save(cache_path)
    if metrics:
        metrics.counter("staticcheck.files_scanned").inc(len(files))
        metrics.counter("staticcheck.findings").inc(len(kept))
        metrics.counter("staticcheck.cache_hits").inc(cache.hits)
        metrics.counter("index.files").inc(len(summaries))
        for f in kept:
            metrics.counter(f"staticcheck.findings.{f.rule}").inc()
    return RunResult(
        root=str(paths[0]) if len(paths) == 1 else "",
        findings=kept,
        files_scanned=len(files),
        files_skipped=skipped,
        parse_errors=parse_errors,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        index_files=len(summaries),
    )
