"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_mode, main
from repro.core import FaultMode


class TestParseMode:
    def test_linear(self):
        assert _parse_mode("3x1") == FaultMode.linear(3)

    def test_rect(self):
        assert _parse_mode("2x2") == FaultMode.rect(2, 2)

    def test_case_insensitive(self):
        assert _parse_mode("4X1") == FaultMode.linear(4)

    def test_bad_mode(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_mode("banana")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "minife" in out

    def test_run(self, capsys):
        assert main(["run", "vectoradd"]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out
        assert "OK" in out

    def test_avf(self, capsys):
        assert main(
            ["avf", "vectoradd", "--structure", "l2", "--mode", "2x1",
             "--scheme", "parity"]
        ) == 0
        out = capsys.readouterr().out
        assert "DUE MB-AVF" in out
        assert "SDC MB-AVF" in out

    def test_avf_vgpr(self, capsys):
        assert main(
            ["avf", "vectoradd", "--structure", "vgpr", "--mode", "2x1",
             "--style", "inter_thread", "--factor", "2"]
        ) == 0
        assert "vgpr" in capsys.readouterr().out

    def test_ser(self, capsys):
        assert main(
            ["ser", "vectoradd", "--structure", "vgpr", "--scheme", "parity",
             "--style", "inter_thread", "--factor", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "SER" in out and "8x1" in out

    def test_inject(self, capsys):
        assert main(
            ["inject", "vectoradd", "--singles", "5", "--groups", "2",
             "--cus", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "SDC ACE bits" in out

    def test_mttf(self, capsys):
        assert main(["mttf"]) == 0
        assert "tMBF" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not-a-workload"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestCampaignRuntimeFlags:
    """The fault-tolerant runtime options on ``inject`` and ``campaign``."""

    def test_inject_isolated_with_resume(self, capsys, tmp_path):
        """The acceptance path: --jobs/--timeout/--retries/--resume end to
        end on an OpenCL-sample benchmark, then a resumed re-run."""
        journal = tmp_path / "campaign.jsonl"
        argv = [
            "inject", "transpose", "--singles", "4", "--groups", "2",
            "--cus", "1", "--jobs", "2", "--timeout", "60",
            "--retries", "1", "--resume", str(journal),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "SDC ACE bits" in first
        assert "resumed" not in first
        assert journal.exists() and journal.read_text().count("\n") >= 4
        # Everything is journaled now, so the re-run replays the journal
        # and says so; the campaign report itself is unchanged.
        assert main(argv) == 0
        second = capsys.readouterr().out
        notice, rest = second.split("\n", 1)
        assert notice.startswith("resumed ")
        assert notice.endswith(" completed tasks from journal")
        assert int(notice.split()[1]) >= 4
        assert rest == first

    def test_campaign_subcommand(self, capsys, tmp_path):
        assert main(
            ["campaign", "transpose", "vectoradd", "--singles", "3",
             "--groups", "1", "--cus", "1",
             "--resume", str(tmp_path / "suite.jsonl")]
        ) == 0
        out = capsys.readouterr().out
        assert "benchmark: transpose" in out
        assert "benchmark: vectoradd" in out
        assert "total SDC ACE bits" in out

    def test_timeout_without_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["inject", "transpose", "--timeout", "5"])

    def test_negative_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["inject", "transpose", "--jobs", "-1"])

    def test_negative_retries_rejected(self):
        with pytest.raises(SystemExit):
            main(["inject", "transpose", "--retries", "-2"])

    def test_directory_journal_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["inject", "transpose", "--resume", str(tmp_path)])

    def test_campaign_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["campaign", "transpose", "not-a-benchmark"])


class TestObservabilityFlags:
    """--json, --trace and --metrics surfacing plus the stats command."""

    def _json_out(self, capsys, argv):
        import json

        assert main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_run_json(self, capsys):
        doc = self._json_out(capsys, ["run", "vectoradd", "--json"])
        assert doc["workload"] == "vectoradd"
        assert doc["instructions"] > 0
        assert doc["verified"] is True
        assert "l2" in doc["caches"]

    def test_avf_json(self, capsys):
        doc = self._json_out(
            capsys,
            ["avf", "vectoradd", "--mode", "2x1", "--scheme", "parity",
             "--json"],
        )
        assert doc["mode"] == "2x1"
        assert doc["scheme"] == "parity"
        assert 0.0 <= doc["due_avf"] <= 1.0
        assert 0.0 <= doc["sdc_avf"] <= 1.0
        assert doc["groups"] > 0

    def test_ser_json(self, capsys):
        doc = self._json_out(
            capsys, ["ser", "vectoradd", "--structure", "l1", "--json"]
        )
        assert "1x1" in doc["modes"]
        assert doc["total_fit"] >= 0.0

    def test_mttf_json(self, capsys):
        doc = self._json_out(capsys, ["mttf", "--json"])
        assert len(doc["rows"]) >= 1
        assert "mttf_tmbf_100yr" in doc["rows"][0]

    def test_avf_trace_and_metrics_files(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(
            ["avf", "vectoradd", "--trace", str(trace),
             "--metrics", str(metrics)]
        ) == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"simulate", "lifetime", "enumerate", "integrate"} <= names
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["sim.kernel_launches"] >= 1
        assert snap["counters"]["avf.computations"] >= 1

    def test_jsonl_trace_extension(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main(["run", "vectoradd", "--trace", str(trace)]) == 0
        capsys.readouterr()
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert any(e["name"] == "simulate" for e in events)

    def test_campaign_trace_covers_all_stages(self, tmp_path, capsys):
        """Acceptance: the campaign trace shows every pipeline stage."""
        import json

        trace = tmp_path / "campaign.json"
        assert main(
            ["campaign", "vectoradd", "--singles", "2", "--groups", "1",
             "--cus", "1", "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {
            "simulate", "lifetime", "enumerate", "integrate", "inject",
        } <= names

    def test_campaign_reports_model_avf(self, capsys):
        assert main(
            ["inject", "vectoradd", "--singles", "2", "--groups", "1",
             "--cus", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "model SDC AVF" in out

    def test_stats(self, capsys):
        assert main(["stats", "vectoradd"]) == 0
        out = capsys.readouterr().out
        assert "== stage timings ==" in out
        assert "== metrics ==" in out
        assert "simulate" in out
        assert "sim.instructions" in out

    def test_stats_prometheus(self, capsys):
        assert main(["stats", "vectoradd", "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "== metrics ==" not in out
        assert "# TYPE repro_avf_computations_total counter" in out
        assert "repro_avf_computations_total " in out
        assert "# TYPE repro_sim_instructions_total counter" in out

    def test_trace_to_directory_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "vectoradd", "--trace", str(tmp_path)])

    def test_trace_to_missing_directory_rejected(self, tmp_path):
        """Export paths are validated before any work runs."""
        with pytest.raises(SystemExit):
            main(
                ["run", "vectoradd", "--trace",
                 str(tmp_path / "no" / "such" / "t.json")]
            )

    def test_metrics_to_missing_directory_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["avf", "vectoradd", "--metrics",
                 str(tmp_path / "missing" / "m.json")]
            )

    def test_observability_restored_after_command(self, capsys):
        from repro import obs

        assert main(["stats", "vectoradd"]) == 0
        capsys.readouterr()
        assert not obs.enabled()

    def test_stats_wraps_arbitrary_subcommand(self, capsys):
        """``repro stats -- CMD ...`` profiles any other subcommand."""
        assert main(["stats", "--", "mttf"]) == 0
        out = capsys.readouterr().out
        assert "FIT/Mbit" in out  # the wrapped mttf table ran
        assert "== stage timings ==" in out
        assert "== metrics ==" in out

    def test_stats_wrapper_prometheus(self, capsys):
        assert main(["stats", "--prometheus", "--", "run", "vectoradd"]) == 0
        out = capsys.readouterr().out
        assert "== metrics ==" not in out
        assert "# TYPE repro_sim_instructions_total counter" in out

    def test_stats_wrapper_propagates_exit_code(self, capsys, tmp_path):
        assert main(
            ["stats", "--", "campaign", "merge",
             "--resume", str(tmp_path / "j.jsonl")]
        ) == 2

    def test_stats_wrapper_rejects_empty_inner_command(self):
        with pytest.raises(SystemExit):
            main(["stats", "--"])


class TestFabricFlags:
    """--fabric/--listen/--connect validation and the journal-maintenance
    subcommands (``campaign merge`` / ``campaign compact``)."""

    def test_listen_without_fabric_rejected(self):
        with pytest.raises(SystemExit):
            main(["inject", "transpose", "--listen", "127.0.0.1:0"])

    def test_connect_without_fabric_rejected(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--connect", "127.0.0.1:9"])

    def test_fabric_worker_requires_campaign_command(self):
        with pytest.raises(SystemExit):
            main(["inject", "transpose", "--fabric", "worker",
                  "--connect", "127.0.0.1:9"])

    def test_fabric_worker_requires_connect(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--fabric", "worker"])

    def test_malformed_endpoint_rejected(self):
        with pytest.raises(SystemExit):
            main(["inject", "transpose", "--fabric", "coordinator",
                  "--listen", "noport"])

    def test_timeout_allowed_under_fabric_coordinator(self, capsys,
                                                      tmp_path):
        """--timeout without --jobs is legal in fabric mode: lease expiry
        enforces it instead of process isolation."""
        assert main(
            ["inject", "transpose", "--singles", "2", "--groups", "1",
             "--cus", "1", "--timeout", "60",
             "--fabric", "coordinator",
             "--resume", str(tmp_path / "j.jsonl")]
        ) == 0
        captured = capsys.readouterr()
        assert "fabric coordinator listening on" in captured.err
        assert "SDC ACE bits" in captured.out

    def test_fleetless_coordinator_campaign_demotes_to_local(
        self, capsys, tmp_path
    ):
        """A coordinator with no workers still finishes the campaign by
        demoting every task to local execution."""
        import json

        journal = tmp_path / "campaign.jsonl"
        assert main(
            ["inject", "transpose", "--singles", "2", "--groups", "1",
             "--cus", "1", "--fabric", "coordinator",
             "--resume", str(journal)]
        ) == 0
        out = capsys.readouterr().out
        assert "SDC ACE bits" in out
        nodes = {
            json.loads(line)["node"]
            for line in journal.read_text().splitlines()
        }
        assert nodes == {"local"}

    def test_merge_requires_resume(self, capsys):
        assert main(["campaign", "merge"]) == 2
        assert "requires --resume" in capsys.readouterr().err

    def test_merge_requires_shard_dir(self, capsys, tmp_path):
        assert main(
            ["campaign", "merge", "--resume", str(tmp_path / "j.jsonl")]
        ) == 2
        assert "requires --shard-dir" in capsys.readouterr().err
        assert main(
            ["campaign", "merge", "--resume", str(tmp_path / "j.jsonl"),
             "--shard-dir", str(tmp_path / "nowhere")]
        ) == 2

    def test_merge_folds_shards_into_canonical_journal(self, capsys,
                                                       tmp_path):
        from repro.runtime.journal import Journal

        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        shard = Journal(shard_dir / "n0.jsonl")
        shard.append({
            "task": "m/00", "outcome": "ok", "value": 1, "error": "",
            "attempts": 1, "duration": 0.0, "seq": 1, "node": "n0",
        })
        shard.close()
        journal = tmp_path / "campaign.jsonl"
        assert main(
            ["campaign", "merge", "--resume", str(journal),
             "--shard-dir", str(shard_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "merged 1 records from 1 shards" in out
        assert Journal(journal).load()["m/00"]["value"] == 1

    def test_compact_requires_resume(self, capsys):
        assert main(["campaign", "compact"]) == 2
        assert "requires --resume" in capsys.readouterr().err

    def test_compact_missing_journal(self, capsys, tmp_path):
        assert main(
            ["campaign", "compact", "--resume", str(tmp_path / "no.jsonl")]
        ) == 2
        assert "does not exist" in capsys.readouterr().err
