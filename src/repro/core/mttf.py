"""Mean-time-to-failure models: spatial vs. temporal multi-bit faults.

Reproduces the analysis behind Figure 2 of the paper (Sec. IV-B), which
justifies focusing MB-AVF on *spatial* MBFs: at realistic rates, the MTTF of
a large cache from spatial MBFs is many orders of magnitude lower than from
temporal MBFs.

* A **spatial** MBF needs a single particle strike; its rate is simply the
  strike rate times the fraction of strikes that are multi-bit.
* A **temporal** MBF needs two independent strikes to land on companion bits
  (bits whose joint corruption defeats the protection) while the first fault
  persists.  Following Saleh et al. [28], with per-bit fault rate ``lam`` and
  data lifetime ``L`` the rate of such coincidences in an array of ``B`` bits
  with ``k`` companions per bit is approximately ``B * k * lam^2 * L``.

All rates are expressed as FIT per Mbit (failures per 1e9 device-hours per
2^20 bits), the unit used by accelerated-testing campaigns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "HOURS_PER_YEAR",
    "mttf_smbf_hours",
    "mttf_tmbf_hours",
    "mttf_tmbf_unbounded_hours",
    "figure2_sweep",
]

HOURS_PER_YEAR = 8766.0  # 365.25 days
_FIT = 1e-9  # failures per hour per FIT
MBIT = float(1 << 20)


def _lam_per_bit_hour(raw_fit_per_mbit: float) -> float:
    """Per-bit per-hour strike rate from a FIT/Mbit raw rate."""
    return raw_fit_per_mbit * _FIT / MBIT


def mttf_smbf_hours(
    cache_bits: int, raw_fit_per_mbit: float, smbf_fraction: float
) -> float:
    """MTTF from spatial MBFs: one strike suffices.

    ``smbf_fraction`` is the fraction of strikes that affect multiple bits
    (e.g. 0.001 for the 22nm "0.1% of strikes affect more than 8 bits along a
    wordline" data point, 0.05 for the projected 5% rate).
    """
    lam = _lam_per_bit_hour(raw_fit_per_mbit)
    rate = cache_bits * lam * smbf_fraction
    return math.inf if rate == 0 else 1.0 / rate


def mttf_tmbf_hours(
    cache_bits: int,
    raw_fit_per_mbit: float,
    lifetime_hours: float,
    companions: int = 2,
) -> float:
    """MTTF from temporal MBFs with bounded data lifetime (Saleh et al.).

    A temporal MBF occurs when a second strike hits one of ``companions``
    companion bits within ``lifetime_hours`` of the first strike (after which
    the data is replaced/scrubbed and the first fault vanishes).
    """
    lam = _lam_per_bit_hour(raw_fit_per_mbit)
    rate = cache_bits * companions * lam * lam * lifetime_hours
    return math.inf if rate == 0 else 1.0 / rate


def mttf_tmbf_unbounded_hours(
    cache_bits: int, raw_fit_per_mbit: float, companions: int = 2
) -> float:
    """MTTF from temporal MBFs with *infinite* data lifetime.

    With faults accumulating forever, the expected number of coincidences
    after time ``T`` is ``B * k/2 * (lam*T)^2``; the MTTF is the ``T`` at
    which this reaches 1.  This is the most pessimistic (pro-temporal)
    assumption, used in Figure 2 to show that spatial MBFs dominate even
    then.
    """
    lam = _lam_per_bit_hour(raw_fit_per_mbit)
    if lam == 0:
        return math.inf
    return math.sqrt(2.0 / (cache_bits * companions)) / lam


@dataclass(frozen=True)
class Figure2Row:
    """One point of the Figure 2 comparison."""

    raw_fit_per_mbit: float
    mttf_smbf_01pct: float
    mttf_smbf_5pct: float
    mttf_tmbf_unbounded: float
    mttf_tmbf_100yr: float


def figure2_sweep(
    raw_rates: Sequence[float] = (0.01, 0.1, 1.0, 10.0, 100.0),
    cache_bytes: int = 32 << 20,
) -> List[Figure2Row]:
    """The Figure 2 experiment: 32MB cache, tMBF vs sMBF MTTFs.

    ``raw_rates`` are in FIT/Mbit; the default sweep spans the realistic
    SRAM raw-rate range cited by the paper [31].  Returns one row per rate,
    with sMBF MTTFs at the measured 0.1% and projected 5% multi-bit strike
    fractions, and tMBF MTTFs under infinite and 100-year cache-line
    lifetimes.  Because the tMBF rate is quadratic in the strike rate while
    the sMBF rate is linear, the tMBF-vs-sMBF gap grows as the raw rate
    shrinks, reaching the 6-8 orders of magnitude shown in Figure 2 at the
    low (realistic) end of the sweep.
    """
    bits = cache_bytes * 8
    rows = []
    for fit in raw_rates:
        rows.append(
            Figure2Row(
                raw_fit_per_mbit=fit,
                mttf_smbf_01pct=mttf_smbf_hours(bits, fit, 0.001),
                mttf_smbf_5pct=mttf_smbf_hours(bits, fit, 0.05),
                mttf_tmbf_unbounded=mttf_tmbf_unbounded_hours(bits, fit),
                mttf_tmbf_100yr=mttf_tmbf_hours(bits, fit, 100 * HOURS_PER_YEAR),
            )
        )
    return rows
