"""Command-line entry point: ``python -m repro.staticcheck`` / ``repro lint``.

Exit codes::

    0   clean (no findings, or all findings baselined and no stale cells)
    1   violations: new findings and/or stale baseline entries
    2   usage / IO error (bad baseline file, unreadable path)
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

from . import baseline as baseline_mod
from .engine import run
from .registry import rule_classes
from .reporters import render_json, render_sarif, render_text

__all__ = ["main", "build_parser", "lint_command", "add_lint_arguments"]

#: default location of the incremental cache (bare ``--cache``)
DEFAULT_CACHE = "tools/staticcheck_cache.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.staticcheck",
        description=(
            "AST-based invariant linter for the repro codebase: "
            "determinism, numpy kernel hygiene, fork/atomic-IO safety, "
            "obs discipline."
        ),
    )
    add_lint_arguments(parser)
    return parser


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint flags (shared with the ``repro lint`` subcommand)."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="only report findings for files changed since HEAD (plus "
             "their reverse-dependency closure); the whole-program index "
             "is still built over everything",
    )
    parser.add_argument(
        "--cache", metavar="FILE", nargs="?", const=DEFAULT_CACHE,
        default=None,
        help="enable the incremental per-file cache (bare --cache uses "
             f"{DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--jobs", metavar="N", type=int, default=1,
        help="analyze cache misses with N worker processes (default: 1)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="compare findings against a ratcheting baseline file",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline to match current findings and exit 0",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the report to FILE (atomically) instead of stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _git_lines(*args: str) -> List[str]:
    proc = subprocess.run(
        ["git", *args], capture_output=True, text=True, check=True
    )
    return [ln.strip() for ln in proc.stdout.splitlines() if ln.strip()]


def changed_relpaths(lint_paths: List[Path]) -> Optional[Set[str]]:
    """Changed ``*.py`` files (vs HEAD, plus untracked) as lint relpaths.

    Returns None when git is unavailable or the tree is not a work tree
    — callers should fall back to a full lint.  Paths are mapped into
    the same relpath space :func:`~repro.staticcheck.engine.scan_paths`
    uses (relative to the lint directory that contains them).
    """
    try:
        top = _git_lines("rev-parse", "--show-toplevel")
        touched = _git_lines("diff", "--name-only", "HEAD")
        touched += _git_lines("ls-files", "--others", "--exclude-standard")
    except (OSError, subprocess.CalledProcessError):
        return None
    if not top:
        return None
    root = Path(top[0])
    changed_files = {
        (root / name).resolve() for name in touched if name.endswith(".py")
    }
    rel: Set[str] = set()
    for base in lint_paths:
        resolved = base.resolve()
        if base.is_dir():
            for f in changed_files:
                try:
                    rel.add(f.relative_to(resolved).as_posix())
                except ValueError:
                    continue
        elif resolved in changed_files:
            rel.add(base.name)
    return rel


def _list_rules() -> str:
    lines: List[str] = []
    for cls in rule_classes().values():
        scope = cls.scope or "all"
        lines.append(f"{cls.code}  {cls.slug}  [{cls.family}, scope={scope}]")
        lines.append(f"      {cls.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    return lint_command(parser.parse_args(argv))


def lint_command(args: argparse.Namespace) -> int:
    """Shared implementation behind ``repro lint`` and ``python -m``.

    ``args`` needs: paths, format, baseline, update_baseline, output,
    list_rules.
    """
    if args.list_rules:
        print(_list_rules())
        return 0

    if args.update_baseline and not args.baseline:
        print(
            "repro.staticcheck: --update-baseline requires --baseline",
            file=sys.stderr,
        )
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro.staticcheck: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    changed: Optional[Set[str]] = None
    if getattr(args, "changed", False):
        changed = changed_relpaths(paths)
        if changed is None:
            print(
                "repro.staticcheck: --changed needs a git work tree; "
                "linting everything",
                file=sys.stderr,
            )

    cache = getattr(args, "cache", None)
    result = run(
        paths,
        cache_path=Path(cache) if cache else None,
        jobs=max(1, getattr(args, "jobs", 1)),
        changed=changed,
    )

    comparison = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if args.update_baseline:
            from ..ioutil import atomic_write

            content = baseline_mod.dump(
                baseline_mod.counts_for(result.findings)
            )
            atomic_write(baseline_path, content)
            print(
                f"baseline updated: {baseline_path} "
                f"({len(result.findings)} findings across "
                f"{len(baseline_mod.counts_for(result.findings))} cells)"
            )
            return 0
        try:
            known = baseline_mod.load(baseline_path)
        except (ValueError, KeyError, TypeError) as exc:
            print(f"repro.staticcheck: bad baseline: {exc}", file=sys.stderr)
            return 2
        comparison = baseline_mod.compare(result.findings, known)

    render = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.format]
    report = render(result, comparison)

    if args.output:
        from ..ioutil import atomic_write

        atomic_write(Path(args.output), report)
    else:
        print(report)

    if comparison is not None:
        return 0 if comparison.clean else 1
    return 0 if not result.findings else 1
