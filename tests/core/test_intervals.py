"""Unit tests for the classed interval algebra."""

import pytest

from repro.core.intervals import (
    AceClass,
    IntervalSet,
    Outcome,
    combine_outcomes,
    sweep_max,
)


class TestIntervalSetConstruction:
    def test_empty(self):
        s = IntervalSet()
        assert not s
        assert len(s) == 0
        assert s.span() == (0, 0)

    def test_basic(self):
        s = IntervalSet([(0, 10, 2), (20, 30, 1)])
        assert len(s) == 2
        assert s.total(2) == 10
        assert s.total(1) == 10

    def test_sorted_on_construction(self):
        s = IntervalSet([(20, 30, 1), (0, 10, 2)])
        assert s.intervals() == [(0, 10, 2), (20, 30, 1)]

    def test_class_zero_dropped(self):
        s = IntervalSet([(0, 10, 0), (10, 20, 1)])
        assert s.intervals() == [(10, 20, 1)]

    def test_adjacent_same_class_coalesced(self):
        s = IntervalSet([(0, 10, 2), (10, 20, 2)])
        assert s.intervals() == [(0, 20, 2)]

    def test_adjacent_different_class_kept(self):
        s = IntervalSet([(0, 10, 2), (10, 20, 1)])
        assert len(s) == 2

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet([(5, 5, 1)])

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet([(10, 5, 1)])

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet([(0, 10, 1), (5, 15, 2)])

    def test_negative_class_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet([(0, 10, -1)])


class TestAppend:
    def test_in_order(self):
        s = IntervalSet()
        s.append(0, 5, 2)
        s.append(10, 15, 1)
        assert s.intervals() == [(0, 5, 2), (10, 15, 1)]

    def test_coalesce(self):
        s = IntervalSet()
        s.append(0, 5, 2)
        s.append(5, 9, 2)
        assert s.intervals() == [(0, 9, 2)]

    def test_zero_class_ignored(self):
        s = IntervalSet()
        s.append(0, 5, 0)
        assert not s

    def test_empty_ignored(self):
        s = IntervalSet()
        s.append(5, 5, 2)
        assert not s

    def test_out_of_order_rejected(self):
        s = IntervalSet()
        s.append(10, 20, 1)
        with pytest.raises(ValueError):
            s.append(5, 8, 1)


class TestQueries:
    def test_class_at(self):
        s = IntervalSet([(0, 10, 2), (20, 30, 1)])
        assert s.class_at(0) == 2
        assert s.class_at(9) == 2
        assert s.class_at(10) == 0
        assert s.class_at(25) == 1
        assert s.class_at(30) == 0
        assert s.class_at(100) == 0

    def test_total_at_least(self):
        s = IntervalSet([(0, 10, 2), (20, 30, 1)])
        assert s.total_at_least(1) == 20
        assert s.total_at_least(2) == 10

    def test_durations(self):
        s = IntervalSet([(0, 10, 2), (20, 30, 1), (40, 45, 2)])
        assert s.durations(3) == [0, 10, 15]

    def test_total_of_class_zero_is_error(self):
        with pytest.raises(ValueError):
            IntervalSet().total(0)

    def test_span(self):
        s = IntervalSet([(5, 10, 1), (20, 30, 2)])
        assert s.span() == (5, 30)


class TestTransforms:
    def test_clip(self):
        s = IntervalSet([(0, 10, 2), (20, 30, 1)])
        c = s.clip(5, 25)
        assert c.intervals() == [(5, 10, 2), (20, 25, 1)]

    def test_clip_to_nothing(self):
        s = IntervalSet([(0, 10, 2)])
        assert not s.clip(100, 200)

    def test_map_class(self):
        s = IntervalSet([(0, 10, 2), (20, 30, 1)])
        m = s.map_class(lambda c: 3 if c == 2 else 0)
        assert m.intervals() == [(0, 10, 3)]

    def test_map_class_coalesces(self):
        s = IntervalSet([(0, 10, 2), (10, 20, 1)])
        m = s.map_class(lambda c: 1)
        assert m.intervals() == [(0, 20, 1)]

    def test_bucket_accumulate(self):
        s = IntervalSet([(0, 10, 2), (15, 25, 1)])
        out = [[0] * 3 for _ in range(3)]
        s.bucket_accumulate([0, 10, 20, 30], out)
        assert out[0][2] == 10
        assert out[1][1] == 5
        assert out[2][1] == 5


class TestSweepMax:
    def test_empty(self):
        assert not sweep_max([])
        assert not sweep_max([IntervalSet(), IntervalSet()])

    def test_single_passthrough(self):
        s = IntervalSet([(0, 10, 2)])
        assert sweep_max([s]).intervals() == [(0, 10, 2)]

    def test_disjoint_union(self):
        a = IntervalSet([(0, 10, 2)])
        b = IntervalSet([(20, 30, 1)])
        assert sweep_max([a, b]).intervals() == [(0, 10, 2), (20, 30, 1)]

    def test_overlap_takes_max_class(self):
        a = IntervalSet([(0, 20, 1)])
        b = IntervalSet([(5, 10, 2)])
        assert sweep_max([a, b]).intervals() == [(0, 5, 1), (5, 10, 2), (10, 20, 1)]

    def test_identical_inputs(self):
        a = IntervalSet([(0, 10, 2)])
        assert sweep_max([a, a, a]).intervals() == [(0, 10, 2)]

    def test_union_is_ace_if_any_bit_ace(self):
        # Eq. 4 of the paper: a group is ACE if any bit in it is ACE.
        bits = [
            IntervalSet([(0, 10, int(AceClass.ACE))]),
            IntervalSet([(10, 20, int(AceClass.ACE))]),
            IntervalSet(),
        ]
        merged = sweep_max(bits)
        assert merged.total(int(AceClass.ACE)) == 20

    def test_three_way_mixed(self):
        a = IntervalSet([(0, 30, 1)])
        b = IntervalSet([(10, 20, 2)])
        c = IntervalSet([(15, 25, 3)])
        out = sweep_max([a, b, c])
        assert out.intervals() == [
            (0, 10, 1),
            (10, 15, 2),
            (15, 25, 3),
            (25, 30, 1),
        ]


class TestCombineOutcomes:
    def _due(self, *ivals):
        return IntervalSet([(s, e, int(Outcome.TRUE_DUE)) for s, e in ivals])

    def _sdc(self, *ivals):
        return IntervalSet([(s, e, int(Outcome.SDC)) for s, e in ivals])

    def test_default_precedence_sdc_wins(self):
        # Sec. VII-B: SDC ACE + DUE ACE overlapping => SDC for caches.
        out = combine_outcomes([self._sdc((0, 10)), self._due((0, 10))])
        assert out.total(int(Outcome.SDC)) == 10
        assert out.total_at_least(int(Outcome.TRUE_DUE)) == 10

    def test_due_preempts_sdc(self):
        # Sec. VIII: simultaneous read converts overlapping SDC+DUE to DUE.
        out = combine_outcomes(
            [self._sdc((0, 10)), self._due((0, 10))], due_preempts_sdc=True
        )
        assert out.total(int(Outcome.SDC)) == 0
        assert out.total(int(Outcome.TRUE_DUE)) == 10

    def test_due_preempts_sdc_partial_overlap(self):
        out = combine_outcomes(
            [self._sdc((0, 20)), self._due((5, 10))], due_preempts_sdc=True
        )
        assert out.intervals() == [
            (0, 5, int(Outcome.SDC)),
            (5, 10, int(Outcome.TRUE_DUE)),
            (10, 20, int(Outcome.SDC)),
        ]

    def test_preempt_with_false_due(self):
        fd = IntervalSet([(0, 10, int(Outcome.FALSE_DUE))])
        out = combine_outcomes([self._sdc((0, 10)), fd], due_preempts_sdc=True)
        # Detection still fires; the error it stops was real, so true DUE.
        assert out.total(int(Outcome.TRUE_DUE)) == 10

    def test_sdc_alone_not_preempted(self):
        out = combine_outcomes([self._sdc((0, 10))], due_preempts_sdc=True)
        assert out.total(int(Outcome.SDC)) == 10

    def test_empty(self):
        assert not combine_outcomes([], due_preempts_sdc=True)
        assert not combine_outcomes([IntervalSet()])
