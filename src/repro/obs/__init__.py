"""``repro.obs`` — metrics, tracing and profiling for the whole pipeline.

One observability session per process, held in module globals and
**disabled by default**: :func:`get_metrics` returns a falsy
:class:`~repro.obs.metrics.NullRegistry` and :func:`get_tracer` a falsy
:class:`~repro.obs.trace.NullTracer`, whose instruments and spans are
shared no-op singletons.  Instrumented code in the simulator, the AVF
engine and the campaign runtime therefore stays in place permanently;
the disabled-mode overhead contract (< 2% on the engine benchmark) is
enforced by ``benchmarks/test_perf_obs_overhead.py``.

Typical use::

    from repro import obs

    with obs.observe(trace="campaign.json", metrics="metrics.json"):
        run_campaign("transpose", jobs=4)

    # or manually:
    registry, tracer = obs.enable()
    ...
    tracer.export_chrome("trace.json")   # open in https://ui.perfetto.dev
    print(obs.format_report(registry, tracer))
    obs.disable()

Worker processes spawned by the campaign runtime start with a fresh
interpreter, so observability is per-process: a parent tracer sees
worker tasks as externally timed events, not as their internal spans.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from .progress import ProgressMeter, format_duration
from .report import (
    format_metrics,
    format_report,
    format_resilience,
    format_spans,
)
from .trace import NullTracer, NULL_TRACER, SpanEvent, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "ProgressMeter",
    "SpanEvent",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "format_duration",
    "format_metrics",
    "format_report",
    "format_resilience",
    "format_spans",
    "get_metrics",
    "get_tracer",
    "install",
    "observe",
]

_metrics: MetricsRegistry = NULL_REGISTRY
_tracer: Tracer = NULL_TRACER


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry (falsy no-op when disabled)."""
    return _metrics


def get_tracer() -> Tracer:
    """The process-wide span tracer (falsy no-op when disabled)."""
    return _tracer


def enabled() -> bool:
    """True when either collection surface is live."""
    return bool(_metrics) or bool(_tracer)


def install(
    metrics: Optional[MetricsRegistry], tracer: Optional[Tracer]
) -> Tuple[MetricsRegistry, Tracer]:
    """Install specific registry/tracer instances (``None`` keeps the
    current one).  Returns what was installed; used by :func:`enable`
    and by tests that substitute counting doubles."""
    global _metrics, _tracer
    if metrics is not None:
        _metrics = metrics
    if tracer is not None:
        _tracer = tracer
    return _metrics, _tracer


def enable(
    metrics: bool = True, tracing: bool = True
) -> Tuple[MetricsRegistry, Tracer]:
    """Switch collection on with fresh instances; returns (registry, tracer)."""
    return install(
        MetricsRegistry() if metrics else None,
        Tracer() if tracing else None,
    )


def disable() -> None:
    """Restore the no-op registry and tracer."""
    install(NULL_REGISTRY, NULL_TRACER)


@contextmanager
def observe(
    trace: Optional[str] = None, metrics: Optional[str] = None
) -> Iterator[Tuple[MetricsRegistry, Tracer]]:
    """Enable collection for a block, exporting on exit.

    ``trace`` names a trace file (``.jsonl`` -> JSONL, anything else ->
    Chrome trace-event JSON for Perfetto); ``metrics`` names a JSON file
    receiving the registry snapshot.  The previous registry/tracer are
    restored afterwards, so sessions nest.
    """
    import json
    from pathlib import Path

    from ..ioutil import atomic_write

    prior = (_metrics, _tracer)
    registry, tracer = enable()
    try:
        yield registry, tracer
    finally:
        if trace:
            tracer.export(trace)
        if metrics:
            atomic_write(
                Path(metrics),
                json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n",
            )
        install(*prior)
