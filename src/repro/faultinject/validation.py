"""Cross-validation of ACE analysis against statistical fault injection.

The original ACE-analysis literature (Mukherjee et al., and the Wang et al.
comparison the paper discusses in Sec. III) validates AVF models by
injecting random faults and comparing the observed error rate against the
model's prediction.  This module runs that experiment on the memory data
image: the model predicts that a uniformly random (byte, bit, cycle) flip
causes SDC with probability equal to the region's ACE fraction; injection
measures it directly.

ACE analysis is conservative by construction — byte-granular lifetimes
ignore bit-level masking at the consumer, and detection-free regions treat
every ACE hit as an SDC — so the observed rate should fall at or below the
prediction, while remaining the right order of magnitude.

Like the ACE-interference campaign, every injection is dispatched through
the fault-tolerant runtime: ``jobs >= 1`` isolates simulations in worker
processes with timeouts and retries, and a ``journal`` makes the
validation run restartable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.analysis import AvfStudy
from ..runtime import (
    Executor,
    Journal,
    RetryPolicy,
    Task,
    TaskOutcome,
    classify_exception,
)
from ..workloads.base import run_workload
from ..workloads.suite import REGISTRY

__all__ = ["ValidationResult", "validate_memory_avf"]

_DEFAULT_MAX_CYCLES = 2_000_000


@dataclass
class ValidationResult:
    """Model-vs-injection comparison for one benchmark."""

    benchmark: str
    region: Tuple[int, int]
    model_avf: float
    n_injections: int
    sdc: int = 0
    masked: int = 0
    crash: int = 0
    hang: int = 0
    #: injections lost to infrastructure failures after retries
    failures: Dict[str, int] = field(default_factory=dict)

    @property
    def n_failed(self) -> int:
        return sum(self.failures.values())

    @property
    def observed_rate(self) -> float:
        n = self.n_injections - self.n_failed
        return self.sdc / n if n else 0.0

    @property
    def stderr(self) -> float:
        """Binomial standard error of the observed SDC rate."""
        p = self.observed_rate
        n = self.n_injections - self.n_failed
        return float(np.sqrt(p * (1 - p) / n)) if n else 0.0


def _snapshot(mem, outputs) -> bytes:
    return b"".join(
        mem.data[b : b + sz].tobytes()
        for b, sz in (mem.buffer(n) for n in outputs)
    )


class _MemRunner:
    """Executes one benchmark repeatedly with a single memory bit flip."""

    def __init__(
        self, benchmark: str, seed: int, n_cus: int,
        max_cycles: int = _DEFAULT_MAX_CYCLES,
    ) -> None:
        self.cls = REGISTRY[benchmark]
        self.seed = seed
        self.n_cus = n_cus
        self.max_cycles = max_cycles
        self.golden_run = run_workload(self.cls(seed=seed), n_cus=n_cus)
        self.golden = _snapshot(self.golden_run.memory, self.cls.outputs)

    def inject(self, point: Tuple[int, int, int]) -> str:
        from ..arch.gpu import Apu
        from ..arch.memory import GlobalMemory
        from .campaign import InjectionOutcome

        addr, bit, cycle = point
        wl = self.cls(seed=self.seed)
        mem = GlobalMemory()
        wl.setup(mem)
        apu = Apu(n_cus=self.n_cus, memory=mem, max_cycles=self.max_cycles)
        apu.inject_memory_fault(addr, 1 << bit, cycle)
        try:
            wl.launch(apu)
            apu.finish()
            # Late injections (after the last instruction) still corrupt
            # output buffers the host reads; apply any stragglers.
            apu._apply_mem_injections()
        except Exception as exc:
            outcome = classify_exception(exc)
            if outcome == TaskOutcome.SIM_HANG:
                return InjectionOutcome.HANG
            if outcome == TaskOutcome.SIM_CRASH:
                return InjectionOutcome.CRASH
            raise
        got = _snapshot(mem, self.cls.outputs)
        return (
            InjectionOutcome.MASKED if got == self.golden
            else InjectionOutcome.SDC
        )


# -- worker-process entry points (module-level for spawn pickling) ----------

_WORKER_MEM_RUNNER: Optional[_MemRunner] = None


def _init_memory_worker(
    benchmark: str, seed: int, n_cus: int, max_cycles: int
) -> None:
    global _WORKER_MEM_RUNNER
    _WORKER_MEM_RUNNER = _MemRunner(
        benchmark, seed, n_cus, max_cycles=max_cycles
    )


def _memory_task(point: Tuple[int, int, int]) -> str:
    return _WORKER_MEM_RUNNER.inject(point)


def validate_memory_avf(
    benchmark: str,
    *,
    n_injections: int = 150,
    seed: int = 0,
    n_cus: int = 2,
    region: Optional[Tuple[int, int]] = None,
    jobs: int = 0,
    timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[Union[Journal, str]] = None,
    max_cycles: int = _DEFAULT_MAX_CYCLES,
) -> ValidationResult:
    """Run the injection-vs-ACE validation for one benchmark.

    ``region`` defaults to the benchmark's full allocated footprint.  The
    model prediction comes from :meth:`AvfStudy.memory_lifetimes`; each
    injection flips one random bit of one random byte at one random cycle
    and compares the program output with the golden run.  The injection
    points are drawn up-front from the seeded generator, so a journaled
    run resumes deterministically.
    """
    if benchmark not in REGISTRY:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    from .campaign import InjectionOutcome

    runner = _MemRunner(benchmark, seed, n_cus, max_cycles=max_cycles)
    golden_run = runner.golden_run
    if region is None:
        bases = list(golden_run.memory.buffers().values())
        lo = min(b for b, _ in bases)
        hi = max(b + s for b, s in bases)
        region = (lo, hi - lo)
    study = AvfStudy(golden_run.apu, golden_run.output_ranges)
    lifetimes = study.memory_lifetimes(region)
    result = ValidationResult(
        benchmark, region, lifetimes.sb_ace_fraction(), n_injections
    )
    end_cycle = golden_run.end_cycle
    rng = np.random.default_rng(seed + 0x5EED)
    points: List[Tuple[int, int, int]] = [
        (
            region[0] + int(rng.integers(0, region[1])),
            int(rng.integers(0, 8)),
            int(rng.integers(0, max(end_cycle, 1))),
        )
        for _ in range(n_injections)
    ]
    if jobs >= 1:
        executor = Executor(
            _memory_task,
            jobs=jobs,
            timeout=timeout,
            retry=retry,
            journal=journal,
            initializer=_init_memory_worker,
            initargs=(benchmark, seed, n_cus, max_cycles),
        )
    else:
        executor = Executor(runner.inject, jobs=0, retry=retry, journal=journal)
    tasks = [
        Task(
            id=f"{benchmark}/val/{i:05d}",
            payload=p,
            meta={"addr": p[0], "bit": p[1], "cycle": p[2]},
        )
        for i, p in enumerate(points)
    ]
    with executor:
        results = executor.run(tasks)
    for task in tasks:
        r = results[task.id]
        if r.outcome == TaskOutcome.OK:
            verdict = r.value
        elif r.outcome == TaskOutcome.SIM_CRASH:
            verdict = InjectionOutcome.CRASH
        elif r.outcome == TaskOutcome.SIM_HANG:
            verdict = InjectionOutcome.HANG
        else:
            result.failures[r.outcome] = (
                result.failures.get(r.outcome, 0) + 1
            )
            continue
        if verdict == InjectionOutcome.MASKED:
            result.masked += 1
        elif verdict == InjectionOutcome.SDC:
            result.sdc += 1
        elif verdict == InjectionOutcome.HANG:
            result.hang += 1
        else:
            result.crash += 1
    return result
