"""C603 fixture: sleep under the lock; Condition.wait is sanctioned."""

import threading
import time


class SlowCache:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.data = {}

    def refresh(self):
        with self._lock:
            time.sleep(0.1)  # C603: blocking while holding _lock
            self.data = {}

    def wait_ready(self):
        with self._cond:
            self._cond.wait()  # clean: waiting on the held Condition

    def refresh_politely(self):
        time.sleep(0.1)  # clean: no lock held
        with self._lock:
            self.data = {}
