"""Table I: multi-bit fault fractions by technology node (Ibe et al.).

Regenerates the fault-mode rate table that motivates the paper: the
multi-bit share of SRAM faults grows from 0.5% at 180nm to 3.9% at 22nm,
and the maximum fault width grows with scaling.
"""

import pytest

from repro.core import TABLE_I


def _render():
    widths = sorted({w for v in TABLE_I.values() for w in v})
    lines = ["node(nm)  total%  " + "".join(f"{w:>7}" for w in widths)]
    rows = {}
    for node in sorted(TABLE_I, reverse=True):
        total = sum(TABLE_I[node].values())
        row = f"{node:8d} {total:6.2f}  " + "".join(
            f"{TABLE_I[node].get(w, 0.0):7.2f}" for w in widths
        )
        lines.append(row)
        rows[node] = total
    return lines, rows


@pytest.mark.benchmark(group="table1")
def test_table1_fault_mode_rates(benchmark, report):
    lines, rows = benchmark.pedantic(_render, rounds=1, iterations=1)
    report("table1_fault_mode_rates", lines)
    # Shape targets from the paper's text.
    assert rows[180] == pytest.approx(0.5)
    assert rows[22] == pytest.approx(3.9)
    ordered = [rows[n] for n in sorted(TABLE_I, reverse=True)]
    assert ordered == sorted(ordered)
