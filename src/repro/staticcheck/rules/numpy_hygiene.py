"""Numpy kernel-hygiene rules (family N).

The vectorized engine (``core/intervals.py``, ``core/avf.py``) is pinned
bit-for-bit to the pure-Python reference — a contract that only holds
while every kernel array stays int64 (or an explicitly chosen dtype).
These rules freeze that discipline: constructors must state their dtype,
object arrays are banned outright, float32 must not leak into the
float64-only engine, and ``astype`` in kernels must state its copy
intent.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import const_value, dotted_name, keyword_arg, resolve_call
from ..findings import Finding, Module, Rule
from ..registry import register

__all__ = [
    "MissingDtype",
    "ObjectDtype",
    "Float32Leak",
    "AstypeCopyIntent",
]

#: numpy constructors whose dtype defaults are platform/value dependent
_CONSTRUCTORS = {
    "numpy.array", "numpy.asarray", "numpy.ascontiguousarray",
    "numpy.empty", "numpy.zeros", "numpy.ones", "numpy.full",
    "numpy.arange", "numpy.fromiter", "numpy.frombuffer",
}


def _calls(module: Module) -> Iterator[ast.Call]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield node


def _dtype_is(node: Optional[ast.expr], module: Module, *names: str) -> bool:
    """Whether a dtype expression resolves to one of ``names``.

    Matches both the numpy attribute form (``np.float32``) and the
    string form (``"float32"``).
    """
    if node is None:
        return False
    value = const_value(node)
    if isinstance(value, str) and value in names:
        return True
    dn = dotted_name(node)
    if dn is None:
        return False
    from ..astutil import resolve

    resolved = resolve(dn, module.aliases)
    return any(
        resolved == f"numpy.{n}" or resolved == f"numpy.{n}_"
        or resolved == n
        for n in names
    )


@register
class MissingDtype(Rule):
    code = "N201"
    slug = "missing-dtype"
    family = "numpy"
    summary = (
        "numpy array constructor without an explicit dtype inside an "
        "engine kernel module"
    )
    rationale = (
        "Kernel arrays are contracted to int64 (intervals) / float64 "
        "(series): np.array([...]) infers platform-dependent dtypes "
        "(int32 on Windows) and value-dependent ones (object for "
        "ragged input), silently breaking the bit-for-bit equivalence "
        "with core/_reference.py.  Always write dtype=."
    )
    scope = "kernel"

    def check(self, module: Module) -> Iterator[Finding]:
        for call in _calls(module):
            name = resolve_call(call, module.aliases)
            if name in _CONSTRUCTORS and keyword_arg(call, "dtype") is None:
                short = name.rpartition(".")[2]
                yield module.finding(
                    call, self.code,
                    f"np.{short}(...) without dtype= in a kernel module; "
                    "dtype inference is platform- and value-dependent",
                )


@register
class ObjectDtype(Rule):
    code = "N202"
    slug = "object-dtype"
    family = "numpy"
    summary = "object-dtype array creation (dtype=object / astype(object))"
    rationale = (
        "Object arrays are boxed-pointer arrays: every kernel falls "
        "back to Python-speed element loops, comparisons become "
        "identity-dependent, and tobytes()-style canonical encodings "
        "(IntervalSet._key) stop being value-deterministic."
    )
    scope = None

    def check(self, module: Module) -> Iterator[Finding]:
        for call in _calls(module):
            dtype = keyword_arg(call, "dtype")
            if _dtype_is(dtype, module, "object", "O"):
                yield module.finding(
                    call, self.code,
                    "object-dtype array: boxed pointers defeat the "
                    "vectorized kernels and value-deterministic encodings",
                )
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "astype"
                and call.args
                and _dtype_is(call.args[0], module, "object", "O")
            ):
                yield module.finding(
                    call, self.code,
                    "astype(object): boxed pointers defeat the vectorized "
                    "kernels and value-deterministic encodings",
                )


@register
class Float32Leak(Rule):
    code = "N203"
    slug = "float32-leak"
    family = "numpy"
    summary = "float32 dtype or cast inside a float64-only kernel module"
    rationale = (
        "The engine accumulates outcome cycles in float64; mixing in "
        "float32 silently promotes through ufuncs with reduced "
        "precision at the 2^24 boundary — exactly the magnitude of "
        "group-cycle sums on real traces — and diverges from the "
        "reference engine."
    )
    scope = "kernel"

    def check(self, module: Module) -> Iterator[Finding]:
        for call in _calls(module):
            name = resolve_call(call, module.aliases)
            if name == "numpy.float32":
                yield module.finding(
                    call, self.code,
                    "np.float32 cast in a float64-only kernel module",
                )
                continue
            dtype = keyword_arg(call, "dtype")
            if _dtype_is(dtype, module, "float32", "f4", "single"):
                yield module.finding(
                    call, self.code,
                    "dtype=float32 in a float64-only kernel module",
                )
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "astype"
                and call.args
                and _dtype_is(call.args[0], module, "float32", "f4", "single")
            ):
                yield module.finding(
                    call, self.code,
                    "astype(float32) in a float64-only kernel module",
                )


@register
class AstypeCopyIntent(Rule):
    code = "N204"
    slug = "astype-copy-intent"
    family = "numpy"
    summary = (
        "astype() without copy= in a kernel module (copy intent left "
        "implicit on a hot path)"
    )
    rationale = (
        "astype() copies unconditionally by default, even when the "
        "dtype already matches; on kernel hot paths that is a silent "
        "O(n) allocation per call.  Writing copy=False (view when "
        "possible) or copy=True (isolation required) makes the intent "
        "reviewable and keeps accidental copies out of the profile."
    )
    scope = "kernel"

    def check(self, module: Module) -> Iterator[Finding]:
        for call in _calls(module):
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "astype"
                and keyword_arg(call, "copy") is None
            ):
                yield module.finding(
                    call, self.code,
                    "astype() without copy= on a kernel path; state the "
                    "copy intent (copy=False if a view is acceptable)",
                )
