"""CLI surface of the store: --store sinks, query, report, merge."""

import json

import pytest

from repro.cli import main
from repro.store import ResultStore

from .conftest import avf_row, point_record, sweep_point, write_journal


@pytest.fixture
def seeded_path(store, store_path):
    store.put_avf_rows(
        [
            avf_row(workload="matmul", sdc_avf=0.10),
            avf_row(workload="matmul", mode="4x1", sdc_avf=0.30),
            avf_row(workload="transpose", sdc_avf=0.20),
        ]
    )
    return store_path


class TestProducerFlags:
    def test_avf_store_is_idempotent(self, tmp_path, capsys):
        path = tmp_path / "r.sqlite"
        argv = ["avf", "vectoradd", "--structure", "l1", "--mode", "2x1",
                "--scheme", "parity", "--store", str(path)]
        assert main(argv) == 0
        assert "stored: 1 new, 0 already present" in capsys.readouterr().out
        assert main(argv) == 0
        assert "stored: 0 new, 1 already present" in capsys.readouterr().out
        with ResultStore(path) as store:
            rows = store.query()
            assert len(rows) == 1
            assert rows[0].workload == "vectoradd"
            assert rows[0].source == "cli/avf"

    def test_mttf_store(self, tmp_path, capsys):
        path = tmp_path / "r.sqlite"
        assert main(["mttf", "--store", str(path)]) == 0
        capsys.readouterr()
        with ResultStore(path) as store:
            assert len(store.mttf_rows()) >= 4

    def test_store_in_missing_directory_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["mttf", "--store", str(tmp_path / "absent" / "r.sqlite")])

    def test_store_directory_path_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["mttf", "--store", str(tmp_path)])


class TestQueryCommand:
    def test_text_table(self, seeded_path, capsys):
        assert main(["query", "--store", str(seeded_path)]) == 0
        out = capsys.readouterr().out
        assert "3 rows" in out
        assert "matmul" in out and "transpose" in out

    def test_filters_and_json(self, seeded_path, capsys):
        assert main(
            ["query", "--store", str(seeded_path),
             "--workload", "matmul", "--mode", "4x1", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["rows"][0]["sdc_avf"] == 0.30

    def test_repeated_flag_is_an_in_list(self, seeded_path, capsys):
        assert main(
            ["query", "--store", str(seeded_path),
             "--workload", "matmul", "--workload", "transpose", "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 3

    def test_group_by(self, seeded_path, capsys):
        assert main(
            ["query", "--store", str(seeded_path), "--group-by",
             "workload", "--value", "sdc_avf", "--agg", "mean", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        groups = {
            tuple(g["key"]): g["sdc_avf"] for g in payload["groups"]
        }
        assert groups[("matmul",)] == pytest.approx(0.2)
        assert groups[("transpose",)] == pytest.approx(0.2)

    def test_missing_store_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["query", "--store", str(tmp_path / "absent.sqlite")])

    def test_bad_group_column_is_rejected(self, seeded_path):
        with pytest.raises(SystemExit):
            main(["query", "--store", str(seeded_path),
                  "--group-by", "sdc_avf"])


class TestReportCommand:
    def test_build_writes_index(self, seeded_path, tmp_path, capsys):
        out = tmp_path / "report"
        assert main(
            ["report", "build", "--store", str(seeded_path),
             "--out", str(out)]
        ) == 0
        assert "report written to" in capsys.readouterr().out
        html = (out / "index.html").read_text()
        assert "MB-AVF results store" in html
        assert "matmul" in html

    def test_missing_store_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "build",
                  "--store", str(tmp_path / "absent.sqlite")])


class TestCampaignMergeStore:
    def test_merge_store_reingest_is_noop(self, tmp_path, capsys):
        """'campaign merge --store' twice: the second run folds zero new
        journal records and stores zero new rows."""
        store_path = tmp_path / "r.sqlite"
        canonical = tmp_path / "canonical.jsonl"
        write_journal(canonical, [point_record("grid/vgpr/matmul/c0")])
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        write_journal(
            shard_dir / "node-a.jsonl",
            [point_record(
                "grid/vgpr/matmul/c1", point=sweep_point(mode="4x1")
            )],
        )
        argv = ["campaign", "merge", "--resume", str(canonical),
                "--shard-dir", str(shard_dir), "--store", str(store_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "merged 1 records" in out
        assert "stored: 2 new, 0 already present" in out

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "merged 0 records" in out
        assert "stored: 0 new, 2 already present" in out
        with ResultStore(store_path) as store:
            assert len(store.query()) == 2


class TestStoreMaintenanceCommand:
    """``repro store verify`` / ``repro store rebuild``."""

    def _corrupt(self, path):
        # mid-file so the header still reads as a sqlite database
        offset = min(4096, path.stat().st_size // 2)
        with open(path, "r+b") as fh:
            fh.seek(offset)
            fh.write(b"\xde\xad\xbe\xef" * 256)

    def _populated(self, tmp_path):
        path = tmp_path / "big.sqlite"
        with ResultStore(path) as store:
            store.put_avf_rows([avf_row(seed=s) for s in range(50)])
        return path

    def test_verify_healthy_is_exit_0(self, seeded_path, capsys):
        assert main(
            ["store", "verify", "--store", str(seeded_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["checks"]["integrity"] == "ok"
        assert payload["checks"]["rows"]["avf_results"] == 3

    def test_verify_corrupt_is_exit_1_with_runbook_hint(
        self, tmp_path, capsys
    ):
        path = self._populated(tmp_path)
        self._corrupt(path)
        assert main(["store", "verify", "--store", str(path)]) == 1
        out = capsys.readouterr().out
        assert "UNHEALTHY" in out
        assert "repro store rebuild" in out

    def test_verify_missing_file_is_exit_1(self, tmp_path, capsys):
        missing = tmp_path / "absent.sqlite"
        assert main(["store", "verify", "--store", str(missing)]) == 1
        assert "does not exist" in capsys.readouterr().out

    def test_rebuild_from_journal(self, tmp_path, capsys):
        journal = write_journal(
            tmp_path / "j.jsonl",
            [point_record("t0"),
             point_record("t1", point=sweep_point(mode="4x1"))],
        )
        path = tmp_path / "r.sqlite"
        assert main(
            ["store", "rebuild", "--store", str(path),
             "--from-journal", str(journal)]
        ) == 0
        assert "verdict: ok" in capsys.readouterr().out
        with ResultStore(path) as store:
            assert len(store.query()) == 2

    def test_rebuild_quarantines_and_reports_it(self, tmp_path, capsys):
        journal = write_journal(tmp_path / "j.jsonl",
                                [point_record("t0")])
        path = self._populated(tmp_path)
        self._corrupt(path)
        assert main(
            ["store", "rebuild", "--store", str(path),
             "--from-journal", str(journal)]
        ) == 0
        out = capsys.readouterr().out
        assert "quarantined old file" in out
        assert (tmp_path / "big.sqlite.corrupt-1").exists()

    def test_rebuild_without_journal_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "rebuild",
                  "--store", str(tmp_path / "r.sqlite")])

    def test_rebuild_missing_journal_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "rebuild", "--store", str(tmp_path / "r.sqlite"),
                  "--from-journal", str(tmp_path / "absent.jsonl")])

    def test_verify_rejects_rebuild_only_flags(self, seeded_path,
                                               tmp_path):
        journal = write_journal(tmp_path / "j.jsonl",
                                [point_record("t0")])
        with pytest.raises(SystemExit):
            main(["store", "verify", "--store", str(seeded_path),
                  "--from-journal", str(journal)])
