"""High-level orchestration: run a workload, then measure any AVF you like.

:class:`AvfStudy` wires together the full pipeline of the paper:

1. the simulator's event traces (:class:`~repro.arch.gpu.Apu`),
2. the backward liveness pass (dynamic-dead + logic masking),
3. per-structure lifetime analysis (L1s, L2, per-wavefront VGPRs),
4. the MB-AVF engine for any (fault mode, protection scheme, interleaving)
   combination.

Lifetimes are computed once per structure and reused across every AVF
configuration, mirroring the "event tracking, then analysis" split of the
paper's infrastructure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.gpu import Apu
from ..arch.liveness import analyze_liveness
from ..obs import get_tracer
from .avf import (
    AvfConfig,
    MbAvfResult,
    StructureLifetimes,
    ace_locality,
    compute_mb_avf_batch,
    merge_results,
)
from .faultmodes import FaultMode
from .layout import (
    Interleaving,
    SramArray,
    build_cache_array,
    build_regfile_array,
)
from .layout import build_tag_array
from .lifetime import (
    MemoryConsumption,
    analyze_cache,
    analyze_memory,
    analyze_vgpr,
    derive_tag_lifetimes,
    merge_fill_maps,
)
from .protection import ProtectionScheme

__all__ = ["AvfStudy"]


class AvfStudy:
    """AVF measurement session over one finished workload run.

    Parameters
    ----------
    apu:
        The device the workload ran on.  ``finish()`` is called if the
        caller has not done so.
    output_ranges:
        (base, size) pairs of the buffers the host consumes — the roots of
        the liveness analysis.
    vgpr_regs:
        Number of architectural VGPRs modelled per thread in the register
        file structure (defaults to the largest register count any launched
        kernel used, rounded up to a power of two for interleaving).
    """

    def __init__(
        self,
        apu: Apu,
        output_ranges: Sequence[Tuple[int, int]],
        vgpr_regs: Optional[int] = None,
    ) -> None:
        self.apu = apu
        self.output_ranges = list(output_ranges)
        if not apu.finished:
            apu.finish()
        self.end_cycle = apu.cycle
        if vgpr_regs is None:
            most = max(
                (p.n_vregs for p in apu.wf_programs.values()), default=8
            )
            vgpr_regs = 1 << max(3, (most - 1).bit_length())
        self.vgpr_regs = vgpr_regs
        # Liveness annotation (in place on the records).
        n_vregs_by_wf = {w: p.n_vregs for w, p in apu.wf_programs.items()}
        with get_tracer().span("liveness", records=len(apu.records)):
            analyze_liveness(
                apu.records,
                n_vregs_by_wf,
                apu.memory.size,
                self.output_ranges,
                lds_size=apu.lds_bytes,
            )
        self._records_by_uid = {r.uid: r for r in apu.records}
        self._memcons: Optional[MemoryConsumption] = None
        self._l1_lifetimes: Optional[List[StructureLifetimes]] = None
        self._l2_lifetime: Optional[StructureLifetimes] = None
        self._vgpr_lifetimes: Optional[List[StructureLifetimes]] = None
        self._layout_cache: Dict[Tuple, SramArray] = {}

    # -- lifetimes (lazy, cached) -------------------------------------------

    @property
    def memcons(self) -> MemoryConsumption:
        if self._memcons is None:
            self._memcons = MemoryConsumption(
                self.apu.records, self.apu.memory.size, self.output_ranges
            )
        return self._memcons

    def l1_lifetimes(self) -> List[StructureLifetimes]:
        """Per-CU L1 lifetimes (also resolves fill verdicts for the L2)."""
        if self._l1_lifetimes is None:
            self._l1_lifetimes = []
            self._l1_fills = []
            with get_tracer().span("lifetime", structure="l1"):
                for l1 in self.apu.memsys.l1s:
                    lt, fills = analyze_cache(
                        l1, self._records_by_uid, self.end_cycle
                    )
                    self._l1_lifetimes.append(lt)
                    self._l1_fills.append(fills)
        return self._l1_lifetimes

    def l2_lifetime(self) -> StructureLifetimes:
        if self._l2_lifetime is None:
            self.l1_lifetimes()  # ensure fill verdicts exist
            upstream = merge_fill_maps(self._l1_fills)
            with get_tracer().span("lifetime", structure="l2"):
                self._l2_lifetime, _ = analyze_cache(
                    self.apu.memsys.l2,
                    self._records_by_uid,
                    self.end_cycle,
                    memcons=self.memcons,
                    upstream_fills=upstream,
                )
        return self._l2_lifetime

    def vgpr_lifetimes(self) -> List[StructureLifetimes]:
        """One register-file lifetime per launched wavefront."""
        if self._vgpr_lifetimes is None:
            with get_tracer().span("lifetime", structure="vgpr"):
                self._vgpr_lifetimes = [
                    analyze_vgpr(
                        self.apu.records, wf, self.vgpr_regs, self.end_cycle
                    )
                    for wf in sorted(self.apu.wf_programs)
                ]
        return self._vgpr_lifetimes

    # -- layouts --------------------------------------------------------------

    def _cache_layout(
        self, level: str, style: Interleaving, factor: int, domain_bytes: int
    ) -> SramArray:
        key = (level, style, factor, domain_bytes)
        if key not in self._layout_cache:
            cfg = (
                self.apu.memsys.l1s[0].config
                if level == "l1" else self.apu.memsys.l2.config
            )
            self._layout_cache[key] = build_cache_array(
                cfg.n_sets, cfg.n_ways, cfg.line_bytes,
                domain_bytes=domain_bytes, style=style, factor=factor,
                name=level,
            )
        return self._layout_cache[key]

    def _vgpr_layout(self, style: Interleaving, factor: int) -> SramArray:
        key = ("vgpr", style, factor)
        if key not in self._layout_cache:
            self._layout_cache[key] = build_regfile_array(
                16, self.vgpr_regs, style=style, factor=factor, name="vgpr"
            )
        return self._layout_cache[key]

    # -- AVF measurements -------------------------------------------------------

    def cache_avf_batch(
        self,
        level: str,
        configs: Sequence[AvfConfig],
        *,
        style: Interleaving = Interleaving.NONE,
        factor: int = 1,
        domain_bytes: int = 4,
    ) -> List[MbAvfResult]:
        """MB-AVFs of a cache level for many engine configs in one pass.

        All configs share one enumeration/classification cache per CU; the
        per-CU results of each config are merged as in :meth:`cache_avf`.
        """
        layout = self._cache_layout(level, style, factor, domain_bytes)
        if level == "l1":
            lts = self.l1_lifetimes()
        elif level == "l2":
            lts = [self.l2_lifetime()]
        else:
            raise ValueError("level must be 'l1' or 'l2'")
        per_lt = [compute_mb_avf_batch(layout, lt, configs) for lt in lts]
        return [
            merge_results([res[i] for res in per_lt])
            for i in range(len(configs))
        ]

    def cache_avf(
        self,
        level: str,
        mode: FaultMode,
        scheme: ProtectionScheme,
        *,
        style: Interleaving = Interleaving.NONE,
        factor: int = 1,
        domain_bytes: int = 4,
        due_preempts_sdc: bool = False,
        series_edges: Optional[Sequence[int]] = None,
    ) -> MbAvfResult:
        """MB-AVF of the L1 (merged over CUs) or L2 cache."""
        cfg = AvfConfig(
            mode=mode, scheme=scheme, due_preempts_sdc=due_preempts_sdc,
            series_edges=tuple(series_edges) if series_edges is not None else None,
        )
        return self.cache_avf_batch(
            level, [cfg], style=style, factor=factor, domain_bytes=domain_bytes,
        )[0]

    def vgpr_avf_batch(
        self,
        configs: Sequence[AvfConfig],
        *,
        style: Interleaving = Interleaving.INTRA_THREAD,
        factor: int = 1,
    ) -> List[MbAvfResult]:
        """MB-AVFs of the stacked register file for many configs in one pass.

        Configs are taken verbatim — apply the inter-thread
        ``due_preempts_sdc`` default yourself if you build them by hand
        (:meth:`vgpr_avf` does it for you).
        """
        layout, lifetimes = self._stacked_vgpr(style, factor)
        return compute_mb_avf_batch(layout, lifetimes, configs)

    def vgpr_avf(
        self,
        mode: FaultMode,
        scheme: ProtectionScheme,
        *,
        style: Interleaving = Interleaving.INTRA_THREAD,
        factor: int = 1,
        due_preempts_sdc: Optional[bool] = None,
        series_edges: Optional[Sequence[int]] = None,
    ) -> MbAvfResult:
        """MB-AVF of the vector register file, merged over wavefronts.

        With inter-thread interleaving the 16 threads of a wavefront read a
        register row simultaneously, so a detected region fires before an
        undetected one propagates — the Sec. VIII rule.  That behaviour is
        applied automatically unless ``due_preempts_sdc`` is forced.
        """
        if due_preempts_sdc is None:
            due_preempts_sdc = style is Interleaving.INTER_THREAD
        cfg = AvfConfig(
            mode=mode, scheme=scheme, due_preempts_sdc=due_preempts_sdc,
            series_edges=tuple(series_edges) if series_edges is not None else None,
        )
        return self.vgpr_avf_batch([cfg], style=style, factor=factor)[0]

    def _stacked_vgpr(
        self, style: Interleaving, factor: int
    ) -> Tuple[SramArray, StructureLifetimes]:
        """All wavefronts' register files stacked into one structure.

        Interleaving stays wavefront-internal (rows never mix wavefronts);
        stacking just lets one engine invocation cover the whole register
        file, with byte/domain ids offset per wavefront.
        """
        key = ("vgpr-stack", style, factor)
        if key not in self._layout_cache:
            base = self._vgpr_layout(style, factor)
            lts = self.vgpr_lifetimes()
            n = len(lts)
            byte_of = np.vstack(
                [base.byte_of + np.int32(k * base.n_bytes) for k in range(n)]
            )
            domain_of = np.vstack(
                [base.domain_of + np.int32(k * base.n_domains) for k in range(n)]
            )
            stacked = SramArray(
                "vgpr", byte_of, domain_of, base.domain_bytes,
                base.interleave_factor, base.style,
            )
            isets: List = []
            for lt in lts:
                isets.extend(lt.byte_isets)
            lifetimes = StructureLifetimes("vgpr", isets, 0, self.end_cycle)
            self._layout_cache[key] = (stacked, lifetimes)
        return self._layout_cache[key]

    def memory_lifetimes(self, region: Tuple[int, int]) -> StructureLifetimes:
        """Architectural lifetimes of a flat memory region (see
        :func:`repro.core.lifetime.analyze_memory`)."""
        return analyze_memory(
            self.apu.records, region, self.output_ranges, self.end_cycle
        )

    def _tag_lifetimes(self, level: str, tag_bytes: int) -> List[StructureLifetimes]:
        """Derived tag-array lifetimes, cached so repeated tag AVFs share
        the engine's per-lifetimes canonical-id and region caches."""
        key = ("tag-lts", level, tag_bytes)
        if key not in self._layout_cache:
            cfg = (
                self.apu.memsys.l1s[0].config
                if level == "l1" else self.apu.memsys.l2.config
            )
            if level == "l1":
                data_lts = self.l1_lifetimes()
            elif level == "l2":
                data_lts = [self.l2_lifetime()]
            else:
                raise ValueError("level must be 'l1' or 'l2'")
            self._layout_cache[key] = [
                derive_tag_lifetimes(lt, cfg.line_bytes, tag_bytes=tag_bytes)
                for lt in data_lts
            ]
        return self._layout_cache[key]

    def tag_avf_batch(
        self,
        level: str,
        configs: Sequence[AvfConfig],
        *,
        factor: int = 1,
        tag_bytes: int = 3,
    ) -> List[MbAvfResult]:
        """MB-AVFs of a cache's tag array for many configs in one pass."""
        cfg = (
            self.apu.memsys.l1s[0].config
            if level == "l1" else self.apu.memsys.l2.config
        )
        key = ("tags", level, factor, tag_bytes)
        if key not in self._layout_cache:
            self._layout_cache[key] = build_tag_array(
                cfg.n_sets, cfg.n_ways, tag_bytes=tag_bytes, factor=factor,
                name=f"{level}.tags",
            )
        layout = self._layout_cache[key]
        tag_lts = self._tag_lifetimes(level, tag_bytes)
        per_lt = [compute_mb_avf_batch(layout, lt, configs) for lt in tag_lts]
        return [
            merge_results([res[i] for res in per_lt])
            for i in range(len(configs))
        ]

    def tag_avf(
        self,
        level: str,
        mode: FaultMode,
        scheme: ProtectionScheme,
        *,
        factor: int = 1,
        tag_bytes: int = 3,
        series_edges: Optional[Sequence[int]] = None,
    ) -> MbAvfResult:
        """MB-AVF of a cache's tag array (conservative address-structure model).

        Tag lifetimes are derived from the data array's: an entry is ACE
        while its line holds live data.  ``factor`` interleaves adjacent
        ways' tags within a set's row.
        """
        cfg = AvfConfig(
            mode=mode, scheme=scheme,
            series_edges=tuple(series_edges) if series_edges is not None else None,
        )
        return self.tag_avf_batch(
            level, [cfg], factor=factor, tag_bytes=tag_bytes,
        )[0]

    def cache_ace_locality(
        self, level: str, *, style: Interleaving = Interleaving.NONE,
        factor: int = 1, domain_bytes: int = 4,
    ) -> float:
        """ACE locality of a cache under a given physical layout."""
        layout = self._cache_layout(level, style, factor, domain_bytes)
        lts = self.l1_lifetimes() if level == "l1" else [self.l2_lifetime()]
        vals = [ace_locality(layout, lt) for lt in lts]
        return float(np.mean(vals))
