"""D101 fixture: every flavour of global/unseeded RNG."""

import random

import numpy as np
from numpy.random import default_rng


def draws():
    a = random.random()
    rng = random.Random()
    b = np.random.rand(3)
    gen = default_rng()
    legacy = np.random.RandomState()
    good = np.random.default_rng(1234)
    good2 = random.Random(7)
    return a, rng, b, gen, legacy, good, good2
