"""JSONL checkpoint journal: one line per completed task.

The journal is the campaign's crash-consistency mechanism (the same idea
DAVOS uses to make month-long FPGA injection runs restartable): every
*final* task result is appended as one self-contained JSON line and
flushed to disk, so a campaign killed at any point — including mid-write —
can be resumed by skipping every task the journal already holds.

Integrity is per record: each line carries a CRC32 (the ``_crc`` field)
over its canonical payload, so silent disk corruption of an *interior*
record is detected on load instead of being deserialised into a wrong
result.  Anything unreadable — bad JSON, CRC mismatch, a record missing
its task id — is moved to a quarantine sidecar (``<journal>.quarantine``)
and its task re-executed on resume; only a malformed *final* line, the
expected residue of a kill mid-append, is dropped silently.  Journals
written before the CRC field existed load unchanged: a record without
``_crc`` is accepted as-is.

``compact()`` rewrites the file atomically (tmp + fsync + rename +
directory fsync), dropping superseded duplicates and shedding quarantined
lines; a kill at any instant of a compaction leaves either the old or the
new journal, never a mix.

Writes accept an optional :class:`~repro.runtime.chaos.ChaosPolicy`,
which can corrupt or truncate lines and simulate ``ENOSPC``/``EIO`` —
the hook the chaos suite uses to prove the above adversarially.
"""

from __future__ import annotations

import errno
import json
import os
import warnings
import zlib
from pathlib import Path
from typing import Dict, Optional, TextIO, Union

from ..ioutil import atomic_write
from .errors import JournalWriteError

__all__ = ["Journal"]

PathLike = Union[str, Path]

#: key carrying the per-record checksum; stripped from loaded records
_CRC_KEY = "_crc"


def _canonical(record: dict) -> str:
    """The canonical serialisation the CRC covers (and the line payload)."""
    return json.dumps(record, sort_keys=True)


def _crc32(text: str) -> int:
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class Journal:
    """Append-only JSONL record of completed tasks, keyed by task id."""

    def __init__(self, path: PathLike, *, chaos=None) -> None:
        self.path = Path(path)
        if self.path.is_dir():
            raise ValueError(
                f"journal path {self.path} is a directory; pass a file path"
            )
        #: dev-only fault injection into journal writes (None = off)
        self.chaos = chaos
        self._fh: Optional[TextIO] = None

    @property
    def quarantine_path(self) -> Path:
        """Sidecar receiving corrupt lines (kept for forensics, never read
        back by the runtime)."""
        return self.path.with_name(self.path.name + ".quarantine")

    # -- reading ------------------------------------------------------------

    def load(self) -> Dict[str, dict]:
        """All journaled records by task id (later lines win).

        Corrupt *interior* lines — undecodable JSON, a CRC mismatch, a
        record without a task id — are quarantined to
        :attr:`quarantine_path` with one summarising warning; their tasks
        simply re-run on resume.  A malformed *final* line is dropped
        silently: it is the expected residue of a driver killed
        mid-append.  The file is read as bytes with ``errors="replace"``
        so binary corruption mid-file cannot brick resume with a
        ``UnicodeDecodeError``.
        """
        records: Dict[str, dict] = {}
        if not self.path.exists():
            return records
        raw_lines = self.path.read_bytes().split(b"\n")
        if raw_lines and raw_lines[-1] == b"":
            raw_lines.pop()  # trailing newline, not an empty record
        quarantined = 0
        last = len(raw_lines) - 1
        for i, raw in enumerate(raw_lines):
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            reason = None
            rec = None
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                if i == last:
                    continue  # torn tail from a kill mid-append
                reason = "json_error"
            if reason is None:
                if not isinstance(rec, dict):
                    reason = "not_a_record"
                else:
                    crc = rec.pop(_CRC_KEY, None)
                    if crc is not None and _crc32(_canonical(rec)) != crc:
                        reason = "crc_mismatch"
                    elif not isinstance(rec.get("task"), str):
                        reason = "missing_task_id"
            if reason is not None:
                self._quarantine_line(line, i + 1, reason)
                quarantined += 1
                continue
            records[rec["task"]] = rec
        if quarantined:
            warnings.warn(
                f"journal {self.path}: quarantined {quarantined} corrupt "
                f"record(s) to {self.quarantine_path}; their tasks will "
                "re-run on resume",
                stacklevel=2,
            )
        return records

    # -- quarantine ---------------------------------------------------------

    def _quarantine_line(self, line: str, line_no: int, reason: str) -> None:
        from ..obs import get_metrics

        get_metrics().counter("runtime.journal_quarantined").inc()
        entry = json.dumps(
            {"line": line_no, "reason": reason, "raw": line}, sort_keys=True
        )
        with self.quarantine_path.open("a") as fh:
            fh.write(entry + "\n")

    def quarantine_record(self, record: dict, reason: str) -> None:
        """Quarantine a structurally-bad (but parseable) record — used by
        the executor when :class:`TaskResult` cannot be rebuilt from it."""
        try:
            raw = json.dumps(record, sort_keys=True)
        except TypeError:
            raw = repr(record)
        self._quarantine_line(raw, 0, reason)

    # -- writing ------------------------------------------------------------

    def _open_for_append(self) -> TextIO:
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # A journal truncated mid-line by a kill must not have the next
        # record appended onto the partial line: seal it first.
        needs_newline = False
        if self.path.exists() and self.path.stat().st_size:
            with self.path.open("rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        fh = self.path.open("a")
        if needs_newline:
            fh.write("\n")
        return fh

    def append(self, record: dict) -> None:
        """Durably append one task record (flush + fsync per line).

        The written line is the record plus a ``_crc`` checksum field.
        Filesystem failures (``ENOSPC``, ``EIO``) surface as
        :class:`~repro.runtime.errors.JournalWriteError`: the result is
        not durable and the caller must stop checkpoint-dependent work.
        """
        if self._fh is None:
            self._fh = self._open_for_append()
        try:
            payload = _canonical(record)
        except TypeError as exc:
            raise TypeError(
                "journal records must be JSON-serialisable; task functions "
                "used with a journal must return JSON-safe values "
                f"(task {record.get('task')!r}): {exc}"
            ) from exc
        line = _canonical({**record, _CRC_KEY: _crc32(payload)})
        action = (
            self.chaos.journal_action(str(record.get("task")))
            if self.chaos is not None else None
        )
        try:
            self._write_line(line, action)
        except OSError as exc:
            if isinstance(exc, JournalWriteError):
                raise
            raise JournalWriteError(
                exc.errno or errno.EIO,
                f"journal {self.path}: append failed: {exc}",
            ) from exc

    def _write_line(self, line: str, action: Optional[str]) -> None:
        if action == "journal_enospc":
            raise JournalWriteError(
                errno.ENOSPC, f"journal {self.path}: chaos: no space left"
            )
        if action == "journal_eio":
            raise JournalWriteError(
                errno.EIO, f"journal {self.path}: chaos: I/O error"
            )
        if action == "journal_truncate":
            # A torn write: half the line lands on disk, then the "crash".
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            raise JournalWriteError(
                errno.EIO,
                f"journal {self.path}: chaos: simulated crash mid-append",
            )
        if action == "journal_corrupt":
            # Silent on-disk corruption: the write "succeeds", the line is
            # garbage.  CRC verification catches it on the next load.
            mid = len(line) // 2
            line = line[:mid] + "#CHAOS#" + line[mid + 7:]
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # -- compaction ---------------------------------------------------------

    def compact(self) -> Dict[str, int]:
        """Atomically rewrite the journal to one valid line per task.

        Drops superseded duplicate records and corrupt lines (the latter
        have already been quarantined by :meth:`load`), re-checksums every
        surviving record, and replaces the file via tmp + fsync + rename
        + directory fsync — a kill at any point leaves either the old or
        the new journal intact, never a hybrid.  Returns size statistics.
        """
        from ..obs import get_metrics

        self.close()
        bytes_before = (
            self.path.stat().st_size if self.path.exists() else 0
        )
        records = self.load()
        # Consume tmp files left by a compaction killed before its
        # rename (the journal itself is untouched in that case).
        for stale in self.path.parent.glob(self.path.name + "*.tmp"):
            try:
                stale.unlink()
            except OSError:
                pass
        lines = []
        for rec in records.values():
            payload = _canonical(rec)
            lines.append(_canonical({**rec, _CRC_KEY: _crc32(payload)}))
        atomic_write(
            self.path, "".join(line + "\n" for line in lines)
        )
        get_metrics().counter("runtime.journal_compactions").inc()
        return {
            "records": len(records),
            "bytes_before": bytes_before,
            "bytes_after": self.path.stat().st_size,
        }

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
