"""Coordinator semantics, exercised through its RPC surface directly.

These tests call ``FabricCoordinator.handle`` with hand-built envelopes
(no HTTP, no threads beyond the coordinator's own lock) so every lease /
heartbeat / report interleaving is deterministic.
"""

import time

import pytest

from repro.runtime import RetryPolicy, Task, TaskOutcome
from repro.runtime.errors import ExecutorError
from repro.runtime.fabric import FabricCoordinator, stub_job


def env(method, node="n0", params=None, seq=0):
    return {
        "v": 1, "method": method, "node": node, "seq": seq,
        "deadline_ms": 2000, "params": params or {},
    }


@pytest.fixture
def coord():
    c = FabricCoordinator(lease_ttl=0.5, lease_batch=2, poll_interval=0.01)
    yield c
    c.end_round()


def begin(coord, n=4, timeout=None):
    tasks = [Task(f"c/{i:02d}", i) for i in range(n)]
    rnd = coord.begin_round(stub_job(), tasks, timeout=timeout)
    return tasks, rnd


class TestRegisterAndLease:
    def test_register_returns_fabric_timing(self, coord):
        resp = coord.handle(env("register"))
        assert resp == {"lease_ttl": 0.5, "poll_interval": 0.01}

    def test_lease_without_round_is_idle(self, coord):
        resp = coord.handle(env("lease", params={"max_tasks": 2}))
        assert resp["idle"] is True

    def test_lease_grants_batch_with_job_and_payloads(self, coord):
        tasks, _ = begin(coord)
        resp = coord.handle(env("lease", params={"max_tasks": 8}))
        assert resp["job"] == stub_job().to_dict()
        # capped by lease_batch, not the worker's appetite
        assert [t["id"] for t in resp["tasks"]] == [tasks[0].id, tasks[1].id]
        assert [t["payload"] for t in resp["tasks"]] == [0, 1]
        assert [t["attempt"] for t in resp["tasks"]] == [1, 1]
        assert resp["lease_ttl"] == 0.5

    def test_leases_do_not_overlap_between_nodes(self, coord):
        tasks, _ = begin(coord)
        a = coord.handle(env("lease", node="n0", params={"max_tasks": 2}))
        b = coord.handle(env("lease", node="n1", params={"max_tasks": 2}))
        granted = [t["id"] for t in a["tasks"]] + [t["id"] for t in b["tasks"]]
        assert sorted(granted) == [t.id for t in tasks]
        assert len(set(granted)) == len(granted)

    def test_drained_round_stops_granting(self, coord):
        begin(coord)
        coord.set_draining()
        assert coord.handle(env("lease", params={"max_tasks": 2}))["idle"]

    def test_one_round_at_a_time(self, coord):
        begin(coord)
        with pytest.raises(ExecutorError, match="already in flight"):
            coord.begin_round(stub_job(), [Task("x", 0)])


class TestLeaseExpiry:
    def test_expired_lease_requeues_while_retry_budget_lasts(self, coord):
        tasks, rnd = begin(coord, n=1)
        coord.handle(env("lease", params={"max_tasks": 1}))
        time.sleep(0.6)  # > lease_ttl with no heartbeat
        coord.sweep_leases(RetryPolicy(max_attempts=3), True)
        state = rnd.states[tasks[0].id]
        assert state.status == "queued"
        # the re-dispatch carries an incremented attempt
        resp = coord.handle(env("lease", node="n1", params={"max_tasks": 1}))
        assert resp["tasks"][0]["attempt"] == 2

    def test_expired_lease_demotes_once_retries_spent(self, coord):
        tasks, rnd = begin(coord, n=1)
        coord.handle(env("lease", params={"max_tasks": 1}))
        time.sleep(0.6)
        coord.sweep_leases(RetryPolicy(max_attempts=1), True)
        assert rnd.states[tasks[0].id].status == "demoted"
        assert coord.take_demoted().task.id == tasks[0].id

    def test_heartbeat_renews_held_leases(self, coord):
        tasks, rnd = begin(coord, n=1)
        coord.handle(env("lease", params={"max_tasks": 1}))
        before = rnd.states[tasks[0].id].lease_deadline
        time.sleep(0.3)
        resp = coord.handle(
            env("heartbeat", params={"tasks": [tasks[0].id]})
        )
        assert resp["renewed"] == 1
        assert rnd.states[tasks[0].id].lease_deadline > before

    def test_heartbeat_from_wrong_node_does_not_renew(self, coord):
        tasks, _ = begin(coord, n=1)
        coord.handle(env("lease", node="n0", params={"max_tasks": 1}))
        resp = coord.handle(
            env("heartbeat", node="imposter",
                params={"tasks": [tasks[0].id]})
        )
        assert resp["renewed"] == 0

    def test_timeout_caps_heartbeat_renewal(self, coord):
        # A wedged task cannot renew its lease past started + timeout +
        # ttl: the fabric's per-task wall-clock budget.
        tasks, rnd = begin(coord, n=1, timeout=0.2)
        coord.handle(env("lease", params={"max_tasks": 1}))
        state = rnd.states[tasks[0].id]
        cap = state.lease_started + 0.2 + coord.lease_ttl
        for _ in range(3):
            coord.handle(env("heartbeat", params={"tasks": [tasks[0].id]}))
        assert state.lease_deadline <= cap + 1e-6


class TestReportIdempotence:
    def _report(self, coord, node, task_id, value):
        rec = {
            "task": task_id, "outcome": TaskOutcome.OK, "value": value,
            "error": "", "attempts": 1, "duration": 0.0,
        }
        return coord.handle(
            env("report", node=node,
                params={"records": [{"record": rec, "spans": []}]})
        )

    def test_first_result_wins_duplicate_dropped(self, coord):
        tasks, rnd = begin(coord, n=1)
        coord.handle(env("lease", params={"max_tasks": 1}))
        first = self._report(coord, "n0", tasks[0].id, "first")
        dup = self._report(coord, "late-node", tasks[0].id, "second")
        # both are acked (the late node must clear its outbox) ...
        assert first["acked"] == dup["acked"] == [tasks[0].id]
        # ... but only the first landed in the inbox
        inbox = coord.take_inbox()
        assert len(inbox) == 1
        node, rec, _ = inbox[0]
        assert node == "n0" and rec["value"] == "first"

    def test_report_for_unknown_task_acked_and_ignored(self, coord):
        begin(coord, n=1)
        resp = self._report(coord, "n0", "someone/elses/task", 1)
        assert resp["acked"] == ["someone/elses/task"]
        assert coord.take_inbox() == []

    def test_report_without_round_still_acks(self, coord):
        resp = self._report(coord, "n0", "stale/task", 1)
        assert resp["acked"] == ["stale/task"]

    def test_malformed_report_rejected(self, coord):
        from repro.runtime.fabric import RpcError

        begin(coord, n=1)
        with pytest.raises(RpcError, match="malformed report entry"):
            coord.handle(
                env("report", params={"records": [{"record": "junk"}]})
            )


class TestGoodbye:
    def test_goodbye_requeues_held_leases(self, coord):
        tasks, rnd = begin(coord, n=2)
        coord.handle(env("lease", params={"max_tasks": 2}))
        assert coord.outstanding_leases() == 2
        resp = coord.handle(env("goodbye"))
        assert resp["released"] == 2
        assert coord.outstanding_leases() == 0
        assert all(
            s.status == "queued" for s in rnd.states.values()
        )

    def test_shutdown_flag_reaches_workers(self, coord):
        coord._shutdown_workers = True
        assert coord.handle(env("lease"))["shutdown"] is True
