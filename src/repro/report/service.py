"""Live HTML report service over a results store.

A tiny stdlib HTTP server (same idiom as the fabric coordinator RPC
server: :class:`ThreadingHTTPServer`, daemon threads, silent handler)
that renders the static report page on demand plus a small JSON API:

* ``GET /`` — the full HTML dashboard (same bytes as ``report build``)
* ``GET /healthz`` — liveness probe (always 200 while the process runs)
* ``GET /readyz`` — readiness probe: 200 only when the store opens and
  passes a ``PRAGMA quick_check``; 503 with the breaker state otherwise
* ``GET /api/summary`` — store row counts
* ``GET /api/query?workload=...&structure=...`` — filtered AVF rows;
  optional ``group_by=scheme,style`` + ``value=``/``agg=`` aggregate
* ``GET /api/mttf`` — stored Figure-2 rows

Each request opens a fresh read-only-in-spirit :class:`ResultStore`
handle, so the page always reflects the latest ingested results while
campaigns keep writing through WAL — this is what makes the dashboard
"live" without any push machinery.

The service is hardened against both overload and a sick store
(docs/resilience.md):

* every route except the probes passes through a
  :class:`~repro.runtime.guard.ServiceGuard` — bounded concurrency
  with load shedding (503), optional token-bucket rate limiting (429),
  both carrying ``Retry-After``;
* store access is wrapped in a :class:`~repro.runtime.guard.
  CircuitBreaker` so a corrupt or vanished store file fails fast
  instead of stacking up threads, and probes flip ``/readyz`` to 503
  while ``/healthz`` stays 200 (restart the store, not the process);
* the dashboard degrades gracefully: while the store is unreachable,
  ``GET /`` serves the last successfully rendered page with a visible
  staleness banner and an ``X-Repro-Stale: 1`` header rather than a
  blank error.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar
from urllib.parse import parse_qs, urlsplit

from ..obs import get_metrics
from ..runtime.guard import (
    CircuitBreaker,
    GuardConfig,
    GuardRejection,
    ServiceGuard,
)
from ..store import FILTER_COLUMNS, ResultStore, VALUE_COLUMNS
from .html import render_index

__all__ = ["ReportService", "StoreUnavailable"]

#: filter columns holding integers (query params arrive as strings)
_INT_COLUMNS = frozenset(("factor", "seed"))

#: banner injected into the cached page while the store is unreachable
_STALE_BANNER = (
    b'<div style="background:#7f1d1d;color:#fecaca;padding:0.6rem 1rem;'
    b'font-weight:600" data-stale="1">'
    b"Results store unreachable &mdash; showing the last good report. "
    b"Data below may be stale.</div>"
)

T = TypeVar("T")


class StoreUnavailable(Exception):
    """The results store cannot be served from right now.

    Raised when the circuit breaker is open (fail fast, no store I/O)
    or when a store access fails with an infrastructure error.  Routes
    translate it into a 503 with ``degraded: true``; ``GET /`` falls
    back to the cached page instead.
    """


def _parse_filters(query: str) -> Tuple[Dict[str, Any], Dict[str, str]]:
    """(store filters, control params) from a raw query string.

    Repeated parameters become IN-lists; unknown names raise KeyError so
    a typo'd dashboard URL fails with 400, not an empty chart.
    """
    filters: Dict[str, Any] = {}
    control: Dict[str, str] = {}
    for key, values in parse_qs(query, keep_blank_values=True).items():
        if key in ("group_by", "value", "agg", "limit", "order_by"):
            control[key] = values[-1]
            continue
        if key not in FILTER_COLUMNS:
            raise KeyError(f"unknown query parameter {key!r}")
        if key in _INT_COLUMNS:
            parsed: Any = [int(v) for v in values]
        else:
            parsed = list(values)
        filters[key] = parsed[0] if len(parsed) == 1 else parsed
    return filters, control


class _ReportHandler(BaseHTTPRequestHandler):
    """One dashboard request; the bound subclass carries ``service``."""

    timeout = 30.0
    protocol_version = "HTTP/1.1"
    service: "ReportService"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = urlsplit(self.path).path
        query = urlsplit(self.path).query
        # Probes bypass admission control: an overloaded-but-alive
        # service must still answer its supervisor.
        if path == "/healthz":
            self._reply(200, b"ok\n", "text/plain; charset=utf-8")
            return
        if path == "/readyz":
            ready, detail = self.service.readiness()
            self._reply_json(200 if ready else 503, detail)
            return
        guard = self.service.guard
        try:
            with guard.admit():
                self._route(path, query)
        except GuardRejection as rej:
            self._reply_json(
                rej.status, rej.body(), retry_after=rej.retry_after
            )
        except StoreUnavailable as exc:
            self._reply_json(
                503,
                {"error": str(exc), "degraded": True},
                retry_after=guard.config.retry_after,
            )
        except (KeyError, ValueError) as exc:
            self._reply_json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._reply_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route(self, path: str, query: str) -> None:
        if path == "/":
            self._handle_index()
        elif path == "/api/summary":
            payload = self.service.with_store(lambda s: s.summary())
            self._reply_json(200, payload)
        elif path == "/api/mttf":
            rows = self.service.with_store(lambda s: s.mttf_rows())
            self._reply_json(200, {"rows": rows})
        elif path == "/api/query":
            self._handle_query(query)
        else:
            self._reply_json(404, {"error": f"no route {path!r}"})

    def _handle_index(self) -> None:
        try:
            page = self.service.with_store(
                lambda s: render_index(s).encode("utf-8")
            )
        except StoreUnavailable:
            stale = self.service.cached_page()
            if stale is None:
                raise  # nothing rendered yet; 503 is honest
            mx = get_metrics()
            if mx:
                mx.counter("report.stale_served").inc()
            self._reply(
                503, stale, "text/html; charset=utf-8",
                extra={"X-Repro-Stale": "1",
                       "Retry-After":
                       f"{self.service.guard.config.retry_after:g}"},
            )
            return
        self.service.cache_page(page)
        self._reply(200, page, "text/html; charset=utf-8")

    def _handle_query(self, query: str) -> None:
        filters, control = _parse_filters(query)
        limit = int(control["limit"]) if "limit" in control else None
        order_by = control.get("order_by")

        def run(store: ResultStore) -> Dict[str, Any]:
            result = store.query(
                order_by=order_by, limit=limit, **filters
            )
            if "group_by" in control:
                keys = tuple(
                    k for k in control["group_by"].split(",") if k
                )
                value = control.get("value", "sdc_avf")
                if value not in VALUE_COLUMNS:
                    raise KeyError(f"unknown value column {value!r}")
                grouped = result.group_by(
                    keys, value=value, agg=control.get("agg", "mean")
                )
                return {
                    "groups": [
                        {"key": list(k), "value": v}
                        for k, v in grouped.items()
                    ],
                    "value": value,
                    "agg": control.get("agg", "mean"),
                }
            return {"rows": result.to_dicts(), "count": len(result)}

        self._reply_json(200, self.service.with_store(run))

    def _reply_json(
        self,
        status: int,
        payload: Dict[str, Any],
        *,
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        extra = (
            {"Retry-After": f"{retry_after:g}"}
            if retry_after is not None else None
        )
        self._reply(status, body, "application/json", extra=extra)

    def _reply(
        self,
        status: int,
        body: bytes,
        ctype: str,
        *,
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionError, OSError):
            pass  # client went away mid-reply; nothing to salvage

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # keep request noise out of CLI output


class ReportService:
    """Serve the live dashboard for one store file.

    >>> with ReportService("results.sqlite") as svc:
    ...     print(svc.endpoint)   # http://127.0.0.1:<port>

    ``port=0`` binds an ephemeral port (the default, test-friendly).
    The server runs in a daemon thread; ``stop()`` (or the context
    manager) shuts it down cleanly.  ``guard`` tunes admission control
    and ``breaker`` the store circuit breaker (both have production
    defaults; tests shrink them).
    """

    def __init__(
        self,
        store_path: Any,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        guard: Optional[GuardConfig] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.store_path = Path(store_path)
        self._host = host
        self._port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.guard = ServiceGuard("report", guard or GuardConfig())
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=3, reset_after=2.0,
            gauge="report.breaker_state",
        )
        self._cache_lock = threading.Lock()
        self._last_good: Optional[bytes] = None

    # -- store access, breaker-protected -------------------------------------

    def open_store(self) -> ResultStore:
        """A fresh store handle for one request (WAL readers don't block
        writers, so campaigns can keep ingesting while we serve).

        Raises :class:`OSError` if the file is gone — sqlite would
        happily create an empty database at the path, which would turn
        an operational outage into silently empty charts.
        """
        if not self.store_path.exists():
            raise OSError(f"store file missing: {self.store_path}")
        return ResultStore(self.store_path)

    def with_store(self, fn: Callable[[ResultStore], T]) -> T:
        """Run ``fn`` against a fresh store handle under the breaker.

        Infrastructure failures (sqlite errors, missing file) trip the
        breaker and surface as :class:`StoreUnavailable`; client errors
        (bad filter names, bad values) pass through untouched so they
        keep mapping to 400 and never poison the breaker.
        """
        if not self.breaker.allow():
            raise StoreUnavailable(
                f"store circuit open for {self.store_path.name}"
            )
        try:
            with self.open_store() as store:
                result = fn(store)
        except (sqlite3.Error, OSError) as exc:
            self.breaker.record_failure()
            raise StoreUnavailable(
                f"store access failed: {type(exc).__name__}: {exc}"
            ) from exc
        self.breaker.record_success()
        return result

    def readiness(self) -> Tuple[bool, Dict[str, Any]]:
        """(ready, detail) for ``/readyz``: liveness is not enough —
        ready means the store opens *and* passes a quick integrity
        check right now."""
        detail: Dict[str, Any] = {
            "store": str(self.store_path),
            "breaker": self.breaker.state,
        }
        if not self.breaker.allow():
            detail["ready"] = False
            detail["error"] = "store circuit open"
            return False, detail
        try:
            with self.open_store() as store:
                verdict = store.integrity_check(quick=True)
        except (sqlite3.Error, OSError) as exc:
            self.breaker.record_failure()
            detail["ready"] = False
            detail["error"] = f"{type(exc).__name__}: {exc}"
            detail["breaker"] = self.breaker.state
            return False, detail
        if verdict != "ok":
            self.breaker.record_failure()
            detail["ready"] = False
            detail["error"] = f"integrity: {verdict}"
            detail["breaker"] = self.breaker.state
            return False, detail
        self.breaker.record_success()
        detail["ready"] = True
        detail["breaker"] = self.breaker.state
        return True, detail

    # -- degraded-mode page cache ---------------------------------------------

    def cache_page(self, page: bytes) -> None:
        """Remember the last successfully rendered dashboard."""
        with self._cache_lock:
            self._last_good = page

    def cached_page(self) -> Optional[bytes]:
        """The last good dashboard with the staleness banner injected,
        or None if nothing has rendered yet."""
        with self._cache_lock:
            page = self._last_good
        if page is None:
            return None
        return page.replace(b"<body>", b"<body>" + _STALE_BANNER, 1)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._server is not None:
            return
        handler = type(
            "_BoundReportHandler",
            (_ReportHandler,),
            {"service": self, "timeout": self.guard.config.socket_timeout},
        )
        self._server = ThreadingHTTPServer(
            (self._host, self._port), handler
        )
        self._server.daemon_threads = True
        self._port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-report",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self._host, self._port)

    @property
    def endpoint(self) -> str:
        return f"http://{self._host}:{self._port}"

    def __enter__(self) -> "ReportService":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
