"""Crash-safe filesystem helpers shared across the package.

:func:`atomic_write` is the one blessed way to replace a whole file:
write to a same-directory temp file, flush + fsync it, ``os.replace``
onto the destination, then fsync the directory so the rename itself is
durable.  A reader (or a resumed campaign) therefore sees either the
complete old file or the complete new one — never a torn hybrid.

The pattern originated in ``runtime.Journal.compact()`` and is enforced
everywhere by the ``F302`` staticcheck rule.  This module sits at
package level (stdlib-only imports) so both ``repro.obs`` and
``repro.runtime`` can use it without an import cycle.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable, Union

__all__ = ["atomic_write", "fsync_dir"]


def fsync_dir(path: Union[str, Path]) -> None:
    """fsync a directory so a rename within it is durable.

    Best-effort: some filesystems (and all of Windows) refuse directory
    fds; losing directory durability there only weakens the guarantee
    back to what a plain rename gives.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: Union[str, Path],
    data: Union[str, bytes, Callable[..., None]],
    *,
    encoding: str = "utf-8",
) -> None:
    """Atomically replace ``path`` with ``data``.

    ``data`` may be ``str`` (written with ``encoding``), ``bytes``, or a
    callable taking the open binary file object — the callable form lets
    writers that need a file handle (``np.savez_compressed``, json.dump
    streaming) participate in the same tmp + fsync + rename dance::

        atomic_write(out, lambda fh: np.savez_compressed(fh, **arrays))

    The temp file is created in the destination directory (same
    filesystem, so ``os.replace`` is atomic) and removed on any failure.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            if callable(data):
                data(fh)
            elif isinstance(data, str):
                fh.write(data.encode(encoding))
            else:
                fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)
