"""``repro.store`` — the persistent results store.

Turns every "compute then print" entry point into "compute once, serve
forever": campaigns, sweeps and engine batches land in one sqlite file
(WAL mode, versioned schema, idempotent keyed writes) and are answered
back out through :meth:`ResultStore.query` with zero simulation work.
``repro query`` / ``repro report`` are the CLI faces of this package;
see docs/results-store.md for the schema and the keying rules.
"""

from .db import ResultStore, engine_version, open_store
from .ingest import (
    ingest_campaign,
    ingest_journal,
    ingest_results,
    ingest_sweep_points,
)
from .maintenance import quarantine_store, rebuild_store, verify_store
from .query import AvfRow, FILTER_COLUMNS, QueryResult, VALUE_COLUMNS
from .schema import MIGRATIONS, SCHEMA_VERSION, migrate

__all__ = [
    "AvfRow",
    "FILTER_COLUMNS",
    "MIGRATIONS",
    "QueryResult",
    "ResultStore",
    "SCHEMA_VERSION",
    "VALUE_COLUMNS",
    "engine_version",
    "ingest_campaign",
    "ingest_journal",
    "ingest_results",
    "ingest_sweep_points",
    "migrate",
    "open_store",
    "quarantine_store",
    "rebuild_store",
    "verify_store",
]
