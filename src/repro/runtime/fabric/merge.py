"""Replicated-journal recovery: merge node shards into the canonical log.

Every fabric node appends its task records to a local CRC'd shard
journal *before* reporting them, so each record exists in at least two
places once the coordinator acks it: the node's shard and the canonical
campaign journal.  When a coordinator is lost mid-flight the canonical
journal may lag the shards (reports in flight, a partition, a crash
between execute and ack); :func:`merge_shards` closes that gap by
folding every readable shard record the canonical journal is missing
back into it, so ``--resume`` converges to the undisturbed result with
zero lost and zero duplicated records.

Merge semantics:

* shards are read through :class:`~repro.runtime.journal.Journal`, so a
  corrupt shard line is CRC-quarantined to the shard's sidecar exactly
  like a corrupt canonical line — a damaged shard degrades to "its
  unreadable tasks re-run", never to a wrong result;
* shards are processed in sorted path order and records carry the
  node's per-record ``seq``, making the merge deterministic however the
  shard files interleave;
* a task present in several shards (at-least-once execution: a
  re-dispatched task whose first node was merely partitioned, not dead)
  is deduplicated by the journal record identity — the task id — with
  ``ok`` outcomes preferred over failures and higher attempt numbers
  winning ties, so a late success supersedes a superseded failure;
* a task already in the canonical journal is never overwritten: the
  coordinator's commit is the authoritative copy.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from ...obs import get_metrics
from ..errors import TaskOutcome
from ..journal import Journal, PathLike

__all__ = ["merge_shards", "find_shards", "SPAN_SHARD_SUFFIX"]

#: worker span shards live next to the record shard: <node>.spans.jsonl
SPAN_SHARD_SUFFIX = ".spans.jsonl"


def find_shards(shard_dir: PathLike) -> List[Path]:
    """Record shards under ``shard_dir``: every ``*.jsonl`` that is not a
    span shard or a quarantine sidecar, in sorted (deterministic) order."""
    root = Path(shard_dir)
    if not root.is_dir():
        return []
    out = []
    for p in sorted(root.glob("*.jsonl")):
        name = p.name
        if name.endswith(SPAN_SHARD_SUFFIX) or name.endswith(".quarantine"):
            continue
        out.append(p)
    return out


def _preferred(a: Dict, b: Dict) -> Dict:
    """The record to keep when one task appears in several shards."""
    a_ok = a.get("outcome") == TaskOutcome.OK
    b_ok = b.get("outcome") == TaskOutcome.OK
    if a_ok != b_ok:
        return a if a_ok else b
    try:
        if int(b.get("attempts", 1)) > int(a.get("attempts", 1)):
            return b
    except (TypeError, ValueError):
        pass
    return a


def merge_shards(
    journal: Union[Journal, PathLike],
    shards: Union[PathLike, Sequence[PathLike]],
    *,
    node_field: str = "node",
) -> Dict[str, int]:
    """Fold shard records missing from ``journal`` into it.

    ``shards`` is a shard directory (expanded via :func:`find_shards`)
    or an explicit sequence of shard paths.  Returns statistics:
    ``merged`` (records appended), ``present`` (shard records the
    canonical journal already held), ``duplicates`` (cross-shard
    duplicates collapsed), and ``shards`` (files read).
    """
    if not isinstance(journal, Journal):
        journal = Journal(journal)
    if isinstance(shards, (str, Path)):
        shard_paths: Iterable[PathLike] = find_shards(shards)
    else:
        shard_paths = [Path(p) for p in shards]
    canonical = journal.load()
    fresh: Dict[str, Dict] = {}
    order: List[Tuple[int, int, str]] = []
    present = 0
    duplicates = 0
    n_shards = 0
    for shard_idx, path in enumerate(shard_paths):
        n_shards += 1
        records = Journal(path).load()
        # Journal.load() keys by task id; replay in the shard's own
        # append order (per-node seq) so the merge is reproducible.
        items = sorted(
            records.items(),
            key=lambda kv: int(kv[1].get("seq", 0)),
        )
        for task_id, rec in items:
            if task_id in canonical:
                present += 1
                continue
            if task_id in fresh:
                duplicates += 1
                fresh[task_id] = _preferred(fresh[task_id], rec)
                continue
            fresh[task_id] = rec
            order.append((shard_idx, int(rec.get("seq", 0)), task_id))
    for _, _, task_id in order:
        rec = dict(fresh[task_id])
        rec.setdefault(node_field, "unknown")
        journal.append(rec)
    journal.close()
    merged = len(order)
    if merged:
        get_metrics().counter("fabric.records_merged").inc(merged)
    return {
        "merged": merged,
        "present": present,
        "duplicates": duplicates,
        "shards": n_shards,
    }
