"""Static HTML rendering of the paper's figures from the results store.

Every renderer here is a pure function of store contents: queries are
deterministically ordered, floats are formatted with fixed precision,
and nothing timestamps the output — so ``repro report build`` against
the same store produces byte-identical HTML, and the figure/table
benches become store queries instead of simulations.

Sections rendered (when their tables hold rows):

* **Figure 2** — the tMBF-vs-sMBF MTTF table (``mttf_rows``).
* **Sec. VIII** — the protection-scheme comparison over stored VGPR
  sweeps: per (scheme, interleaving) design, mean DUE/SDC MB-AVF across
  workloads and fault modes, as a table plus an inline SVG bar chart.
* **AVF results** — the full keyed measurement table.
* **Campaigns** — Table II injection-campaign summaries.
"""

from __future__ import annotations

from html import escape
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from ..ioutil import atomic_write
from ..store import ResultStore

__all__ = ["render_index", "build_report"]

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; padding: 0 1rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
h2 { margin-top: 2.2rem; }
table { border-collapse: collapse; margin: 1rem 0; }
th, td { border: 1px solid #b8b8c8; padding: .3rem .7rem;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #eceef4; }
td.k, th.k { text-align: left; }
p.empty { color: #667; font-style: italic; }
figure { margin: 1rem 0; }
figcaption { font-size: .9rem; color: #445; }
"""


def _fmt(value: Any, spec: str = ".6f") -> str:
    if value is None:
        return "–"
    return format(float(value), spec)


def _table(
    headers: Sequence[Tuple[str, bool]], rows: Sequence[Sequence[str]]
) -> str:
    """An HTML table; headers are (label, is_key_column)."""
    head = "".join(
        f'<th class="k">{escape(h)}</th>' if key else f"<th>{escape(h)}</th>"
        for h, key in headers
    )
    body = []
    for row in rows:
        cells = []
        for (header, key), cell in zip(headers, row):
            klass = ' class="k"' if key else ""
            cells.append(f"<td{klass}>{escape(cell)}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return (
        "<table><thead><tr>" + head + "</tr></thead><tbody>"
        + "".join(body) + "</tbody></table>"
    )


def _section_summary(store: ResultStore) -> str:
    info = store.summary()
    rows = [
        ["AVF results", str(info["avf_results"])],
        ["injections", str(info["injections"])],
        ["MTTF rows", str(info["mttf_rows"])],
        ["campaigns", str(info["campaigns"])],
        ["workloads", ", ".join(info["workloads"]) or "–"],
        ["structures", ", ".join(info["structures"]) or "–"],
        ["schema version", str(info["schema_version"])],
    ]
    return "<h2>Store summary</h2>" + _table(
        [("field", True), ("value", False)], rows
    )


def _section_mttf(store: ResultStore) -> str:
    rows = store.mttf_rows()
    out = [
        "<h2>Figure 2 — MTTF: spatial vs. temporal multi-bit faults</h2>"
    ]
    if not rows:
        out.append(
            '<p class="empty">No stored MTTF rows; run '
            "<code>repro mttf --store ...</code>.</p>"
        )
        return "".join(out)
    headers = [
        ("cache", True), ("FIT/Mbit", False), ("sMBF 0.1% (h)", False),
        ("sMBF 5% (h)", False), ("tMBF inf (h)", False),
        ("tMBF 100yr (h)", False),
    ]
    body = [
        [
            f"{int(r['cache_bytes']) >> 20}MB",
            _fmt(r["raw_fit_per_mbit"], ".2f"),
            _fmt(r["mttf_smbf_01pct"], ".3e"),
            _fmt(r["mttf_smbf_5pct"], ".3e"),
            _fmt(r["mttf_tmbf_unbounded"], ".3e"),
            _fmt(r["mttf_tmbf_100yr"], ".3e"),
        ]
        for r in rows
    ]
    out.append(_table(headers, body))
    out.append(
        "<figcaption>Spatial MBF MTTF is linear in the raw rate while "
        "temporal MBF MTTF is quadratic, so spatial faults dominate by "
        "orders of magnitude at realistic rates (paper Sec. IV-B)."
        "</figcaption>"
    )
    return "".join(out)


def _design_label(scheme: str, style: str, factor: int) -> str:
    if style == "none" and factor == 1:
        return scheme
    return f"{scheme} {style} x{factor}"


def _svg_bars(
    labels: Sequence[str], series: Dict[str, List[float]]
) -> str:
    """A deterministic grouped-bar SVG (no external assets)."""
    colors = {"DUE": "#3a5fa0", "SDC": "#c0483a"}
    names = list(series)
    peak = max(
        (v for vs in series.values() for v in vs), default=0.0
    ) or 1.0
    bar_w, gap, group_gap, h, pad = 18, 4, 26, 180, 30
    group_w = len(names) * (bar_w + gap) + group_gap
    width = pad * 2 + group_w * len(labels)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{h + 60}" role="img">'
    ]
    for gi, label in enumerate(labels):
        x0 = pad + gi * group_w
        for si, name in enumerate(names):
            value = series[name][gi]
            bh = 0 if peak == 0 else value / peak * h
            x = x0 + si * (bar_w + gap)
            y = pad + h - bh
            parts.append(
                f'<rect x="{x}" y="{y:.2f}" width="{bar_w}" '
                f'height="{bh:.2f}" fill="{colors.get(name, "#888")}">'
                f"<title>{escape(label)} {escape(name)}: "
                f"{value:.6f}</title></rect>"
            )
        parts.append(
            f'<text x="{x0 + (group_w - group_gap) / 2:.1f}" '
            f'y="{pad + h + 14}" font-size="10" text-anchor="middle">'
            f"{escape(label)}</text>"
        )
    for si, name in enumerate(names):
        lx = pad + si * 70
        parts.append(
            f'<rect x="{lx}" y="{pad + h + 26}" width="10" height="10" '
            f'fill="{colors.get(name, "#888")}"/>'
            f'<text x="{lx + 14}" y="{pad + h + 35}" font-size="10">'
            f"{escape(name)}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _section_protection(store: ResultStore) -> str:
    result = store.query(structure="vgpr")
    out = [
        "<h2>Sec. VIII — VGPR protection scheme comparison</h2>"
    ]
    if not result:
        out.append(
            '<p class="empty">No stored VGPR sweeps; run a VGPR sweep '
            "with a <code>--store</code> sink.</p>"
        )
        return "".join(out)
    keys = ("scheme", "style", "factor")
    due = result.group_by(keys, value="due_avf", agg="mean")
    sdc = result.group_by(keys, value="sdc_avf", agg="mean")
    count = result.group_by(keys, value="sdc_avf", agg="count")
    labels = [
        _design_label(str(k[0]), str(k[1]), int(k[2])) for k in due
    ]
    headers = [
        ("design", True), ("measurements", False),
        ("mean DUE MB-AVF", False), ("mean SDC MB-AVF", False),
    ]
    body = [
        [
            label, str(int(count[key])),
            _fmt(due[key]), _fmt(sdc[key]),
        ]
        for label, key in zip(labels, due)
    ]
    out.append(_table(headers, body))
    out.append("<figure>")
    out.append(
        _svg_bars(
            labels,
            {
                "DUE": [due[k] for k in due],
                "SDC": [sdc[k] for k in due],
            },
        )
    )
    out.append(
        "<figcaption>Mean MB-AVF per protection design, averaged over "
        "stored workloads and fault modes (paper Sec. VIII: interleaving "
        "trades SDC for detectable DUE).</figcaption></figure>"
    )
    return "".join(out)


def _section_avf(store: ResultStore) -> str:
    result = store.query()
    out = ["<h2>Stored AVF measurements</h2>"]
    if not result:
        out.append(
            '<p class="empty">The avf_results table is empty; feed it '
            "with <code>--store</code> on avf/inject/campaign runs or "
            "<code>campaign merge --store</code>.</p>"
        )
        return "".join(out)
    headers = [
        ("workload", True), ("structure", True), ("scheme", True),
        ("layout", True), ("mode", True), ("seed", False),
        ("DUE", False), ("SDC", False), ("total", False),
    ]
    body = [
        [
            r.workload, r.structure, r.scheme,
            f"{r.style} x{r.factor}", r.mode, str(r.seed),
            _fmt(r.due_avf), _fmt(r.sdc_avf), _fmt(r.total_avf),
        ]
        for r in result
    ]
    out.append(_table(headers, body))
    return "".join(out)


def _section_campaigns(store: ResultStore) -> str:
    campaigns = store.campaigns()
    out = ["<h2>Injection campaigns (Table II)</h2>"]
    if not campaigns:
        out.append('<p class="empty">No stored campaign summaries.</p>')
        return "".join(out)
    headers = [
        ("benchmark", True), ("seed", False), ("singles", False),
        ("SDC ACE bits", False), ("interference", False),
        ("model SDC AVF", False),
    ]
    body = [
        [
            c["benchmark"], str(c["seed"]), str(c["n_single"]),
            str(c["sdc_ace_bits"]), str(c["interference"]),
            _fmt(c["model_sdc_avf"]),
        ]
        for c in campaigns
    ]
    out.append(_table(headers, body))
    return "".join(out)


def render_index(store: ResultStore) -> str:
    """The whole dashboard/report page as one self-contained HTML string."""
    sections = [
        _section_summary(store),
        _section_mttf(store),
        _section_protection(store),
        _section_avf(store),
        _section_campaigns(store),
    ]
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        "<title>MB-AVF results</title>"
        f"<style>{_STYLE}</style></head><body>"
        "<h1>MB-AVF results store</h1>"
        "<p>Figures and tables of the MICRO 2014 reproduction, rendered "
        "from stored results — no simulation ran to build this page.</p>"
        + "".join(sections)
        + "</body></html>\n"
    )


def build_report(store: ResultStore, outdir: Path) -> Path:
    """Render the static report into ``outdir`` (atomically); returns the
    index path.  Byte-stable: same store contents, same bytes."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    index = outdir / "index.html"
    atomic_write(index, render_index(store))
    return index
