"""Unit tests for global memory, the allocator, and LDS scratch."""

import numpy as np
import pytest

from repro.arch.memory import GlobalMemory, Lds


class TestAllocator:
    def test_alignment(self):
        mem = GlobalMemory()
        a = mem.alloc("a", 10, align=64)
        b = mem.alloc("b", 10, align=64)
        assert a % 64 == 0 and b % 64 == 0
        assert b >= a + 10

    def test_address_zero_reserved(self):
        mem = GlobalMemory()
        assert mem.alloc("a", 4) >= 64

    def test_out_of_memory(self):
        mem = GlobalMemory(size=1024)
        with pytest.raises(MemoryError):
            mem.alloc("big", 10_000)

    def test_buffer_lookup(self):
        mem = GlobalMemory()
        base = mem.alloc("x", 128)
        assert mem.buffer("x") == (base, 128)
        assert mem.buffer_range("x") == range(base, base + 128)
        with pytest.raises(KeyError):
            mem.buffer("nope")


class TestTypedViews:
    def test_views_share_storage(self):
        mem = GlobalMemory()
        mem.alloc("x", 16)
        mem.view_u32("x")[:] = [1, 2, 3, 4]
        assert mem.view_i32("x").tolist() == [1, 2, 3, 4]
        mem.view_f32("x")[0] = 1.5
        assert mem.view_u32("x")[0] == np.float32(1.5).view(np.uint32)

    def test_u8_view(self):
        mem = GlobalMemory()
        mem.alloc("x", 4)
        mem.view_u32("x")[0] = 0x04030201
        assert mem.view_u8("x").tolist() == [1, 2, 3, 4]  # little-endian


class TestVectorAccess:
    def test_load_store_roundtrip(self):
        mem = GlobalMemory()
        base = mem.alloc("x", 64)
        addrs = np.array([base, base + 8, base + 60], dtype=np.uint32)
        vals = np.array([10, 20, 0xFFFFFFFF], dtype=np.uint32)
        mem.store32(addrs, vals)
        assert (mem.load32(addrs) == vals).all()

    def test_unaligned_rejected(self):
        mem = GlobalMemory()
        base = mem.alloc("x", 64)
        with pytest.raises(ValueError):
            mem.load32(np.array([base + 1], dtype=np.uint32))
        with pytest.raises(ValueError):
            mem.store32(np.array([base + 2], dtype=np.uint32),
                        np.array([1], dtype=np.uint32))

    def test_out_of_bounds_rejected(self):
        mem = GlobalMemory(size=1024)
        bad = np.array([1024 - 2], dtype=np.uint32)
        with pytest.raises(MemoryError):
            mem.load32(bad + 2)
        with pytest.raises(MemoryError):
            mem.store8(np.array([1024], dtype=np.uint32),
                       np.array([1], dtype=np.uint32))

    def test_byte_access(self):
        mem = GlobalMemory()
        base = mem.alloc("x", 16)
        addrs = np.array([base + 3, base + 5], dtype=np.uint32)
        mem.store8(addrs, np.array([0x1FF, 7], dtype=np.uint32))
        got = mem.load8(addrs)
        assert got.tolist() == [0xFF, 7]  # stores truncate to a byte
        assert got.dtype == np.uint32  # loads zero-extend


class TestLds:
    def test_roundtrip(self):
        lds = Lds(256)
        addrs = np.array([0, 4, 252], dtype=np.uint32)
        vals = np.array([1, 2, 3], dtype=np.uint32)
        lds.store32(addrs, vals)
        assert (lds.load32(addrs) == vals).all()

    def test_unaligned_rejected(self):
        lds = Lds(256)
        with pytest.raises(ValueError):
            lds.load32(np.array([2], dtype=np.uint32))

    def test_zero_initialised(self):
        lds = Lds(64)
        assert (lds.load32(np.array([0, 4], dtype=np.uint32)) == 0).all()
