"""Ablation: two-dimensional fault modes (arbitrary geometries, Sec. VI-A).

The paper's model "supports fault modes with arbitrary geometries,
including contiguous and non-contiguous fault modes of any size"; its
evaluation focuses on Mx1 wordline faults.  This ablation exercises the
generic-geometry path at scale with square and vertical modes and checks
the geometric orderings:

* a 2x2 fault contains both 2x1 rows, so its AVF dominates the 2x1 AVF;
* a vertical 1x2 fault spans two wordlines (different lines in every
  layout), behaving like physical interleaving even when the horizontal
  layout is logical;
* an L-shaped (non-contiguous bounding box) mode sits between its subset
  and superset modes.
"""

import pytest

from repro.core import FaultMode, Interleaving, NoProtection

MODES = {
    "2x1": FaultMode.linear(2),
    "1x2 (vertical)": FaultMode.rect(2, 1),
    "2x2": FaultMode.rect(2, 2),
    "L-shape": FaultMode("L", ((0, 0), (1, 0), (1, 1))),
    "3x3": FaultMode.rect(3, 3),
}


def _measure(study_of):
    study = study_of("minife")
    out = {}
    for label, mode in MODES.items():
        res = study.cache_avf(
            "l1", mode, NoProtection(),
            style=Interleaving.LOGICAL, factor=2,
        )
        out[label] = res.sdc_avf
    out["SB"] = study.cache_avf(
        "l1", FaultMode.linear(1), NoProtection()
    ).sdc_avf
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_rect_modes(benchmark, study_of, report):
    avf = benchmark.pedantic(_measure, args=(study_of,), rounds=1, iterations=1)
    lines = [f"{'mode':<16} {'SDC AVF (unprotected)':>22}"]
    for label in ("SB", *MODES):
        lines.append(f"{label:<16} {avf[label]:22.4f}")
    report("ablation_rect_modes", lines)

    # Containment ordering: adding bits to a mode can only increase the
    # unprotected AVF (union of ACEness grows).
    assert avf["2x2"] >= avf["2x1"] - 1e-12
    assert avf["2x2"] >= avf["1x2 (vertical)"] - 1e-12
    assert avf["2x2"] >= avf["L-shape"] - 1e-12
    assert avf["L-shape"] >= avf["1x2 (vertical)"] - 1e-12
    assert avf["3x3"] >= avf["2x2"] - 1e-12
    # Every multi-bit mode dominates the single-bit AVF.
    for label in MODES:
        assert avf[label] >= avf["SB"] - 1e-12
