"""Chaos through the real Table II campaign: a fault-ridden, killed and
resumed injection campaign must reach byte-identical results to an
unfaulted run of the same seed."""

import warnings

import pytest

from repro.faultinject import run_campaign
from repro.runtime import (
    ChaosPolicy,
    ChaosSpec,
    ExecutorError,
    RetryPolicy,
    TaskOutcome,
)

from .conftest import CHAOS_SEED

ARGS = dict(n_single=8, max_groups_per_mode=2, seed=0, n_cus=1)

#: chaos-injected infra failures must be retried for the campaign to
#: converge; the breaker stays off because probabilistic faults are not
#: poison
CONVERGE = RetryPolicy(
    max_attempts=20,
    retry_on=(
        TaskOutcome.INFRA_ERROR,
        TaskOutcome.WORKER_DIED,
        TaskOutcome.TIMEOUT,
    ),
    poison_threshold=None,
)


@pytest.fixture(scope="module")
def reference():
    return run_campaign("transpose", **ARGS)


class TestCampaignUnderChaos:
    def test_task_storm_matches_reference(self, reference, tmp_path):
        """Exception storms and latency injection change nothing about
        the campaign's scientific output."""
        policy = ChaosPolicy(
            ChaosSpec(task_error=0.4, slow_task=0.3, slow_seconds=0.001),
            seed=CHAOS_SEED,
        )
        chaotic = run_campaign(
            "transpose", journal=str(tmp_path / "j.jsonl"),
            retry=CONVERGE, chaos=policy, **ARGS,
        )
        assert chaotic == reference
        assert chaotic.failures == {}

    def test_killed_chaotic_campaign_resumes_to_reference(
        self, reference, tmp_path
    ):
        """Storm + silent journal corruption, then a SIGKILL-style torn
        tail; the chaos-free resume must reconstruct the reference run."""
        jp = tmp_path / "j.jsonl"
        policy = ChaosPolicy(
            ChaosSpec(task_error=0.4, journal_corrupt=0.3), seed=CHAOS_SEED
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            run_campaign(
                "transpose", journal=str(jp), retry=CONVERGE,
                chaos=policy, **ARGS,
            )
            lines = jp.read_text().splitlines()
            jp.write_text(
                "\n".join(lines[:-1]) + "\n"
                + lines[-1][: len(lines[-1]) // 2]
            )
            resumed = run_campaign(
                "transpose", journal=str(jp), retry=CONVERGE, **ARGS
            )
        assert resumed == reference

    def test_write_fault_abort_resumes_to_reference(
        self, reference, tmp_path
    ):
        """Simulated ENOSPC aborts the campaign with completed work
        durable; resuming without chaos completes it exactly."""
        jp = tmp_path / "j.jsonl"
        policy = ChaosPolicy(ChaosSpec(journal_enospc=0.4), seed=CHAOS_SEED)
        singles_fire = any(
            policy.journal_action(f"transpose/single/{i:05d}") is not None
            for i in range(ARGS["n_single"])
        )
        aborted = False
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                run_campaign(
                    "transpose", journal=str(jp), retry=CONVERGE,
                    chaos=policy, **ARGS,
                )
        except ExecutorError:
            aborted = True
        # If the schedule faults any single-injection append, the run
        # must have aborted (multi-bit ids may fire even when none do).
        assert aborted or not singles_fire
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resumed = run_campaign(
                "transpose", journal=str(jp), retry=CONVERGE, **ARGS
            )
        assert resumed == reference
