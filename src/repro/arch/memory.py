"""Flat global memory with a bump allocator.

Functional data always lives here: the caches in :mod:`repro.arch.cache`
track residency metadata and emit AVF events but never hold a divergent copy
(equivalent to an always-coherent hierarchy).  This keeps functional
correctness trivial while the event stream still reflects the hierarchy's
timing and movement — which is all the ACE analysis consumes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["GlobalMemory", "Lds"]


class GlobalMemory:
    """Byte-addressable global memory shared by CPU (host) and GPU."""

    def __init__(self, size: int = 1 << 21) -> None:
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self._next = 64  # keep address 0 unused to catch null-pointer bugs
        self._buffers: Dict[str, Tuple[int, int]] = {}

    # -- allocation ---------------------------------------------------------

    def alloc(self, name: str, nbytes: int, align: int = 64) -> int:
        """Reserve ``nbytes`` and remember the buffer under ``name``."""
        base = (self._next + align - 1) // align * align
        if base + nbytes > self.size:
            raise MemoryError(
                f"out of simulated memory allocating {name!r} ({nbytes} bytes)"
            )
        self._next = base + nbytes
        self._buffers[name] = (base, nbytes)
        return base

    def buffer(self, name: str) -> Tuple[int, int]:
        """(base, size) of a named buffer."""
        return self._buffers[name]

    def buffers(self) -> Dict[str, Tuple[int, int]]:
        """All named buffers as {name: (base, size)}."""
        return dict(self._buffers)

    def buffer_range(self, name: str) -> range:
        base, size = self._buffers[name]
        return range(base, base + size)

    # -- host-side typed views ----------------------------------------------

    def view_u32(self, name: str) -> np.ndarray:
        base, size = self._buffers[name]
        return self.data[base : base + size].view(np.uint32)

    def view_i32(self, name: str) -> np.ndarray:
        base, size = self._buffers[name]
        return self.data[base : base + size].view(np.int32)

    def view_f32(self, name: str) -> np.ndarray:
        base, size = self._buffers[name]
        return self.data[base : base + size].view(np.float32)

    def view_u8(self, name: str) -> np.ndarray:
        base, size = self._buffers[name]
        return self.data[base : base + size]

    # -- device-side vector access -------------------------------------------

    def _check(self, addrs: np.ndarray, nbytes: int) -> None:
        if len(addrs) and int(addrs.max()) + nbytes > self.size:
            raise MemoryError("access beyond simulated memory")

    def load32(self, addrs: np.ndarray) -> np.ndarray:
        """Gather 32-bit words at per-lane byte addresses (4-byte aligned)."""
        if (addrs % 4).any():
            raise ValueError("unaligned 32-bit load")
        self._check(addrs, 4)
        out = np.empty(len(addrs), dtype=np.uint32)
        for i, a in enumerate(addrs):
            out[i] = self.data[a : a + 4].view(np.uint32)[0]
        return out

    def store32(self, addrs: np.ndarray, values: np.ndarray) -> None:
        if (addrs % 4).any():
            raise ValueError("unaligned 32-bit store")
        self._check(addrs, 4)
        for a, val in zip(addrs, values):
            self.data[a : a + 4] = np.frombuffer(
                np.uint32(val).tobytes(), dtype=np.uint8
            )

    def load8(self, addrs: np.ndarray) -> np.ndarray:
        self._check(addrs, 1)
        return self.data[addrs].astype(np.uint32)

    def store8(self, addrs: np.ndarray, values: np.ndarray) -> None:
        self._check(addrs, 1)
        self.data[addrs] = (values & 0xFF).astype(np.uint8)


class Lds:
    """Per-wavefront local scratch memory (LDS).

    The paper's AVF measurements cover the L1/L2 caches and the VGPR, so the
    LDS is functional-only: no AVF events, but accesses still participate in
    the liveness analysis (a value parked in LDS and later consumed keeps its
    producers live).
    """

    def __init__(self, size: int = 4096) -> None:
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)

    def load32(self, addrs: np.ndarray) -> np.ndarray:
        if (addrs % 4).any():
            raise ValueError("unaligned LDS load")
        out = np.empty(len(addrs), dtype=np.uint32)
        for i, a in enumerate(addrs):
            out[i] = self.data[a : a + 4].view(np.uint32)[0]
        return out

    def store32(self, addrs: np.ndarray, values: np.ndarray) -> None:
        if (addrs % 4).any():
            raise ValueError("unaligned LDS store")
        for a, val in zip(addrs, values):
            self.data[a : a + 4] = np.frombuffer(
                np.uint32(val).tobytes(), dtype=np.uint8
            )
