"""Baseline ratchet semantics: absorb, flag new, demand shrinkage."""

import json

import pytest

from repro.staticcheck.baseline import compare, counts_for, dump, load
from repro.staticcheck.cli import main
from repro.staticcheck.findings import Finding

from .conftest import FIXTURES


def _f(rule, path, line):
    return Finding(path=path, line=line, col=0, rule=rule, message="m")


class TestCompare:
    def test_clean_when_counts_match(self):
        findings = [_f("D101", "a.py", 3), _f("D101", "a.py", 9)]
        cmp = compare(findings, {("D101", "a.py"): 2})
        assert cmp.clean
        assert cmp.baselined == 2 and cmp.new == [] and cmp.stale == []

    def test_new_finding_beyond_baseline_fails(self):
        findings = [_f("D101", "a.py", 3), _f("D101", "a.py", 9)]
        cmp = compare(findings, {("D101", "a.py"): 1})
        assert not cmp.clean
        # the later-in-file finding is reported as the new one
        assert [(f.path, f.line) for f in cmp.new] == [("a.py", 9)]

    def test_unknown_cell_is_entirely_new(self):
        cmp = compare([_f("F302", "b.py", 1)], {})
        assert [(f.rule, f.path) for f in cmp.new] == [("F302", "b.py")]

    def test_fixed_debt_is_stale_and_fails(self):
        # baseline says 2, code now has 0 — ratchet demands a shrink
        cmp = compare([], {("D101", "a.py"): 2})
        assert not cmp.clean
        assert cmp.stale == [("D101", "a.py", 2, 0)]

    def test_partial_paydown_is_stale(self):
        cmp = compare([_f("D101", "a.py", 3)], {("D101", "a.py"): 2})
        assert cmp.stale == [("D101", "a.py", 2, 1)]
        assert cmp.new == []

    def test_counts_for(self):
        counts = counts_for(
            [_f("D101", "a.py", 1), _f("D101", "a.py", 5),
             _f("N204", "b.py", 2)]
        )
        assert counts == {("D101", "a.py"): 2, ("N204", "b.py"): 1}


class TestSerialization:
    def test_round_trip(self, tmp_path):
        baseline = {("D101", "a.py"): 2, ("F302", "x/y.py"): 1}
        path = tmp_path / "base.json"
        path.write_text(dump(baseline))
        assert load(path) == baseline

    def test_dump_is_deterministic_and_sorted(self):
        a = dump({("N204", "b.py"): 1, ("D101", "a.py"): 2})
        b = dump({("D101", "a.py"): 2, ("N204", "b.py"): 1})
        assert a == b
        entries = json.loads(a)["entries"]
        assert [e["rule"] for e in entries] == ["D101", "N204"]

    def test_missing_file_is_empty(self, tmp_path):
        assert load(tmp_path / "absent.json") == {}

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError):
            load(path)


class TestCliRatchet:
    """End-to-end: the exit codes CI keys off."""

    def test_no_baseline_findings_exit_1(self, capsys):
        assert main([str(FIXTURES)]) == 1

    def test_update_then_clean_exit_0(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(
            [str(FIXTURES), "--baseline", str(base), "--update-baseline"]
        ) == 0
        assert main([str(FIXTURES), "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_stale_baseline_exit_1(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        main([str(FIXTURES), "--baseline", str(base), "--update-baseline"])
        # inflate one cell: the linter now finds less than recorded
        data = json.loads(base.read_text())
        for entry in data["entries"]:
            if entry["rule"] == "D103":
                entry["count"] += 1
        base.write_text(json.dumps(data))
        assert main([str(FIXTURES), "--baseline", str(base)]) == 1
        assert "stale" in capsys.readouterr().out

    def test_missing_path_exit_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_update_baseline_requires_baseline(self, capsys):
        assert main([str(FIXTURES), "--update-baseline"]) == 2

    def test_json_report_structure(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        main([str(FIXTURES), "--baseline", str(base), "--update-baseline"])
        capsys.readouterr()  # drain the "baseline updated" notice
        assert main(
            [str(FIXTURES), "--baseline", str(base), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"]["clean"] is True
        assert payload["counts"]["D101"] == 6
        assert "D101" in payload["rules"]
        assert payload["rules"]["F302"]["scope"] == "persistence"

    def test_output_file_written_atomically(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        main([str(FIXTURES), "--format", "json", "--output", str(out)])
        payload = json.loads(out.read_text())
        assert payload["files_scanned"] == 23
        # no stray tmp files from the atomic write
        assert list(tmp_path.glob("*.tmp")) == []
