"""Persist measurements, then answer questions without re-simulating.

The pipeline this demonstrates (docs/results-store.md):

1. measure a small VGPR protection sweep and sink it into a sqlite
   results store (idempotent: run this script twice, nothing doubles);
2. query the store — per-design mean SDC MB-AVF — with zero further
   simulation;
3. render the byte-stable HTML report from the store alone.

Run with:  python examples/query_and_report.py
"""

from pathlib import Path

from repro.core import (
    SCHEMES,
    AvfStudy,
    FaultMode,
    Interleaving,
    figure2_sweep,
)
from repro.core.sweep import sweep_vgpr_avf
from repro.report import build_report
from repro.store import ResultStore
from repro.workloads import run


def main() -> None:
    store_path = Path("results.sqlite")

    # -- 1. measure and persist (the only simulation in this script) ----
    for name in ("vectoradd", "transpose"):
        result = run(name)
        study = AvfStudy(result.apu, result.output_ranges)
        with ResultStore(store_path) as store:
            points = sweep_vgpr_avf(
                study,
                modes=[FaultMode.linear(2), FaultMode.linear(4)],
                schemes=[SCHEMES["none"], SCHEMES["parity"]],
                layouts=[
                    (Interleaving.INTRA_THREAD, 1),
                    (Interleaving.INTER_THREAD, 2),
                ],
                store=store,
                workload=name,
            )
        print(f"{name}: {len(points)} sweep points persisted")
    with ResultStore(store_path) as store:
        store.put_mttf_rows(figure2_sweep())
        info = store.summary()
    print(f"store now holds {info['avf_results']} AVF rows, "
          f"{info['mttf_rows']} MTTF rows\n")

    # -- 2. query: no simulator, no AVF engine, just the store ----------
    with ResultStore(store_path) as store:
        result = store.query(structure="vgpr")
        per_design = result.group_by(
            ("scheme", "style", "factor"), value="sdc_avf", agg="mean"
        )
    print("mean SDC MB-AVF per protection design (both workloads):")
    for (scheme, style, factor), sdc in per_design.items():
        print(f"  {scheme:<8} {style:<14} x{factor}   {sdc:.6f}")

    # -- 3. render the report from the store alone ----------------------
    with ResultStore(store_path) as store:
        index = build_report(store, Path("report"))
    print(f"\nreport written to {index}")
    print("open it in a browser, or serve it live:")
    print(f"  python -m repro report serve --store {store_path}")


if __name__ == "__main__":
    main()
