"""Tests for the configuration-sweep utility and Apu statistics."""

import pytest

from repro.core import AvfStudy, FaultMode, Interleaving, Parity, SecDed
from repro.core.sweep import sweep_cache_avf, sweep_vgpr_avf, tabulate
from repro.workloads import run


@pytest.fixture(scope="module")
def study():
    r = run("matmul", n_cus=1)
    return AvfStudy(r.apu, r.output_ranges)


class TestSweep:
    def test_cache_sweep_covers_grid(self, study):
        points = sweep_cache_avf(
            study, "l1",
            modes=[FaultMode.linear(1), FaultMode.linear(2)],
            schemes=[Parity(), SecDed()],
            layouts=[(Interleaving.NONE, 1), (Interleaving.LOGICAL, 2)],
        )
        assert len(points) == 2 * 2 * 2
        assert {p.mode for p in points} == {"1x1", "2x1"}
        assert {p.scheme for p in points} == {"parity", "secded"}
        assert all(0 <= p.due_avf <= 1 for p in points)

    def test_vgpr_sweep(self, study):
        points = sweep_vgpr_avf(
            study,
            modes=[FaultMode.linear(2)],
            schemes=[Parity()],
            layouts=[(Interleaving.INTER_THREAD, 2)],
        )
        assert len(points) == 1
        assert points[0].structure == "vgpr"
        assert points[0].style == "inter_thread"

    def test_due_splits_into_true_false(self, study):
        points = sweep_cache_avf(
            study, "l1", modes=[FaultMode.linear(1)], schemes=[Parity()],
        )
        p = points[0]
        assert p.due_avf == pytest.approx(p.true_due_avf + p.false_due_avf)

    def test_tabulate(self, study):
        points = sweep_cache_avf(
            study, "l1",
            modes=[FaultMode.linear(1), FaultMode.linear(2)],
            schemes=[Parity(), SecDed()],
        )
        rows, cols, cells = tabulate(points)
        assert rows == ["1x1", "2x1"]
        assert cols == ["parity", "secded"]
        assert len(cells) == 4
        assert cells[("1x1", "secded")] == 0.0  # SEC-DED corrects 1 bit

    def test_tabulate_warns_on_cell_collision(self, study):
        points = sweep_cache_avf(
            study, "l1", modes=[FaultMode.linear(1)], schemes=[Parity()],
            layouts=[(Interleaving.NONE, 1), (Interleaving.LOGICAL, 2)],
        )
        # Both layouts land in the same (mode, scheme) cell.
        with pytest.warns(UserWarning, match=r"\(1x1, parity\)"):
            tabulate(points)

    def test_sweep_through_runtime_matches_direct(self, study, tmp_path):
        from repro.runtime import Executor

        kwargs = dict(
            modes=[FaultMode.linear(1), FaultMode.linear(2)],
            schemes=[Parity(), SecDed()],
        )
        direct = sweep_cache_avf(study, "l1", **kwargs)
        journal = tmp_path / "sweep.jsonl"
        with Executor(jobs=0, journal=journal) as ex:
            via_runtime = sweep_cache_avf(study, "l1", executor=ex, **kwargs)
        assert via_runtime == direct
        # Resuming from the journal reproduces the points without
        # re-measuring (the journal already holds every cell).
        with Executor(jobs=0, journal=journal) as ex:
            resumed = sweep_cache_avf(study, "l1", executor=ex, **kwargs)
        assert resumed == direct

    def test_sweep_degrades_on_failing_cell(self, study):
        from repro.runtime import Executor

        class BrokenScheme(Parity):
            @property
            def name(self):
                return "broken"

            def react(self, n_faulty_bits):
                raise ValueError("broken configuration")

        with pytest.warns(UserWarning, match="point dropped"):
            points = sweep_cache_avf(
                study, "l1", modes=[FaultMode.linear(1)],
                schemes=[Parity(), BrokenScheme()],
                executor=Executor(jobs=0),
            )
        assert len(points) == 1


class TestApuStats:
    def test_stats_fields(self, study):
        stats = study.apu.stats()
        assert stats["instructions"] > 0
        assert stats["cycles"] > 0
        assert 0 < stats["ipc"] <= len(study.apu.cus)
        assert stats["wavefronts"] == 16
        assert stats["launches"] == 1
        assert 0 <= stats["l1_hit_rate"] <= 1
        assert 0 <= stats["l2_hit_rate"] <= 1
        assert stats["l1_accesses"] > 0

    def test_fresh_device_stats(self):
        from repro.arch import Apu, GlobalMemory

        stats = Apu(memory=GlobalMemory()).stats()
        assert stats["instructions"] == 0
        assert stats["l1_hit_rate"] == 0.0
