"""Bounded retry with exponential backoff and deterministic jitter.

Only *infrastructure* failures are retried: a worker that died or a task
that hit its wall-clock timeout may well succeed on a second attempt, but
a simulator crash or hang is a measurement — retrying it would bias the
campaign — and a harness bug is deterministic.  Jitter is derived from a
hash of ``(seed, task id, attempt)`` so that a resumed campaign replays
the exact same schedule as an uninterrupted one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from .errors import TaskOutcome

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to attempt a task, and how long to wait in between."""

    #: total attempts per task (1 = no retry)
    max_attempts: int = 1
    #: base delay in seconds before the first retry
    backoff: float = 0.0
    #: multiplier applied to the delay after every failed attempt
    backoff_factor: float = 2.0
    #: ceiling on any single delay
    max_backoff: float = 60.0
    #: +/- fraction of the delay added as deterministic jitter
    jitter: float = 0.0
    #: seed for the jitter hash
    seed: int = 0
    #: outcomes worth retrying (infrastructure failures only)
    retry_on: Tuple[str, ...] = (TaskOutcome.WORKER_DIED, TaskOutcome.TIMEOUT)
    #: per-task circuit breaker: a task whose attempts have killed this
    #: many workers (death or timeout-kill) is quarantined as ``poisoned``
    #: instead of burning its remaining retries and more workers.
    #: ``None`` disables the breaker.
    poison_threshold: Optional[int] = 3

    def should_retry(self, outcome: str, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may be repeated."""
        return outcome in self.retry_on and attempt < self.max_attempts

    def is_poisoned(self, worker_kills: int) -> bool:
        """Whether a task that has killed ``worker_kills`` workers has
        tripped the breaker."""
        return (
            self.poison_threshold is not None
            and worker_kills >= self.poison_threshold
        )

    def delay(self, task_id: str, attempt: int) -> float:
        """Seconds to wait before re-running ``task_id`` after ``attempt``."""
        base = min(
            self.backoff * self.backoff_factor ** (attempt - 1),
            self.max_backoff,
        )
        if self.jitter and base > 0.0:
            digest = hashlib.sha256(
                f"{self.seed}:{task_id}:{attempt}".encode()
            ).digest()
            unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
            base *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return max(base, 0.0)
