"""Cross-process durability: WAL convergence and SIGKILL survival.

These are real-process tests (``sys.executable``, not threads): WAL
locking and kill-mid-transaction semantics only exist between separate
OS processes holding separate sqlite connections.
"""

import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.store import ResultStore, ingest_journal

from .conftest import KEY_COLUMNS, point_record, sweep_point, write_journal

_SRC = str(Path(repro.__file__).resolve().parent.parent)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _cells(start, stop):
    """Journal records for one grid cell per ``factor`` in the range."""
    return [
        point_record(
            f"grid/vgpr/matmul/c{i:03d}",
            point=sweep_point(factor=i + 1),
        )
        for i in range(start, stop)
    ]


_INGEST_SCRIPT = """
import sys
from repro.store import ResultStore, ingest_journal

store_path, journal_path = sys.argv[1], sys.argv[2]
with ResultStore(store_path) as store:
    ingest_journal(store, journal_path, source="shared")
"""


def test_two_processes_converge_without_duplicates(tmp_path):
    """Two workers ingest overlapping journals concurrently: the store
    must converge to exactly the union, however the writes interleave."""
    store_path = tmp_path / "results.sqlite"
    ResultStore(store_path).close()  # pre-migrate: the race under test
    # is row ingest, not schema creation
    a = write_journal(tmp_path / "a.jsonl", _cells(0, 40))
    b = write_journal(tmp_path / "b.jsonl", _cells(20, 60))
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _INGEST_SCRIPT,
             str(store_path), str(journal)],
            env=_env(), stderr=subprocess.PIPE,
        )
        for journal in (a, b)
    ]
    for p in procs:
        _, err = p.communicate(timeout=60)
        assert p.returncode == 0, err.decode()

    with ResultStore(store_path) as store:
        assert store.integrity_check() == "ok"
        assert len(store.query()) == 60
        key_list = ", ".join(KEY_COLUMNS)
        total = store._conn.execute(
            "SELECT COUNT(*) FROM avf_results"
        ).fetchone()[0]
        distinct = store._conn.execute(
            "SELECT COUNT(*) FROM "
            f"(SELECT DISTINCT {key_list} FROM avf_results)"
        ).fetchone()[0]
        assert total == distinct == 60


_SLOW_WRITER_SCRIPT = """
import sys
from repro.store import ResultStore, ingest_journal
from repro.runtime import Journal

store_path, journal_path = sys.argv[1], sys.argv[2]
store = ResultStore(store_path)
records = Journal(journal_path).load()
# one transaction per record: plenty of kill windows between commits
for task_id in sorted(records):
    ingest_journal_rows = records[task_id]
    from repro.store.ingest import _point_to_row
    store.put_avf_rows([
        _point_to_row(
            ingest_journal_rows["value"], workload="matmul", seed=0,
            ser_model="none", source="victim",
        )
    ])
    print(task_id, flush=True)
"""


@pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs SIGKILL"
)
def test_sigkill_mid_ingest_leaves_consistent_reingestable_store(tmp_path):
    """Kill -9 between (and possibly inside) write transactions: the
    store stays structurally sound and a re-ingest completes the set."""
    store_path = tmp_path / "results.sqlite"
    journal = write_journal(tmp_path / "j.jsonl", _cells(0, 120))
    proc = subprocess.Popen(
        [sys.executable, "-c", _SLOW_WRITER_SCRIPT,
         str(store_path), str(journal)],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    # let it land a few committed rows, then kill without warning
    committed = 0
    deadline = time.monotonic() + 30
    while committed < 5 and time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line:
            committed += 1
    assert committed >= 5, proc.stderr.read().decode()
    proc.kill()
    proc.wait(timeout=30)

    with ResultStore(store_path) as store:
        assert store.integrity_check() == "ok"
        survived = len(store.query())
        assert 0 < survived < 120  # torn run: partial but sound
        counts = ingest_journal(store, journal, source="victim")
        assert counts["ingested"] == 120 - survived
        assert counts["deduped"] == survived
        assert len(store.query()) == 120


def test_reader_sees_writer_commits_across_connections(tmp_path):
    """WAL's reason to exist here: a dashboard handle opened before a
    write still observes it afterwards (no stale snapshot pinning)."""
    store_path = tmp_path / "results.sqlite"
    writer = ResultStore(store_path)
    reader = ResultStore(store_path)
    try:
        assert len(reader.query()) == 0
        writer.put_avf_rows(
            [point_record("x", point=sweep_point())["value"]
             | {"workload": "matmul"}]
        )
        assert len(reader.query()) == 1
    finally:
        writer.close()
        reader.close()


def test_database_file_is_sqlite(tmp_path):
    store_path = tmp_path / "results.sqlite"
    ResultStore(store_path).close()
    assert store_path.read_bytes()[:16] == b"SQLite format 3\x00"
    conn = sqlite3.connect(store_path)
    assert conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"
    conn.close()
