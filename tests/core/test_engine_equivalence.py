"""The optimized MB-AVF engine vs a brute-force reference implementation.

The production engine deduplicates fault groups by canonical signature and
sweeps classed intervals; this module re-implements the definition directly
— for every fault group, for every cycle, classify the group through its
overlapped regions — and property-tests that both agree exactly on random
layouts, lifetimes, schemes and fault modes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.avf import StructureLifetimes, compute_mb_avf
from repro.core.faultmodes import FaultMode
from repro.core.intervals import AceClass, IntervalSet, Outcome
from repro.core.layout import Interleaving, SramArray
from repro.core.protection import SCHEMES, Reaction


def brute_force_mb_avf(array, lifetimes, mode, scheme, due_preempts_sdc=False):
    """Definitionally-direct MB-AVF: per group, per cycle."""
    window = range(lifetimes.start_cycle, lifetimes.end_cycle)
    h, w = mode.height, mode.width
    totals = {o: 0 for o in Outcome}
    n_groups = 0
    for r0 in range(array.rows - h + 1):
        for c0 in range(array.cols - w + 1):
            n_groups += 1
            # Region membership: domain -> (count, byte set).
            regions = {}
            for dr, dc in mode.offsets:
                d = int(array.domain_of[r0 + dr, c0 + dc])
                b = int(array.byte_of[r0 + dr, c0 + dc])
                cnt, bs = regions.get(d, (0, set()))
                regions[d] = (cnt + 1, bs | {b})
            for cycle in window:
                outcomes = []
                for cnt, bs in regions.values():
                    cls = max(
                        (lifetimes.byte_isets[b].class_at(cycle) for b in bs),
                        default=0,
                    )
                    reaction = scheme.react(cnt)
                    if reaction in (Reaction.NO_FAULT, Reaction.CORRECTED):
                        continue
                    if reaction is Reaction.DETECTED:
                        if cls == int(AceClass.ACE):
                            outcomes.append(Outcome.TRUE_DUE)
                        elif cls == int(AceClass.READ_DEAD):
                            outcomes.append(Outcome.FALSE_DUE)
                    else:  # undetected / miscorrected
                        if cls == int(AceClass.ACE):
                            outcomes.append(Outcome.SDC)
                if not outcomes:
                    continue
                verdict = max(outcomes)
                if (
                    due_preempts_sdc
                    and verdict == Outcome.SDC
                    and any(
                        o in (Outcome.TRUE_DUE, Outcome.FALSE_DUE)
                        for o in outcomes
                    )
                ):
                    verdict = Outcome.TRUE_DUE
                totals[verdict] += 1
    return n_groups, totals


@st.composite
def random_setup(draw):
    """Random small layout + lifetimes + mode + scheme."""
    n_domains = draw(st.integers(2, 4))
    domain_bytes = 1
    cols = n_domains * 8
    rows = draw(st.integers(1, 2))
    interleave = draw(st.booleans())
    domain_row = np.empty(cols, dtype=np.int32)
    for c in range(cols):
        domain_row[c] = c % n_domains if interleave else c // 8
    domain_of = np.tile(domain_row, (rows, 1))
    # Distinct rows hold distinct domains.
    for r in range(rows):
        domain_of[r] += r * n_domains
    byte_of = domain_of.copy()
    array = SramArray(
        "rand", byte_of, domain_of, domain_bytes,
        n_domains if interleave else 1, Interleaving.NONE,
    )
    n_bytes = rows * n_domains
    window = 12
    isets = []
    for _ in range(n_bytes):
        ivals = []
        t = 0
        while t < window:
            length = draw(st.integers(1, 4))
            cls = draw(st.integers(0, 2))
            if cls:
                ivals.append((t, min(t + length, window), cls))
            t += length
        isets.append(IntervalSet(ivals))
    lifetimes = StructureLifetimes("rand", isets, 0, window)
    mode = FaultMode.linear(draw(st.integers(1, 5)))
    scheme = SCHEMES[draw(st.sampled_from(sorted(SCHEMES)))]
    preempt = draw(st.booleans())
    return array, lifetimes, mode, scheme, preempt


class TestEngineMatchesBruteForce:
    @given(random_setup())
    @settings(max_examples=120, deadline=None)
    def test_equivalence(self, setup):
        array, lifetimes, mode, scheme, preempt = setup
        fast = compute_mb_avf(
            array, lifetimes, mode, scheme, due_preempts_sdc=preempt
        )
        n_groups, totals = brute_force_mb_avf(
            array, lifetimes, mode, scheme, due_preempts_sdc=preempt
        )
        assert fast.n_groups == n_groups
        for o in (Outcome.FALSE_DUE, Outcome.TRUE_DUE, Outcome.SDC):
            assert fast.outcome_cycles.get(o, 0.0) == pytest.approx(
                totals[o]
            ), (o, mode.name, scheme.name, preempt)

    @given(random_setup())
    @settings(max_examples=30, deadline=None)
    def test_rect_mode_equivalence(self, setup):
        array, lifetimes, _, scheme, preempt = setup
        if array.rows < 2:
            return
        mode = FaultMode.rect(2, 2)
        fast = compute_mb_avf(
            array, lifetimes, mode, scheme, due_preempts_sdc=preempt
        )
        n_groups, totals = brute_force_mb_avf(
            array, lifetimes, mode, scheme, due_preempts_sdc=preempt
        )
        assert fast.n_groups == n_groups
        for o in (Outcome.FALSE_DUE, Outcome.TRUE_DUE, Outcome.SDC):
            assert fast.outcome_cycles.get(o, 0.0) == pytest.approx(totals[o])
