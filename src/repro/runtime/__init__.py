"""Fault-tolerant campaign runtime.

Process-isolated task execution with wall-clock timeouts, bounded
retries, a poison-task circuit breaker, heartbeat worker respawn, a
structured outcome taxonomy, a CRC-checked JSONL checkpoint journal
(with quarantine and atomic compaction) that makes long injection
campaigns and AVF sweeps restartable, graceful SIGINT/SIGTERM draining,
and a deterministic chaos harness that fault-injects the runtime itself.
"""

from .chaos import ChaosError, ChaosPolicy, ChaosSpec
from .errors import (
    CampaignInterrupted,
    ExecutorError,
    InfraError,
    JournalRecordError,
    JournalWriteError,
    SimulationCrash,
    SimulationError,
    SimulationHang,
    TaskOutcome,
    classify_exception,
)
from .executor import Executor, Task, TaskResult, run_tasks
from .guard import (
    AdmissionGate,
    CircuitBreaker,
    GuardConfig,
    GuardRejection,
    ServiceGuard,
    TokenBucket,
)
from .journal import Journal
from .retry import RetryPolicy

__all__ = [
    "AdmissionGate",
    "CampaignInterrupted",
    "ChaosError",
    "ChaosPolicy",
    "ChaosSpec",
    "CircuitBreaker",
    "Executor",
    "ExecutorError",
    "GuardConfig",
    "GuardRejection",
    "InfraError",
    "Journal",
    "JournalRecordError",
    "JournalWriteError",
    "RetryPolicy",
    "ServiceGuard",
    "SimulationCrash",
    "SimulationError",
    "SimulationHang",
    "Task",
    "TaskOutcome",
    "TaskResult",
    "TokenBucket",
    "classify_exception",
    "run_tasks",
]
