"""Suppression fixture: inline pragmas silence rules per line."""

import random


def mixed():
    a = random.random()  # staticcheck: ignore[D101]
    b = random.random()  # staticcheck: ignore
    c = random.random()
    return a, b, c
