"""Smoke: the full AVF pipeline runs on every registered workload."""

import pytest

from repro.core import AvfStudy, FaultMode, Parity
from repro.workloads import names, run

# The figure benches cover EVALUATION_SET in depth; here every registered
# workload gets one cheap end-to-end pass through the pipeline.
ALL = names()


@pytest.mark.parametrize("name", ALL)
def test_pipeline_runs_everywhere(name):
    result = run(name, n_cus=2)
    study = AvfStudy(result.apu, result.output_ranges)
    l2 = study.cache_avf("l2", FaultMode.linear(2), Parity())
    assert 0.0 <= l2.total_avf <= 1.0
    vg = study.vgpr_avf(FaultMode.linear(1), Parity())
    assert 0.0 <= vg.total_avf <= 1.0
    # Something was architecturally required somewhere: outputs exist.
    assert l2.total_avf > 0 or vg.total_avf > 0
