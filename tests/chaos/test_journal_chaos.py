"""Journal-side chaos and hardening: simulated write failures, per-record
CRC integrity, the quarantine sidecar, atomic compaction, and the
cross-version contract that CRC-less journals keep loading."""

import json
import warnings

import pytest

from repro.runtime import (
    ChaosPolicy,
    ChaosSpec,
    Executor,
    ExecutorError,
    Journal,
    JournalWriteError,
    Task,
)
from repro.runtime.journal import _canonical, _crc32

from ..runtime.stubs import dispatch
from .conftest import (
    CHAOS_SEED,
    expected_map,
    journaled_ids,
    ok_tasks,
    outcome_map,
)


class TestWriteFaultChaos:
    @pytest.mark.parametrize(
        "point", ["journal_enospc", "journal_eio", "journal_truncate"]
    )
    def test_aborted_campaign_resumes_to_fault_free_result(
        self, tmp_path, point
    ):
        """ENOSPC/EIO/torn-write on append abort the campaign (completed
        work stays durable); a chaos-free resume converges exactly."""
        tasks = ok_tasks(point, 6)
        policy = ChaosPolicy(ChaosSpec(**{point: 0.5}), seed=CHAOS_SEED)
        jp = tmp_path / "j.jsonl"
        fired = any(policy.journal_action(t.id) is not None for t in tasks)
        aborted = False
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                Executor(
                    dispatch, jobs=0, journal=jp, chaos=policy
                ).run(tasks)
        except ExecutorError as exc:
            aborted = True
            assert "resumable" in str(exc)
        assert aborted == fired
        # Resume WITHOUT chaos: journal faults are keyed per task id and
        # would replay forever otherwise.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resumed = Executor(dispatch, jobs=0, journal=jp).run(tasks)
        assert outcome_map(resumed) == expected_map(tasks)
        assert sorted(journaled_ids(jp)) == sorted(t.id for t in tasks)

    def test_direct_append_fault_is_typed(self, tmp_path):
        policy = ChaosPolicy(ChaosSpec(journal_enospc=1.0), seed=CHAOS_SEED)
        j = Journal(tmp_path / "j.jsonl", chaos=policy)
        with pytest.raises(JournalWriteError):
            j.append({"task": "a", "outcome": "ok"})
        j.close()


class TestCorruptionChaos:
    def test_corrupt_records_quarantined_and_rerun(self, tmp_path):
        """journal_corrupt writes garbage that 'succeeds'; the CRC catches
        it on the next load, the record is quarantined, the task re-runs,
        and compaction restores one valid line per task."""
        tasks = ok_tasks("jc", 6)
        policy = ChaosPolicy(ChaosSpec(journal_corrupt=0.4), seed=CHAOS_SEED)
        jp = tmp_path / "j.jsonl"
        first = Executor(dispatch, jobs=0, journal=jp, chaos=policy).run(
            tasks
        )
        assert outcome_map(first) == expected_map(tasks)  # silent on write
        corrupted = [
            t.id for t in tasks
            if policy.journal_action(t.id) == "journal_corrupt"
        ]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resumed = Executor(dispatch, jobs=0, journal=jp).run(tasks)
        assert outcome_map(resumed) == expected_map(tasks)
        # A corrupt *final* line is torn-tail residue (dropped silently);
        # corrupt interior lines must be quarantined with a warning.
        interior = [i for i in corrupted if i != tasks[-1].id]
        if interior:
            assert jp.with_name(jp.name + ".quarantine").exists()
            assert any(
                "quarantined" in str(w.message) for w in caught
            )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            stats = Journal(jp).compact()
        assert stats["records"] == len(tasks)
        lines = jp.read_text().splitlines()
        assert len(lines) == len(tasks)
        for line in lines:
            rec = json.loads(line)
            assert rec.pop("_crc") == _crc32(_canonical(rec))

    def test_interior_bitflip_detected_by_crc(self, tmp_path):
        """Silent disk corruption that stays valid JSON: only the
        checksum can catch it."""
        jp = tmp_path / "j.jsonl"
        j = Journal(jp)
        j.append({"task": "a", "outcome": "ok", "value": 1})
        j.append({"task": "b", "outcome": "ok", "value": 2})
        j.close()
        lines = jp.read_text().splitlines()
        assert '"value": 1' in lines[0]
        lines[0] = lines[0].replace('"value": 1', '"value": 7')
        jp.write_text("\n".join(lines) + "\n")
        with pytest.warns(UserWarning, match="quarantined"):
            loaded = Journal(jp).load()
        assert set(loaded) == {"b"}
        q = jp.with_name(jp.name + ".quarantine")
        entries = [json.loads(x) for x in q.read_text().splitlines()]
        assert entries[0]["reason"] == "crc_mismatch"

    def test_binary_garbage_does_not_brick_resume(self, tmp_path):
        """An interior run of raw bytes (bad sector) must quarantine, not
        raise UnicodeDecodeError and kill the resume."""
        jp = tmp_path / "j.jsonl"
        j = Journal(jp)
        j.append({"task": "a", "outcome": "ok", "value": 1})
        j.close()
        with jp.open("ab") as fh:
            fh.write(b"\xff\xfe\x00garbage\xff\n")
        j2 = Journal(jp)
        j2.append({"task": "b", "outcome": "ok", "value": 2})
        j2.close()
        with pytest.warns(UserWarning, match="quarantined"):
            loaded = Journal(jp).load()
        assert set(loaded) == {"a", "b"}

    def test_unusable_record_quarantined_and_task_rerun(self, tmp_path):
        """A record that parses but cannot rebuild a TaskResult (typed
        JournalRecordError path): quarantined, task re-runs, resume
        continues instead of aborting."""
        jp = tmp_path / "j.jsonl"
        rec = {"task": "a", "outcome": 123}  # outcome must be a string
        jp.write_text(
            _canonical({**rec, "_crc": _crc32(_canonical(rec))}) + "\n"
        )
        with pytest.warns(UserWarning, match="unusable"):
            results = Executor(dispatch, jobs=0, journal=jp).run(
                [Task("a", ("ok", 5))]
            )
        assert results["a"].value == 10
        assert jp.with_name(jp.name + ".quarantine").exists()


class TestCrcVersioning:
    def test_old_crcless_journal_loads_and_upgrades(self, tmp_path):
        """Round trip across journal format versions: records written
        before the CRC field existed load as-is, new appends carry a CRC,
        and compaction upgrades everything."""
        jp = tmp_path / "old.jsonl"
        old = {
            "task": "a", "outcome": "ok", "value": 1,
            "error": "", "attempts": 1, "duration": 0.0,
        }
        jp.write_text(json.dumps(old) + "\n")
        j = Journal(jp)
        assert j.load() == {"a": old}
        j.append({"task": "b", "outcome": "ok", "value": 2})
        j.close()
        raw = [json.loads(x) for x in jp.read_text().splitlines()]
        assert "_crc" not in raw[0]
        assert "_crc" in raw[1]
        loaded = Journal(jp).load()
        assert set(loaded) == {"a", "b"}
        assert all("_crc" not in rec for rec in loaded.values())
        Journal(jp).compact()
        for line in jp.read_text().splitlines():
            rec = json.loads(line)
            assert rec.pop("_crc") == _crc32(_canonical(rec))
        # The executor resumes from the upgraded journal without re-runs.
        def must_not_run(payload):
            raise AssertionError("journaled task re-executed")

        results = Executor(must_not_run, jobs=0, journal=jp).run(
            [Task("a"), Task("b")]
        )
        assert results["a"].value == 1
        assert results["b"].value == 2


class TestCompactCrashConsistency:
    def _journal_with(self, jp, n):
        j = Journal(jp)
        for i in range(n):
            j.append({"task": f"t{i}", "outcome": "ok", "value": i})
        j.close()

    def test_stale_tmp_from_killed_compaction_is_harmless(self, tmp_path):
        """Resume after a kill mid-compact(): the rename never happened,
        so the original journal is untouched; the half-written tmp file
        is ignored by load and consumed by the next compaction."""
        jp = tmp_path / "j.jsonl"
        self._journal_with(jp, 3)
        before = Journal(jp).load()
        tmp = jp.with_name(jp.name + ".tmp")
        tmp.write_text('{"task": "half-writ')  # killed before os.replace
        assert Journal(jp).load() == before
        stats = Journal(jp).compact()
        assert stats["records"] == 3
        assert not tmp.exists()
        assert Journal(jp).load() == before

    def test_compact_drops_superseded_duplicates(self, tmp_path):
        jp = tmp_path / "j.jsonl"
        j = Journal(jp)
        j.append({"task": "a", "outcome": "ok", "value": 1})
        j.append({"task": "a", "outcome": "ok", "value": 2})
        j.append({"task": "b", "outcome": "ok", "value": 3})
        j.close()
        stats = Journal(jp).compact()
        assert stats["records"] == 2
        assert stats["bytes_after"] < stats["bytes_before"]
        assert len(jp.read_text().splitlines()) == 2
        assert Journal(jp).load()["a"]["value"] == 2

    def test_append_continues_after_compaction(self, tmp_path):
        jp = tmp_path / "j.jsonl"
        j = Journal(jp)
        j.append({"task": "a", "outcome": "ok", "value": 1})
        j.compact()
        j.append({"task": "b", "outcome": "ok", "value": 2})
        j.close()
        assert set(Journal(jp).load()) == {"a", "b"}
