"""Skip-file fixture: nothing here is linted."""
# staticcheck: skip-file

import random

print(random.random())
