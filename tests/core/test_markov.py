"""Tests for the MACAU-style Markov-chain MTTF model."""

import math

import numpy as np
import pytest

from repro.core.markov import WordMarkovModel, cache_mttf_hours, word_mttf_hours
from repro.core.mttf import HOURS_PER_YEAR
from repro.core.protection import DecTed, NoProtection, Parity, SecDed


class TestWordModel:
    def test_unprotected_word_is_exponential(self):
        # c=0: fails at the first strike; MTTF = 1/lambda exactly.
        m = WordMarkovModel(word_bits=32, correctable=0, raw_fit_per_mbit=100.0)
        assert m.mttf_hours() == pytest.approx(1.0 / m.sbf_rate_per_hour)

    def test_secded_two_strike_mttf(self):
        # c=1, no scrub: absorption needs two strikes; MTTF = 2/lambda.
        m = WordMarkovModel(word_bits=32, correctable=1, raw_fit_per_mbit=100.0)
        assert m.mttf_hours() == pytest.approx(2.0 / m.sbf_rate_per_hour)

    def test_correction_extends_life(self):
        kw = dict(word_bits=32, raw_fit_per_mbit=10.0)
        m0 = WordMarkovModel(correctable=0, **kw).mttf_hours()
        m1 = WordMarkovModel(correctable=1, **kw).mttf_hours()
        m2 = WordMarkovModel(correctable=2, **kw).mttf_hours()
        assert m0 < m1 < m2

    def test_scrubbing_extends_life(self):
        kw = dict(word_bits=32, correctable=1, raw_fit_per_mbit=10.0)
        never = WordMarkovModel(**kw).mttf_hours()
        yearly = WordMarkovModel(
            scrub_interval_hours=HOURS_PER_YEAR, **kw
        ).mttf_hours()
        hourly = WordMarkovModel(scrub_interval_hours=1.0, **kw).mttf_hours()
        assert never < yearly < hourly

    def test_scrubbing_useless_without_correction(self):
        kw = dict(word_bits=32, correctable=0, raw_fit_per_mbit=10.0)
        never = WordMarkovModel(**kw).mttf_hours()
        scrubbed = WordMarkovModel(scrub_interval_hours=1.0, **kw).mttf_hours()
        assert scrubbed == pytest.approx(never)

    def test_smbf_defeat_dominates(self):
        # A defeating spatial-MBF rate bounds MTTF regardless of correction.
        m = WordMarkovModel(
            word_bits=32, correctable=2, raw_fit_per_mbit=0.001,
            smbf_defeat_fit=1000.0,
        )
        assert m.mttf_hours() == pytest.approx(1e9 / 1000.0, rel=0.01)

    def test_zero_rates_give_infinite_mttf(self):
        m = WordMarkovModel(word_bits=32, correctable=1, raw_fit_per_mbit=0.0)
        assert m.mttf_hours() == math.inf

    def test_generator_rows_conserve_rate(self):
        m = WordMarkovModel(
            word_bits=64, correctable=2, raw_fit_per_mbit=5.0,
            scrub_interval_hours=10.0, smbf_defeat_fit=1.0,
        )
        q = m.generator()
        # Off-diagonal rates are non-negative, diagonal bounds the outflow
        # (difference = absorption rate into failure).
        off = q - np.diag(np.diag(q))
        assert (off >= 0).all()
        assert (np.diag(q) < 0).all()
        assert (q.sum(axis=1) <= 1e-18).all()


class TestSchemeDerivedModels:
    def test_correction_capability_derivation(self):
        rate = dict(word_bits=32, raw_fit_per_mbit=100.0)
        none = word_mttf_hours(NoProtection(), **rate)
        par = word_mttf_hours(Parity(), **rate)
        sec = word_mttf_hours(SecDed(), **rate)
        dec = word_mttf_hours(DecTed(), **rate)
        assert none == pytest.approx(par)  # both correct nothing
        assert sec == pytest.approx(2 * par)
        assert dec == pytest.approx(3 * par)

    def test_cache_is_series_system(self):
        one_word = word_mttf_hours(SecDed(), raw_fit_per_mbit=10.0)
        cache = cache_mttf_hours(SecDed(), 32 << 20, raw_fit_per_mbit=10.0)
        n_words = (32 << 20) * 8 // 32
        assert cache == pytest.approx(one_word / n_words)

    def test_smbf_fraction_reduces_cache_mttf(self):
        base = cache_mttf_hours(SecDed(), 1 << 20, raw_fit_per_mbit=10.0)
        hit = cache_mttf_hours(
            SecDed(), 1 << 20, raw_fit_per_mbit=10.0,
            smbf_defeat_fraction=0.05,
        )
        assert hit < base

    def test_matches_closed_form_shape(self):
        """Spatial defeats dominate accumulation at realistic rates, as in
        the paper's Figure 2 argument."""
        no_smbf = cache_mttf_hours(
            SecDed(), 32 << 20, raw_fit_per_mbit=1.0,
            scrub_interval_hours=100 * HOURS_PER_YEAR,
        )
        with_smbf = cache_mttf_hours(
            SecDed(), 32 << 20, raw_fit_per_mbit=1.0,
            scrub_interval_hours=100 * HOURS_PER_YEAR,
            smbf_defeat_fraction=0.001,
        )
        assert with_smbf < no_smbf / 100
