"""E001 fixture: this file intentionally does not parse."""

def broken(:
    pass
