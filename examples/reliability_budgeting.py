"""Chip-level reliability budgeting with MB-AVF, SER and MTTF models.

Pulls the whole library together the way an architect would during design:

1. measure MB-AVFs of the L1 data array, the L1 tag array and the VGPR on
   a workload mix;
2. fold them with per-mode raw fault rates into per-structure SERs and a
   chip-level SER (eq. 3 of the paper);
3. ask the design optimizer for the cheapest VGPR protection meeting an
   SDC target (the Sec. VIII flow);
4. sanity-check against the Markov-chain (MACAU-style) intrinsic-MTTF
   model for the chosen code with scrubbing.

Run with:  python examples/reliability_budgeting.py
"""

from repro.core import (
    TABLE_III,
    AvfStudy,
    FaultMode,
    Parity,
    SecDed,
    cache_mttf_hours,
    chip_ser,
    choose_design,
    evaluate_designs,
    soft_error_rate,
)
from repro.experiments import scaled_apu_kwargs
from repro.workloads import run

WORKLOADS = ("matmul", "dct", "srad")


def _structure_ser(study, structure, scheme, measure):
    avf_by_mode = {}
    for mode_name in TABLE_III:
        m = int(mode_name.split("x")[0])
        res = measure(FaultMode.linear(m), scheme)
        avf_by_mode[mode_name] = (res.due_avf, res.sdc_avf)
    return soft_error_rate(TABLE_III, avf_by_mode, structure)


def main() -> None:
    studies = []
    for wl in WORKLOADS:
        result = run(wl, apu_kwargs=scaled_apu_kwargs())
        studies.append(AvfStudy(result.apu, result.output_ranges))

    # --- per-structure SER under a baseline design (parity everywhere) ----
    print("per-structure SER (parity, no interleaving), averaged over "
          f"{len(WORKLOADS)} workloads:")
    sers = []
    for structure, measure_name in (
        ("l1-data", "cache"), ("l1-tags", "tags"), ("vgpr", "vgpr"),
    ):
        due = sdc = 0.0
        for study in studies:
            if measure_name == "cache":
                fn = lambda m, s: study.cache_avf("l1", m, s)
            elif measure_name == "tags":
                fn = lambda m, s: study.tag_avf("l1", m, s)
            else:
                fn = lambda m, s: study.vgpr_avf(m, s)
            ser = _structure_ser(study, structure, Parity(), fn)
            due += ser.due_fit / len(studies)
            sdc += ser.sdc_fit / len(studies)
        from repro.core import StructureSer  # local import for the record
        sers.append(StructureSer(structure, due, sdc))
        print(f"  {structure:<8} DUE {due:8.4f}  SDC {sdc:8.4f}")
    total = chip_ser(sers)
    print(f"  {'chip':<8} DUE {total.due_fit:8.4f}  SDC {total.sdc_fit:8.4f}")

    # --- VGPR design choice under an SDC budget ---------------------------
    results = evaluate_designs(studies)
    target = 0.10  # SDC budget for the VGPR, in Table III rate units
    best = choose_design(results, sdc_target=target)
    print(f"\nVGPR designs (SDC target {target}):")
    for r in sorted(results, key=lambda r: r.sdc_rate):
        mark = " <-- chosen" if best and r.label == best.label else ""
        print(f"  {r.label:<12} area {r.area_overhead:5.1%} "
              f"SDC {r.sdc_rate:7.4f}  DUE {r.due_rate:7.4f}{mark}")

    # --- intrinsic MTTF cross-check (Markov / MACAU-style) ----------------
    print("\nintrinsic 32MB-cache MTTF (hours), 1 FIT/Mbit, daily scrub:")
    for scheme, label in ((Parity(), "parity"), (SecDed(), "secded")):
        mttf = cache_mttf_hours(
            scheme, 32 << 20, raw_fit_per_mbit=1.0, scrub_interval_hours=24.0,
            smbf_defeat_fraction=0.001,
        )
        print(f"  {label:<8} {mttf:12.3e}")


if __name__ == "__main__":
    main()
