"""Unit tests for the tMBF vs sMBF MTTF models (paper Fig. 2)."""

import math

import pytest

from repro.core.mttf import (
    HOURS_PER_YEAR,
    figure2_sweep,
    mttf_smbf_hours,
    mttf_tmbf_hours,
    mttf_tmbf_unbounded_hours,
)

BITS_32MB = (32 << 20) * 8


class TestSmbfModel:
    def test_scales_inversely_with_rate(self):
        a = mttf_smbf_hours(BITS_32MB, 1000.0, 0.001)
        b = mttf_smbf_hours(BITS_32MB, 2000.0, 0.001)
        assert a == pytest.approx(2 * b)

    def test_scales_inversely_with_fraction(self):
        # Sec. IV-B: a 5% sMBF rate cuts MTTF ~2 orders vs 0.1%.
        a = mttf_smbf_hours(BITS_32MB, 1000.0, 0.001)
        b = mttf_smbf_hours(BITS_32MB, 1000.0, 0.05)
        assert a / b == pytest.approx(50.0)

    def test_zero_rate(self):
        assert mttf_smbf_hours(BITS_32MB, 0.0, 0.001) == math.inf


class TestTmbfModel:
    def test_quadratic_in_rate(self):
        a = mttf_tmbf_hours(BITS_32MB, 1000.0, 100.0)
        b = mttf_tmbf_hours(BITS_32MB, 2000.0, 100.0)
        assert a == pytest.approx(4 * b)

    def test_lifetime_bounding_increases_mttf(self):
        # Paper: limiting line lifetime to 100 years raises tMBF MTTF by
        # several orders of magnitude vs unbounded accumulation.
        unbounded = mttf_tmbf_unbounded_hours(BITS_32MB, 1.0)
        bounded = mttf_tmbf_hours(BITS_32MB, 1.0, 100 * HOURS_PER_YEAR)
        assert bounded > unbounded * 1000

    def test_unbounded_scales_inversely_with_rate(self):
        a = mttf_tmbf_unbounded_hours(BITS_32MB, 1000.0)
        b = mttf_tmbf_unbounded_hours(BITS_32MB, 2000.0)
        assert a == pytest.approx(2 * b)


class TestFigure2Shape:
    def test_smbf_dominates_tmbf(self):
        """The paper's core claim: sMBF MTTF is far below tMBF MTTF."""
        for row in figure2_sweep():
            assert row.mttf_smbf_01pct < row.mttf_tmbf_unbounded
            assert row.mttf_smbf_01pct < row.mttf_tmbf_100yr

    def test_gap_reaches_six_to_eight_orders(self):
        # Figure 2: at realistic raw rates with the 100-year lifetime bound,
        # the sMBF MTTF is 6-8 orders of magnitude below the tMBF MTTF.
        row = figure2_sweep([0.01])[0]
        assert row.mttf_tmbf_100yr / row.mttf_smbf_5pct > 1e6
        assert row.mttf_tmbf_100yr / row.mttf_smbf_01pct > 1e7

    def test_rows_cover_requested_rates(self):
        rows = figure2_sweep([10.0, 100.0])
        assert [r.raw_fit_per_mbit for r in rows] == [10.0, 100.0]

    def test_5pct_is_50x_worse(self):
        for row in figure2_sweep():
            assert row.mttf_smbf_01pct / row.mttf_smbf_5pct == pytest.approx(50.0)

    def test_mttf_monotone_in_rate(self):
        rows = figure2_sweep([100.0, 1000.0, 10000.0])
        for field in (
            "mttf_smbf_01pct",
            "mttf_smbf_5pct",
            "mttf_tmbf_unbounded",
            "mttf_tmbf_100yr",
        ):
            vals = [getattr(r, field) for r in rows]
            assert vals == sorted(vals, reverse=True)
