"""Unit tests for protection schemes and region classification."""

import pytest

from repro.core.intervals import AceClass, IntervalSet, Outcome
from repro.core.protection import (
    SCHEMES,
    Crc,
    DecTed,
    NoProtection,
    Parity,
    Reaction,
    SecDed,
    classify_region,
)


class TestReactions:
    def test_no_protection(self):
        s = NoProtection()
        assert s.react(0) is Reaction.NO_FAULT
        for n in range(1, 9):
            assert s.react(n) is Reaction.UNDETECTED

    def test_parity_detects_odd(self):
        s = Parity()
        assert s.react(0) is Reaction.NO_FAULT
        for n in (1, 3, 5, 7):
            assert s.react(n) is Reaction.DETECTED
        for n in (2, 4, 6, 8):
            assert s.react(n) is Reaction.UNDETECTED

    def test_secded(self):
        s = SecDed()
        assert s.react(0) is Reaction.NO_FAULT
        assert s.react(1) is Reaction.CORRECTED
        assert s.react(2) is Reaction.DETECTED
        for n in (3, 4, 5, 8):
            assert s.react(n) is Reaction.MISCORRECTED

    def test_dected(self):
        s = DecTed()
        assert s.react(1) is Reaction.CORRECTED
        assert s.react(2) is Reaction.CORRECTED
        assert s.react(3) is Reaction.DETECTED
        assert s.react(4) is Reaction.MISCORRECTED

    def test_crc_bursts(self):
        s = Crc(8)
        for n in range(1, 9):
            assert s.react(n) is Reaction.DETECTED
        assert s.react(9) is Reaction.DETECTED  # odd weight
        assert s.react(10) is Reaction.UNDETECTED

    def test_crc_without_odd_detection(self):
        s = Crc(4, detects_odd=False)
        assert s.react(5) is Reaction.UNDETECTED


class TestOverheads:
    def test_paper_overhead_anchors(self):
        # Intro: SEC-DED on 128 data bits needs 9 check bits (7%), DEC-TED 17
        # (13%).
        assert SecDed().check_bits(128) == 9
        assert DecTed().check_bits(128) == 17
        assert SecDed().area_overhead(128) == pytest.approx(0.0703, abs=1e-3)
        assert DecTed().area_overhead(128) == pytest.approx(0.1328, abs=1e-3)

    def test_secded_32(self):
        # Sec. VIII: 32-bit register SEC-DED = 7 check bits = 21.9% overhead.
        assert SecDed().check_bits(32) == 7
        assert SecDed().area_overhead(32) == pytest.approx(0.219, abs=1e-3)

    def test_parity_32(self):
        # Sec. VIII: parity on a 32-bit register = 3.1% overhead.
        assert Parity().area_overhead(32) == pytest.approx(0.031, abs=1e-3)

    def test_no_protection_overhead(self):
        assert NoProtection().check_bits(64) == 0
        assert NoProtection().area_overhead(64) == 0.0

    def test_registry(self):
        assert set(SCHEMES) >= {"none", "parity", "secded", "dected", "crc8"}
        assert SCHEMES["parity"].name == "parity"


class TestClassifyRegion:
    ACE = IntervalSet([(0, 10, int(AceClass.ACE))])
    DEAD = IntervalSet([(0, 10, int(AceClass.READ_DEAD))])
    MIXED = IntervalSet(
        [(0, 10, int(AceClass.ACE)), (10, 20, int(AceClass.READ_DEAD))]
    )

    def test_corrected_is_unace(self):
        assert not classify_region(Reaction.CORRECTED, self.ACE)
        assert not classify_region(Reaction.NO_FAULT, self.ACE)

    def test_detected_ace_is_true_due(self):
        out = classify_region(Reaction.DETECTED, self.ACE)
        assert out.intervals() == [(0, 10, int(Outcome.TRUE_DUE))]

    def test_detected_dead_is_false_due(self):
        out = classify_region(Reaction.DETECTED, self.DEAD)
        assert out.intervals() == [(0, 10, int(Outcome.FALSE_DUE))]

    def test_undetected_ace_is_sdc(self):
        out = classify_region(Reaction.UNDETECTED, self.ACE)
        assert out.intervals() == [(0, 10, int(Outcome.SDC))]

    def test_undetected_dead_is_masked(self):
        assert not classify_region(Reaction.UNDETECTED, self.DEAD)

    def test_miscorrected_defaults_like_undetected(self):
        out = classify_region(Reaction.MISCORRECTED, self.MIXED)
        assert out.intervals() == [(0, 10, int(Outcome.SDC))]

    def test_miscorrect_corrupts_dead_data(self):
        out = classify_region(
            Reaction.MISCORRECTED, self.MIXED, miscorrect_corrupts=True
        )
        assert out.intervals() == [(0, 20, int(Outcome.SDC))]

    def test_mixed_detected(self):
        out = classify_region(Reaction.DETECTED, self.MIXED)
        assert out.intervals() == [
            (0, 10, int(Outcome.TRUE_DUE)),
            (10, 20, int(Outcome.FALSE_DUE)),
        ]

    def test_empty_region(self):
        assert not classify_region(Reaction.DETECTED, IntervalSet())
