"""D103 fixture: set iteration feeding ordered output."""


def orderings(values):
    out = []
    for tag in {"b", "a", "c"}:
        out.append(tag)
    listed = list(set(values))
    comp = [v for v in frozenset(values)]
    joined = ",".join({"x", "y"})
    ok = sorted(set(values))
    return out, listed, comp, joined, ok
