"""The typed query surface: filters, ordering, grouping, numpy access."""

import numpy as np
import pytest

from repro.store.query import QueryResult, build_where

from .conftest import avf_row


@pytest.fixture
def seeded(store):
    store.put_avf_rows(
        [
            avf_row(workload="matmul", sdc_avf=0.10, due_avf=0.2),
            avf_row(workload="matmul", mode="4x1", sdc_avf=0.30,
                    due_avf=0.4),
            avf_row(workload="transpose", sdc_avf=0.20, due_avf=0.1),
            avf_row(workload="stencil", structure="vgpr", scheme="none",
                    sdc_avf=0.50, due_avf=0.0, n_groups=None,
                    window_cycles=None),
        ]
    )
    return store


class TestBuildWhere:
    def test_no_filters(self):
        assert build_where({}) == ("", [])

    def test_scalar_and_sequence(self):
        where, params = build_where(
            {"workload": "matmul", "mode": ["2x1", "4x1"]}
        )
        assert where == " WHERE mode IN (?, ?) AND workload = ?"
        assert params == ["2x1", "4x1", "matmul"]

    def test_set_values_are_sorted(self):
        _, params = build_where({"mode": {"4x1", "2x1"}})
        assert params == ["2x1", "4x1"]

    def test_empty_sequence_matches_nothing(self, seeded):
        where, params = build_where({"workload": []})
        assert "1 = 0" in where and params == []
        assert len(seeded.query(workload=[])) == 0

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError, match="unknown filter column"):
            build_where({"benchmark": "matmul"})


class TestQuery:
    def test_filters(self, seeded):
        assert len(seeded.query()) == 4
        assert len(seeded.query(workload="matmul")) == 2
        assert len(seeded.query(workload=["matmul", "stencil"])) == 3
        assert len(seeded.query(workload="matmul", mode="4x1")) == 1
        assert len(seeded.query(workload="absent")) == 0

    def test_default_order_is_canonical_key(self, seeded):
        names = [r.workload for r in seeded.query()]
        assert names == ["matmul", "matmul", "stencil", "transpose"]

    def test_custom_order_and_limit(self, seeded):
        rows = seeded.query(order_by=("structure", "workload"), limit=2)
        assert [r.workload for r in rows] == ["matmul", "matmul"]
        with pytest.raises(KeyError, match="unknown order column"):
            seeded.query(order_by=("sdc_avf",))

    def test_rows_are_typed(self, seeded):
        row = seeded.query(workload="stencil")[0]
        assert row.n_groups is None and row.window_cycles is None
        other = seeded.query(workload="matmul", mode="2x1")[0]
        assert isinstance(other.n_groups, int)
        assert isinstance(other.sdc_avf, float)


class TestQueryResult:
    def test_sequence_protocol(self, seeded):
        result = seeded.query()
        assert len(result) == 4 and bool(result)
        assert result[0].workload == "matmul"
        assert [r.workload for r in result][-1] == "transpose"
        assert not QueryResult([])

    def test_value_column_is_float64_with_nan_for_null(self, seeded):
        groups = seeded.query().column("n_groups")
        assert groups.dtype == np.float64
        assert np.isnan(groups).sum() == 1

    def test_key_column_is_object(self, seeded):
        col = seeded.query().column("workload")
        assert col.dtype == object
        assert set(col) == {"matmul", "transpose", "stencil"}

    def test_to_arrays_and_dicts(self, seeded):
        arrays = seeded.query().to_arrays(("workload", "sdc_avf"))
        assert set(arrays) == {"workload", "sdc_avf"}
        dicts = seeded.query(workload="transpose").to_dicts()
        assert dicts[0]["sdc_avf"] == 0.20

    def test_aggregate(self, seeded):
        result = seeded.query(workload="matmul")
        assert result.aggregate("sdc_avf", "mean") == pytest.approx(0.2)
        assert result.aggregate("sdc_avf", "max") == 0.30
        assert result.aggregate("sdc_avf", "count") == 2

    def test_aggregate_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            QueryResult([]).aggregate()

    def test_group_by_single_key(self, seeded):
        grouped = seeded.query().group_by("workload", value="sdc_avf")
        assert grouped == {
            ("matmul",): pytest.approx(0.2),
            ("stencil",): pytest.approx(0.5),
            ("transpose",): pytest.approx(0.2),
        }
        # deterministic: keys arrive sorted
        assert list(grouped) == sorted(grouped)

    def test_group_by_multi_key_and_agg(self, seeded):
        grouped = seeded.query().group_by(
            ("workload", "mode"), value="due_avf", agg="sum"
        )
        assert grouped[("matmul", "2x1")] == pytest.approx(0.2)
        assert grouped[("matmul", "4x1")] == pytest.approx(0.4)

    def test_group_by_bad_key_or_agg_raises(self, seeded):
        result = seeded.query()
        with pytest.raises(KeyError, match="unknown group column"):
            result.group_by("sdc_avf")
        with pytest.raises(KeyError, match="unknown aggregate"):
            result.group_by("workload", agg="median")
