"""Focused tests for float32 instruction semantics and edge cases."""

import numpy as np
import pytest

from repro.arch import Apu, GlobalMemory, ProgramBuilder, fimm, imm, s, v


def _exec(body, inputs_f32):
    mem = GlobalMemory()
    inp = mem.alloc("in", 16 * 4)
    out = mem.alloc("out", 16 * 4)
    mem.view_f32("in")[: len(inputs_f32)] = np.asarray(inputs_f32, np.float32)
    p = ProgramBuilder()
    p.shl(v(9), v(0), imm(2))
    p.iadd(v(8), v(9), s(2))
    p.load(v(2), v(8))
    body(p)
    p.iadd(v(9), v(9), s(3))
    p.store(v(3), v(9))
    apu = Apu(memory=mem, n_cus=1)
    apu.launch(p.build(), 16, [inp, out])
    apu.finish()
    return mem.view_f32("out")


class TestFloatOps:
    def test_fadd_is_exact_float32(self):
        out = _exec(lambda p: p.fadd(v(3), v(2), fimm(0.1)), [0.2] * 16)
        assert out[0] == np.float32(0.2) + np.float32(0.1)

    def test_frcp(self):
        out = _exec(lambda p: p.frcp(v(3), v(2)), [4.0] * 16)
        assert (out == 0.25).all()

    def test_division_by_zero_flushes(self):
        # 1/0 = inf; nan_to_num keeps it representable (large finite).
        out = _exec(lambda p: p.frcp(v(3), v(2)), [0.0] * 16)
        assert np.isfinite(out).all()

    def test_sqrt_of_negative_flushes_nan_to_zero(self):
        out = _exec(lambda p: p.fsqrt(v(3), v(2)), [-1.0] * 16)
        assert (out == 0.0).all()

    def test_fexp_flog_roundtrip(self):
        def body(p):
            p.fexp(v(3), v(2))
            p.flog(v(3), v(3))

        out = _exec(body, [1.5] * 16)
        assert out[0] == pytest.approx(1.5, abs=1e-5)

    def test_fmin_fmax(self):
        out = _exec(lambda p: p.fmin(v(3), v(2), fimm(0.5)), [0.2, 0.9] * 8)
        assert out[0] == np.float32(0.2)
        assert out[1] == np.float32(0.5)

    def test_fabs(self):
        out = _exec(lambda p: p.fabs(v(3), v(2)), [-2.5] * 16)
        assert (out == 2.5).all()

    def test_fcmp_all_conditions(self):
        for cond, expect in (
            ("lt", [1, 0, 0]), ("le", [1, 1, 0]), ("eq", [0, 1, 0]),
            ("ne", [1, 0, 1]), ("gt", [0, 0, 1]), ("ge", [0, 1, 1]),
        ):
            def body(p, c=cond):
                p.fcmp(c, v(2), fimm(1.0))
                p.cndmask(v(3), fimm(1.0), fimm(0.0))

            out = _exec(body, [0.5, 1.0, 2.0] + [0.0] * 13)
            assert out[:3].tolist() == expect, cond

    def test_fmac_accumulates_in_order(self):
        def body(p):
            p.mov(v(3), fimm(0.0))
            for _ in range(3):
                p.fmac(v(3), v(2), fimm(1.0))

        out = _exec(body, [0.1] * 16)
        x = np.float32(0.1)
        acc = np.float32(0.0)
        for _ in range(3):
            acc = np.float32(acc + x * np.float32(1.0))
        assert out[0] == acc
