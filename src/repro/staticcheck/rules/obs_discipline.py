"""Observability-discipline rules (family O).

``repro.obs`` keeps its < 2% disabled-overhead contract only while
instrumented code follows the pattern PR 2 established: spans are
context-managed (so an exception can never leak an open span and skew
every enclosing duration), metric names are globally consistent, and
collection objects are only created by :mod:`repro.obs` itself — code
elsewhere must go through the ``get_metrics()``/``get_tracer()`` no-op
singletons.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

from ..astutil import dotted_name, resolve_call
from ..findings import Finding, Module, Rule
from ..registry import register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import CallGraph
    from ..index import ProjectIndex

__all__ = ["SpanContext", "MetricNameCollision", "DirectObsConstruction"]


def _is_tracer_receiver(func: ast.Attribute, module: Module) -> bool:
    """Whether ``<recv>.span(...)`` plausibly targets a tracer.

    Heuristic: the receiver is a ``get_tracer()`` call, or a name/attr
    whose final segment mentions ``tracer``.  This keeps the rule away
    from unrelated ``span`` methods (e.g. ``IntervalSet.span()``), whose
    call sites take no arguments anyway.
    """
    recv = func.value
    if isinstance(recv, ast.Call):
        name = resolve_call(recv, module.aliases)
        return name is not None and name.rpartition(".")[2] == "get_tracer"
    name = dotted_name(recv)
    if name is None:
        return False
    return "tracer" in name.rpartition(".")[2].lower()


@register
class SpanContext(Rule):
    code = "O401"
    slug = "span-context"
    family = "obs"
    summary = (
        "tracer span opened without a with-statement (no guaranteed "
        "close on exceptions)"
    )
    rationale = (
        "A span that is entered but never exited corrupts the tracer's "
        "depth counter, mis-nests every later span and leaks the open "
        "duration into enclosing stages.  `with tracer.span(...)` "
        "closes on every path, including exceptions."
    )
    scope = None

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and _is_tracer_receiver(node.func, module)
            ):
                continue
            parent = module.parent(node)
            if isinstance(parent, (ast.withitem, ast.Return)):
                continue
            yield module.finding(
                node, self.code,
                "tracer span not used as a context manager; write "
                "`with ....span(...):` so it closes on every exit path",
            )


@register
class MetricNameCollision(Rule):
    code = "O402"
    slug = "metric-name-collision"
    family = "obs"
    summary = (
        "one metric name registered as different instrument kinds "
        "across the codebase"
    )
    rationale = (
        "MetricsRegistry keys counters, gauges and histograms in "
        "separate namespaces, so the same name used as two kinds "
        "produces two silently diverging series — and a Prometheus "
        "exposition with duplicate metric names of conflicting types, "
        "which scrapers reject."
    )
    scope = None
    #: index-driven since the whole-program pass landed: metric sites
    #: come from each FileSummary, so cached (unparsed) files still
    #: participate in collision detection
    project_rule = True

    _KINDS = ("counter", "gauge", "histogram")

    def check(self, module: Module) -> Iterator[Finding]:
        return iter(())

    def finalize_project(
        self, project: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        #: metric name -> kind -> [(relpath, line, col, snippet)]
        sites: Dict[str, Dict[str, List[Tuple[str, int, int, str]]]] = {}
        for relpath in sorted(project.files):
            for raw in project.files[relpath].metric_sites:
                name, kind, line, col, snippet = raw
                if kind not in self._KINDS:
                    continue
                sites.setdefault(str(name), {}).setdefault(
                    str(kind), []
                ).append((relpath, int(line), int(col), str(snippet)))
        for name in sorted(sites):
            kinds = sites[name]
            if len(kinds) < 2:
                continue
            # The majority kind is taken as intended; every site of the
            # other kinds is a finding (ties break toward the first kind
            # in _KINDS order so output is deterministic).
            ranked = sorted(
                kinds,
                key=lambda k: (-len(kinds[k]), self._KINDS.index(k)),
            )
            canonical = ranked[0]
            anchor_rel, anchor_line, _c, _s = kinds[canonical][0]
            for kind in ranked[1:]:
                for relpath, line, col, snippet in kinds[kind]:
                    yield Finding(
                        path=relpath,
                        line=line,
                        col=col,
                        rule=self.code,
                        message=(
                            f"metric {name!r} registered as a {kind} "
                            f"here but as a {canonical} at "
                            f"{anchor_rel}:{anchor_line}"
                        ),
                        snippet=snippet,
                    )


@register
class DirectObsConstruction(Rule):
    code = "O403"
    slug = "direct-obs-construction"
    family = "obs"
    summary = (
        "MetricsRegistry/Tracer constructed outside repro.obs instead "
        "of using the no-op singletons"
    )
    rationale = (
        "Instrumented code must read get_metrics()/get_tracer() so that "
        "disabled mode stays a shared falsy no-op (the < 2% overhead "
        "contract) and enabling observability swaps every caller at "
        "once.  A privately constructed registry records into a silo "
        "nobody exports."
    )
    scope = None

    _CLASSES = {"MetricsRegistry", "Tracer", "NullRegistry", "NullTracer"}

    def check(self, module: Module) -> Iterator[Finding]:
        if "obs" in module.scopes:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, module.aliases)
            if name is None:
                continue
            if name.rpartition(".")[2] in self._CLASSES:
                yield module.finding(
                    node, self.code,
                    f"direct {name.rpartition('.')[2]}() construction "
                    "outside repro.obs; use obs.get_metrics()/"
                    "get_tracer() (or obs.enable()) instead",
                )
