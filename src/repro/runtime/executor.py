"""Fault-tolerant task executor for injection campaigns and AVF sweeps.

Every campaign-scale entry point dispatches its work through an
:class:`Executor`, which provides, in one place:

* **process isolation** — tasks run in worker processes created with the
  ``spawn`` start method, so a hung or segfaulting simulation cannot take
  the campaign driver down with it;
* **wall-clock timeouts** — a worker that exceeds its per-task budget is
  killed and reaped, and the task surfaces as ``TIMEOUT``;
* **bounded retries** — infrastructure failures (worker death, timeout)
  are re-queued per a :class:`~repro.runtime.retry.RetryPolicy`; semantic
  outcomes are never retried;
* **poison quarantine** — a per-task circuit breaker: a payload whose
  attempts keep killing workers is finalised as ``POISONED`` instead of
  burning its remaining retries (and more workers);
* **worker health** — dead workers are detected both by pipe EOF and by
  a periodic liveness sweep (the ``heartbeat``), and respawned
  automatically mid-campaign;
* **checkpoint/resume** — with a :class:`~repro.runtime.journal.Journal`,
  every final result is durably appended, and a re-run skips tasks the
  journal already holds; a record that cannot be rebuilt is quarantined
  and its task re-run instead of aborting the resume;
* **graceful drain** — the first SIGINT/SIGTERM stops dispatch, lets
  in-flight tasks finish and journal, seals the journal, and raises
  :class:`~repro.runtime.errors.CampaignInterrupted`; a second signal
  aborts immediately;
* **graceful degradation** — a task that exhausts its retries yields a
  failure-labelled :class:`TaskResult` instead of an exception, so one
  broken injection cannot abort a thousand good ones.

``jobs=0`` selects *inline* mode: tasks run in the calling process with
the same taxonomy, retry and journal behaviour but no isolation (and
therefore no timeout enforcement).  Inline mode is the fast default for
small campaigns; process mode additionally parallelises across
``jobs`` workers.

A :class:`~repro.runtime.chaos.ChaosPolicy` (``chaos=``, off by default)
injects faults into the runtime itself — worker crashes and hangs, task
exception storms, corrupted or failing journal writes — which is how
``tests/chaos/`` proves every guarantee above under fire.
"""

from __future__ import annotations

import multiprocessing as mp
import signal
import sys
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as _conn_wait
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from ..obs import ProgressMeter, get_metrics, get_tracer
from .chaos import ChaosPolicy, apply_worker_action
from .errors import (
    CampaignInterrupted,
    ExecutorError,
    JournalRecordError,
    JournalWriteError,
    TaskOutcome,
    classify_exception,
)
from .journal import Journal, PathLike
from .retry import RetryPolicy

__all__ = [
    "Task", "TaskResult", "Executor", "run_tasks", "load_journaled_results",
]

_INFINITY = float("inf")

#: chaos directive kind -> spec point name (for metrics/trace labels)
_CHAOS_POINTS = {
    "crash": "worker_crash",
    "hang": "worker_hang",
    "error": "task_error",
    "slow": "slow_task",
}

#: process-wide flag: the inline-timeout warning fires once, the
#: ``runtime.timeout_unenforced`` counter records every occurrence
_INLINE_TIMEOUT_WARNED = False


def _reset_inline_timeout_warning() -> None:
    """Test hook: re-arm the one-time inline-timeout warning."""
    global _INLINE_TIMEOUT_WARNED
    _INLINE_TIMEOUT_WARNED = False


@dataclass(frozen=True)
class Task:
    """One unit of work: an id (journal key), a payload, and provenance."""

    id: str
    payload: Any = None
    #: JSON-safe provenance (e.g. the injection spec) recorded in the journal
    meta: Optional[dict] = None


@dataclass
class TaskResult:
    """Final, post-retry result of one task."""

    task_id: str
    outcome: str
    value: Any = None
    error: str = ""
    attempts: int = 1
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome == TaskOutcome.OK

    def to_record(self, meta: Optional[dict] = None) -> dict:
        rec = {
            "task": self.task_id,
            "outcome": self.outcome,
            "value": self.value,
            "error": self.error,
            "attempts": self.attempts,
            "duration": round(self.duration, 6),
        }
        if meta:
            rec["meta"] = meta
        return rec

    @classmethod
    def from_record(cls, rec: dict) -> "TaskResult":
        """Rebuild a result from a journaled record.

        Malformed records raise :class:`JournalRecordError` (never a bare
        ``KeyError``/``ValueError``/``TypeError``), so resume paths can
        quarantine the record and re-run its task instead of aborting.
        """
        try:
            task_id = rec["task"]
            outcome = rec["outcome"]
            if not isinstance(task_id, str):
                raise ValueError("task id must be a string")
            if not isinstance(outcome, str):
                raise ValueError("outcome must be a string")
            return cls(
                task_id=task_id,
                outcome=outcome,
                value=rec.get("value"),
                error=rec.get("error", ""),
                attempts=int(rec.get("attempts", 1)),
                duration=float(rec.get("duration", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalRecordError(rec, exc) from exc


def _worker_main(conn: Connection, fn, initializer, initargs) -> None:
    """Worker process loop: init once, then evaluate tasks until EOF.

    Each task message is ``(payload, chaos_action)``; the chaos action is
    ``None`` in normal operation and a directive from the parent's
    :class:`ChaosPolicy` when the runtime is testing itself.
    """
    try:
        if initializer is not None:
            initializer(*initargs)
    except BaseException as exc:  # report init failure, don't hang the parent
        _safe_send(conn, ("init_error", f"{type(exc).__name__}: {exc}"))
        return
    _safe_send(conn, ("ready", None))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        payload, chaos_action = msg
        try:
            apply_worker_action(chaos_action)
            value = fn(payload)
        except Exception as exc:
            _safe_send(
                conn,
                (classify_exception(exc), f"{type(exc).__name__}: {exc}"),
            )
        else:
            _safe_send(conn, (TaskOutcome.OK, value))


def _safe_send(conn: Connection, msg) -> None:
    try:
        conn.send(msg)
    except (BrokenPipeError, OSError):
        pass


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("proc", "conn", "state", "task", "attempt", "start",
                 "deadline", "prior_duration")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.state = "starting"  # starting | idle | busy
        self.task: Optional[Task] = None
        self.attempt = 0
        self.start = 0.0
        self.deadline = _INFINITY
        self.prior_duration = 0.0


@dataclass
class _Pending:
    """A task awaiting (re-)execution."""

    task: Task
    attempt: int = 1
    not_before: float = 0.0
    duration: float = 0.0  # accumulated across failed attempts


def load_journaled_results(
    journal: Optional[Journal], tasks: List[Task]
) -> "tuple[Dict[str, TaskResult], List[Task]]":
    """Split ``tasks`` into (journaled results, still-pending tasks).

    This is the resume semantics shared by the local :class:`Executor`
    and the distributed fabric coordinator: a journaled record is
    returned as-is (never re-executed), a record that cannot be rebuilt
    is quarantined and its task re-run, and the ``runtime.tasks_resumed``
    counter records how much work the journal already covered.
    """
    results: Dict[str, TaskResult] = {}
    pending: List[Task] = []
    journaled = journal.load() if journal else {}
    for t in tasks:
        rec = journaled.get(t.id)
        if rec is None:
            pending.append(t)
            continue
        try:
            results[t.id] = TaskResult.from_record(rec)
        except JournalRecordError:
            journal.quarantine_record(rec, "bad_record")
            warnings.warn(
                f"journal record for task {t.id!r} is unusable; "
                "quarantined and re-running the task",
                stacklevel=2,
            )
            pending.append(t)
    if results:
        # Resumed-from-journal work is visible to the caller (e.g. the
        # CLI's "resumed N completed tasks" notice) via this counter.
        get_metrics().counter("runtime.tasks_resumed").inc(len(results))
    return results, pending


class Executor:
    """Runs tasks through isolated workers (or inline) with retries,
    timeouts and journaling.  See the module docstring for semantics."""

    def __init__(
        self,
        fn: Optional[Callable[[Any], Any]] = None,
        *,
        jobs: int = 0,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        journal: Optional[Union[Journal, PathLike]] = None,
        initializer: Optional[Callable[..., None]] = None,
        initargs: tuple = (),
        mp_context: str = "spawn",
        progress: Union[bool, str] = False,
        chaos: Optional[ChaosPolicy] = None,
        heartbeat: float = 5.0,
        drain_signals: bool = True,
    ) -> None:
        if jobs < 0:
            raise ValueError("jobs must be >= 0 (0 = inline)")
        if heartbeat <= 0:
            raise ValueError("heartbeat must be > 0 seconds")
        self.fn = fn
        self.jobs = jobs
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self.journal = (
            journal if isinstance(journal, Journal) or journal is None
            else Journal(journal, chaos=chaos)
        )
        if self.journal is not None and chaos is not None:
            self.journal.chaos = chaos
        self.initializer = initializer
        self.initargs = initargs
        self.mp_context = mp_context
        #: False = silent; True or a label string = periodic progress
        #: snapshot lines (with ETA) on stderr while tasks run
        self.progress = progress
        #: dev-only runtime self-fault-injection (None = off)
        self.chaos = chaos
        #: seconds between worker liveness sweeps (process mode)
        self.heartbeat = heartbeat
        #: install SIGINT/SIGTERM drain handlers around :meth:`run`
        #: (main thread only; a second signal aborts immediately)
        self.drain_signals = drain_signals
        self._meter: Optional[ProgressMeter] = None
        self._draining = False
        #: per-task count of attempts that killed their worker (breaker)
        self._worker_kills: Dict[str, int] = {}
        if timeout is not None and jobs == 0:
            get_metrics().counter("runtime.timeout_unenforced").inc()
            global _INLINE_TIMEOUT_WARNED
            if not _INLINE_TIMEOUT_WARNED:
                _INLINE_TIMEOUT_WARNED = True
                warnings.warn(
                    "timeout requires process isolation (jobs >= 1); "
                    "inline tasks will not be interrupted",
                    stacklevel=2,
                )

    @property
    def inline(self) -> bool:
        return self.jobs == 0

    # -- public API ---------------------------------------------------------

    def run(
        self,
        tasks: Iterable[Task],
        fn: Optional[Callable[[Any], Any]] = None,
    ) -> Dict[str, TaskResult]:
        """Execute ``tasks``, returning final results keyed by task id.

        Tasks already present in the journal are *not* re-executed; their
        journaled results are returned as-is, which is what makes a killed
        campaign resumable and deterministic.  A journaled record that
        cannot be rebuilt (hand-edited, wrong types) is quarantined and
        its task re-run.  A SIGINT/SIGTERM during the run drains in-flight
        work, seals the journal and raises :class:`CampaignInterrupted`.
        """
        fn = fn or self.fn
        if fn is None:
            raise ValueError("no task function: pass fn to Executor or run()")
        tasks = list(tasks)
        ids = [t.id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate task ids")
        results, pending = load_journaled_results(self.journal, tasks)
        self._draining = False
        self._worker_kills = {}
        saved_handlers = self._install_signal_handlers()
        try:
            if pending:
                self._meter = None
                if self.progress:
                    label = (
                        self.progress if isinstance(self.progress, str)
                        else "tasks"
                    )
                    self._meter = ProgressMeter(len(pending), label)
                try:
                    if self.inline:
                        self._run_inline(fn, pending, results)
                    else:
                        self._run_isolated(fn, pending, results)
                finally:
                    if self._meter is not None:
                        self._meter.finish()
                        self._meter = None
            if self._draining:
                missing = [t for t in tasks if t.id not in results]
                if missing:
                    if self.journal is not None:
                        self.journal.close()  # seal: every record is durable
                    get_metrics().counter("runtime.drains").inc()
                    raise CampaignInterrupted(
                        len(results), len(tasks),
                        self.journal.path if self.journal else None,
                    )
        finally:
            self._restore_signal_handlers(saved_handlers)
        return results

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- signal drain -------------------------------------------------------

    def _install_signal_handlers(self):
        if not self.drain_signals:
            return None
        if threading.current_thread() is not threading.main_thread():
            return None
        saved = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                saved[sig] = signal.signal(sig, self._on_signal)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
        return saved

    @staticmethod
    def _restore_signal_handlers(saved) -> None:
        if not saved:
            return
        for sig, handler in saved.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _on_signal(self, signum, frame) -> None:
        if self._draining:
            raise KeyboardInterrupt  # second signal: abort immediately
        self._draining = True
        print(
            "\nsignal received: draining — letting in-flight tasks finish "
            "and sealing the journal (signal again to abort)",
            file=sys.stderr,
        )

    # -- shared -------------------------------------------------------------

    def _finalize(
        self, task: Task, result: TaskResult, results: Dict[str, TaskResult]
    ) -> None:
        results[task.id] = result
        if self.journal is not None:
            try:
                self.journal.append(result.to_record(task.meta))
            except JournalWriteError as exc:
                # The checkpoint chain is broken: abort rather than keep
                # computing results that would be lost on the next kill.
                # Everything already journaled is durable, so a resume
                # with the same journal loses only this task.
                raise ExecutorError(
                    "journal append failed; campaign aborted so completed "
                    f"work stays resumable: {exc}"
                ) from exc
        mx = get_metrics()
        if mx:
            mx.counter("runtime.tasks_completed").inc()
            mx.counter(f"runtime.outcome.{result.outcome}").inc()
            mx.histogram("runtime.task_seconds").observe(result.duration)
        get_tracer().add_event(
            "task", result.duration,
            id=task.id, outcome=result.outcome, attempts=result.attempts,
        )
        if self._meter is not None:
            self._meter.advance()

    def _chaos_action(self, task_id: str, attempt: int):
        """The chaos directive (if any) for one attempt, with telemetry.

        Inline mode cannot survive a crash or hang of itself, so those
        directives only apply under process isolation; the chaos suite
        kills inline drivers externally instead.
        """
        if self.chaos is None:
            return None
        action = self.chaos.task_action(task_id, attempt)
        if self.inline and action is not None and action[0] in (
            "crash", "hang"
        ):
            action = None
        if action is not None:
            point = _CHAOS_POINTS[action[0]]
            get_metrics().counter(f"chaos.{point}").inc()
            get_tracer().add_event(
                "chaos", 0.0, point=point, id=task_id, attempt=attempt,
            )
        return action

    # -- inline mode --------------------------------------------------------

    def _run_inline(
        self, fn, pending: List[Task], results: Dict[str, TaskResult]
    ) -> None:
        if self.initializer is not None:
            self.initializer(*self.initargs)
        for task in pending:
            if self._draining:
                return
            attempt = 0
            total = 0.0
            while True:
                attempt += 1
                action = self._chaos_action(task.id, attempt)
                t0 = time.monotonic()
                try:
                    apply_worker_action(action)
                    value = fn(task.payload)
                    outcome, error = TaskOutcome.OK, ""
                except Exception as exc:
                    value = None
                    outcome = classify_exception(exc)
                    error = f"{type(exc).__name__}: {exc}"
                total += time.monotonic() - t0
                if not self.retry.should_retry(outcome, attempt):
                    self._finalize(
                        task,
                        TaskResult(task.id, outcome, value, error,
                                   attempts=attempt, duration=total),
                        results,
                    )
                    break
                get_metrics().counter("runtime.retries").inc()
                time.sleep(self.retry.delay(task.id, attempt))

    # -- process mode -------------------------------------------------------

    def _run_isolated(
        self, fn, pending: List[Task], results: Dict[str, TaskResult]
    ) -> None:
        ctx = mp.get_context(self.mp_context)
        queue: deque = deque(_Pending(t) for t in pending)
        n_workers = min(self.jobs, len(pending))
        workers = [self._spawn(ctx, fn) for _ in range(n_workers)]
        n_done = 0
        total = len(pending)
        try:
            while n_done < total:
                now = time.monotonic()
                if not self._draining:
                    self._dispatch(queue, workers, ctx, fn, now)
                self._pump(queue, workers, results, ctx, fn)
                n_done = len([t for t in pending if t.id in results])
                if self._draining and not any(
                    w.state == "busy" for w in workers
                ):
                    return  # drained: run() raises CampaignInterrupted
        finally:
            self._shutdown(workers)

    def _spawn(self, ctx, fn) -> _Worker:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, fn, self.initializer, self.initargs),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def _respawn(self, ctx, fn) -> _Worker:
        """Replace a dead worker mid-campaign (counted, no operator action)."""
        get_metrics().counter("runtime.workers_respawned").inc()
        return self._spawn(ctx, fn)

    def _dispatch(self, queue, workers, ctx, fn, now) -> None:
        """Hand runnable tasks to idle workers."""
        for i, w in enumerate(workers):
            if w.state != "idle" or not queue:
                continue
            entry = self._pop_runnable(queue, now)
            if entry is None:
                break
            action = self._chaos_action(entry.task.id, entry.attempt)
            try:
                w.conn.send((entry.task.payload, action))
            except (BrokenPipeError, OSError):
                # Worker silently died while idle: replace it, requeue.
                self._reap(w)
                workers[i] = self._respawn(ctx, fn)
                queue.appendleft(entry)
                continue
            w.state = "busy"
            w.task = entry.task
            w.attempt = entry.attempt
            w.start = now
            w.deadline = (
                now + self.timeout if self.timeout is not None else _INFINITY
            )
            w.prior_duration = entry.duration

    @staticmethod
    def _pop_runnable(queue: deque, now: float) -> Optional[_Pending]:
        for _ in range(len(queue)):
            entry = queue.popleft()
            if entry.not_before <= now:
                return entry
            queue.append(entry)
        return None

    def _pump(self, queue, workers, results, ctx, fn) -> None:
        """Wait for worker messages / deadlines and process them."""
        now = time.monotonic()
        wake_times = [
            w.deadline for w in workers
            if w.state == "busy" and w.deadline != _INFINITY
        ]
        wake_times += [e.not_before for e in queue if e.not_before > now]
        conns = [w.conn for w in workers if w.state in ("starting", "busy")]
        timeout = self.heartbeat
        if wake_times:
            timeout = min(timeout, max(0.0, min(wake_times) - now))
        if conns:
            ready = _conn_wait(conns, timeout=timeout)
        else:
            time.sleep(min(timeout, 0.05))
            ready = []
        for conn in ready:
            w = next(w for w in workers if w.conn is conn)
            self._handle_message(w, workers, queue, results, ctx, fn)
        # Enforce wall-clock deadlines.
        now = time.monotonic()
        for i, w in enumerate(workers):
            if w.state == "busy" and now >= w.deadline:
                task, attempt = w.task, w.attempt
                duration = now - w.start + w.prior_duration
                self._reap(w)
                workers[i] = self._respawn(ctx, fn)
                self._settle_failure(
                    task, attempt, TaskOutcome.TIMEOUT,
                    f"killed after {self.timeout:.3f}s wall-clock",
                    duration, queue, results,
                )
        # Heartbeat: catch workers that died without delivering pipe EOF
        # (fd leaked to a grandchild, exotic kills) and respawn them.
        self._sweep_dead_workers(workers, queue, results, ctx, fn)

    def _handle_message(self, w, workers, queue, results, ctx, fn) -> None:
        """Receive and act on one worker message (or its EOF)."""
        try:
            kind, data = w.conn.recv()
        except (EOFError, OSError):
            self._on_worker_exit(w, workers, queue, results, ctx, fn)
            return
        if kind == "ready":
            w.state = "idle"
        elif kind == "init_error":
            self._shutdown(workers)
            raise ExecutorError(f"worker initialisation failed: {data}")
        else:
            self._on_attempt_done(w, kind, data, queue, results)

    def _sweep_dead_workers(self, workers, queue, results, ctx, fn) -> None:
        """Liveness sweep: handle workers whose process is gone.

        A worker that died after sending its last message still has that
        message buffered (``poll()`` is true) — drain it through the
        normal path, which then observes the EOF on the next sweep.
        """
        for w in list(workers):
            if w not in workers or w.proc.is_alive():
                continue
            if w.conn.poll():
                self._handle_message(w, workers, queue, results, ctx, fn)
            else:
                self._on_worker_exit(w, workers, queue, results, ctx, fn)

    def _on_worker_exit(self, w, workers, queue, results, ctx, fn) -> None:
        """The worker's pipe broke: it died (segfault, OOM-kill, exit)."""
        task, attempt, start = w.task, w.attempt, w.start
        state = w.state
        self._reap(w)
        idx = workers.index(w)
        if state == "starting":
            self._shutdown(workers)
            raise ExecutorError(
                "worker died during initialisation "
                f"(exit code {w.proc.exitcode})"
            )
        workers[idx] = self._respawn(ctx, fn)
        if state == "busy" and task is not None:
            duration = (
                time.monotonic() - start + w.prior_duration
            )
            self._settle_failure(
                task, attempt, TaskOutcome.WORKER_DIED,
                f"worker exited with code {w.proc.exitcode}",
                duration, queue, results,
            )

    def _on_attempt_done(self, w, outcome, data, queue, results) -> None:
        task, attempt = w.task, w.attempt
        duration = (
            time.monotonic() - w.start + w.prior_duration
        )
        w.state = "idle"
        w.task = None
        if outcome == TaskOutcome.OK:
            self._finalize(
                task,
                TaskResult(task.id, outcome, data, attempts=attempt,
                           duration=duration),
                results,
            )
        else:
            self._settle_failure(
                task, attempt, outcome, data, duration, queue, results
            )

    def _settle_failure(
        self, task, attempt, outcome, error, duration, queue, results
    ) -> None:
        """Retry an attempt failure if policy allows, else finalise it.

        Worker-killing outcomes feed the per-task circuit breaker: a task
        that keeps destroying workers is quarantined as ``POISONED``
        before it can exhaust its retry budget on further carnage.
        """
        mx = get_metrics()
        if outcome in (TaskOutcome.TIMEOUT, TaskOutcome.WORKER_DIED):
            if mx:
                if outcome == TaskOutcome.TIMEOUT:
                    mx.counter("runtime.timeouts").inc()
                else:
                    mx.counter("runtime.worker_deaths").inc()
            kills = self._worker_kills.get(task.id, 0) + 1
            self._worker_kills[task.id] = kills
            if self.retry.is_poisoned(kills):
                if mx:
                    mx.counter("runtime.tasks_poisoned").inc()
                    mx.gauge("runtime.breaker_tripped").set(
                        sum(
                            1 for k in self._worker_kills.values()
                            if self.retry.is_poisoned(k)
                        )
                    )
                get_tracer().add_event(
                    "poisoned", duration, id=task.id, kills=kills,
                )
                self._finalize(
                    task,
                    TaskResult(
                        task.id, TaskOutcome.POISONED, None,
                        f"quarantined after killing {kills} workers "
                        f"(breaker threshold "
                        f"{self.retry.poison_threshold}); last: {error}",
                        attempts=attempt, duration=duration,
                    ),
                    results,
                )
                return
        if self.retry.should_retry(outcome, attempt):
            if mx:
                mx.counter("runtime.retries").inc()
            queue.append(
                _Pending(
                    task,
                    attempt=attempt + 1,
                    not_before=(
                        time.monotonic() + self.retry.delay(task.id, attempt)
                    ),
                    duration=duration,
                )
            )
        else:
            self._finalize(
                task,
                TaskResult(task.id, outcome, None, error,
                           attempts=attempt, duration=duration),
                results,
            )

    def _reap(self, w: _Worker) -> None:
        try:
            w.conn.close()
        except OSError:
            pass
        if w.proc.is_alive():
            w.proc.kill()
        w.proc.join(5)

    def _shutdown(self, workers: List[_Worker]) -> None:
        for w in workers:
            _safe_send(w.conn, None)
        deadline = time.monotonic() + 2.0
        for w in workers:
            w.proc.join(max(0.0, deadline - time.monotonic()))
            self._reap(w)


def run_tasks(
    fn: Callable[[Any], Any], tasks: Iterable[Task], **options
) -> Dict[str, TaskResult]:
    """One-shot convenience wrapper: build an Executor, run, close."""
    with Executor(fn, **options) as ex:
        return ex.run(tasks)
