"""Command-line entry point: ``python -m repro.staticcheck`` / ``repro lint``.

Exit codes::

    0   clean (no findings, or all findings baselined and no stale cells)
    1   violations: new findings and/or stale baseline entries
    2   usage / IO error (bad baseline file, unreadable path)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import baseline as baseline_mod
from .engine import run
from .registry import rule_classes
from .reporters import render_json, render_text

__all__ = ["main", "build_parser", "lint_command", "add_lint_arguments"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.staticcheck",
        description=(
            "AST-based invariant linter for the repro codebase: "
            "determinism, numpy kernel hygiene, fork/atomic-IO safety, "
            "obs discipline."
        ),
    )
    add_lint_arguments(parser)
    return parser


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint flags (shared with the ``repro lint`` subcommand)."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="compare findings against a ratcheting baseline file",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline to match current findings and exit 0",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the report to FILE (atomically) instead of stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def _list_rules() -> str:
    lines: List[str] = []
    for cls in rule_classes().values():
        scope = cls.scope or "all"
        lines.append(f"{cls.code}  {cls.slug}  [{cls.family}, scope={scope}]")
        lines.append(f"      {cls.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    return lint_command(parser.parse_args(argv))


def lint_command(args: argparse.Namespace) -> int:
    """Shared implementation behind ``repro lint`` and ``python -m``.

    ``args`` needs: paths, format, baseline, update_baseline, output,
    list_rules.
    """
    if args.list_rules:
        print(_list_rules())
        return 0

    if args.update_baseline and not args.baseline:
        print(
            "repro.staticcheck: --update-baseline requires --baseline",
            file=sys.stderr,
        )
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro.staticcheck: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    result = run(paths)

    comparison = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if args.update_baseline:
            from ..ioutil import atomic_write

            content = baseline_mod.dump(
                baseline_mod.counts_for(result.findings)
            )
            atomic_write(baseline_path, content)
            print(
                f"baseline updated: {baseline_path} "
                f"({len(result.findings)} findings across "
                f"{len(baseline_mod.counts_for(result.findings))} cells)"
            )
            return 0
        try:
            known = baseline_mod.load(baseline_path)
        except (ValueError, KeyError, TypeError) as exc:
            print(f"repro.staticcheck: bad baseline: {exc}", file=sys.stderr)
            return 2
        comparison = baseline_mod.compare(result.findings, known)

    render = render_json if args.format == "json" else render_text
    report = render(result, comparison)

    if args.output:
        from ..ioutil import atomic_write

        atomic_write(Path(args.output), report)
    else:
        print(report)

    if comparison is not None:
        return 0 if comparison.clean else 1
    return 0 if not result.findings else 1
