"""F302 fixture: truncating writes, two naive and one blessed."""

import json
import os
from pathlib import Path


def naive_snapshot(path, payload):
    Path(path).write_text(json.dumps(payload))


def naive_open(path, payload):
    with open(path, "w") as fh:
        json.dump(payload, fh)


def blessed_snapshot(path, payload):
    tmp = str(path) + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
