"""Unit tests for fault-rate tables and SER aggregation."""

import pytest

from repro.core.ser import (
    TABLE_I,
    TABLE_III,
    StructureSer,
    chip_ser,
    fault_mode_fractions,
    soft_error_rate,
)


class TestTableI:
    def test_nodes_present(self):
        assert set(TABLE_I) == {180, 130, 90, 65, 45, 32, 22}

    def test_paper_anchor_180nm(self):
        # Intro: 0.5% of SRAM faults are multi-bit at 180nm.
        assert sum(TABLE_I[180].values()) == pytest.approx(0.5)

    def test_paper_anchor_22nm(self):
        # Intro/Table I: 3.9% of all faults are multi-bit at 22nm.
        assert sum(TABLE_I[22].values()) == pytest.approx(3.9)

    def test_rate_grows_with_scaling(self):
        totals = [sum(TABLE_I[n].values()) for n in sorted(TABLE_I, reverse=True)]
        assert totals == sorted(totals)

    def test_width_increases_with_scaling(self):
        max_widths = [max(TABLE_I[n]) for n in sorted(TABLE_I, reverse=True)]
        assert max_widths == sorted(max_widths)

    def test_two_bit_dominates(self):
        for node, widths in TABLE_I.items():
            assert max(widths, key=widths.get) == 2


class TestTableIII:
    def test_sums_to_100(self):
        assert sum(TABLE_III.values()) == pytest.approx(100.0)

    def test_single_bit_share(self):
        assert TABLE_III["1x1"] == pytest.approx(96.1)

    def test_all_modes_present(self):
        assert set(TABLE_III) == {f"{m}x1" for m in range(1, 9)}


class TestFaultModeFractions:
    def test_sums_to_one(self):
        for node in TABLE_I:
            assert sum(fault_mode_fractions(node).values()) == pytest.approx(1.0)

    def test_folding_beyond_max_width(self):
        fr = fault_mode_fractions(22, max_width=8)
        # The 9+-bit share folds into 8x1.
        assert fr["8x1"] == pytest.approx((0.1 + 0.1) / 100.0)

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            fault_mode_fractions(14)


class TestSoftErrorRate:
    def test_weighted_sum(self):
        fit = {"1x1": 90.0, "2x1": 10.0}
        avf = {"1x1": (0.1, 0.2), "2x1": (0.3, 0.4)}
        ser = soft_error_rate(fit, avf, "L1")
        assert ser.due_fit == pytest.approx(90 * 0.1 + 10 * 0.3)
        assert ser.sdc_fit == pytest.approx(90 * 0.2 + 10 * 0.4)
        assert ser.total_fit == pytest.approx(ser.due_fit + ser.sdc_fit)
        assert ser.structure == "L1"

    def test_mode_mismatch_rejected(self):
        with pytest.raises(ValueError):
            soft_error_rate({"1x1": 1.0}, {"2x1": (0.0, 0.0)})

    def test_chip_aggregation(self):
        total = chip_ser(
            [StructureSer("a", 1.0, 2.0), StructureSer("b", 3.0, 4.0)]
        )
        assert total.due_fit == 4.0
        assert total.sdc_fit == 6.0
        assert total.structure == "chip"
