"""Idempotent ingest: fold computed artifacts into the results store.

Accepted producers:

* **Campaign/sweep journals** (:class:`~repro.runtime.Journal` files,
  including the canonical journal a fabric coordinator commits after
  merging node shards) — each record is classified by shape: sweep/grid
  cells carry :class:`~repro.core.sweep.SweepPoint` dicts and become
  ``avf_results`` rows; injection records (spec metadata or
  ``<bench>/single|multi/...`` task ids) become ``injections`` rows
  keyed by journal record identity ``(source, task)``.
* **Engine outputs** — :class:`~repro.core.avf.MbAvfResult` batches from
  :meth:`~repro.core.avf.compute_mb_avf_batch` (or the single-result
  API), plus :class:`~repro.core.sweep.SweepPoint` lists.
* **Campaign summaries** — :class:`BenchmarkCampaign` records.

Every function returns ``(ingested, deduped)``-style counts and is a
verified no-op on re-ingest: keys are canonical configuration tuples or
journal record identity, and the store writes with ``INSERT OR
IGNORE``.  The whole batch lands in one transaction.
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Union,
)

from ..obs import get_tracer
from .db import PathLike, ResultStore, engine_version

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime import Journal as _Journal

__all__ = [
    "ingest_results",
    "ingest_sweep_points",
    "ingest_campaign",
    "ingest_journal",
]

#: keys identifying a journaled value as a SweepPoint dict
_POINT_KEYS = frozenset(
    (
        "structure", "mode", "scheme", "style", "factor",
        "due_avf", "sdc_avf", "true_due_avf", "false_due_avf",
    )
)

#: keys identifying a journal meta block as an InjectionSpec
_SPEC_KEYS = frozenset(("wf", "reg", "lane", "bits", "cycle"))

#: runtime outcomes that still carry an injection verdict
_OUTCOME_VERDICTS = {"sim_crash": "crash", "sim_hang": "hang"}


def _point_to_row(
    point: Mapping[str, Any],
    *,
    workload: str,
    seed: int,
    ser_model: str,
    source: Optional[str],
) -> Dict[str, Any]:
    return {
        "workload": workload,
        "structure": str(point["structure"]),
        "scheme": str(point["scheme"]),
        "style": str(point["style"]),
        "factor": int(point["factor"]),
        "mode": str(point["mode"]),
        "ser_model": ser_model,
        "seed": int(seed),
        "engine_version": engine_version(),
        "due_avf": float(point["due_avf"]),
        "sdc_avf": float(point["sdc_avf"]),
        "true_due_avf": float(point["true_due_avf"]),
        "false_due_avf": float(point["false_due_avf"]),
        "total_avf": float(point["due_avf"]) + float(point["sdc_avf"]),
        "n_groups": point.get("n_groups"),
        "window_cycles": point.get("window_cycles"),
        "source": source,
    }


def ingest_sweep_points(
    store: ResultStore,
    points: Iterable[Any],
    *,
    workload: str,
    seed: int = 0,
    ser_model: str = "none",
    source: Optional[str] = None,
) -> Dict[str, int]:
    """Fold :class:`~repro.core.sweep.SweepPoint` records (or their dict
    form) into ``avf_results`` under one workload."""
    from dataclasses import asdict, is_dataclass

    rows = []
    for p in points:
        data = asdict(p) if is_dataclass(p) else dict(p)
        rows.append(
            _point_to_row(
                data, workload=workload, seed=seed,
                ser_model=ser_model, source=source,
            )
        )
    with get_tracer().span(
        "ingest", kind="sweep_points", workload=workload, rows=len(rows),
    ) as span:
        ingested, deduped = store.put_avf_rows(rows)
        span.set(ingested=ingested, deduped=deduped)
    return {"rows": len(rows), "ingested": ingested, "deduped": deduped}


def ingest_results(
    store: ResultStore,
    results: Iterable[Any],
    *,
    workload: str,
    style: str = "none",
    factor: int = 1,
    seed: int = 0,
    ser_model: str = "none",
    source: Optional[str] = None,
) -> Dict[str, int]:
    """Fold :class:`~repro.core.avf.MbAvfResult` objects — one measurement
    or a whole :meth:`compute_mb_avf_batch` output — into the store.

    ``style``/``factor`` name the physical layout the batch was measured
    under (a batch shares one layout; results do not carry it).
    """
    rows = []
    for res in results:
        rows.append(
            {
                "workload": workload,
                "structure": str(res.structure),
                "scheme": str(res.scheme),
                "style": style,
                "factor": int(factor),
                "mode": res.mode.name,
                "ser_model": ser_model,
                "seed": int(seed),
                "engine_version": engine_version(),
                "due_avf": float(res.due_avf),
                "sdc_avf": float(res.sdc_avf),
                "true_due_avf": float(res.true_due_avf),
                "false_due_avf": float(res.false_due_avf),
                "total_avf": float(res.total_avf),
                "n_groups": int(res.n_groups),
                "window_cycles": int(res.window_cycles),
                "source": source,
            }
        )
    with get_tracer().span(
        "ingest", kind="results", workload=workload, rows=len(rows),
    ) as span:
        ingested, deduped = store.put_avf_rows(rows)
        span.set(ingested=ingested, deduped=deduped)
    return {"rows": len(rows), "ingested": ingested, "deduped": deduped}


def ingest_campaign(
    store: ResultStore,
    campaign: Any,
    *,
    seed: int = 0,
    n_cus: int = 2,
) -> Dict[str, int]:
    """Fold one :class:`~repro.faultinject.campaign.BenchmarkCampaign`
    summary into the ``campaigns`` table."""
    with get_tracer().span(
        "ingest", kind="campaign", benchmark=campaign.benchmark,
    ) as span:
        ingested, deduped = store.put_campaign(
            campaign, seed=seed, n_cus=n_cus
        )
        span.set(ingested=ingested, deduped=deduped)
    return {"rows": 1, "ingested": ingested, "deduped": deduped}


def _classify(rec: Mapping[str, Any]) -> str:
    value = rec.get("value")
    if isinstance(value, dict) and _POINT_KEYS <= set(value):
        return "point"
    if (
        isinstance(value, list) and value
        and all(
            isinstance(v, dict) and _POINT_KEYS <= set(v) for v in value
        )
    ):
        return "points"
    meta = rec.get("meta")
    if isinstance(meta, dict) and _SPEC_KEYS <= set(meta):
        return "injection"
    task = str(rec.get("task", ""))
    if "/single/" in task or "/multi/" in task:
        return "injection"
    return "skip"


def _avf_workload(
    rec: Mapping[str, Any], fallback: Optional[str]
) -> str:
    meta = rec.get("meta")
    if isinstance(meta, dict):
        for key in ("benchmark", "workload"):
            name = meta.get(key)
            if isinstance(name, str) and name:
                return name
    return fallback or "unknown"


def _injection_row(
    rec: Mapping[str, Any], source: str
) -> Dict[str, Any]:
    task = str(rec.get("task", ""))
    outcome = str(rec.get("outcome", ""))
    value = rec.get("value")
    verdict = value if isinstance(value, str) else None
    if verdict is None:
        verdict = _OUTCOME_VERDICTS.get(outcome)
    meta = rec.get("meta") if isinstance(rec.get("meta"), dict) else {}
    return {
        "source": source,
        "task": task,
        "benchmark": task.partition("/")[0] or "unknown",
        "outcome": outcome,
        "verdict": verdict,
        "attempts": int(rec.get("attempts", 1) or 1),
        "duration": float(rec.get("duration", 0.0) or 0.0),
        "node": rec.get("node"),
        "wf": meta.get("wf"),
        "reg": meta.get("reg"),
        "lane": meta.get("lane"),
        "cycle": meta.get("cycle"),
        "bits": meta.get("bits"),
    }


def ingest_journal(
    store: ResultStore,
    journal: Union["_Journal", PathLike],
    *,
    source: Optional[str] = None,
    workload: Optional[str] = None,
    seed: int = 0,
) -> Dict[str, int]:
    """Fold every classifiable record of a journal into the store.

    ``journal`` is a :class:`~repro.runtime.Journal` or a path to one —
    including the canonical journal produced by a fabric commit (merged
    node shards) and journals produced by plain local campaigns; the
    merge has already deduplicated by task id, and this ingest is keyed
    by ``(source, task)`` / the canonical AVF tuple, so re-ingesting any
    of them is a no-op.

    ``source`` labels injection provenance (default: the journal's
    resolved path).  ``workload`` backs up sweep records whose journal
    metadata does not name their benchmark.  Returns classification and
    ingest counts.
    """
    from ..runtime import Journal

    if not isinstance(journal, Journal):
        journal = Journal(journal)
    label = source if source is not None else str(
        Path(journal.path).resolve()
    )
    records = journal.load()
    avf_rows: List[Dict[str, Any]] = []
    injection_rows: List[Dict[str, Any]] = []
    skipped = 0
    ok = "ok"
    for task_id in sorted(records):
        rec = records[task_id]
        kind = _classify(rec)
        if kind == "point" and rec.get("outcome") == ok:
            avf_rows.append(
                _point_to_row(
                    rec["value"],
                    workload=_avf_workload(rec, workload),
                    seed=seed, ser_model="none", source=label,
                )
            )
        elif kind == "points" and rec.get("outcome") == ok:
            name = _avf_workload(rec, workload)
            for point in rec["value"]:
                avf_rows.append(
                    _point_to_row(
                        point, workload=name, seed=seed,
                        ser_model="none", source=label,
                    )
                )
        elif kind == "injection":
            injection_rows.append(_injection_row(rec, label))
        else:
            skipped += 1
    with get_tracer().span(
        "ingest", kind="journal", source=label, records=len(records),
    ) as span:
        a_new, a_dup = store.put_avf_rows(avf_rows)
        i_new, i_dup = store.put_injection_rows(injection_rows)
        span.set(ingested=a_new + i_new, deduped=a_dup + i_dup)
    return {
        "records": len(records),
        "avf_rows": len(avf_rows),
        "injections": len(injection_rows),
        "skipped": skipped,
        "ingested": a_new + i_new,
        "deduped": a_dup + i_dup,
    }
