"""Figure 6: effect of fault-mode size on DUE MB-AVF (x4 way-physical).

Shape targets (Sec. VI-C): (a) with parity, MB-AVF grows with fault-mode
size — a larger group is more likely to contain an ACE bit; (b) Mx1 with
SEC-DED behaves like (M/I)x1 with parity, because an Mx1 fault leaves
ceil(M/I) bits per ECC word: with x4 interleaving the 8x1 SEC-DED MB-AVF
tracks the 2x1 parity MB-AVF.
"""

import numpy as np
import pytest

from repro.core import FaultMode, Interleaving, Parity, SecDed
from repro.workloads.suite import EVALUATION_SET

PARITY_MODES = (2, 3, 4, 6, 8)
SECDED_MODES = (5, 6, 7, 8)


def _measure(study_of):
    out = {}
    for wl in EVALUATION_SET:
        study = study_of(wl)
        sb = study.cache_avf("l1", FaultMode.linear(1), Parity()).due_avf
        par = {
            m: study.cache_avf(
                "l1", FaultMode.linear(m), Parity(),
                style=Interleaving.WAY_PHYSICAL, factor=4,
            ).due_avf
            for m in PARITY_MODES
        }
        sec = {
            m: study.cache_avf(
                "l1", FaultMode.linear(m), SecDed(),
                style=Interleaving.WAY_PHYSICAL, factor=4,
            ).due_avf
            for m in SECDED_MODES
        }
        out[wl] = (sb, par, sec)
    return out


@pytest.mark.benchmark(group="figure6")
def test_figure6_fault_modes(benchmark, study_of, report):
    rows = benchmark.pedantic(_measure, args=(study_of,), rounds=1, iterations=1)
    lines = [
        f"{'workload':<14} {'SB':>8} | parity "
        + " ".join(f"{m}x1".rjust(7) for m in PARITY_MODES)
        + " | secded "
        + " ".join(f"{m}x1".rjust(7) for m in SECDED_MODES)
    ]
    for wl, (sb, par, sec) in rows.items():
        lines.append(
            f"{wl:<14} {sb:8.4f} |        "
            + " ".join(f"{par[m]:7.4f}" for m in PARITY_MODES)
            + " |        "
            + " ".join(f"{sec[m]:7.4f}" for m in SECDED_MODES)
        )
    active = {wl: v for wl, v in rows.items() if v[0] > 1e-4}
    mean_par = {m: np.mean([v[1][m] for v in active.values()]) for m in PARITY_MODES}
    mean_sec = {m: np.mean([v[2][m] for v in active.values()]) for m in SECDED_MODES}
    mean_sb = np.mean([v[0] for v in active.values()])
    lines.append(
        f"{'mean':<14} {mean_sb:8.4f} |        "
        + " ".join(f"{mean_par[m]:7.4f}" for m in PARITY_MODES)
        + " |        "
        + " ".join(f"{mean_sec[m]:7.4f}" for m in SECDED_MODES)
    )
    ratio_4x1 = mean_par[4] / mean_sb
    lines.append(f"4x1 parity MB-AVF / SB-AVF = {ratio_4x1:.2f}x "
                 "(paper: 2.74x average)")
    lines.append(f"8x1 secded / 4x1 parity    = {mean_sec[8] / mean_par[4]:.2f}x "
                 "(paper: ~1.0x, Sec. VI-C)")
    report("figure6_fault_modes", lines)

    # Shape target (a): parity DUE MB-AVF grows with fault-mode size in the
    # fully-detected regime (every word sees 1 bit while M <= I).  Beyond
    # that, even per-word counts defeat parity and DUE collapses into SDC —
    # the Sec. VIII odd/even detection property.
    vals = [mean_par[m] for m in (2, 3, 4)]
    assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))
    assert mean_par[8] < mean_par[4]  # 8x1 puts 2 bits in every parity word
    # 4x1 parity is well above SB-AVF (paper: 2.74x on average, 1.52-4.0x).
    assert ratio_4x1 > 1.3
    # Shape target (b): Mx1 under SEC-DED tracks the parity mode with the
    # same number of *detected* words — the paper's 8x1-secded == 4x1-parity
    # result (8x1 SEC-DED x4 leaves 2 bits in each of 4 words; 4x1 parity x4
    # leaves 1 bit in each of the same 4 words).
    assert mean_sec[8] == pytest.approx(mean_par[4], rel=0.25)
    assert mean_sec[6] == pytest.approx(mean_par[2], rel=0.25)
    # SEC-DED MB-AVF also grows with mode size.
    svals = [mean_sec[m] for m in SECDED_MODES]
    assert all(b >= a - 1e-9 for a, b in zip(svals, svals[1:]))
