"""MB-AVF: architectural vulnerability factors for spatial multi-bit faults.

A reproduction of Wilkening et al., "Calculating Architectural Vulnerability
Factors for Spatial Multi-Bit Transient Faults" (MICRO 2014): a GPU/APU
performance simulator with ACE-analysis instrumentation, an MB-AVF engine
covering DUE and SDC AVFs for arbitrary fault modes, protection schemes and
interleaving styles, a fault-injection framework, and the paper's workloads
and experiments.

Quickstart::

    from repro import core, workloads

    run = workloads.run("vectoradd")
    study = core.AvfStudy(run.apu, run.output_ranges)
    res = study.cache_avf(
        "l1", core.FaultMode.linear(2), core.Parity(),
        style=core.Interleaving.LOGICAL, factor=2,
    )
    print(res.due_avf, res.sdc_avf)
"""

from . import arch, core, faultinject, workloads

__version__ = "1.0.0"

__all__ = ["arch", "core", "faultinject", "workloads", "__version__"]
