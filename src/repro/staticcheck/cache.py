"""Per-file lint cache keyed by content hash.

A cache entry stores everything one file contributes to a run: its
pre-suppression per-file findings, its :class:`FileSummary` for the
whole-program index, and its skip/parse-error status.  On a warm run an
unchanged file is neither re-parsed nor re-linted — its summary still
feeds the project index, so the C-family (whole-program) rules see the
complete picture either way.

The cache is *advisory*: a missing, corrupt, or version-skewed file is
silently treated as empty and rebuilt.  The fingerprint folds in a
schema version plus the sorted registered rule codes, so adding or
removing a rule invalidates everything (per-file findings stored in
entries would otherwise go stale).

Writes go through :func:`repro.ioutil.atomic_write` — a crash mid-save
leaves the previous cache intact, never a torn file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..ioutil import atomic_write
from .findings import Finding
from .index import FileSummary

__all__ = ["LintCache", "CacheEntry", "content_hash", "engine_fingerprint"]

#: bump when the summary/entry schema changes shape
SCHEMA_VERSION = 2


def content_hash(source: bytes) -> str:
    return hashlib.sha256(source).hexdigest()


def engine_fingerprint(rule_codes: List[str]) -> str:
    """Identity of the analysis: schema + the active rule set."""
    payload = json.dumps(
        {"schema": SCHEMA_VERSION, "rules": sorted(rule_codes)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """One file's cached analysis, keyed by its content hash."""

    hash: str
    #: pre-suppression per-file findings (suppression is re-applied
    #: centrally each run, so edits to *other* files behave identically
    #: on hits and misses)
    findings: List[Dict[str, Any]] = field(default_factory=list)
    summary: Optional[Dict[str, Any]] = None
    skipped: bool = False
    #: (line, col, msg) when the file did not parse
    parse_error: Optional[List[Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hash": self.hash,
            "findings": self.findings,
            "summary": self.summary,
            "skipped": self.skipped,
            "parse_error": self.parse_error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CacheEntry":
        return cls(
            hash=data["hash"],
            findings=data["findings"],
            summary=data["summary"],
            skipped=data["skipped"],
            parse_error=data["parse_error"],
        )

    def restore_findings(self) -> List[Finding]:
        return [
            Finding(
                path=f["path"],
                line=f["line"],
                col=f["col"],
                rule=f["rule"],
                message=f["message"],
                snippet=f.get("snippet", ""),
            )
            for f in self.findings
        ]

    def restore_summary(self) -> Optional[FileSummary]:
        if self.summary is None:
            return None
        return FileSummary.from_dict(self.summary)


class LintCache:
    """The on-disk cache: load leniently, save atomically."""

    def __init__(self, fingerprint: str) -> None:
        self.fingerprint = fingerprint
        self.entries: Dict[str, CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: Optional[Path], fingerprint: str) -> "LintCache":
        cache = cls(fingerprint)
        if path is None:
            return cache
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(data, dict):
            return cache
        if data.get("fingerprint") != fingerprint:
            return cache
        files = data.get("files")
        if not isinstance(files, dict):
            return cache
        for relpath, raw in files.items():
            try:
                cache.entries[relpath] = CacheEntry.from_dict(raw)
            except (KeyError, TypeError):
                continue  # one bad entry never poisons the rest
        return cache

    def get(self, relpath: str, digest: str) -> Optional[CacheEntry]:
        entry = self.entries.get(relpath)
        if entry is not None and entry.hash == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, relpath: str, entry: CacheEntry) -> None:
        self.entries[relpath] = entry

    def prune(self, keep: List[str]) -> None:
        """Drop entries for files no longer in the scanned set."""
        wanted = set(keep)
        for relpath in list(self.entries):
            if relpath not in wanted:
                del self.entries[relpath]

    def save(self, path: Path) -> None:
        payload = {
            "version": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "files": {
                relpath: self.entries[relpath].to_dict()
                for relpath in sorted(self.entries)
            },
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write(
            path,
            json.dumps(payload, sort_keys=True, indent=None) + "\n",
        )
