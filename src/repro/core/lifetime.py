"""Lifetime analysis: simulator events -> per-byte classed ACE intervals.

This is the "analysis phase" of the paper's two-phase AVF measurement
(Sec. VI-A).  It consumes the event streams produced by the simulator and
the annotations produced by the liveness pass, and emits
:class:`~repro.core.avf.StructureLifetimes` for each tracked structure.

Classification rules (per byte, per value segment):

* time from value creation (fill/write) to its **last live read** is ACE —
  a fault there corrupts a consumed value;
* time from the last live read to the **last read of any kind** is
  READ_DEAD — a fault there is observed (so a detector fires: false DUE)
  but the data is dynamically dead;
* everything else is unACE.

Reads come in three flavours: architectural loads (liveness from the
backward dataflow pass), line read-outs that fill the next cache level up
(liveness resolved *transitively* from how the filled copy was used), and
dirty write-backs (liveness from whether the written-back memory bytes are
later consumed or belong to a program output buffer).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.cache import Cache
from ..arch.isa import WAVEFRONT_LANES
from ..arch.trace import EvictEvent, FillEvent, InstrRecord, ReadEvent, WriteEvent
from .avf import StructureLifetimes
from .intervals import AceClass, IntervalSet

__all__ = [
    "MemoryConsumption",
    "analyze_cache",
    "analyze_vgpr",
    "analyze_memory",
    "derive_tag_lifetimes",
]

_ACE = int(AceClass.ACE)
_DEAD = int(AceClass.READ_DEAD)


class MemoryConsumption:
    """Per-byte consumption index over global memory.

    Answers, for a byte written back to memory at cycle ``t``: will that
    value ever be consumed?  Consumption is a later live load before the
    next store, or membership in a program output buffer with no later
    store (the host reads outputs after the workload).
    """

    def __init__(
        self,
        records: Sequence[InstrRecord],
        mem_size: int,
        output_ranges: Sequence[Tuple[int, int]],
    ) -> None:
        self._stores: Dict[int, List[int]] = {}
        self._loads: Dict[int, Tuple[List[int], List[bool]]] = {}
        self._is_output = np.zeros(mem_size, dtype=bool)
        for base, size in output_ranges:
            self._is_output[base : base + size] = True
        stored = np.zeros(mem_size, dtype=bool)
        for rec in records:
            if rec.space != "global" or rec.op not in ("v_store", "v_store_u8"):
                continue
            for lane in np.where(rec.acc_mask)[0]:
                a = int(rec.addrs[lane])
                for b in range(rec.nbytes):
                    stored[a + b] = True
                    self._stores.setdefault(a + b, []).append(rec.t)
        for rec in records:
            if rec.space != "global" or rec.op not in ("v_load", "v_load_u8"):
                continue
            needed = rec.load_needed
            for lane in np.where(rec.acc_mask)[0]:
                a = int(rec.addrs[lane])
                m = int(needed[lane]) if needed is not None else 0xFFFFFFFF
                for b in range(rec.nbytes):
                    addr = a + b
                    if not stored[addr]:
                        continue
                    live = bool(m & (0xFF << (8 * b)))
                    ts, ls = self._loads.setdefault(addr, ([], []))
                    ts.append(rec.t)
                    ls.append(live)

    def _next_store_after(self, addr: int, t: int) -> float:
        ts = self._stores.get(addr)
        if not ts:
            return float("inf")
        i = bisect.bisect_right(ts, t)
        return ts[i] if i < len(ts) else float("inf")

    def live_after(self, addr: int, t: int) -> bool:
        """True if the value at ``addr`` as of cycle ``t`` is ever consumed."""
        horizon = self._next_store_after(addr, t)
        loads = self._loads.get(addr)
        if loads is not None:
            ts, ls = loads
            i = bisect.bisect_left(ts, t)
            while i < len(ts) and ts[i] <= horizon:
                if ls[i]:
                    return True
                i += 1
        return bool(self._is_output[addr]) and horizon == float("inf")

    def read_after(self, addr: int, t: int) -> bool:
        """True if the value at ``addr`` as of ``t`` is ever read (even dead)."""
        horizon = self._next_store_after(addr, t)
        loads = self._loads.get(addr)
        if loads is not None:
            ts, _ = loads
            i = bisect.bisect_left(ts, t)
            if i < len(ts) and ts[i] <= horizon:
                return True
        return bool(self._is_output[addr]) and horizon == float("inf")


class _ByteTracker:
    """Per-byte segment state machine shared by cache and VGPR analyses."""

    def __init__(self, n_bytes: int) -> None:
        self.n_bytes = n_bytes
        self.seg_start = np.full(n_bytes, -1, dtype=np.int64)
        self.last_live = np.zeros(n_bytes, dtype=np.int64)
        self.last_any = np.zeros(n_bytes, dtype=np.int64)
        self.isets: List[IntervalSet] = [IntervalSet() for _ in range(n_bytes)]

    def open(self, b: int, t: int) -> None:
        self.seg_start[b] = t
        self.last_live[b] = t
        self.last_any[b] = t

    def close(self, b: int) -> None:
        s = self.seg_start[b]
        if s < 0:
            return
        tl = int(self.last_live[b])
        ta = int(self.last_any[b])
        iset = self.isets[b]
        if tl > s:
            iset.append(int(s), tl, _ACE)
        if ta > max(tl, s):
            iset.append(max(tl, int(s)), ta, _DEAD)
        self.seg_start[b] = -1

    def read(self, b: int, t: int, live: bool) -> None:
        if self.seg_start[b] < 0:
            return
        self.last_any[b] = max(self.last_any[b], t)
        if live:
            self.last_live[b] = max(self.last_live[b], t)

    def close_all(self) -> None:
        for b in np.where(self.seg_start >= 0)[0]:
            self.close(int(b))


def analyze_cache(
    cache: Cache,
    records_by_uid: Dict[int, InstrRecord],
    end_cycle: int,
    *,
    memcons: Optional[MemoryConsumption] = None,
    upstream_fills: Optional[Dict[int, Tuple[np.ndarray, np.ndarray]]] = None,
    name: Optional[str] = None,
) -> Tuple[StructureLifetimes, Dict[int, Tuple[np.ndarray, np.ndarray]]]:
    """Resolve one cache's event stream into per-byte ACE lifetimes.

    Returns ``(lifetimes, fills)`` where ``fills`` maps each of this cache's
    fill ids to ``(read_mask, live_mask)`` over the line's bytes — the
    transitive read/liveness verdicts that the *lower* level's analysis
    consumes for its ``'fill'``-kind read events.  Analyze the hierarchy top
    down: L1s first, then the L2 with ``upstream_fills`` set to the merged
    L1 verdicts and ``memcons`` set for write-back liveness.
    """
    cfg = cache.config
    lb = cfg.line_bytes
    n_bytes = cfg.n_sets * cfg.n_ways * lb
    trk = _ByteTracker(n_bytes)
    origin_fill = np.full(n_bytes, -1, dtype=np.int64)
    fills: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def slot_base(s: int, w: int) -> int:
        return (s * cfg.n_ways + w) * lb

    def note_fill_usage(b: int, off: int, live: bool) -> None:
        fid = origin_fill[b]
        if fid >= 0:
            read_mask, live_mask = fills[int(fid)]
            read_mask[off] = True
            if live:
                live_mask[off] = True

    for ev in cache.events:
        if isinstance(ev, FillEvent):
            base = slot_base(ev.set, ev.way)
            fills[ev.fill_id] = (np.zeros(lb, dtype=bool), np.zeros(lb, dtype=bool))
            for o in range(lb):
                trk.open(base + o, ev.t)
                origin_fill[base + o] = ev.fill_id
        elif isinstance(ev, WriteEvent):
            rec = records_by_uid[ev.uid]
            base = slot_base(ev.set, ev.way)
            for lane in np.where(rec.acc_mask)[0]:
                a = int(rec.addrs[lane])
                if a - a % lb != ev.line_addr:
                    continue
                for bofs in range(rec.nbytes):
                    b = base + (a % lb) + bofs
                    trk.close(b)
                    trk.open(b, ev.t)
                    origin_fill[b] = -1
        elif isinstance(ev, ReadEvent):
            base = slot_base(ev.set, ev.way)
            if ev.kind == "demand":
                rec = records_by_uid[ev.uid]
                needed = rec.load_needed
                for lane in np.where(rec.acc_mask)[0]:
                    a = int(rec.addrs[lane])
                    if a - a % lb != ev.line_addr:
                        continue
                    m = int(needed[lane]) if needed is not None else 0xFFFFFFFF
                    for bofs in range(rec.nbytes):
                        off = (a % lb) + bofs
                        live = bool(m & (0xFF << (8 * bofs)))
                        trk.read(base + off, ev.t, live)
                        note_fill_usage(base + off, off, live)
            elif ev.kind == "fill":
                if upstream_fills is None or ev.link not in upstream_fills:
                    # No upstream analysis: conservatively fully live.
                    up_read = up_live = np.ones(lb, dtype=bool)
                else:
                    up_read, up_live = upstream_fills[ev.link]
                for o in range(lb):
                    live = bool(up_live[o])
                    trk.read(base + o, ev.t, live)
                    note_fill_usage(base + o, o, live)
            else:  # writeback
                dirty = ev.byte_mask
                for o in range(lb):
                    if dirty is not None and dirty[o]:
                        live = (
                            memcons.live_after(ev.line_addr + o, ev.t)
                            if memcons is not None else True
                        )
                    else:
                        live = False  # clean bytes are checked, not written
                    trk.read(base + o, ev.t, live)
                    note_fill_usage(base + o, o, live)
        elif isinstance(ev, EvictEvent):
            base = slot_base(ev.set, ev.way)
            for o in range(lb):
                trk.close(base + o)
                origin_fill[base + o] = -1
    trk.close_all()
    lifetimes = StructureLifetimes(name or cache.name, trk.isets, 0, end_cycle)
    return lifetimes, fills


def merge_fill_maps(
    maps: Sequence[Dict[int, Tuple[np.ndarray, np.ndarray]]],
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Union per-fill verdicts from several upper-level caches (the L1s)."""
    out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for m in maps:
        for fid, (r, l) in m.items():
            if fid in out:
                out[fid][0][:] |= r
                out[fid][1][:] |= l
            else:
                out[fid] = (r.copy(), l.copy())
    return out


def analyze_memory(
    records: Sequence[InstrRecord],
    region: Tuple[int, int],
    output_ranges: Sequence[Tuple[int, int]],
    end_cycle: int,
    *,
    name: str = "memory",
) -> StructureLifetimes:
    """Architectural lifetimes of a flat memory region.

    A memory byte's value is ACE from its creation (host initialisation at
    cycle 0, or a store) until its last live load; dead loads extend a
    READ_DEAD interval; bytes in program output buffers stay ACE until the
    end of the run unless overwritten.  This is the ground-truth model the
    cache analyses bottom out in, and the reference that fault-injection
    validation campaigns compare against.
    """
    base, size = region
    is_output = np.zeros(size, dtype=bool)
    for obase, osize in output_ranges:
        lo = max(obase, base)
        hi = min(obase + osize, base + size)
        if lo < hi:
            is_output[lo - base : hi - base] = True
    # Per-byte event lists: (t, kind) with kind 0=store, 1=dead load,
    # 2=live load, gathered in time order.
    events: List[List[Tuple[int, int]]] = [[] for _ in range(size)]
    for rec in records:
        if rec.space != "global" or rec.addrs is None:
            continue
        is_store = rec.op in ("v_store", "v_store_u8")
        is_load = rec.op in ("v_load", "v_load_u8")
        if not (is_store or is_load):
            continue
        needed = rec.mem_needed if is_store else rec.load_needed
        for lane in np.where(rec.acc_mask)[0]:
            a = int(rec.addrs[lane])
            m = int(needed[lane]) if needed is not None else 0xFFFFFFFF
            for b in range(rec.nbytes):
                addr = a + b
                if not base <= addr < base + size:
                    continue
                if is_store:
                    events[addr - base].append((rec.t, 0))
                else:
                    live = bool(m & (0xFF << (8 * b)))
                    events[addr - base].append((rec.t, 2 if live else 1))
    isets: List[IntervalSet] = []
    for off in range(size):
        iset = IntervalSet()
        seg_start = 0
        last_live = 0
        last_any = 0

        def close(upto_live: int, upto_any: int, start: int) -> None:
            if upto_live > start:
                iset.append(start, upto_live, _ACE)
            if upto_any > max(upto_live, start):
                iset.append(max(upto_live, start), upto_any, _DEAD)

        for t, kind in events[off]:
            if kind == 0:
                close(last_live, last_any, seg_start)
                seg_start = t
                last_live = t
                last_any = t
            else:
                last_any = max(last_any, t)
                if kind == 2:
                    last_live = max(last_live, t)
        if is_output[off]:
            close(end_cycle, end_cycle, seg_start)
        else:
            close(last_live, last_any, seg_start)
        isets.append(iset)
    return StructureLifetimes(name, isets, 0, end_cycle)


def derive_tag_lifetimes(
    data_lifetimes: StructureLifetimes,
    line_bytes: int,
    *,
    tag_bytes: int = 3,
    name: Optional[str] = None,
) -> StructureLifetimes:
    """Tag-array lifetimes derived from the data array's (conservative).

    An address tag is architecturally required exactly while its line holds
    data that matters: a corrupted tag loses (or mis-homes) that data, so a
    tag entry inherits the union of its line's per-byte classifications —
    ACE while any data byte is ACE, READ_DEAD while the line is only ever
    dead-read (a tag-parity trip then raises a false DUE).  This is the
    conservative address-based-structure model of Biswas et al. (the
    paper's ref [7]); clean-line refetch masking would only lower it.

    ``data_lifetimes`` must come from :func:`analyze_cache` (byte ids laid
    out line-contiguously); the result indexes tag entries per line with
    ``tag_bytes`` bytes each, matching
    :func:`repro.core.layout.build_tag_array`.
    """
    n_bytes = len(data_lifetimes.byte_isets)
    if n_bytes % line_bytes:
        raise ValueError("data lifetimes are not a whole number of lines")
    n_lines = n_bytes // line_bytes
    isets: List[IntervalSet] = []
    from .intervals import sweep_max

    for line in range(n_lines):
        merged = sweep_max(
            data_lifetimes.byte_isets[line * line_bytes : (line + 1) * line_bytes]
        )
        isets.extend([merged] * tag_bytes)
    return StructureLifetimes(
        name or f"{data_lifetimes.name}.tags",
        isets,
        data_lifetimes.start_cycle,
        data_lifetimes.end_cycle,
    )


_BYTE_SHIFTS = np.uint32(8) * np.arange(4, dtype=np.uint32)


def analyze_vgpr(
    records: Sequence[InstrRecord],
    wf_id: int,
    n_vregs: int,
    end_cycle: int,
    *,
    name: Optional[str] = None,
) -> StructureLifetimes:
    """Per-byte ACE lifetimes of one wavefront's vector register file.

    The VGPR is physically read row-at-a-time (all 16 lanes of a register at
    once — the Sec. VIII simultaneous-read property), so a read of ``vN``
    touches every lane's copy; liveness applies only to the lanes/bytes whose
    needed-bit masks are non-zero.

    Byte ids follow :func:`repro.core.layout.regfile_byte_index` with
    ``thread = lane``: ``(lane * n_vregs + reg) * 4 + byte``.
    """
    n_bytes = WAVEFRONT_LANES * n_vregs * 4
    parts: List[List] = [[] for _ in range(n_bytes)]
    mine = [r for r in records if r.wf == wf_id]
    if not mine:
        return StructureLifetimes(
            name or f"vgpr.wf{wf_id}",
            [IntervalSet() for _ in range(n_bytes)],
            0, end_cycle,
        )
    start = mine[0].t
    # Byte ids of register r across lanes: shape (16, 4).
    lane_base = (np.arange(WAVEFRONT_LANES) * n_vregs)[:, None] * 4
    reg_idx = [
        (lane_base + r * 4 + np.arange(4)[None, :]).ravel()
        for r in range(n_vregs)
    ]
    seg_start = np.full(n_bytes, start, dtype=np.int64)
    last_live = np.full(n_bytes, start, dtype=np.int64)
    last_any = np.full(n_bytes, start, dtype=np.int64)

    def close_bytes(idx: np.ndarray, t: int) -> None:
        s = seg_start[idx]
        tl = last_live[idx]
        ta = last_any[idx]
        emit = np.where((tl > s) | (ta > np.maximum(tl, s)))[0]
        for k in emit.tolist():
            b = int(idx[k])
            bs, btl, bta = int(s[k]), int(tl[k]), int(ta[k])
            if btl > bs:
                parts[b].append((bs, btl, _ACE))
            if bta > max(btl, bs):
                parts[b].append((max(btl, bs), bta, _DEAD))
        seg_start[idx] = t
        last_live[idx] = t
        last_any[idx] = t

    for rec in mine:
        t = rec.t
        if rec.src_needed is not None:
            for src, mask in zip(rec.srcs, rec.src_needed):
                if src[0] != "v" or src[1] >= n_vregs:
                    continue
                idx = reg_idx[src[1]]
                last_any[idx] = t
                if mask is not None:
                    live = ((mask[:, None] >> _BYTE_SHIFTS) & np.uint32(0xFF)) != 0
                    last_live[idx[live.ravel()]] = t
        if rec.dst is not None and rec.dst[0] == "v" and rec.dst[1] < n_vregs:
            lanes = rec.acc_mask if rec.acc_mask is not None else rec.exec_mask
            idx = reg_idx[rec.dst[1]].reshape(WAVEFRONT_LANES, 4)[lanes].ravel()
            close_bytes(idx, t)
    close_bytes(np.arange(n_bytes), mine[-1].t)
    isets = [IntervalSet(p) if p else IntervalSet() for p in parts]
    return StructureLifetimes(name or f"vgpr.wf{wf_id}", isets, 0, end_cycle)
