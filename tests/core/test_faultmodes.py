"""Unit tests for fault-mode geometry."""

import pytest

from repro.core.faultmodes import MX1_MODES, FaultMode


class TestLinearModes:
    def test_1x1(self):
        m = FaultMode.linear(1)
        assert m.n_bits == 1
        assert m.height == 1 and m.width == 1
        assert m.is_linear()

    def test_4x1(self):
        m = FaultMode.linear(4)
        assert m.name == "4x1"
        assert m.offsets == ((0, 0), (0, 1), (0, 2), (0, 3))
        assert m.n_bits == 4
        assert m.is_linear()

    def test_invalid(self):
        with pytest.raises(ValueError):
            FaultMode.linear(0)

    def test_registry(self):
        assert len(MX1_MODES) == 8
        assert [m.n_bits for m in MX1_MODES] == list(range(1, 9))
        assert MX1_MODES[1].name == "2x1"


class TestRectModes:
    def test_2x2(self):
        m = FaultMode.rect(2, 2)
        assert m.n_bits == 4
        assert m.height == 2 and m.width == 2
        assert not m.is_linear()

    def test_vertical(self):
        m = FaultMode.rect(3, 1)
        assert m.offsets == ((0, 0), (1, 0), (2, 0))
        assert m.height == 3 and m.width == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            FaultMode.rect(0, 2)


class TestCustomModes:
    def test_normalisation(self):
        m = FaultMode("diag", ((1, 1), (2, 2)))
        assert m.offsets == ((0, 0), (1, 1))

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            FaultMode("dup", ((0, 0), (0, 0)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FaultMode("empty", ())

    def test_l_shape(self):
        m = FaultMode("L", ((0, 0), (1, 0), (1, 1)))
        assert m.n_bits == 3
        assert not m.is_linear()
        assert m.height == 2 and m.width == 2

    def test_hashable(self):
        assert FaultMode.linear(2) == FaultMode("2x1", ((0, 0), (0, 1)))
        assert hash(FaultMode.linear(2)) == hash(FaultMode("2x1", ((0, 0), (0, 1))))
