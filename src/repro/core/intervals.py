"""Classed cycle-interval algebra underpinning all AVF computations.

ACE analysis reduces to bookkeeping over half-open cycle intervals
``[start, end)`` tagged with an :class:`AceClass`.  Every bit (in practice,
every tracked byte) of a hardware structure owns one :class:`IntervalSet`
describing when its content is required for architecturally correct
execution.  Multi-bit AVF analysis then combines the interval sets of the
bits inside a fault group (the union of ACEness, eq. 5 of the paper) and
classifies the result according to the protection scheme's reaction.

Time units are abstract "cycles" (any monotonically increasing simulator
timestamp works).  All intervals are half-open and use integer endpoints.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "AceClass",
    "Outcome",
    "IntervalSet",
    "sweep_max",
    "combine_outcomes",
]


class AceClass(IntEnum):
    """Classification of a bit's content during a cycle interval.

    The ordering is a severity precedence: when several classes apply to the
    same instant (e.g. when taking the union over a fault group), the highest
    value wins.
    """

    #: Content is never consumed: a fault here is architecturally invisible.
    UNACE = 0
    #: Content is consumed, but only by dynamically-dead reads.  An error
    #: detector that fires on such a read raises a *false* DUE; an undetected
    #: fault here is still masked.
    READ_DEAD = 1
    #: Content is required for architecturally correct execution.  A fault is
    #: an error: SDC if undetected, true DUE if detected but uncorrected.
    ACE = 2


class Outcome(IntEnum):
    """Final classification of a fault (group) occurring at some cycle.

    The ordering is the precedence from Sec. VII-B of the paper:
    SDC > true DUE > false DUE > unACE.
    """

    UNACE = 0
    FALSE_DUE = 1
    TRUE_DUE = 2
    SDC = 3


Interval = Tuple[int, int, int]  # (start, end, cls)


class IntervalSet:
    """A sorted, coalesced set of non-overlapping classed intervals.

    Class ``0`` (:attr:`AceClass.UNACE` / :attr:`Outcome.UNACE`) is implicit:
    intervals with class 0 are never stored.  The same container is used both
    for :class:`AceClass`-tagged lifetimes and :class:`Outcome`-tagged fault
    classifications; the class is just a small non-negative integer.
    """

    __slots__ = ("_ivals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        ivals = sorted((int(s), int(e), int(c)) for s, e, c in intervals)
        self._ivals: List[Interval] = []
        for s, e, c in ivals:
            if e <= s:
                raise ValueError(f"empty or inverted interval [{s}, {e})")
            if c < 0:
                raise ValueError(f"negative class {c}")
            if c == 0:
                continue
            if self._ivals and s < self._ivals[-1][1]:
                raise ValueError("overlapping intervals; use sweep_max to merge")
            if self._ivals and self._ivals[-1][1] == s and self._ivals[-1][2] == c:
                ps, _, pc = self._ivals[-1]
                self._ivals[-1] = (ps, e, pc)
            else:
                self._ivals.append((s, e, c))

    # -- construction ------------------------------------------------------

    @classmethod
    def _from_sorted(cls, ivals: List[Interval]) -> "IntervalSet":
        """Trusted constructor for already sorted/coalesced/nonzero input."""
        obj = cls.__new__(cls)
        obj._ivals = ivals
        return obj

    def append(self, start: int, end: int, klass: int) -> None:
        """Append an interval that begins at or after every stored interval.

        This is the fast path used by lifetime trackers, which emit intervals
        in increasing time order.  Class-0 appends are ignored; adjacent
        same-class intervals are coalesced.
        """
        if end <= start or klass == 0:
            return
        if self._ivals:
            ps, pe, pc = self._ivals[-1]
            if start < pe:
                raise ValueError(
                    f"append out of order: [{start},{end}) begins before {pe}"
                )
            if pe == start and pc == klass:
                self._ivals[-1] = (ps, end, pc)
                return
        self._ivals.append((start, end, klass))

    # -- queries -----------------------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._ivals)

    def __len__(self) -> int:
        return len(self._ivals)

    def __bool__(self) -> bool:
        return bool(self._ivals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._ivals == other._ivals

    def __hash__(self) -> int:
        return hash(tuple(self._ivals))

    def __repr__(self) -> str:
        return f"IntervalSet({self._ivals!r})"

    def intervals(self) -> List[Interval]:
        """Return the stored intervals as a list of ``(start, end, cls)``."""
        return list(self._ivals)

    def total(self, klass: int) -> int:
        """Total cycles spent exactly in class ``klass`` (0 not queryable)."""
        if klass == 0:
            raise ValueError("class 0 is implicit; its duration is unbounded")
        return sum(e - s for s, e, c in self._ivals if c == klass)

    def total_at_least(self, klass: int) -> int:
        """Total cycles spent in class ``klass`` or any higher class."""
        return sum(e - s for s, e, c in self._ivals if c >= klass)

    def durations(self, nclasses: int) -> List[int]:
        """Per-class durations, index = class.  Index 0 is always 0."""
        out = [0] * nclasses
        for s, e, c in self._ivals:
            out[c] += e - s
        return out

    def class_at(self, cycle: int) -> int:
        """The class in effect at ``cycle`` (0 if no interval covers it)."""
        import bisect

        idx = bisect.bisect_right(self._ivals, (cycle, float("inf"), 0)) - 1
        if idx >= 0:
            s, e, c = self._ivals[idx]
            if s <= cycle < e:
                return c
        return 0

    def span(self) -> Tuple[int, int]:
        """``(min start, max end)`` over stored intervals; (0, 0) if empty."""
        if not self._ivals:
            return (0, 0)
        return (self._ivals[0][0], self._ivals[-1][1])

    # -- transforms --------------------------------------------------------

    def clip(self, start: int, end: int) -> "IntervalSet":
        """Restrict to the window ``[start, end)``."""
        out: List[Interval] = []
        for s, e, c in self._ivals:
            s2, e2 = max(s, start), min(e, end)
            if s2 < e2:
                out.append((s2, e2, c))
        return IntervalSet._from_sorted(out)

    def map_class(self, fn: Callable[[int], int]) -> "IntervalSet":
        """Remap classes through ``fn``; class-0 results are dropped."""
        out: List[Interval] = []
        for s, e, c in self._ivals:
            c2 = fn(c)
            if c2 == 0:
                continue
            if out and out[-1][1] == s and out[-1][2] == c2:
                ps, _, pc = out[-1]
                out[-1] = (ps, e, pc)
            else:
                out.append((s, e, c2))
        return IntervalSet._from_sorted(out)

    def bucket_accumulate(self, edges: Sequence[int], out) -> None:
        """Accumulate per-class durations into time buckets.

        ``edges`` are ``B+1`` increasing bucket boundaries; ``out`` is an
        indexable of shape ``(B, nclasses)`` (e.g. a numpy array) that is
        incremented in place with the overlap of every interval with every
        bucket.
        """
        import bisect

        nb = len(edges) - 1
        for s, e, c in self._ivals:
            lo = bisect.bisect_right(edges, s) - 1
            lo = max(lo, 0)
            for b in range(lo, nb):
                bs, be = edges[b], edges[b + 1]
                if bs >= e:
                    break
                ov = min(e, be) - max(s, bs)
                if ov > 0:
                    out[b][c] += ov


def sweep_max(sets: Sequence[IntervalSet]) -> IntervalSet:
    """Pointwise maximum-class union of interval sets (eq. 5).

    At every instant the resulting class is the maximum class among all
    inputs covering that instant.  This realises "a fault group is ACE if any
    of its bits is ACE" and, with :class:`AceClass` severity ordering,
    propagates the strongest consequence.
    """
    live = [s for s in sets if s]
    if not live:
        return IntervalSet()
    if len(live) == 1:
        return IntervalSet._from_sorted(list(live[0]._ivals))
    events: List[Tuple[int, int, int]] = []  # (cycle, delta, cls)
    maxcls = 0
    for iset in live:
        for s, e, c in iset._ivals:
            events.append((s, +1, c))
            events.append((e, -1, c))
            if c > maxcls:
                maxcls = c
    events.sort()
    counts = [0] * (maxcls + 1)
    out: List[Interval] = []
    cur_cls = 0
    cur_start = 0
    i, n = 0, len(events)
    while i < n:
        cyc = events[i][0]
        while i < n and events[i][0] == cyc:
            _, d, c = events[i]
            counts[c] += d
            i += 1
        new_cls = 0
        for c in range(maxcls, 0, -1):
            if counts[c] > 0:
                new_cls = c
                break
        if new_cls != cur_cls:
            if cur_cls != 0 and cyc > cur_start:
                if out and out[-1][1] == cur_start and out[-1][2] == cur_cls:
                    ps, _, pc = out[-1]
                    out[-1] = (ps, cyc, pc)
                else:
                    out.append((cur_start, cyc, cur_cls))
            cur_start = cyc
            cur_cls = new_cls
    return IntervalSet._from_sorted(out)


def combine_outcomes(
    sets: Sequence[IntervalSet], *, due_preempts_sdc: bool = False
) -> IntervalSet:
    """Combine per-region :class:`Outcome` interval sets into a group outcome.

    Default precedence is SDC > true DUE > false DUE > unACE (Sec. VII-B):
    when a cache line with an SDC-bound region coexists with a detected
    region, detection cannot be guaranteed to precede SDC propagation.

    With ``due_preempts_sdc=True`` the Sec. VIII rule applies instead: the
    structure is read as one unit (e.g. 16 GPU threads reading the VGPR row
    simultaneously), so a detected region fires *before* the undetected
    region's data can propagate — simultaneous SDC + DUE becomes a true DUE.
    """
    if not due_preempts_sdc:
        return sweep_max(sets)
    merged = sweep_max(sets)
    if not merged:
        return merged
    # Recompute instants where SDC coexists with a DUE region.
    due_times = sweep_max(
        [
            s.map_class(lambda c: 1 if c in (Outcome.TRUE_DUE, Outcome.FALSE_DUE) else 0)
            for s in sets
        ]
    )
    if not due_times:
        return merged
    out: List[Interval] = []

    def emit(s: int, e: int, c: int) -> None:
        if out and out[-1][1] == s and out[-1][2] == c:
            ps, _, pc = out[-1]
            out[-1] = (ps, e, pc)
        else:
            out.append((s, e, c))

    due_ivals = due_times.intervals()
    for s, e, c in merged:
        if c != Outcome.SDC:
            emit(s, e, c)
            continue
        # Split the SDC interval against the DUE coverage.
        cur = s
        for ds, de, _ in due_ivals:
            if de <= cur or ds >= e:
                continue
            if ds > cur:
                emit(cur, ds, int(Outcome.SDC))
            ov_end = min(de, e)
            emit(max(ds, cur), ov_end, int(Outcome.TRUE_DUE))
            cur = ov_end
            if cur >= e:
                break
        if cur < e:
            emit(cur, e, int(Outcome.SDC))
    return IntervalSet._from_sorted(out)
