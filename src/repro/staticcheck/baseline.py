"""Ratcheting baseline: known debt may shrink, never grow.

The committed baseline (``tools/staticcheck_baseline.json``) records the
accepted finding count per ``(rule, path)``.  A lint run compared against
it can fail two ways:

* **new** — a (rule, path) cell has *more* findings than the baseline
  allows.  Fix the code (or suppress with justification); the baseline
  is not to be grown.
* **stale** — a cell has *fewer* findings than the baseline records.
  The debt was paid down; shrink the baseline (``--update-baseline``)
  so the ratchet locks in the improvement.

Counts (rather than line numbers) make the ratchet robust to unrelated
edits shifting code up and down a file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .findings import Finding

__all__ = [
    "Baseline",
    "Comparison",
    "counts_for",
    "compare",
]

#: (rule, path) -> accepted finding count
Baseline = Dict[Tuple[str, str], int]

_VERSION = 1


def counts_for(findings: Iterable[Finding]) -> Baseline:
    counts: Baseline = {}
    for f in findings:
        key = (f.rule, f.path)
        counts[key] = counts.get(key, 0) + 1
    return counts


def load(path: Path) -> Baseline:
    """Read a committed baseline file; empty if it does not exist."""
    if not Path(path).exists():
        return {}
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} "
            f"in {path}"
        )
    out: Baseline = {}
    for entry in data.get("entries", []):
        out[(entry["rule"], entry["path"])] = int(entry["count"])
    return out


def dump(baseline: Baseline) -> str:
    """Serialize a baseline deterministically (sorted, one entry/line)."""
    entries = [
        {"rule": rule, "path": path, "count": count}
        for (rule, path), count in sorted(baseline.items())
    ]
    return json.dumps(
        {"version": _VERSION, "entries": entries},
        indent=2,
        sort_keys=True,
    ) + "\n"


class Comparison:
    """Outcome of checking a run's findings against a baseline."""

    def __init__(
        self,
        new: List[Finding],
        stale: List[Tuple[str, str, int, int]],
        baselined: int,
    ) -> None:
        #: findings beyond the baselined count, most useful first
        self.new = new
        #: (rule, path, baseline_count, current_count) cells that shrank
        self.stale = stale
        #: findings absorbed by the baseline
        self.baselined = baselined

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale


def compare(findings: List[Finding], baseline: Baseline) -> Comparison:
    """Split findings into new vs baselined; detect stale cells.

    Within one (rule, path) cell the *first* ``baseline_count`` findings
    (sorted order: line, col) are absorbed and the remainder reported as
    new — an approximation that errs toward flagging late-file
    additions, which is the common shape of fresh debt.
    """
    current = counts_for(findings)
    new: List[Finding] = []
    absorbed: Dict[Tuple[str, str], int] = {}
    baselined = 0
    for f in sorted(findings):
        key = (f.rule, f.path)
        allowed = baseline.get(key, 0)
        used = absorbed.get(key, 0)
        if used < allowed:
            absorbed[key] = used + 1
            baselined += 1
        else:
            new.append(f)
    stale = [
        (rule, path, count, current.get((rule, path), 0))
        for (rule, path), count in sorted(baseline.items())
        if current.get((rule, path), 0) < count
    ]
    return Comparison(new=new, stale=stale, baselined=baselined)
