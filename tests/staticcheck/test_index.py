"""Unit tests for the project index and call graph."""

import textwrap

from repro.staticcheck.callgraph import CallGraph, node_key
from repro.staticcheck.engine import parse_module
from repro.staticcheck.index import ProjectIndex, build_summary


def summarize(relpath, source):
    module = parse_module(textwrap.dedent(source), relpath, relpath)
    assert module is not None
    return build_summary(module)


def project(*files):
    return ProjectIndex([summarize(rp, src) for rp, src in files])


class TestImportGraph:
    def _project(self):
        return project(
            ("pkg/a.py", "import pkg.b\n"),
            ("pkg/b.py", "from . import c\n"),
            ("pkg/c.py", "x = 1\n"),
        )

    def test_module_names(self):
        idx = self._project()
        assert idx.files["pkg/a.py"].module == "pkg.a"
        assert idx.resolve_module("pkg.b") == "pkg/b.py"

    def test_relative_import_resolved(self):
        idx = self._project()
        assert "pkg.c" in idx.files["pkg/b.py"].imports

    def test_reverse_deps(self):
        idx = self._project()
        rev = idx.reverse_deps()
        assert rev["pkg/b.py"] == {"pkg/a.py"}
        assert rev["pkg/c.py"] == {"pkg/b.py"}

    def test_reverse_closure_is_transitive(self):
        idx = self._project()
        assert idx.reverse_closure({"pkg/c.py"}) == {
            "pkg/a.py", "pkg/b.py", "pkg/c.py",
        }
        assert idx.reverse_closure({"pkg/a.py"}) == {"pkg/a.py"}


THREADS_SRC = """
    import threading


    class Worker:
        def __init__(self):
            self._lock = threading.Lock()
            self.ready = threading.Event()
            self.ticks = 0

        def start(self):
            t = threading.Thread(target=self.loop)
            t.start()

        def loop(self):
            self.ticks += 1

        def helper(self):
            return self.ticks


    class Puller(threading.Thread):
        def run(self):
            self.items = []
"""


class TestThreadSeeding:
    def _graph(self):
        idx = project(("w.py", THREADS_SRC))
        return idx, CallGraph(idx)

    def test_thread_target_and_run_are_seeds(self):
        _idx, graph = self._graph()
        seeds = graph.thread_seeds()
        assert node_key("w.py", "Worker", "loop") in seeds
        assert node_key("w.py", "Puller", "run") in seeds
        assert node_key("w.py", "Worker", "helper") not in seeds
        assert node_key("w.py", "Worker", "start") not in seeds

    def test_lock_and_event_inventories(self):
        idx, _graph = self._graph()
        worker = idx.files["w.py"].classes["Worker"]
        assert "_lock" in worker.locks
        assert "ready" in worker.events
        assert "ticks" not in worker.locks

    def test_handler_methods_reach_helpers(self):
        idx = project(
            (
                "h.py",
                """
                from http.server import BaseHTTPRequestHandler


                class Api(BaseHTTPRequestHandler):
                    def do_GET(self):
                        self.respond()

                    def respond(self):
                        pass


                def unrelated():
                    pass
                """,
            )
        )
        graph = CallGraph(idx)
        reach = graph.handler_reachable()
        assert node_key("h.py", "Api", "do_GET") in reach
        assert node_key("h.py", "Api", "respond") in reach
        assert node_key("h.py", None, "unrelated") not in reach


class TestCallResolution:
    def _graph(self):
        idx = project(
            (
                "c.py",
                """
                class Engine:
                    def step(self):
                        return helper()


                def helper():
                    return 1


                def drive(engine: Engine):
                    engine.step()
                """,
            )
        )
        return CallGraph(idx)

    def test_bare_name_resolves_to_module_function(self):
        graph = self._graph()
        key = graph.resolve_call(["dotted", "helper"], "c.py", "Engine")
        assert key == node_key("c.py", None, "helper")

    def test_annotated_receiver_resolves_method(self):
        graph = self._graph()
        key = graph.resolve_call(
            ["method", ["name", "Engine"], "step"], "c.py", None
        )
        assert key == node_key("c.py", "Engine", "step")

    def test_external_call_unresolved(self):
        graph = self._graph()
        assert graph.resolve_call(["dotted", "os.getcwd"], "c.py", None) is None

    def test_edges_connect_drive_to_step(self):
        graph = self._graph()
        targets = [
            target
            for _site, target in graph.edges()[node_key("c.py", None, "drive")]
        ]
        assert node_key("c.py", "Engine", "step") in targets

    def test_lock_id_normalizes_attr_chain(self):
        idx = project(("w.py", THREADS_SRC))
        graph = CallGraph(idx)
        assert graph.lock_id("self._lock", "w.py", "Worker", "loop") == (
            "w.py::Worker._lock"
        )
