"""O401 fixture: spans not context-managed (plus non-tracer .span())."""

from repro.obs import get_tracer


def leaky(tracer):
    span = tracer.span("stage")
    get_tracer().span("inline", n=1)
    return span


def fine():
    with get_tracer().span("stage"):
        pass


def unrelated(iset):
    return iset.span()
