"""Figure 8: SDC vs DUE MB-AVF for 3x1 faults in the L1 (MiniFE, parity x2).

A 3x1 fault over x2 interleaving splits into a 2-bit region (defeats
parity: SDC if ACE) and a 1-bit region (detected: DUE if ACE).  Shape
targets (Sec. VII-C): SDC MB-AVF dominates but a non-trivial DUE MB-AVF
remains; the conservative "all 3x1 faults cause SDC" assumption
overestimates the SDC rate; index-physical interleaving yields lower SDC
than way-physical.
"""

import numpy as np
import pytest

from repro.core import FaultMode, Interleaving, Parity

BUCKETS = 8


def _measure(study_of):
    study = study_of("minife")
    out = {}
    edges = np.linspace(0, study.end_cycle, BUCKETS + 1).astype(int)
    for label, style in (
        ("index", Interleaving.INDEX_PHYSICAL),
        ("way", Interleaving.WAY_PHYSICAL),
    ):
        res = study.cache_avf(
            "l1", FaultMode.linear(3), Parity(),
            style=style, factor=2, series_edges=edges,
        )
        out[label] = res
    # "Conservative designer" estimate: any 3x1 fault on ACE data -> SDC.
    unprot = study.cache_avf("l1", FaultMode.linear(3), Parity())
    out["conservative_sdc"] = unprot.total_avf
    return out


@pytest.mark.benchmark(group="figure8")
def test_figure8_sdc_3x1(benchmark, study_of, report):
    res = benchmark.pedantic(_measure, args=(study_of,), rounds=1, iterations=1)
    lines = [f"{'style':<8} {'SDC MB-AVF':>11} {'DUE MB-AVF':>11} {'SDC share':>10}"]
    for label in ("index", "way"):
        r = res[label]
        share = r.sdc_avf / r.total_avf if r.total_avf else 0.0
        lines.append(
            f"{label:<8} {r.sdc_avf:11.4f} {r.due_avf:11.4f} {share:10.1%}"
        )
    cons = res["conservative_sdc"]
    lines.append(
        f"conservative all-SDC assumption: {cons:.4f} "
        f"(vs measured {res['way'].sdc_avf:.4f} way / "
        f"{res['index'].sdc_avf:.4f} index)"
    )
    report("figure8_sdc_3x1", lines)

    for label in ("index", "way"):
        r = res[label]
        # SDC dominates, but DUE is non-trivial (paper: DUE 5-30%).
        assert r.sdc_avf > r.due_avf > 0
        share = r.due_avf / r.total_avf
        assert 0.02 < share < 0.5
        # The conservative assumption overestimates the SDC rate.
        assert cons > r.sdc_avf
    # Index-physical has lower SDC than way-physical (paper: 1.8x lower).
    assert res["index"].sdc_avf <= res["way"].sdc_avf * 1.05
