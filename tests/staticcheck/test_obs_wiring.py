"""Obs wiring: a lint run emits a span and per-rule finding counters."""

from repro import obs
from repro.staticcheck import run

from .conftest import FIXTURES


def test_lint_emits_span_and_counters():
    with obs.observe() as (registry, tracer):
        result = run([FIXTURES])
        snapshot = registry.snapshot()
        names = [e.name for e in tracer.events]
    counters = snapshot["counters"]
    assert counters["staticcheck.files_scanned"] == result.files_scanned
    assert counters["staticcheck.findings"] == len(result.findings)
    assert counters["staticcheck.findings.D101"] == 6
    assert counters["staticcheck.findings.F302"] == 2
    assert "lint" in names


def test_lint_is_noop_without_obs():
    # outside observe() the singletons are the falsy no-ops; the run
    # must still work and record nothing.
    assert not obs.get_metrics()
    result = run([FIXTURES])
    assert len(result.findings) == 56
