"""Table III: the per-mode raw fault rates used by the Sec. VIII case study.

A total rate of 100, split over 1x1..8x1 per the 22nm accelerated-testing
data, with faults wider than 8 bits folded into 8x1.
"""

import pytest

from repro.core import TABLE_III, fault_mode_fractions


def _render():
    lines = ["mode   rate"]
    for mode in sorted(TABLE_III, key=lambda m: int(m.split("x")[0])):
        lines.append(f"{mode:<6} {TABLE_III[mode]:6.2f}")
    lines.append(f"total  {sum(TABLE_III.values()):6.2f}")
    return lines


@pytest.mark.benchmark(group="table3")
def test_table3_fault_rates(benchmark, report):
    lines = benchmark.pedantic(_render, rounds=1, iterations=1)
    report("table3_fault_rates", lines)
    assert sum(TABLE_III.values()) == pytest.approx(100.0)
    assert TABLE_III["1x1"] == pytest.approx(96.1)
    # Consistent with the 22nm column of Table I after folding >8-bit modes.
    fr22 = fault_mode_fractions(22)
    for mode, fit in TABLE_III.items():
        assert fit / 100.0 == pytest.approx(fr22[mode], abs=1e-9)
