"""Command-line interface: run workloads and AVF studies from the shell.

Examples::

    python -m repro list
    python -m repro run matmul
    python -m repro avf matmul --structure l1 --mode 2x1 --scheme parity \\
        --style logical --factor 2
    python -m repro ser matmul --structure vgpr --scheme parity \\
        --style inter_thread --factor 4
    python -m repro inject transpose --singles 30
    python -m repro inject transpose --jobs 2 --timeout 60 --retries 2 \\
        --resume campaign.jsonl
    python -m repro campaign --jobs 4 --resume table2.jsonl
    python -m repro campaign compact --resume table2.jsonl
    python -m repro campaign --fabric coordinator --listen 127.0.0.1:7777 \\
        --shard-dir shards/ --resume table2.jsonl
    python -m repro campaign --fabric worker --connect 127.0.0.1:7777 \\
        --node-id n0 --shard-dir shards/
    python -m repro campaign merge --resume table2.jsonl --shard-dir shards/
    python -m repro stats -- campaign transpose --singles 10
    python -m repro mttf
    python -m repro avf matmul --store results.sqlite
    python -m repro query --store results.sqlite --workload matmul --json
    python -m repro query --store results.sqlite --group-by scheme,style \\
        --value sdc_avf --agg mean
    python -m repro report build --store results.sqlite --out report/
    python -m repro report serve --store results.sqlite --listen 127.0.0.1:0
"""

from __future__ import annotations

import argparse
import json
import os
import shlex
import sys
from typing import List, Optional

from . import obs
from .runtime.errors import CampaignInterrupted
from .core import (
    SCHEMES,
    AvfStudy,
    FaultMode,
    Interleaving,
    TABLE_III,
    figure2_sweep,
    soft_error_rate,
)
from .experiments import observability_report, scaled_apu_kwargs
from .workloads import names, run

__all__ = ["main"]

_STYLES = {s.value: s for s in Interleaving}


def _parse_mode(text: str) -> FaultMode:
    """'3x1' -> linear mode; '2x2' -> rectangular mode."""
    try:
        w, h = (int(x) for x in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad fault mode {text!r} (want MxN)")
    return FaultMode.linear(w) if h == 1 else FaultMode.rect(h, w)


def _build_study(args) -> AvfStudy:
    kwargs = scaled_apu_kwargs() if args.scaled else None
    result = run(args.workload, seed=args.seed, n_cus=args.cus,
                 apu_kwargs=kwargs)
    return AvfStudy(result.apu, result.output_ranges)


def _measure(study: AvfStudy, args, mode: FaultMode):
    scheme = SCHEMES[args.scheme]
    style = _STYLES[args.style]
    if args.structure == "vgpr":
        return study.vgpr_avf(mode, scheme, style=style, factor=args.factor)
    return study.cache_avf(
        args.structure, mode, scheme, style=style, factor=args.factor
    )


def _emit(args, payload: dict, render) -> None:
    """One output path for every reporting subcommand: machine-readable
    JSON when ``--json`` was given, the text renderer otherwise."""
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        render()


def _cmd_list(args) -> int:
    for name in names():
        print(name)
    return 0


def _cmd_run(args) -> int:
    result = run(args.workload, seed=args.seed, n_cus=args.cus,
                 apu_kwargs=scaled_apu_kwargs() if args.scaled else None)
    l2 = result.apu.memsys.l2
    caches = {
        l1.name: {"hits": l1.hits, "misses": l1.misses}
        for l1 in result.apu.memsys.l1s
    }
    caches["l2"] = {"hits": l2.hits, "misses": l2.misses}
    payload = {
        "workload": result.name,
        "launches": len(result.stats),
        "instructions": result.total_instructions,
        "cycles": result.end_cycle,
        "caches": caches,
        "verified": True,
    }

    def render() -> None:
        print(f"workload:      {result.name}")
        print(f"launches:      {len(result.stats)}")
        print(f"instructions:  {result.total_instructions}")
        print(f"cycles:        {result.end_cycle}")
        for l1 in result.apu.memsys.l1s:
            total = l1.hits + l1.misses
            rate = l1.hits / total if total else 0.0
            print(f"{l1.name} hit rate:  {rate:.1%} ({l1.hits}/{total})")
        total = l2.hits + l2.misses
        print(f"l2 hit rate:   {l2.hits / total if total else 0:.1%} "
              f"({l2.hits}/{total})")
        print("output verified against numpy reference: OK")

    _emit(args, payload, render)
    return 0


def _store_notice(counts: dict) -> None:
    print(
        f"stored: {counts['ingested']} new, "
        f"{counts['deduped']} already present"
    )


def _cmd_avf(args) -> int:
    study = _build_study(args)
    res = _measure(study, args, args.mode)
    payload = {
        "workload": args.workload,
        "structure": args.structure,
        "mode": res.mode.name,
        "scheme": res.scheme,
        "style": args.style,
        "factor": args.factor,
        "groups": res.n_groups,
        "window_cycles": res.window_cycles,
        "due_avf": res.due_avf,
        "true_due_avf": res.true_due_avf,
        "false_due_avf": res.false_due_avf,
        "sdc_avf": res.sdc_avf,
        "total_avf": res.total_avf,
    }

    def render() -> None:
        print(f"workload:   {args.workload}")
        print(f"structure:  {args.structure}")
        print(f"fault mode: {res.mode.name}  scheme: {res.scheme}  "
              f"style: {args.style} x{args.factor}")
        print(f"groups:     {res.n_groups}   window: {res.window_cycles} cycles")
        print(f"DUE MB-AVF:   {res.due_avf:.6f} "
              f"(true {res.true_due_avf:.6f}, false {res.false_due_avf:.6f})")
        print(f"SDC MB-AVF:   {res.sdc_avf:.6f}")
        print(f"total AVF:    {res.total_avf:.6f}")

    _emit(args, payload, render)
    if args.store:
        from .store import ingest_results, open_store

        with open_store(args.store) as store:
            counts = ingest_results(
                store, [res], workload=args.workload, style=args.style,
                factor=args.factor, seed=args.seed, source="cli/avf",
            )
        _store_notice(counts)
    return 0


def _cmd_ser(args) -> int:
    study = _build_study(args)
    avf_by_mode = {}
    for mode_name in TABLE_III:
        m = int(mode_name.split("x")[0])
        res = _measure(study, args, FaultMode.linear(m))
        avf_by_mode[mode_name] = (res.due_avf, res.sdc_avf)
    ser = soft_error_rate(TABLE_III, avf_by_mode, args.structure)
    payload = {
        "workload": args.workload,
        "structure": args.structure,
        "scheme": args.scheme,
        "style": args.style,
        "factor": args.factor,
        "modes": {
            name: {
                "rate": TABLE_III[name],
                "due_avf": avf_by_mode[name][0],
                "sdc_avf": avf_by_mode[name][1],
            }
            for name in TABLE_III
        },
        "due_fit": ser.due_fit,
        "sdc_fit": ser.sdc_fit,
        "total_fit": ser.total_fit,
    }

    def render() -> None:
        print(f"{'mode':<6} {'rate':>7} {'DUE AVF':>9} {'SDC AVF':>9}")
        for mode_name, fit in sorted(
            TABLE_III.items(), key=lambda kv: int(kv[0].split("x")[0])
        ):
            d, s_ = avf_by_mode[mode_name]
            print(f"{mode_name:<6} {fit:7.2f} {d:9.5f} {s_:9.5f}")
        print(f"SER ({args.structure}, {args.scheme} {args.style} "
              f"x{args.factor}): "
              f"DUE {ser.due_fit:.4f}  SDC {ser.sdc_fit:.4f}  "
              f"total {ser.total_fit:.4f}")

    _emit(args, payload, render)
    return 0


def _runtime_kwargs(args) -> dict:
    """Campaign-runtime options shared by ``inject`` and ``campaign``."""
    from .runtime import ChaosPolicy, ChaosSpec, RetryPolicy

    retry = None
    if args.retries:
        retry = RetryPolicy(
            max_attempts=args.retries + 1,
            backoff=1.0,
            jitter=0.1,
            seed=args.seed,
        )
    chaos = None
    if args.chaos_spec:
        chaos = ChaosPolicy(
            ChaosSpec.from_string(args.chaos_spec), seed=args.chaos_seed
        )
        print(f"CHAOS MODE (dev): {chaos!r}", file=sys.stderr)
    return {
        "jobs": args.jobs,
        "timeout": args.timeout,
        "retry": retry,
        "journal": args.journal,
        "progress": True,
        "chaos": chaos,
    }


def _parse_endpoint(text: str) -> tuple:
    """'host:port' -> (host, port); raises ValueError on malformed input."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"bad endpoint {text!r} (want HOST:PORT)")
    return host, int(port)


class _FabricContext:
    """Coordinator lifecycle for one CLI campaign: start, announce, stop."""

    def __init__(self, args) -> None:
        self.args = args
        self.coordinator = None

    def __enter__(self):
        if getattr(self.args, "fabric", None) != "coordinator":
            return None
        from .runtime.fabric import FabricCoordinator

        host, port = _parse_endpoint(self.args.listen or "127.0.0.1:0")
        self.coordinator = FabricCoordinator(
            host, port, shard_dir=self.args.shard_dir
        )
        self.coordinator.start()
        print(
            f"fabric coordinator listening on {self.coordinator.endpoint} "
            "(point workers at it with --fabric worker --connect)",
            file=sys.stderr,
        )
        return self.coordinator

    def __exit__(self, *exc_info) -> None:
        if self.coordinator is not None:
            self.coordinator.stop()


def _cmd_fabric_worker(args) -> int:
    """``--fabric worker``: serve leases from a coordinator until it says
    shutdown (or has been unreachable for a minute)."""
    from .runtime.fabric import run_worker

    addr = _parse_endpoint(args.connect)
    node = args.node_id or f"node-{os.getpid()}"
    print(
        f"fabric worker {node} serving {args.connect}"
        + (f" (shards in {args.shard_dir})" if args.shard_dir else ""),
        file=sys.stderr,
    )
    run_worker(
        addr, node,
        shard_dir=args.shard_dir,
        chaos_spec=args.chaos_spec or None,
        chaos_seed=args.chaos_seed,
    )
    return 0


def _resumed_notice() -> None:
    """Tell the user how much of the campaign the journal already covered."""
    counters = obs.get_metrics().snapshot().get("counters", {})
    n = counters.get("runtime.tasks_resumed", 0)
    if n:
        print(f"resumed {n} completed tasks from journal")


def _print_campaign(c) -> None:
    print(f"benchmark: {c.benchmark}")
    if c.model_sdc_avf is not None:
        print(f"  model SDC AVF (1x1, unprotected): {c.model_sdc_avf:.6f}")
    for outcome, count in sorted(c.single_outcomes.items()):
        print(f"  {outcome:<8} {count}")
    print(f"SDC ACE bits: {c.n_sdc_ace_bits}")
    for m, (injected, interfering) in sorted(c.multibit.items()):
        print(f"  {m}x1 groups: {injected}, ACE interference: {interfering}")
    if c.n_failed:
        breakdown = ", ".join(
            f"{k}={v}" for k, v in sorted(c.failures.items())
        )
        print(f"  FAILED   {c.n_failed} ({breakdown})")


def _cmd_inject(args) -> int:
    from .faultinject import run_campaign

    with _FabricContext(args) as fabric:
        c = run_campaign(
            args.workload, n_single=args.singles,
            max_groups_per_mode=args.groups, seed=args.seed, n_cus=args.cus,
            fabric=fabric, store=args.store,
            **_runtime_kwargs(args),
        )
    _resumed_notice()
    _print_campaign(c)
    return 0


def _cmd_compact(args) -> int:
    """``repro campaign compact --resume J``: atomically rewrite a journal
    to one valid record per task (drops superseded and corrupt lines)."""
    from .runtime import Journal

    if not args.journal:
        print("campaign compact requires --resume JOURNAL", file=sys.stderr)
        return 2
    if not os.path.exists(args.journal):
        print(f"journal {args.journal} does not exist", file=sys.stderr)
        return 2
    stats = Journal(args.journal).compact()
    print(
        f"compacted {args.journal}: {stats['records']} records, "
        f"{stats['bytes_before']} -> {stats['bytes_after']} bytes"
    )
    return 0


def _cmd_merge(args) -> int:
    """``repro campaign merge --resume J --shard-dir D``: fold node shard
    journals into the canonical journal (recovery after coordinator loss;
    see docs/distributed.md)."""
    from .runtime.fabric import merge_shards

    if not args.journal:
        print("campaign merge requires --resume JOURNAL", file=sys.stderr)
        return 2
    if not args.shard_dir or not os.path.isdir(args.shard_dir):
        print(
            "campaign merge requires --shard-dir pointing at the node "
            "shard directory",
            file=sys.stderr,
        )
        return 2
    stats = merge_shards(args.journal, args.shard_dir)
    print(
        f"merged {stats['merged']} records from {stats['shards']} shards "
        f"into {args.journal} (already present: {stats['present']}, "
        f"cross-shard duplicates: {stats['duplicates']})"
    )
    if args.store:
        from .store import ingest_journal, open_store

        with open_store(args.store) as store:
            counts = ingest_journal(store, args.journal)
        _store_notice(counts)
    return 0


def _cmd_campaign(args) -> int:
    from .faultinject import ace_interference_study
    from .workloads.suite import OPENCL_SAMPLES

    if args.fabric == "worker":
        return _cmd_fabric_worker(args)
    if args.benchmarks and args.benchmarks[0] == "compact":
        return _cmd_compact(args)
    if args.benchmarks and args.benchmarks[0] == "merge":
        return _cmd_merge(args)
    benchmarks = args.benchmarks or list(OPENCL_SAMPLES)
    with _FabricContext(args) as fabric:
        campaigns = ace_interference_study(
            benchmarks, n_single=args.singles,
            max_groups_per_mode=args.groups, seed=args.seed, n_cus=args.cus,
            fabric=fabric, store=args.store,
            **_runtime_kwargs(args),
        )
    _resumed_notice()
    for c in campaigns:
        _print_campaign(c)
        print()
    total_bits = sum(c.n_sdc_ace_bits for c in campaigns)
    total_groups = sum(
        n for c in campaigns for n, _ in c.multibit.values()
    )
    total_interfering = sum(c.interference_total() for c in campaigns)
    total_failed = sum(c.n_failed for c in campaigns)
    print(f"total SDC ACE bits:    {total_bits}")
    print(f"total multibit groups: {total_groups}")
    print(f"ACE interference:      {total_interfering} "
          f"({total_interfering / total_groups:.2%})"
          if total_groups else "ACE interference:      n/a")
    if total_failed:
        print(f"failed injections:     {total_failed}")
    return 0


def _cmd_mttf(args) -> int:
    rows = list(figure2_sweep())
    payload = {
        "rows": [
            {
                "raw_fit_per_mbit": r.raw_fit_per_mbit,
                "mttf_smbf_01pct": r.mttf_smbf_01pct,
                "mttf_smbf_5pct": r.mttf_smbf_5pct,
                "mttf_tmbf_unbounded": r.mttf_tmbf_unbounded,
                "mttf_tmbf_100yr": r.mttf_tmbf_100yr,
            }
            for r in rows
        ]
    }

    def render() -> None:
        print(f"{'FIT/Mbit':>9} {'sMBF 0.1%':>12} {'sMBF 5%':>12} "
              f"{'tMBF inf':>12} {'tMBF 100yr':>12}")
        for r in rows:
            print(f"{r.raw_fit_per_mbit:9.2f} {r.mttf_smbf_01pct:12.3e} "
                  f"{r.mttf_smbf_5pct:12.3e} {r.mttf_tmbf_unbounded:12.3e} "
                  f"{r.mttf_tmbf_100yr:12.3e}")

    _emit(args, payload, render)
    if args.store:
        from .store import open_store

        with open_store(args.store) as store:
            ingested, deduped = store.put_mttf_rows(rows)
        _store_notice({"ingested": ingested, "deduped": deduped})
    return 0


def _cmd_query(args) -> int:
    """``repro query``: answer AVF questions from the store alone — no
    simulation runs, however many rows come back."""
    from .store import open_store

    filters = {}
    for column in ("workload", "structure", "scheme", "style", "mode",
                   "ser_model", "source", "factor", "seed"):
        values = getattr(args, column)
        if values:
            filters[column] = values[0] if len(values) == 1 else values
    with open_store(args.store) as store:
        result = store.query(limit=args.limit, **filters)
        if args.group_by:
            keys = tuple(k for k in args.group_by.split(",") if k)
            grouped = result.group_by(
                keys, value=args.value, agg=args.agg
            )
            payload = {
                "groups": [
                    {"key": list(k), args.value: v}
                    for k, v in grouped.items()
                ],
                "agg": args.agg,
                "value": args.value,
            }

            def render() -> None:
                width = max(
                    (len(" ".join(str(p) for p in k)) for k in grouped),
                    default=8,
                )
                print(f"{'group':<{width}}  {args.agg}({args.value})")
                for key, value in grouped.items():
                    label = " ".join(str(p) for p in key)
                    print(f"{label:<{width}}  {value:.6f}")

        else:
            payload = {"rows": result.to_dicts(), "count": len(result)}

            def render() -> None:
                print(
                    f"{'workload':<12} {'struct':<6} {'scheme':<8} "
                    f"{'layout':<16} {'mode':<9} {'DUE':>9} {'SDC':>9}"
                )
                for r in result:
                    print(
                        f"{r.workload:<12} {r.structure:<6} {r.scheme:<8} "
                        f"{r.style + ' x' + str(r.factor):<16} "
                        f"{r.mode:<9} {r.due_avf:9.5f} {r.sdc_avf:9.5f}"
                    )
                print(f"{len(result)} rows")

    _emit(args, payload, render)
    return 0


def _cmd_report(args) -> int:
    """``repro report build|serve``: render the store as the paper's
    figures — statically to disk, or live over HTTP."""
    from .report import ReportService, build_report
    from .store import open_store

    if args.action == "build":
        with open_store(args.store) as store:
            index = build_report(store, args.out)
        print(f"report written to {index}")
        return 0
    host, port = _parse_endpoint(args.listen or "127.0.0.1:0")
    service = ReportService(args.store, host=host, port=port)
    service.start()
    print(f"report service listening on {service.endpoint} (Ctrl-C stops)",
          file=sys.stderr)
    try:
        import time

        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


def _cmd_store(args) -> int:
    """``repro store verify|rebuild``: self-healing maintenance for a
    results store (runbook: docs/results-store.md)."""
    from .store import rebuild_store, verify_store

    if args.action == "verify":
        report = verify_store(args.store, quick=args.quick)

        def render() -> None:
            print(f"store: {report['path']}")
            for name, value in sorted(report["checks"].items()):
                print(f"  {name}: {value}")
            if report["ok"]:
                print("verdict: ok")
            else:
                for problem in report["problems"]:
                    print(f"  problem: {problem}")
                print(
                    "verdict: UNHEALTHY — rebuild from journals with "
                    "'repro store rebuild --store ... --from-journal ...'"
                )

        _emit(args, report, render)
        return 0 if report["ok"] else 1

    result = rebuild_store(
        args.store, args.journals or (), shard_dir=args.shard_dir
    )

    def render() -> None:
        print(f"store: {result['path']}")
        if result["quarantined"]:
            print(f"  quarantined old file: {result['quarantined']}")
        print(
            f"  replayed {result['journals']} journal(s): "
            f"{result['ingested']} ingested, {result['deduped']} deduped"
        )
        verdict = result["verify"]
        print(f"verdict: {'ok' if verdict['ok'] else 'UNHEALTHY'}")
        for problem in verdict["problems"]:
            print(f"  problem: {problem}")

    _emit(args, result, render)
    return 0 if result["verify"]["ok"] else 1


def _cmd_stats(args) -> int:
    """Run a workload plus one AVF measurement with full observability on,
    then print the per-stage timing and metrics report."""
    from .obs import get_metrics

    study = _build_study(args)
    study.cache_avf("l1", FaultMode.linear(2), SCHEMES["parity"])
    if args.prometheus:
        # Scrapeable text exposition instead of the human report, so the
        # engine counters feed straight into a Prometheus file collector.
        print(get_metrics().to_prometheus(), end="")
    else:
        print(observability_report())
    return 0


def _cmd_lint(args) -> int:
    """Run the invariant linter (see docs/static-analysis.md)."""
    from .staticcheck.cli import lint_command

    return lint_command(args)


def _add_common(sub) -> None:
    sub.add_argument("workload", choices=names())
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--cus", type=int, default=4, help="compute units")
    sub.add_argument(
        "--scaled", action="store_true", default=True,
        help="use the scaled experiment cache configuration (default)",
    )
    sub.add_argument(
        "--paper-caches", dest="scaled", action="store_false",
        help="use the paper's 16KB/256KB cache sizes instead",
    )


def _add_measure_args(sub) -> None:
    sub.add_argument("--structure", choices=("l1", "l2", "vgpr"), default="l1")
    sub.add_argument("--scheme", choices=sorted(SCHEMES), default="parity")
    sub.add_argument("--style", choices=sorted(_STYLES), default="none")
    sub.add_argument("--factor", type=int, default=1)


def _add_obs_args(sub) -> None:
    sub.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a span trace here on exit (.jsonl = one span per line; "
             "any other suffix = Chrome trace-event JSON, loadable in "
             "Perfetto / chrome://tracing)",
    )
    sub.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write a JSON metrics snapshot (counters, gauges, histograms) "
             "here on exit",
    )


def _add_json_arg(sub) -> None:
    sub.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of the text report",
    )


def _add_store_arg(sub, help_text: Optional[str] = None) -> None:
    sub.add_argument(
        "--store", metavar="PATH", default=None,
        help=help_text or (
            "persist the results into this sqlite store (created on "
            "first use); keyed writes make re-runs no-ops — query it "
            "back with 'repro query', render it with 'repro report'"
        ),
    )


def _add_runtime_args(sub) -> None:
    sub.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="run injections in N isolated worker processes (0 = in-process)",
    )
    sub.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="kill any single simulation exceeding this wall-clock budget "
             "(needs --jobs >= 1)",
    )
    sub.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry infrastructure failures (worker death, timeout) "
             "up to N times with exponential backoff",
    )
    sub.add_argument(
        "--resume", "--journal", dest="journal", default=None,
        metavar="JOURNAL",
        help="JSONL checkpoint journal: completed injections are appended "
             "here and skipped on re-run, making the campaign resumable",
    )
    sub.add_argument(
        "--chaos-spec", default=None, metavar="SPEC",
        help="DEV ONLY: fault-inject the campaign runtime itself, e.g. "
             "'worker_crash=0.1,journal_corrupt=0.05' (see "
             "repro.runtime.ChaosSpec); drop this flag when resuming",
    )
    sub.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="DEV ONLY: seed for the deterministic chaos schedule",
    )
    sub.add_argument(
        "--fabric", choices=("coordinator", "worker"), default=None,
        help="distributed mode: 'coordinator' shards this campaign across "
             "worker nodes, 'worker' serves a coordinator's leases "
             "(see docs/distributed.md)",
    )
    sub.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="coordinator bind address (default 127.0.0.1:0 = any port)",
    )
    sub.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="coordinator address a worker node connects to",
    )
    sub.add_argument(
        "--node-id", default=None, metavar="NAME",
        help="stable worker node id (default: node-<pid>); names the "
             "node's shard journal and keys its chaos schedule",
    )
    sub.add_argument(
        "--shard-dir", default=None, metavar="DIR",
        help="replicated-journal shard directory: workers append local "
             "CRC'd shards here, the coordinator merges them into the "
             "canonical --resume journal on commit",
    )


def _stats_wrap(argv: List[str]) -> int:
    """``repro stats [--trace F] [--metrics F] [--prometheus] -- CMD ...``:
    run any subcommand with full observability on, then print the
    per-stage timing and metrics report for what it actually did."""
    idx = argv.index("--")
    own, inner = argv[1:idx], argv[idx + 1:]
    parser = argparse.ArgumentParser(
        prog="repro stats --",
        description="profile another repro subcommand",
    )
    _add_obs_args(parser)
    parser.add_argument("--prometheus", action="store_true")
    opts = parser.parse_args(own)
    if not inner:
        parser.error("nothing to profile after '--'")
    with obs.observe(trace=opts.trace, metrics=opts.metrics) as (
        registry, tracer,
    ):
        # The inner main() sees obs already enabled and runs its handler
        # directly, so this session owns the export and the report.
        code = main(inner)
    print()
    if opts.prometheus:
        print(registry.to_prometheus(), end="")
    else:
        print(obs.format_report(registry, tracer))
    return code


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] == "stats" and "--" in argv:
        return _stats_wrap(argv)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MB-AVF: multi-bit AVF analysis (MICRO 2014 reproduction)",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    subs.add_parser("list", help="list available workloads")

    p_run = subs.add_parser("run", help="run and verify a workload")
    _add_common(p_run)
    _add_obs_args(p_run)
    _add_json_arg(p_run)

    p_avf = subs.add_parser("avf", help="measure an MB-AVF")
    _add_common(p_avf)
    _add_measure_args(p_avf)
    p_avf.add_argument("--mode", type=_parse_mode, default=FaultMode.linear(2),
                       help="fault mode, e.g. 1x1, 4x1, 2x2")
    _add_obs_args(p_avf)
    _add_json_arg(p_avf)
    _add_store_arg(p_avf)

    p_ser = subs.add_parser(
        "ser", help="soft error rate over all Table III fault modes"
    )
    _add_common(p_ser)
    _add_measure_args(p_ser)
    _add_obs_args(p_ser)
    _add_json_arg(p_ser)

    p_inj = subs.add_parser("inject", help="fault-injection campaign")
    _add_common(p_inj)
    p_inj.add_argument("--singles", type=int, default=40)
    p_inj.add_argument("--groups", type=int, default=10)
    _add_runtime_args(p_inj)
    _add_obs_args(p_inj)
    _add_store_arg(p_inj)

    p_camp = subs.add_parser(
        "campaign",
        help="multi-benchmark injection campaign (the Table II study)",
    )
    p_camp.add_argument(
        "benchmarks", nargs="*", metavar="BENCHMARK",
        help="benchmarks to inject (default: the AMD OpenCL sample suite)",
    )
    p_camp.add_argument("--seed", type=int, default=0)
    p_camp.add_argument("--cus", type=int, default=2, help="compute units")
    p_camp.add_argument("--singles", type=int, default=40)
    p_camp.add_argument("--groups", type=int, default=10)
    _add_runtime_args(p_camp)
    _add_obs_args(p_camp)
    _add_store_arg(
        p_camp,
        "persist campaign summaries and journaled injection verdicts "
        "here; 'campaign merge --store' folds a merged journal in the "
        "same way (re-ingest is a no-op)",
    )

    p_mttf = subs.add_parser("mttf", help="Figure 2 tMBF/sMBF MTTF table")
    _add_json_arg(p_mttf)
    _add_store_arg(p_mttf)

    p_query = subs.add_parser(
        "query",
        help="answer AVF questions from a results store — zero simulation",
    )
    p_query.add_argument(
        "--store", metavar="PATH", required=True,
        help="the sqlite results store to read",
    )
    for flag, column in (
        ("--workload", "workload"), ("--structure", "structure"),
        ("--scheme", "scheme"), ("--style", "style"), ("--mode", "mode"),
        ("--ser-model", "ser_model"), ("--source", "source"),
    ):
        p_query.add_argument(
            flag, dest=column, action="append", default=None,
            metavar=column.upper(),
            help=f"filter by {column} (repeat for an IN-list)",
        )
    for flag in ("--factor", "--seed"):
        p_query.add_argument(
            flag, dest=flag[2:], action="append", type=int, default=None,
            metavar="N", help=f"filter by {flag[2:]} (repeatable)",
        )
    p_query.add_argument(
        "--group-by", metavar="COLS", default=None,
        help="comma-separated key columns; aggregates --value with --agg "
             "per group instead of listing rows",
    )
    p_query.add_argument(
        "--value", default="sdc_avf",
        choices=("due_avf", "sdc_avf", "true_due_avf", "false_due_avf",
                 "total_avf", "n_groups", "window_cycles"),
        help="value column for --group-by (default sdc_avf)",
    )
    p_query.add_argument(
        "--agg", default="mean",
        choices=("mean", "min", "max", "sum", "count"),
        help="aggregate for --group-by (default mean)",
    )
    p_query.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="return at most N rows",
    )
    _add_obs_args(p_query)
    _add_json_arg(p_query)

    p_report = subs.add_parser(
        "report",
        help="render a results store as the paper's figures: static HTML "
             "or a live dashboard service",
    )
    p_report.add_argument(
        "action", choices=("build", "serve"),
        help="'build' writes byte-stable HTML to --out; 'serve' runs the "
             "live dashboard (HTML + JSON API) until interrupted",
    )
    p_report.add_argument(
        "--store", metavar="PATH", required=True,
        help="the sqlite results store to render",
    )
    p_report.add_argument(
        "--out", metavar="DIR", default="report",
        help="output directory for 'build' (default: report/)",
    )
    p_report.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="bind address for 'serve' (default 127.0.0.1:0 = any port)",
    )

    p_store = subs.add_parser(
        "store",
        help="results-store maintenance: verify integrity, or quarantine "
             "a damaged store and rebuild it from campaign journals",
    )
    p_store.add_argument(
        "action", choices=("verify", "rebuild"),
        help="'verify' runs sqlite integrity + schema/row-count checks "
             "(exit 1 on problems); 'rebuild' quarantines the file and "
             "replays journals through the idempotent ingest",
    )
    p_store.add_argument(
        "--store", metavar="PATH", required=True,
        help="the sqlite results store to check or rebuild",
    )
    p_store.add_argument(
        "--quick", action="store_true",
        help="verify with PRAGMA quick_check (faster, skips index "
             "consistency) instead of the full integrity_check",
    )
    p_store.add_argument(
        "--from-journal", dest="journals", action="append", default=None,
        metavar="JOURNAL",
        help="campaign journal to replay during 'rebuild' (repeatable; "
             "at least one is required)",
    )
    p_store.add_argument(
        "--shard-dir", metavar="DIR", default=None,
        help="fabric node shard directory to merge into the first "
             "--from-journal before replaying ('rebuild' only)",
    )
    _add_obs_args(p_store)
    _add_json_arg(p_store)

    p_stats = subs.add_parser(
        "stats",
        help="profile a workload + AVF measurement and print stage "
             "timings and metrics",
    )
    _add_common(p_stats)
    _add_obs_args(p_stats)
    p_stats.add_argument(
        "--prometheus", action="store_true",
        help="print the metrics in the Prometheus text exposition format "
             "instead of the human-readable report",
    )

    p_lint = subs.add_parser(
        "lint",
        help="AST invariant linter: determinism, numpy hygiene, "
             "fork/atomic-IO safety, obs discipline",
    )
    from .staticcheck.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    _add_obs_args(p_lint)

    args = parser.parse_args(argv)
    # Validate export paths up front: a campaign must not run for an hour
    # and then lose its trace to a typo'd directory.
    for flag in ("trace", "metrics"):
        path = getattr(args, flag, None)
        if path:
            if os.path.isdir(path):
                parser.error(f"--{flag} {path}: is a directory")
            parent = os.path.dirname(os.path.abspath(path))
            if not os.path.isdir(parent):
                parser.error(
                    f"--{flag} {path}: directory {parent} does not exist"
                )
    if args.command in ("inject", "campaign"):
        if args.jobs < 0:
            parser.error("--jobs must be >= 0 (0 = in-process)")
        if args.retries < 0:
            parser.error("--retries must be >= 0")
        if (
            args.timeout is not None and args.jobs < 1
            and args.fabric != "coordinator"
        ):
            parser.error(
                "--timeout requires --jobs >= 1 (process isolation) "
                "or --fabric coordinator (lease expiry)"
            )
        if args.journal and os.path.isdir(args.journal):
            parser.error(f"--resume {args.journal}: is a directory")
        if args.chaos_spec:
            from .runtime import ChaosSpec

            try:
                ChaosSpec.from_string(args.chaos_spec)
            except ValueError as exc:
                parser.error(f"--chaos-spec: {exc}")
        if args.fabric == "worker":
            if args.command != "campaign":
                parser.error("--fabric worker is a 'campaign' mode")
            if not args.connect:
                parser.error("--fabric worker requires --connect HOST:PORT")
        if args.fabric is None and (args.listen or args.connect):
            parser.error("--listen/--connect require --fabric")
        for flag in ("listen", "connect"):
            value = getattr(args, flag, None)
            if value:
                try:
                    _parse_endpoint(value)
                except ValueError as exc:
                    parser.error(f"--{flag}: {exc}")
        benchmarks = getattr(args, "benchmarks", None)
        # "campaign compact" / "campaign merge" are the journal-maintenance
        # subcommands, not benchmark lists.
        if benchmarks and benchmarks[0] not in ("compact", "merge"):
            unknown = [b for b in benchmarks if b not in names()]
            if unknown:
                parser.error(f"unknown benchmarks: {', '.join(unknown)}")
    store_path = getattr(args, "store", None)
    if store_path:
        if os.path.isdir(store_path):
            parser.error(f"--store {store_path}: is a directory")
        if args.command in ("query", "report"):
            # Readers refuse to conjure an empty store: a typo'd path
            # should fail loudly, not return zero rows.
            if not os.path.exists(store_path):
                parser.error(f"--store {store_path}: does not exist")
        else:
            parent = os.path.dirname(os.path.abspath(store_path))
            if not os.path.isdir(parent):
                parser.error(
                    f"--store {store_path}: directory {parent} "
                    "does not exist"
                )
    if args.command == "store":
        if args.action == "rebuild":
            if not args.journals:
                parser.error(
                    "store rebuild requires at least one --from-journal "
                    "(the journals are the durable record to replay)"
                )
            for journal in args.journals:
                if not os.path.exists(journal):
                    parser.error(f"--from-journal {journal}: does not exist")
            if args.shard_dir and not os.path.isdir(args.shard_dir):
                parser.error(f"--shard-dir {args.shard_dir}: not a directory")
        elif args.journals or args.shard_dir:
            parser.error("--from-journal/--shard-dir are 'rebuild' options")
    if args.command == "report" and args.listen:
        try:
            _parse_endpoint(args.listen)
        except ValueError as exc:
            parser.error(f"--listen: {exc}")
    if args.command == "query" and args.group_by:
        from .store import FILTER_COLUMNS

        bad = [
            k for k in args.group_by.split(",")
            if k and k not in FILTER_COLUMNS
        ]
        if bad:
            parser.error(
                f"--group-by: unknown columns {', '.join(bad)} "
                f"(valid: {', '.join(FILTER_COLUMNS)})"
            )
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "avf": _cmd_avf,
        "ser": _cmd_ser,
        "inject": _cmd_inject,
        "campaign": _cmd_campaign,
        "mttf": _cmd_mttf,
        "query": _cmd_query,
        "report": _cmd_report,
        "store": _cmd_store,
        "stats": _cmd_stats,
        "lint": _cmd_lint,
    }
    handler = handlers[args.command]
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    try:
        # Observability is always on for the commands whose reports read
        # it (resumed-task notice, stats); elsewhere only when an export
        # was asked for, so the plain paths keep their no-op
        # instrumentation.  When obs is already live this run is nested
        # inside a ``stats --`` wrapper, which owns the session.
        if not obs.enabled() and (
            trace or metrics
            or args.command in ("inject", "campaign", "stats", "lint")
        ):
            with obs.observe(trace=trace, metrics=metrics):
                return handler(args)
        return handler(args)
    except CampaignInterrupted as stop:
        # Graceful drain: every completed task is already fsynced in the
        # journal, so tell the operator exactly how to pick the campaign
        # back up.
        print(
            f"\ninterrupted: {stop.completed}/{stop.total} tasks "
            "journaled; journal sealed",
            file=sys.stderr,
        )
        if stop.journal_path is not None:
            resume_argv = _strip_chaos_args(argv)
            print(
                "resume with: python -m repro "
                + " ".join(shlex.quote(a) for a in resume_argv),
                file=sys.stderr,
            )
        return 130


def _strip_chaos_args(argv: List[str]) -> List[str]:
    """Drop --chaos-spec/--chaos-seed (and their values) from an argv.

    The suggested resume command must not carry them: journal faults are
    keyed per task id, so resuming with the same chaos policy would
    replay the same write faults instead of finishing the campaign.
    """
    out: List[str] = []
    skip = False
    for a in argv:
        if skip:
            skip = False
            continue
        if a in ("--chaos-spec", "--chaos-seed"):
            skip = True
            continue
        if a.startswith("--chaos-spec=") or a.startswith("--chaos-seed="):
            continue
        out.append(a)
    return out


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
