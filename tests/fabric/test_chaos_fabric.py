"""Node-level chaos acceptance: the fabric survives losing its fleet.

The seeded acceptance scenario (see ISSUE/ROADMAP): a sharded campaign
with one SIGKILLed worker node and one RPC-partitioned worker node is
drained mid-flight, then resumed from the merged replicated journal —
and converges to results identical to an undisturbed single-host run,
with zero lost and zero duplicated journal records.

Chaos here is real: the killed node is a spawned process destroyed with
SIGKILL (no goodbye, no flush), and the partitioned node runs a
deterministic :class:`~repro.runtime.chaos.ChaosSpec` whose
``rpc_partition`` windows sever its data plane.  Every assertion holds
for *any* seed — seeds only pick which exact RPCs fail.
"""

import json

import pytest

from repro.runtime import Task, TaskOutcome
from repro.runtime.chaos import ChaosSpec
from repro.runtime.errors import CampaignInterrupted
from repro.runtime.fabric import FabricCoordinator, FabricExecutor, stub_job

from .conftest import (
    FABRIC_CHAOS_SEEDS,
    expected_map,
    journaled_ids,
    outcome_map,
    spawn_worker,
    stub_tasks,
    wait_for,
)

pytestmark = pytest.mark.fabric_chaos


def reap(*procs):
    for proc in procs:
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)


class TestNodeLossAcceptance:
    def test_sigkill_plus_partition_resumes_to_exact_results(self, tmp_path):
        """The PR's seeded acceptance test, end to end."""
        shard_dir = tmp_path / "shards"
        journal = tmp_path / "campaign.jsonl"
        tasks = stub_tasks("acc", 20)
        expected = expected_map(tasks, mul=3)
        job = stub_job(mul=3, sleep=0.05)

        coord = FabricCoordinator(
            lease_ttl=0.8, lease_batch=2, poll_interval=0.02,
            shard_dir=shard_dir,
        )
        coord.start()
        # n0: healthy until we SIGKILL it mid-campaign.
        n0 = spawn_worker(coord.address, "n0", shard_dir=shard_dir)
        # n1: data-plane partition windows, deterministic under its seed.
        n1 = spawn_worker(
            coord.address, "n1", shard_dir=shard_dir,
            chaos_spec=ChaosSpec(rpc_partition=0.3, partition_span=4),
            chaos_seed=2,
        )
        try:
            ex = FabricExecutor(
                coord, job, journal=journal,
                worker_grace=30.0, drain_signals=False, stop_after=10,
            )
            # Kill n0 the moment its shard proves it executed work: a
            # real node death with journaled-but-possibly-unreported
            # records behind it.
            n0_shard = shard_dir / "n0.jsonl"
            kill_done = []

            import threading

            def killer():
                try:
                    wait_for(
                        lambda: n0_shard.exists()
                        and n0_shard.stat().st_size > 0,
                        timeout=15.0,
                    )
                finally:
                    n0.kill()
                    kill_done.append(True)

            killer_thread = threading.Thread(target=killer, daemon=True)
            killer_thread.start()
            with pytest.raises(CampaignInterrupted) as exc_info:
                ex.run(tasks)
            killer_thread.join(timeout=20.0)
            assert kill_done, "killer thread never fired"
            assert exc_info.value.completed < len(tasks)
        finally:
            coord.stop()
            reap(n0, n1)

        # The drain merged every visible shard into the canonical
        # journal; the killed node's work survives under its name.
        interim = journaled_ids(journal)
        assert len(interim) == len(set(interim)), "duplicate records"
        assert any(
            json.loads(line).get("node") == "n0"
            for line in journal.read_text().splitlines()
        ), "the killed node's replicated records were lost"

        # Resume from the merged journal — no fleet this time: the
        # remaining tasks demote to local execution.
        coord2 = FabricCoordinator(shard_dir=shard_dir)
        ex2 = FabricExecutor(
            coord2, job, journal=journal,
            worker_grace=0.05, drain_signals=False,
        )
        try:
            results = ex2.run(tasks)
        finally:
            ex2.close()
            coord2.stop()

        # Identical to the undisturbed single-host run ...
        assert outcome_map(results) == expected
        # ... with zero lost and zero duplicated records.
        ids = journaled_ids(journal)
        assert sorted(ids) == [t.id for t in tasks]
        assert len(ids) == len(set(ids))
        # Interim records were never re-executed or rewritten.
        assert set(interim) <= set(ids)


class TestChaosFleetConvergence:
    @pytest.mark.parametrize("seed", FABRIC_CHAOS_SEEDS)
    def test_chaotic_fleet_converges_to_fault_free_results(
        self, tmp_path, seed
    ):
        """Full chaos menu at once: kills, drops, dups, partitions,
        heartbeat blackouts — one seed, one exact failure schedule, and
        the same final results every time."""
        shard_dir = tmp_path / "shards"
        journal = tmp_path / "campaign.jsonl"
        tasks = stub_tasks("storm", 18)
        spec = ChaosSpec(
            node_kill=0.12, rpc_drop=0.1, rpc_dup=0.2, rpc_partition=0.15,
            heartbeat_blackout=0.25, rpc_delay=0.1,
            rpc_delay_seconds=0.01, partition_span=4,
        )
        coord = FabricCoordinator(
            lease_ttl=0.8, lease_batch=2, poll_interval=0.02,
            shard_dir=shard_dir,
        )
        coord.start()
        procs = [
            spawn_worker(
                coord.address, f"n{i}", shard_dir=shard_dir,
                chaos_spec=spec, chaos_seed=seed + i,
            )
            for i in range(2)
        ]
        try:
            ex = FabricExecutor(
                coord, stub_job(), journal=journal,
                worker_grace=2.0, drain_signals=False,
            )
            results = ex.run(tasks)
            ex.close()
        finally:
            coord.stop()
            reap(*procs)
        assert outcome_map(results) == expected_map(tasks)
        ids = journaled_ids(journal)
        assert sorted(ids) == [t.id for t in tasks]
        assert len(ids) == len(set(ids))


class TestIdempotentReexecution:
    def test_journal_identity_keys_at_least_once_execution(self, tmp_path):
        """A record journaled under one fabric run is never re-executed
        by a later one, even when the rerun would produce a different
        value — journal record identity is the idempotency key."""
        journal = tmp_path / "j.jsonl"
        tasks = [Task("idem/0", 5)]
        coord = FabricCoordinator()
        ex = FabricExecutor(
            coord, stub_job(mul=2), journal=journal,
            worker_grace=0.05, drain_signals=False,
        )
        try:
            first = ex.run(tasks)
        finally:
            ex.close()
            coord.stop()
        assert first["idem/0"].value == 10
        # Re-run with a *different* job: the journaled result wins.
        coord2 = FabricCoordinator()
        ex2 = FabricExecutor(
            coord2, stub_job(mul=999), journal=journal,
            worker_grace=0.05, drain_signals=False,
        )
        try:
            again = ex2.run(tasks)
        finally:
            ex2.close()
            coord2.stop()
        assert again["idem/0"].value == 10
        assert again["idem/0"].outcome == TaskOutcome.OK
        assert journaled_ids(journal) == ["idem/0"]
