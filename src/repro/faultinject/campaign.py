"""Fault-injection campaigns: the Table II ACE-interference study.

The paper validates its SDC MB-AVF model (Sec. VII-A) by checking how often
*ACE interference* occurs — a multi-bit fault whose bits interact at program
level such that the group's outcome differs from what the single-bit
ACEness of its members predicts (e.g. two flips cancelling in an XOR).

The study proceeds exactly as in the paper:

1. random single-bit injections into the VGPR identify SDC ACE bits
   (injections whose corrupted output differs from the golden output);
2. multi-bit fault groups are formed from each SDC ACE bit plus physically
   adjacent bits, and injected as one simultaneous flip;
3. a group exhibits ACE interference when the multi-bit injection is
   *masked* even though it contains a known SDC ACE bit.

The paper finds 2 interfering groups out of 1730 SDC ACE bits (~0.1%),
concluding single-bit ACE analysis is a sound basis for SDC MB-AVF.

Every injection runs through the fault-tolerant campaign runtime
(:mod:`repro.runtime`): with ``jobs >= 1`` each simulation executes in an
isolated worker process with a wall-clock timeout and bounded retries,
and with a ``journal`` every completed injection is checkpointed so a
killed campaign resumes from where it died.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import get_metrics, get_tracer
from ..runtime import (
    ChaosPolicy,
    Executor,
    Journal,
    RetryPolicy,
    Task,
    TaskOutcome,
    TaskResult,
    classify_exception,
)
from ..workloads.base import run_workload
from ..workloads.suite import OPENCL_SAMPLES, REGISTRY

__all__ = [
    "InjectionOutcome",
    "InjectionSpec",
    "BenchmarkCampaign",
    "run_campaign",
    "ace_interference_study",
]

#: cycle budget for one injected simulation before it counts as a hang
DEFAULT_MAX_CYCLES = 2_000_000


class InjectionOutcome:
    """Semantic outcome labels for a single injection run."""

    MASKED = "masked"      # output identical to golden
    SDC = "sdc"            # output silently corrupted
    CRASH = "crash"        # simulator trapped (bad address, illegal op...)
    HANG = "hang"          # simulator exceeded its cycle budget

    #: Table II counts crash and hang alike as non-SDC detections
    ALL = (MASKED, SDC, CRASH, HANG)


#: runtime taxonomy -> injection verdict for semantic failures
_TASK_TO_VERDICT = {
    TaskOutcome.SIM_CRASH: InjectionOutcome.CRASH,
    TaskOutcome.SIM_HANG: InjectionOutcome.HANG,
}


@dataclass(frozen=True)
class InjectionSpec:
    """One fault: flip ``bits`` of (wavefront, register, lane) at ``cycle``."""

    wf: int
    reg: int
    lane: int
    bits: Tuple[int, ...]
    cycle: int

    @property
    def bitmask(self) -> int:
        mask = 0
        for b in self.bits:
            mask |= 1 << (b & 31)
        return mask

    def to_dict(self) -> Dict:
        """JSON-safe form, journaled as task provenance."""
        return {
            "wf": self.wf, "reg": self.reg, "lane": self.lane,
            "bits": list(self.bits), "cycle": self.cycle,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "InjectionSpec":
        return cls(
            int(data["wf"]), int(data["reg"]), int(data["lane"]),
            tuple(int(b) for b in data["bits"]), int(data["cycle"]),
        )


@dataclass
class BenchmarkCampaign:
    """Results of the injection study for one benchmark."""

    benchmark: str
    n_single_injections: int = 0
    single_outcomes: Dict[str, int] = field(default_factory=dict)
    sdc_ace_bits: List[InjectionSpec] = field(default_factory=list)
    #: per fault mode width: (groups injected, groups with ACE interference)
    multibit: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: injections that exhausted their retries, by runtime outcome
    #: (``timeout``, ``worker_died``, ``infra_error``, ``poisoned``);
    #: these carry no verdict and are excluded from the single/multibit
    #: tallies above.
    failures: Dict[str, int] = field(default_factory=dict)
    #: ACE model context: the unprotected single-bit VGPR SDC AVF the
    #: injection outcomes are validated against (``None`` on records
    #: archived before this field existed)
    model_sdc_avf: Optional[float] = None

    @property
    def n_sdc_ace_bits(self) -> int:
        return len(self.sdc_ace_bits)

    @property
    def n_failed(self) -> int:
        return sum(self.failures.values())

    def interference_total(self) -> int:
        return sum(i for _, i in self.multibit.values())

    def to_dict(self) -> Dict:
        """JSON-safe form for archiving campaign results."""
        return {
            "benchmark": self.benchmark,
            "n_single_injections": self.n_single_injections,
            "single_outcomes": dict(self.single_outcomes),
            "sdc_ace_bits": [s.to_dict() for s in self.sdc_ace_bits],
            "multibit": {str(m): list(v) for m, v in self.multibit.items()},
            "failures": dict(self.failures),
            "model_sdc_avf": self.model_sdc_avf,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BenchmarkCampaign":
        return cls(
            benchmark=data["benchmark"],
            n_single_injections=int(data["n_single_injections"]),
            single_outcomes=dict(data["single_outcomes"]),
            sdc_ace_bits=[
                InjectionSpec.from_dict(d) for d in data["sdc_ace_bits"]
            ],
            multibit={
                int(m): (int(v[0]), int(v[1]))
                for m, v in data["multibit"].items()
            },
            failures=dict(data.get("failures", {})),
            model_sdc_avf=data.get("model_sdc_avf"),
        )


class _Runner:
    """Executes one workload repeatedly with identical inputs."""

    def __init__(
        self, workload_cls, seed: int, n_cus: int,
        max_cycles: int = DEFAULT_MAX_CYCLES,
    ) -> None:
        self.workload_cls = workload_cls
        self.seed = seed
        self.n_cus = n_cus
        self.max_cycles = max_cycles
        golden_run = run_workload(workload_cls(seed=seed), n_cus=n_cus)
        #: kept for the ACE-model context stage of :func:`run_campaign`
        self.golden_run = golden_run
        self.golden = self._snapshot(golden_run)
        recs = golden_run.apu.records
        # Injection targeting: wavefront activity windows + register counts.
        self.windows: Dict[int, Tuple[int, int]] = {}
        for r in recs:
            lo, hi = self.windows.get(r.wf, (r.t, r.t))
            self.windows[r.wf] = (min(lo, r.t), max(hi, r.t))
        self.n_vregs = {
            w: p.n_vregs for w, p in golden_run.apu.wf_programs.items()
        }

    @staticmethod
    def _snapshot(run) -> bytes:
        return b"".join(
            run.memory.data[b : b + sz].tobytes() for b, sz in run.output_ranges
        )

    def random_spec(self, rng: np.random.Generator, n_bits: int = 1) -> InjectionSpec:
        wf = int(rng.choice(sorted(self.windows)))
        lo, hi = self.windows[wf]
        reg = int(rng.integers(0, self.n_vregs[wf]))
        lane = int(rng.integers(0, 16))
        # Sample the group base from [0, 32 - n_bits] so all n_bits flips
        # stay in-word without collapsing into duplicates near bit 31.
        start = int(rng.integers(0, 33 - n_bits))
        spec = InjectionSpec(
            wf, reg, lane, tuple(range(start, start + n_bits)), cycle=int(
                rng.integers(lo, hi + 1)
            ),
        )
        assert len(spec.bits) == n_bits
        return spec

    def inject(self, spec: InjectionSpec) -> str:
        from ..arch.gpu import Apu
        from ..arch.memory import GlobalMemory

        get_metrics().counter("campaign.injections").inc()
        with get_tracer().span(
            "inject", wf=spec.wf, reg=spec.reg, bits=len(spec.bits),
        ) as span:
            # Setup failures happen before any fault lands: they are harness
            # bugs and propagate (the runtime reports them as INFRA_ERROR).
            wl = self.workload_cls(seed=self.seed)
            mem = GlobalMemory()
            wl.setup(mem)
            apu = Apu(n_cus=self.n_cus, memory=mem, max_cycles=self.max_cycles)
            apu.inject_fault(
                spec.wf, spec.reg, spec.lane, spec.bitmask, spec.cycle
            )
            try:
                wl.launch(apu)
                apu.finish()
            except Exception as exc:
                # Post-injection exceptions are fault consequences: a cycle
                # budget overrun is a hang, a simulator trap is a crash.
                # Anything the taxonomy pins on the harness still propagates.
                outcome = classify_exception(exc)
                if outcome == TaskOutcome.SIM_HANG:
                    span.set(verdict=InjectionOutcome.HANG)
                    return InjectionOutcome.HANG
                if outcome == TaskOutcome.SIM_CRASH:
                    span.set(verdict=InjectionOutcome.CRASH)
                    return InjectionOutcome.CRASH
                raise
            got = b"".join(
                mem.data[b : b + sz].tobytes()
                for b, sz in (mem.buffer(n) for n in wl.outputs)
            )
            verdict = (
                InjectionOutcome.MASKED if got == self.golden
                else InjectionOutcome.SDC
            )
            span.set(verdict=verdict)
            return verdict


# -- worker-process entry points (must be module-level for spawn pickling) ----

_WORKER_RUNNER: Optional[_Runner] = None


def _init_injection_worker(
    benchmark: str, seed: int, n_cus: int, max_cycles: int
) -> None:
    """Build this worker's runner (golden run + targeting data) once."""
    global _WORKER_RUNNER
    _WORKER_RUNNER = _Runner(
        REGISTRY[benchmark], seed, n_cus, max_cycles=max_cycles
    )


def _injection_task(spec: InjectionSpec) -> str:
    return _WORKER_RUNNER.inject(spec)


def _make_executor(
    runner: _Runner,
    benchmark: str,
    seed: int,
    n_cus: int,
    max_cycles: int,
    jobs: int,
    timeout: Optional[float],
    retry: Optional[RetryPolicy],
    journal: Optional[Union[Journal, str]],
    progress: Union[bool, str] = False,
    chaos: Optional[ChaosPolicy] = None,
    fabric=None,
):
    if fabric is not None:
        # Distributed mode: shard injections across the fabric's worker
        # nodes.  The runner's inject is the local-fallback function, so
        # a dead or partitioned fleet degrades to inline execution
        # without a second golden run.  Executor-level chaos does not
        # apply here — the fabric has its own node-level chaos points
        # (ChaosSpec: node_kill, rpc_*, heartbeat_blackout) carried by
        # the worker processes and RPC clients.
        from ..runtime.fabric import FabricExecutor, injection_job

        return FabricExecutor(
            fabric,
            injection_job(
                benchmark, seed=seed, n_cus=n_cus, max_cycles=max_cycles
            ),
            local_fn=runner.inject,
            journal=journal,
            retry=retry,
            timeout=timeout,
            progress=progress,
        )
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = inline)")
    if jobs >= 1:
        return Executor(
            _injection_task,
            jobs=jobs,
            timeout=timeout,
            retry=retry,
            journal=journal,
            initializer=_init_injection_worker,
            initargs=(benchmark, seed, n_cus, max_cycles),
            progress=progress,
            chaos=chaos,
        )
    # Inline: reuse the parent's runner (one golden run total).
    return Executor(
        runner.inject, jobs=0, retry=retry, journal=journal,
        progress=progress, chaos=chaos,
    )


def _tally(
    campaign: BenchmarkCampaign, result: TaskResult
) -> Optional[str]:
    """Map a runtime result to an injection verdict; count failures."""
    if result.outcome == TaskOutcome.OK:
        return result.value
    verdict = _TASK_TO_VERDICT.get(result.outcome)
    if verdict is not None:
        return verdict
    campaign.failures[result.outcome] = (
        campaign.failures.get(result.outcome, 0) + 1
    )
    return None


def _model_sdc_avf(runner: _Runner) -> float:
    """ACE-model context for one benchmark: the unprotected single-bit
    VGPR SDC AVF that the campaign's injection verdicts validate.

    Runs the model side of the paper's comparison (liveness, VGPR
    lifetimes, group enumeration, outcome integration) on the golden
    run, so a traced campaign records the full methodology — simulate,
    lifetime, enumerate, integrate, inject — in one timeline.
    """
    from ..core.analysis import AvfStudy
    from ..core.faultmodes import FaultMode
    from ..core.protection import SCHEMES

    study = AvfStudy(runner.golden_run.apu, runner.golden_run.output_ranges)
    return study.vgpr_avf(FaultMode.linear(1), SCHEMES["none"]).sdc_avf


def run_campaign(
    benchmark: str,
    *,
    n_single: int = 60,
    modes: Sequence[int] = (2, 3, 4),
    max_groups_per_mode: int = 20,
    seed: int = 0,
    n_cus: int = 2,
    jobs: int = 0,
    timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[Union[Journal, str]] = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    progress: Union[bool, str] = False,
    chaos: Optional[ChaosPolicy] = None,
    fabric=None,
    store=None,
) -> BenchmarkCampaign:
    """The Table II procedure for one benchmark.

    ``n_single`` random single-bit injections find SDC ACE bits; each SDC ACE
    bit seeds one multi-bit group per mode width (the bit plus its physical
    neighbours), capped at ``max_groups_per_mode`` groups per mode.

    ``jobs``, ``timeout``, ``retry`` and ``journal`` configure the campaign
    runtime: ``jobs >= 1`` runs injections in that many isolated worker
    processes, ``timeout`` bounds each simulation's wall-clock time,
    ``retry`` governs re-execution of infrastructure failures, and
    ``journal`` (a path or :class:`~repro.runtime.Journal`) checkpoints
    every injection so an interrupted campaign can be resumed by re-running
    the same call.  All task ids are derived from the seeded spec sequence,
    so a resumed campaign reproduces the uninterrupted result exactly.

    ``chaos`` (dev/test only) fault-injects the campaign runtime itself —
    worker crashes, hangs, corrupted journal writes — per a seeded
    :class:`~repro.runtime.ChaosPolicy`; resume such a campaign *without*
    the chaos policy or its write faults replay.

    ``fabric`` (a :class:`~repro.runtime.fabric.FabricCoordinator`)
    shards the injections across worker *nodes* instead of local worker
    processes: lease-based assignment, replicated shard journals, and
    graceful demotion to local execution if the fleet dies.  ``jobs``
    is ignored in fabric mode; the same journal resumes either mode.

    ``store`` (a :class:`~repro.store.ResultStore` or a path to one)
    persists the finished campaign: the Table II summary lands in the
    ``campaigns`` table and, when a ``journal`` was used, every journaled
    injection verdict lands in ``injections`` keyed by record identity —
    so re-running a resumed campaign (or re-ingesting the same journal
    through ``repro campaign merge --store``) adds nothing twice.
    """
    if benchmark not in REGISTRY:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    tracer = get_tracer()
    with tracer.span("golden", benchmark=benchmark):
        runner = _Runner(
            REGISTRY[benchmark], seed, n_cus, max_cycles=max_cycles
        )
    rng = np.random.default_rng(seed + 0xFA117)
    out = BenchmarkCampaign(benchmark, n_single_injections=n_single)
    with tracer.span("model", benchmark=benchmark):
        out.model_sdc_avf = _model_sdc_avf(runner)
    singles = [runner.random_spec(rng) for _ in range(n_single)]
    with _make_executor(
        runner, benchmark, seed, n_cus, max_cycles,
        jobs, timeout, retry, journal, progress, chaos, fabric,
    ) as executor:
        single_tasks = [
            Task(
                id=f"{benchmark}/single/{i:05d}",
                payload=spec,
                meta=spec.to_dict(),
            )
            for i, spec in enumerate(singles)
        ]
        with tracer.span("singles", benchmark=benchmark, n=len(single_tasks)):
            results = executor.run(single_tasks)
        for task, spec in zip(single_tasks, singles):
            verdict = _tally(out, results[task.id])
            if verdict is None:
                continue
            out.single_outcomes[verdict] = (
                out.single_outcomes.get(verdict, 0) + 1
            )
            if verdict == InjectionOutcome.SDC:
                out.sdc_ace_bits.append(spec)
        get_metrics().counter("campaign.sdc_ace_bits").inc(
            len(out.sdc_ace_bits)
        )
        # All mode widths go through one executor pass so process-mode
        # workers (each paying a golden-run initialisation) spawn once.
        bases = out.sdc_ace_bits[:max_groups_per_mode]
        group_tasks: List[Tuple[int, Task]] = []
        for m in modes:
            for j, base in enumerate(bases):
                start = min(base.bits[0], 32 - m)
                g = InjectionSpec(
                    base.wf, base.reg, base.lane,
                    tuple(range(start, start + m)), base.cycle,
                )
                group_tasks.append((m, Task(
                    id=f"{benchmark}/multi/{m}/{j:05d}",
                    payload=g,
                    meta=g.to_dict(),
                )))
        with tracer.span("multibit", benchmark=benchmark, n=len(group_tasks)):
            results = executor.run(t for _, t in group_tasks)
        tallies = {m: [0, 0] for m in modes}
        for m, task in group_tasks:
            verdict = _tally(out, results[task.id])
            if verdict is None:
                continue
            tallies[m][0] += 1
            # The group contains a proven SDC ACE bit; a masked outcome
            # means the extra flips cancelled the corruption: ACE
            # interference.
            if verdict == InjectionOutcome.MASKED:
                tallies[m][1] += 1
        for m in modes:
            out.multibit[m] = tuple(tallies[m])
    if store is not None:
        # Lazy import: campaigns must not drag sqlite machinery in
        # unless a sink was actually requested.
        from ..store import ingest_campaign, ingest_journal, open_store

        with open_store(store) as sink:
            ingest_campaign(sink, out, seed=seed, n_cus=n_cus)
            if journal is not None:
                path = journal.path if isinstance(journal, Journal) \
                    else journal
                ingest_journal(sink, path, seed=seed)
    return out


def ace_interference_study(
    benchmarks: Optional[Sequence[str]] = None, **kwargs
) -> List[BenchmarkCampaign]:
    """Run the Table II study over the AMD OpenCL sample suite.

    Runtime options (``jobs``, ``timeout``, ``retry``, ``journal``) pass
    through to :func:`run_campaign`; a single shared journal covers the
    whole study because task ids are namespaced per benchmark.
    """
    names = benchmarks if benchmarks is not None else OPENCL_SAMPLES
    journal = kwargs.pop("journal", None)
    if journal is not None and not isinstance(journal, Journal):
        journal = Journal(journal)
    return [run_campaign(b, journal=journal, **kwargs) for b in names]
