"""Span tracing: nesting, args, exporters and disabled mode."""

import json

from repro.obs import NullTracer, Tracer
from repro.obs.trace import _NULL_SPAN


class TestSpans:
    def test_records_on_exit_with_duration(self):
        tr = Tracer()
        with tr.span("work"):
            pass
        assert len(tr.events) == 1
        e = tr.events[0]
        assert e.name == "work"
        assert e.duration >= 0.0
        assert e.start >= 0.0
        assert e.depth == 0

    def test_nesting_depths(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                with tr.span("leaf"):
                    pass
            with tr.span("sibling"):
                pass
        depths = {e.name: e.depth for e in tr.events}
        assert depths == {"outer": 0, "inner": 1, "leaf": 2, "sibling": 1}
        # Events are appended on exit, so inner spans precede outer ones.
        assert [e.name for e in tr.events] == [
            "leaf", "inner", "sibling", "outer",
        ]

    def test_args_and_late_set(self):
        tr = Tracer()
        with tr.span("kernel", kernel="matmul") as sp:
            sp.set(instructions=42)
        sp.set(cycles=7)  # after exit: args dict is shared with the event
        assert tr.events[0].args == {
            "kernel": "matmul", "instructions": 42, "cycles": 7,
        }

    def test_add_event_external_timing(self):
        tr = Tracer()
        tr.add_event("task", 1.5, id="x")
        e = tr.events[0]
        assert e.name == "task"
        assert e.duration == 1.5
        assert e.args == {"id": "x"}


class TestExporters:
    def _traced(self):
        tr = Tracer()
        with tr.span("outer", phase="all"):
            with tr.span("inner"):
                pass
        return tr

    def test_chrome_export_is_valid_trace_json(self, tmp_path):
        path = tmp_path / "trace.json"
        self._traced().export_chrome(path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert {e["name"] for e in events} == {"outer", "inner"}
        for e in events:
            assert e["ph"] == "X"
            assert isinstance(e["ts"], float) and e["ts"] >= 0
            assert isinstance(e["dur"], float) and e["dur"] >= 0
            assert isinstance(e["pid"], int)
            assert "tid" in e and "args" in e
        # Sorted by start time: the outer span opens first.
        assert events[0]["name"] == "outer"

    def test_jsonl_export_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._traced().export_jsonl(path)
        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["name"] for e in events] == ["outer", "inner"]
        assert events[0]["depth"] == 0 and events[1]["depth"] == 1
        assert events[0]["args"] == {"phase": "all"}

    def test_export_dispatches_on_extension(self, tmp_path):
        tr = self._traced()
        tr.export(tmp_path / "a.jsonl")
        tr.export(tmp_path / "b.json")
        assert len((tmp_path / "a.jsonl").read_text().splitlines()) == 2
        assert "traceEvents" in json.loads((tmp_path / "b.json").read_text())

    def test_empty_exports(self, tmp_path):
        tr = Tracer()
        tr.export_jsonl(tmp_path / "e.jsonl")
        tr.export_chrome(tmp_path / "e.json")
        assert (tmp_path / "e.jsonl").read_text() == ""
        assert json.loads((tmp_path / "e.json").read_text())["traceEvents"] == []


class TestSummary:
    def test_aggregates_per_name(self):
        tr = Tracer()
        tr.add_event("enumerate", 1.0)
        tr.add_event("enumerate", 3.0)
        tr.add_event("classify", 0.5)
        s = tr.summary()
        assert s["enumerate"]["count"] == 2
        assert s["enumerate"]["total"] == 4.0
        assert s["enumerate"]["mean"] == 2.0
        assert s["enumerate"]["max"] == 3.0
        assert s["classify"]["count"] == 1


class TestNullTracer:
    def test_falsy_and_recordless(self, tmp_path):
        tr = NullTracer()
        assert not tr
        with tr.span("x", a=1) as sp:
            sp.set(b=2)
        tr.add_event("y", 1.0)
        assert tr.events == []
        assert tr.span("anything") is _NULL_SPAN
        tr.export_jsonl(tmp_path / "no.jsonl")
        tr.export_chrome(tmp_path / "no.json")
        assert not (tmp_path / "no.jsonl").exists()
        assert not (tmp_path / "no.json").exists()
