"""Unit tests for the MB-AVF engine, including the paper's worked examples."""

import numpy as np
import pytest

from repro.core.avf import (
    StructureLifetimes,
    ace_locality,
    compute_mb_avf,
    compute_sb_avf,
    intersection_duration,
)
from repro.core.faultmodes import FaultMode
from repro.core.intervals import AceClass, IntervalSet, Outcome
from repro.core.layout import Interleaving, SramArray
from repro.core.protection import NoProtection, Parity, SecDed

ACE = int(AceClass.ACE)
DEAD = int(AceClass.READ_DEAD)


def _array_two_domains(interleaved: bool) -> SramArray:
    """1 row, 16 bits, two 1-byte domains d0 and d1.

    Non-interleaved: cols 0-7 -> d0, cols 8-15 -> d1.
    Interleaved (x2): even cols -> d0, odd cols -> d1.
    """
    if interleaved:
        domain_of = np.array([[c % 2 for c in range(16)]], dtype=np.int32)
    else:
        domain_of = np.array([[c // 8 for c in range(16)]], dtype=np.int32)
    byte_of = domain_of.copy()
    return SramArray(
        "toy", byte_of, domain_of, domain_bytes=1,
        interleave_factor=2 if interleaved else 1,
        style=Interleaving.LOGICAL if interleaved else Interleaving.NONE,
    )


def _lifetimes(iset0, iset1, window=100):
    return StructureLifetimes("toy", [iset0, iset1], 0, window)


class TestSbAvf:
    def test_unprotected_sb_avf_is_ace_fraction(self):
        arr = _array_two_domains(False)
        lt = _lifetimes(IntervalSet([(0, 50, ACE)]), IntervalSet())
        res = compute_sb_avf(arr, lt, NoProtection())
        # 8 bits ACE for 50 of 100 cycles, 8 bits never ACE.
        assert res.sdc_avf == pytest.approx(0.25)
        assert res.due_avf == 0.0
        assert lt.sb_ace_fraction() == pytest.approx(0.25)

    def test_parity_turns_sb_sdc_into_due(self):
        arr = _array_two_domains(False)
        lt = _lifetimes(IntervalSet([(0, 50, ACE)]), IntervalSet())
        res = compute_sb_avf(arr, lt, Parity())
        assert res.due_avf == pytest.approx(0.25)
        assert res.sdc_avf == 0.0

    def test_secded_corrects_single_bits(self):
        arr = _array_two_domains(False)
        lt = _lifetimes(IntervalSet([(0, 50, ACE)]), IntervalSet())
        res = compute_sb_avf(arr, lt, SecDed())
        assert res.due_avf == 0.0
        assert res.sdc_avf == 0.0

    def test_read_dead_gives_false_due(self):
        arr = _array_two_domains(False)
        lt = _lifetimes(IntervalSet([(0, 40, DEAD)]), IntervalSet())
        res = compute_sb_avf(arr, lt, Parity())
        assert res.false_due_avf == pytest.approx(8 * 40 / 1600)
        assert res.true_due_avf == 0.0


class TestMbAvfHandComputed:
    """Hand-computed 2x1 cases on the 16-bit toy array."""

    def test_parity_2x1_no_interleave(self):
        arr = _array_two_domains(False)
        lt = _lifetimes(IntervalSet([(0, 50, ACE)]), IntervalSet())
        res = compute_mb_avf(arr, lt, FaultMode.linear(2), Parity())
        assert res.n_groups == 15
        # 7 groups inside d0: 2 faulty bits -> parity blind -> SDC 50 each.
        # 1 straddling group: 1 faulty bit per domain -> both detected; only
        # d0 is ACE -> true DUE 50.  7 groups inside d1: unACE.
        assert res.outcome_cycles[Outcome.SDC] == pytest.approx(7 * 50)
        assert res.outcome_cycles[Outcome.TRUE_DUE] == pytest.approx(50)
        assert res.sdc_avf == pytest.approx(350 / 1500)
        assert res.due_avf == pytest.approx(50 / 1500)

    def test_secded_2x1_no_interleave(self):
        arr = _array_two_domains(False)
        lt = _lifetimes(IntervalSet([(0, 50, ACE)]), IntervalSet())
        res = compute_mb_avf(arr, lt, FaultMode.linear(2), SecDed())
        # In-domain groups detected (2 bits), straddling group corrected.
        assert res.due_avf == pytest.approx(350 / 1500)
        assert res.sdc_avf == 0.0

    def test_interleaving_splits_the_fault(self):
        arr = _array_two_domains(True)
        lt = _lifetimes(IntervalSet([(0, 50, ACE)]), IntervalSet())
        res = compute_mb_avf(arr, lt, FaultMode.linear(2), Parity())
        # Every 2x1 group has 1 bit in each domain: detected everywhere.
        assert res.sdc_avf == 0.0
        assert res.due_avf == pytest.approx(15 * 50 / 1500)


class TestMbVsSbBounds:
    """Sec. IV-D: MB-AVF is between 1x and Mx the SB-AVF."""

    def test_ratio_is_one_when_bits_ace_together(self):
        arr = _array_two_domains(True)
        same = IntervalSet([(0, 50, ACE)])
        lt = _lifetimes(same, same)
        sb = compute_sb_avf(arr, lt, NoProtection())
        mb = compute_mb_avf(arr, lt, FaultMode.linear(2), NoProtection())
        assert sb.sdc_avf == pytest.approx(0.5)
        assert mb.sdc_avf == pytest.approx(0.5)

    def test_ratio_is_m_when_ace_times_disjoint(self):
        arr = _array_two_domains(True)
        lt = _lifetimes(
            IntervalSet([(0, 50, ACE)]), IntervalSet([(50, 100, ACE)])
        )
        sb = compute_sb_avf(arr, lt, NoProtection())
        mb = compute_mb_avf(arr, lt, FaultMode.linear(2), NoProtection())
        assert sb.sdc_avf == pytest.approx(0.5)
        assert mb.sdc_avf == pytest.approx(1.0)  # 2x the SB-AVF

    def test_mb_never_below_sb(self):
        rng = np.random.default_rng(7)
        arr = _array_two_domains(True)
        for _ in range(10):
            a = sorted(rng.integers(0, 100, 2).tolist())
            b = sorted(rng.integers(0, 100, 2).tolist())
            i0 = IntervalSet([(a[0], a[1], ACE)]) if a[0] < a[1] else IntervalSet()
            i1 = IntervalSet([(b[0], b[1], ACE)]) if b[0] < b[1] else IntervalSet()
            lt = _lifetimes(i0, i1)
            sb = compute_sb_avf(arr, lt, NoProtection())
            mb = compute_mb_avf(arr, lt, FaultMode.linear(2), NoProtection())
            assert mb.sdc_avf >= sb.sdc_avf - 1e-12
            assert mb.sdc_avf <= 2 * sb.sdc_avf + 1e-12


class TestPaperFigure3:
    """Fig. 3: a 3x1 fault over two SEC-DED domains.

    The region with 2 faulty bits is detected (DUE); the region with 1 faulty
    bit is corrected.  The group's DUE ACE time is the 2-bit region's ACE
    time.
    """

    def test_figure3(self):
        arr = _array_two_domains(False)
        # d0 (bytes/bits 0-7) ACE [0, 10); d1 ACE [5, 20).
        lt = _lifetimes(
            IntervalSet([(0, 10, ACE)]), IntervalSet([(5, 20, ACE)]), window=30
        )
        res = compute_mb_avf(arr, lt, FaultMode.linear(3), SecDed())
        # Groups: cols 0..13. 6 fully in d0 (3 bits -> miscorrect -> SDC on
        # d0 ACE=10), col 6: 2 in d0 + 1 in d1 -> d0 detected (ACE 10 ->
        # true DUE), d1 corrected; col 7: 1 in d0 (corrected) + 2 in d1
        # (detected, ACE 15 -> true DUE); 6 fully in d1 -> SDC on 15.
        assert res.outcome_cycles[Outcome.SDC] == pytest.approx(6 * 10 + 6 * 15)
        assert res.outcome_cycles[Outcome.TRUE_DUE] == pytest.approx(10 + 15)
        assert res.n_groups == 14


class TestPaperFigure7:
    """Fig. 7: a 3x1 fault over two parity domains.

    The 2-bit region defeats parity (SDC if ACE); the 1-bit region is
    detected (DUE if ACE).  SDC takes precedence over DUE in the default
    (cache) model; the Sec. VIII simultaneous-read rule flips it to DUE.
    """

    def _setup(self):
        arr = _array_two_domains(False)
        lt = _lifetimes(
            IntervalSet([(0, 10, ACE)]), IntervalSet([(0, 10, ACE)]), window=30
        )
        return arr, lt

    def test_figure7_default_precedence(self):
        arr, lt = self._setup()
        res = compute_mb_avf(arr, lt, FaultMode.linear(3), Parity())
        # 12 in-domain groups put 3 (odd) bits in one parity word: detected
        # -> true DUE on the 10 ACE cycles.  The 2 straddling groups (cols 6
        # and 7) have a 2-bit (undetected -> SDC) and a 1-bit (detected ->
        # DUE) region; SDC takes precedence.
        assert res.outcome_cycles[Outcome.SDC] == pytest.approx(2 * 10)
        assert res.outcome_cycles[Outcome.TRUE_DUE] == pytest.approx(12 * 10)

    def test_figure7_simultaneous_read(self):
        arr, lt = self._setup()
        res = compute_mb_avf(
            arr, lt, FaultMode.linear(3), Parity(), due_preempts_sdc=True
        )
        # The straddling groups' SDC is preempted by the simultaneous DUE.
        assert res.outcome_cycles[Outcome.SDC] == pytest.approx(0)
        assert res.outcome_cycles[Outcome.TRUE_DUE] == pytest.approx(14 * 10)


class TestSeries:
    def test_series_buckets(self):
        arr = _array_two_domains(False)
        lt = _lifetimes(IntervalSet([(0, 50, ACE)]), IntervalSet())
        res = compute_sb_avf(arr, lt, Parity(), series_edges=[0, 50, 100])
        due = res.series_avf(Outcome.TRUE_DUE)
        assert due[0] == pytest.approx(8 * 50 / (16 * 50))
        assert due[1] == pytest.approx(0.0)

    def test_series_requires_edges(self):
        arr = _array_two_domains(False)
        lt = _lifetimes(IntervalSet(), IntervalSet())
        res = compute_sb_avf(arr, lt, Parity())
        with pytest.raises(ValueError):
            res.series_avf(Outcome.SDC)


class TestAceLocality:
    def test_perfect_locality(self):
        arr = _array_two_domains(True)
        same = IntervalSet([(0, 50, ACE)])
        lt = _lifetimes(same, same)
        assert ace_locality(arr, lt) == pytest.approx(1.0)

    def test_zero_locality(self):
        arr = _array_two_domains(True)
        lt = _lifetimes(
            IntervalSet([(0, 50, ACE)]), IntervalSet([(50, 100, ACE)])
        )
        assert ace_locality(arr, lt) == pytest.approx(0.0, abs=1e-9)

    def test_untouched_structure(self):
        arr = _array_two_domains(True)
        lt = _lifetimes(IntervalSet(), IntervalSet())
        assert ace_locality(arr, lt) == 1.0

    def test_intersection_duration(self):
        a = IntervalSet([(0, 10, ACE), (20, 30, ACE)])
        b = IntervalSet([(5, 25, ACE)])
        assert intersection_duration(a, b, ACE) == 10


class TestLargeModesAndMiscorrection:
    def test_8x1_secded_x2_is_undetected(self):
        """Sec. VI-C: an 8x1 fault with SEC-DED x2 puts 4 bits per word."""
        arr = _array_two_domains(True)
        lt = _lifetimes(
            IntervalSet([(0, 50, ACE)]), IntervalSet([(0, 50, ACE)])
        )
        res = compute_mb_avf(arr, lt, FaultMode.linear(8), SecDed())
        assert res.sdc_avf > 0
        assert res.due_avf == 0.0

    def test_6x1_parity_x2_is_detected(self):
        """Sec. VIII: parity x2 sees 3 bits per word on a 6x1 -> detected."""
        arr = _array_two_domains(True)
        lt = _lifetimes(
            IntervalSet([(0, 50, ACE)]), IntervalSet([(0, 50, ACE)])
        )
        res = compute_mb_avf(arr, lt, FaultMode.linear(6), Parity())
        assert res.due_avf > 0
        assert res.sdc_avf == 0.0

    def test_empty_structure_all_unace(self):
        arr = _array_two_domains(False)
        lt = _lifetimes(IntervalSet(), IntervalSet())
        for m in (1, 2, 3, 8):
            res = compute_mb_avf(arr, lt, FaultMode.linear(m), Parity())
            assert res.total_avf == 0.0
