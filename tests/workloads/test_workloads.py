"""Correctness and determinism tests for every workload kernel."""

import pytest

from repro.workloads import REGISTRY, names, run
from repro.workloads.suite import EVALUATION_SET, OPENCL_SAMPLES

ALL = names()


class TestRegistry:
    def test_workload_count(self):
        assert len(ALL) == 19

    def test_subsets_are_registered(self):
        assert set(OPENCL_SAMPLES) <= set(ALL)
        assert set(EVALUATION_SET) <= set(ALL)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            run("nope")

    def test_names_match_classes(self):
        for name, cls in REGISTRY.items():
            assert cls.name == name


@pytest.mark.parametrize("name", ALL)
class TestEveryWorkload:
    def test_verifies_against_reference(self, name):
        # run_workload raises if the device output mismatches the numpy
        # reference, so completing is the assertion.
        result = run(name)
        assert result.total_instructions > 0
        assert result.end_cycle > 0
        assert result.output_ranges

    def test_deterministic(self, name):
        a = run(name, seed=3)
        b = run(name, seed=3)
        assert a.end_cycle == b.end_cycle
        assert a.total_instructions == b.total_instructions
        for (base, size), (base2, size2) in zip(a.output_ranges, b.output_ranges):
            assert (base, size) == (base2, size2)
            assert (
                a.memory.data[base : base + size]
                == b.memory.data[base : base + size]
            ).all()

    def test_seed_changes_data(self, name):
        wl_a = REGISTRY[name](seed=0)
        wl_b = REGISTRY[name](seed=1)
        from repro.arch import GlobalMemory

        ma, mb = GlobalMemory(), GlobalMemory()
        wl_a.setup(ma)
        wl_b.setup(mb)
        assert not (ma.data == mb.data).all()


class TestWorkloadShape:
    def test_multi_pass_workloads_have_multiple_launches(self):
        for name in ("minife", "fastwalsh", "prefixsum", "comd"):
            result = run(name)
            assert len(result.stats) > 1, name

    def test_minife_has_phases(self):
        result = run("minife")
        kinds = {s.name.split(".")[1].rstrip("0123456789") for s in result.stats}
        assert {"init", "spmv", "dotp", "alpha", "xupd"} <= kinds

    def test_caches_exercised(self):
        result = run("matmul")
        l1 = result.apu.memsys.l1s[0]
        assert l1.hits > 0 and l1.misses > 0
