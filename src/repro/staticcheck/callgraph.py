"""Conservative call graph + lock/thread analyses over a ProjectIndex.

The index (:mod:`repro.staticcheck.index`) records *what each file
declares* — this module joins those declarations across files:

* **call resolution** — a call site's ``cexpr`` becomes a node key:
  ``self.m()`` resolves within the enclosing class (walking base
  classes), ``self.attr.m()`` through attribute type annotations,
  ``get_metrics().counter(...).inc()`` through return-type annotations,
  and dotted names through the module table.  Resolution is
  *conservative*: anything ambiguous resolves to nothing, never to a
  wrong target.
* **thread reachability** — BFS from thread-entry seeds
  (``threading.Thread(target=...)``, handler-class methods,
  ``Thread.run`` overrides) over resolved call edges.  A method in the
  reachable set may execute off the main thread.
* **entry-lock propagation** — a private method (``_``-prefixed) whose
  every in-class call site holds lock ``L`` is analyzed as holding
  ``L`` itself.  This is what lets ``coordinator.handle`` take the lock
  once and dispatch to ``_handle_lease`` &co. without tripping C601.
* **lock identity** — the textual lock ``self.coordinator._lock`` seen
  in one file and ``self._lock`` seen in another normalize to the same
  ``(relpath, Class, attr)`` identity, so "common lock" checks work
  across files.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .index import CExpr, ClassSummary, FuncSummary, ProjectIndex, TExpr

__all__ = ["CallGraph", "NodeKey"]

#: ``"relpath::Class.method"`` or ``"relpath::function"``
NodeKey = str

#: propagation rounds for entry-lock fixpoint (call chains deeper than
#: this through private helpers keep their syntactic locks only)
_LOCK_ROUNDS = 4


def node_key(relpath: str, cls: Optional[str], func: str) -> NodeKey:
    if cls is None:
        return f"{relpath}::{func}"
    return f"{relpath}::{cls}.{func}"


class CallGraph:
    """Resolution + reachability over one :class:`ProjectIndex`."""

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        #: node key -> (relpath, class name | None, FuncSummary)
        self.nodes: Dict[NodeKey, Tuple[str, Optional[str], FuncSummary]]
        self.nodes = {}
        for relpath in sorted(project.files):
            summary = project.files[relpath]
            for fname in sorted(summary.functions):
                self.nodes[node_key(relpath, None, fname)] = (
                    relpath, None, summary.functions[fname]
                )
            for cname in sorted(summary.classes):
                cls = summary.classes[cname]
                for mname in sorted(cls.methods):
                    self.nodes[node_key(relpath, cname, mname)] = (
                        relpath, cname, cls.methods[mname]
                    )
        self._edges: Optional[Dict[NodeKey, List[Tuple[Dict[str, Any], Optional[NodeKey]]]]] = None
        self._thread_reachable: Optional[Set[NodeKey]] = None
        self._entry_locks: Optional[Dict[NodeKey, FrozenSet[str]]] = None

    # -- type resolution -----------------------------------------------------

    def type_info(
        self, texpr: TExpr, relpath: str, cls: Optional[str]
    ) -> Optional[Dict[str, Any]]:
        """Public alias of :meth:`_type_info` for the rules."""
        return self._type_info(texpr, relpath, cls)

    def class_for_name(
        self, name: str, prefer_relpath: str
    ) -> Optional[Tuple[str, ClassSummary]]:
        """Public alias of :meth:`_class_for_name` for the rules."""
        return self._class_for_name(name, prefer_relpath)

    def _type_info(
        self, texpr: TExpr, relpath: str, cls: Optional[str]
    ) -> Optional[Dict[str, Any]]:
        """``{"name", "elem"}`` of a type expression, or None."""
        kind = texpr[0]
        if kind == "self":
            return {"name": cls, "elem": None} if cls else None
        if kind == "name":
            return {"name": texpr[1], "elem": None}
        if kind == "attr":
            base = self._type_info(texpr[1], relpath, cls)
            if base is None or base["name"] is None:
                return None
            owner = self._class_for_name(base["name"], relpath)
            if owner is None:
                return None
            return self._attr_type(owner[0], owner[1], texpr[2])
        if kind == "ret":
            target = self.resolve_call(texpr[1], relpath, cls)
            if target is None:
                # constructor? `ClassName(...)` types as ClassName
                ctor = self._constructor_type(texpr[1], relpath)
                if ctor is not None:
                    return {"name": ctor, "elem": None}
                return None
            func = self.nodes[target][2]
            return func.returns
        if kind == "elem":
            base_texpr = texpr[1]
            if base_texpr[0] == "attr":
                owner_info = self._type_info(
                    base_texpr[1], relpath, cls
                )
                if owner_info is None or owner_info["name"] is None:
                    return None
                owner = self._class_for_name(owner_info["name"], relpath)
                if owner is None:
                    return None
                info = self._attr_type(owner[0], owner[1], base_texpr[2])
                if info is not None and info.get("elem"):
                    return {"name": info["elem"], "elem": None}
            else:
                info = self._type_info(base_texpr, relpath, cls)
                if info is not None and info.get("elem"):
                    return {"name": info["elem"], "elem": None}
            return None
        return None

    def _class_for_name(
        self, name: str, prefer_relpath: str
    ) -> Optional[Tuple[str, ClassSummary]]:
        """Resolve a class *name* — same-file beats global uniqueness."""
        local = self.project.files[prefer_relpath].classes.get(name) if (
            prefer_relpath in self.project.files
        ) else None
        if local is not None:
            return prefer_relpath, local
        return self.project.class_by_name(name)

    def _attr_type(
        self, relpath: str, cls: ClassSummary, attr: str
    ) -> Optional[Dict[str, Any]]:
        """Annotated/inferred type of an attribute, walking bases."""
        seen: Set[str] = set()
        stack: List[Tuple[str, ClassSummary]] = [(relpath, cls)]
        while stack:
            rp, c = stack.pop()
            if c.name in seen:
                continue
            seen.add(c.name)
            info = c.attr_types.get(attr)
            if info is not None:
                return info
            for base in c.bases:
                parent = self._class_for_name(
                    base.rpartition(".")[2], rp
                )
                if parent is not None:
                    stack.append(parent)
        return None

    def _constructor_type(
        self, cexpr: CExpr, relpath: str
    ) -> Optional[str]:
        """Class name when a call expression is a known constructor."""
        if cexpr[0] != "dotted":
            return None
        tail = cexpr[1].rpartition(".")[2]
        if self._class_for_name(tail, relpath) is not None:
            return tail
        return None

    # -- call resolution -----------------------------------------------------

    def find_method(
        self, relpath: str, clsname: str, method: str
    ) -> Optional[NodeKey]:
        """Method lookup on a class, walking base classes in-tree."""
        seen: Set[str] = set()
        stack: List[Tuple[str, ClassSummary]] = []
        start = self._class_for_name(clsname, relpath)
        if start is not None:
            stack.append(start)
        while stack:
            rp, cls = stack.pop(0)
            if cls.name in seen:
                continue
            seen.add(cls.name)
            if method in cls.methods:
                return node_key(rp, cls.name, method)
            for base in cls.bases:
                parent = self._class_for_name(base.rpartition(".")[2], rp)
                if parent is not None:
                    stack.append(parent)
        return None

    def resolve_call(
        self, cexpr: CExpr, relpath: str, cls: Optional[str]
    ) -> Optional[NodeKey]:
        """Node key of a call target, or None (external / ambiguous)."""
        if cexpr[0] == "dotted":
            dotted = cexpr[1]
            head, _, tail = dotted.rpartition(".")
            if not head:
                # bare name: same-module function, else unique class? No —
                # a bare-name call is a constructor or local; functions
                # in the same module are called bare too.
                summary = self.project.files.get(relpath)
                if summary is not None and dotted in summary.functions:
                    return node_key(relpath, None, dotted)
                return None
            mod = self.project.resolve_module(head)
            if mod is not None and tail in self.project.files[mod].functions:
                return node_key(mod, None, tail)
            # ClassName.method spelled as a dotted attribute path
            owner = self._class_for_name(head.rpartition(".")[2], relpath)
            if owner is not None:
                return self.find_method(owner[0], owner[1].name, tail)
            return None
        if cexpr[0] == "method":
            info = self._type_info(cexpr[1], relpath, cls)
            if info is None or not info.get("name"):
                return None
            owner = self._class_for_name(str(info["name"]), relpath)
            if owner is None:
                return None
            return self.find_method(owner[0], owner[1].name, cexpr[2])
        return None

    def resolved_target_name(
        self, cexpr: CExpr, relpath: str, cls: Optional[str]
    ) -> Optional[str]:
        """Dotted target for externals; ``Class.method`` for typed calls."""
        if cexpr[0] == "dotted":
            return str(cexpr[1])
        if cexpr[0] == "method":
            info = self._type_info(cexpr[1], relpath, cls)
            if info is not None and info.get("name"):
                return f"{info['name']}.{cexpr[2]}"
        return None

    # -- edges ---------------------------------------------------------------

    def edges(
        self,
    ) -> Dict[NodeKey, List[Tuple[Dict[str, Any], Optional[NodeKey]]]]:
        """node -> [(call site, resolved target | None)]."""
        if self._edges is None:
            out: Dict[
                NodeKey, List[Tuple[Dict[str, Any], Optional[NodeKey]]]
            ] = {}
            for key, (relpath, cls, func) in self.nodes.items():
                sites: List[Tuple[Dict[str, Any], Optional[NodeKey]]] = []
                for site in func.calls:
                    sites.append(
                        (site, self.resolve_call(site["t"], relpath, cls))
                    )
                out[key] = sites
            self._edges = out
        return self._edges

    # -- thread reachability -------------------------------------------------

    def thread_seeds(self) -> Set[NodeKey]:
        seeds: Set[NodeKey] = set()
        for relpath, cls, func in self.project.thread_entries():
            seeds.add(node_key(relpath, cls, func))
        # method-form Thread targets need receiver-type resolution
        for relpath, summary in self.project.files.items():
            for site in summary.thread_targets:
                target = site["t"]
                if target[0] != "method":
                    continue
                resolved = self.resolve_call(
                    target, relpath, site.get("cls")
                )
                if resolved is not None:
                    seeds.add(resolved)
        return {s for s in seeds if s in self.nodes}

    def thread_reachable(self) -> Set[NodeKey]:
        """Every node reachable from a thread entry point."""
        if self._thread_reachable is None:
            self._thread_reachable = self._reach(self.thread_seeds())
        return self._thread_reachable

    def handler_reachable(self) -> Set[NodeKey]:
        """Nodes reachable from HTTP handler-class methods only (C605)."""
        seeds: Set[NodeKey] = set()
        for relpath, clsname in self.project.handler_classes():
            cls = self.project.files[relpath].classes[clsname]
            for method in cls.methods:
                seeds.add(node_key(relpath, clsname, method))
        return self._reach(seeds)

    def _reach(self, seeds: Set[NodeKey]) -> Set[NodeKey]:
        out = set(seeds)
        frontier = list(seeds)
        edges = self.edges()
        while frontier:
            current = frontier.pop()
            for _site, target in edges.get(current, ()):
                if target is not None and target not in out:
                    out.add(target)
                    frontier.append(target)
        return out

    # -- lock identity + propagation ----------------------------------------

    def lock_id(
        self, text: str, relpath: str, cls: Optional[str], func: str
    ) -> Optional[str]:
        """Canonical identity of a textual lock expression.

        ``self._lock`` inside ``FabricCoordinator`` and
        ``self.coordinator._lock`` inside ``FabricExecutor`` both
        normalize to ``coordinator.py::FabricCoordinator._lock``.
        """
        parts = text.split(".")
        if parts[0] == "self" and len(parts) >= 2:
            current = self._class_for_name(cls, relpath) if cls else None
            for attr in parts[1:-1]:
                if current is None:
                    return None
                info = self._attr_type(current[0], current[1], attr)
                if info is None or not info.get("name"):
                    return None
                current = self._class_for_name(
                    str(info["name"]), current[0]
                )
            if current is None:
                return None
            return f"{current[0]}::{current[1].name}.{parts[-1]}"
        # module-level or local lock: identity is positional
        if len(parts) == 1:
            return f"local::{relpath}::{cls or ''}::{func}::{text}"
        return f"{relpath}::{text}"

    def held_ids(
        self,
        held: List[str],
        relpath: str,
        cls: Optional[str],
        func: str,
    ) -> FrozenSet[str]:
        out: Set[str] = set()
        for text in held:
            lid = self.lock_id(text, relpath, cls, func)
            if lid is not None:
                out.add(lid)
        return frozenset(out)

    def entry_locks(self) -> Dict[NodeKey, FrozenSet[str]]:
        """Locks provably held on *every* call path into a method.

        Only private (``_``-prefixed) methods called exclusively from
        within their own class participate — public methods can always
        be called lock-free from outside the analyzed tree.
        """
        if self._entry_locks is not None:
            return self._entry_locks
        # call sites into each candidate: (caller key, site held-ids)
        callers: Dict[NodeKey, List[Tuple[NodeKey, FrozenSet[str]]]] = {}
        eligible: Set[NodeKey] = set()
        for key, (relpath, cls, func) in self.nodes.items():
            if cls is None or not func.name.startswith("_"):
                continue
            if func.name.startswith("__"):
                continue
            eligible.add(key)
        edges = self.edges()
        external_callers: Set[NodeKey] = set()
        for caller_key, sites in edges.items():
            caller_rel, caller_cls, _f = self.nodes[caller_key]
            for site, target in sites:
                if target is None or target not in eligible:
                    continue
                target_cls = self.nodes[target][1]
                if caller_cls != target_cls:
                    external_callers.add(target)
                    continue
                held = self.held_ids(
                    list(site["held"]), caller_rel, caller_cls,
                    self.nodes[caller_key][2].name,
                )
                callers.setdefault(target, []).append((caller_key, held))
        result: Dict[NodeKey, FrozenSet[str]] = {
            key: frozenset() for key in self.nodes
        }
        for _round in range(_LOCK_ROUNDS):
            changed = False
            for key in eligible:
                if key in external_callers or key not in callers:
                    continue
                if key in self.thread_seeds():
                    continue
                sets = [
                    held | result[caller]
                    for caller, held in callers[key]
                ]
                merged: FrozenSet[str] = sets[0]
                for s in sets[1:]:
                    merged = merged & s
                if merged != result[key]:
                    result[key] = merged
                    changed = True
            if not changed:
                break
        self._entry_locks = result
        return result

    def effective_held(
        self, key: NodeKey, site_held: List[str]
    ) -> FrozenSet[str]:
        """Locks held at a site: syntactic + caller-propagated."""
        relpath, cls, func = self.nodes[key]
        syntactic = self.held_ids(site_held, relpath, cls, func.name)
        return syntactic | self.entry_locks().get(key, frozenset())

    # -- convenience iterators ----------------------------------------------

    def iter_nodes(
        self,
    ) -> Iterator[Tuple[NodeKey, str, Optional[str], FuncSummary]]:
        for key in sorted(self.nodes):
            relpath, cls, func = self.nodes[key]
            yield key, relpath, cls, func
