"""CLI surface of the resilience work: the dev-only --chaos flags and
the `campaign compact` journal-maintenance subcommand."""

import pytest

from repro.cli import _strip_chaos_args, main
from repro.runtime import Journal


class TestResumeCommand:
    def test_chaos_flags_stripped_from_suggested_resume(self):
        """The drain-time resume recipe must drop the chaos flags:
        journal faults are keyed per task and would replay on resume."""
        argv = [
            "inject", "transpose", "--jobs", "2",
            "--chaos-spec", "journal_enospc=0.5", "--chaos-seed", "3",
            "--resume", "j.jsonl",
        ]
        assert _strip_chaos_args(argv) == [
            "inject", "transpose", "--jobs", "2", "--resume", "j.jsonl",
        ]

    def test_equals_form_stripped_too(self):
        argv = ["inject", "t", "--chaos-spec=worker_crash=1.0",
                "--chaos-seed=7", "--resume", "j.jsonl"]
        assert _strip_chaos_args(argv) == [
            "inject", "t", "--resume", "j.jsonl",
        ]

    def test_plain_argv_untouched(self):
        argv = ["inject", "t", "--jobs", "4", "--resume", "j.jsonl"]
        assert _strip_chaos_args(argv) == argv


class TestChaosFlags:
    def test_bad_chaos_point_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["inject", "vectoradd", "--chaos-spec", "warp_drive=0.5"])
        assert "--chaos-spec" in capsys.readouterr().err

    def test_bad_chaos_probability_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["inject", "vectoradd", "--chaos-spec", "worker_crash=2.0"])
        assert "--chaos-spec" in capsys.readouterr().err

    def test_chaos_run_announces_dev_mode(self, capsys, tmp_path):
        rc = main([
            "inject", "vectoradd", "--singles", "2", "--groups", "1",
            "--cus", "1", "--chaos-spec", "slow_task=1.0",
            "--chaos-seed", "3", "--resume", str(tmp_path / "j.jsonl"),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "CHAOS MODE (dev)" in captured.err
        assert "SDC ACE bits" in captured.out


class TestCompactCommand:
    def test_compact_requires_journal(self, capsys):
        assert main(["campaign", "compact"]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_compact_rejects_missing_journal(self, capsys, tmp_path):
        missing = tmp_path / "nope.jsonl"
        assert main(["campaign", "compact", "--resume", str(missing)]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_compact_rewrites_journal(self, capsys, tmp_path):
        jp = tmp_path / "j.jsonl"
        j = Journal(jp)
        j.append({"task": "a", "outcome": "ok", "value": 1})
        j.append({"task": "a", "outcome": "ok", "value": 2})  # superseded
        j.append({"task": "b", "outcome": "ok", "value": 3})
        j.close()
        assert main(["campaign", "compact", "--resume", str(jp)]) == 0
        assert "compacted" in capsys.readouterr().out
        assert len(jp.read_text().splitlines()) == 2
        assert Journal(jp).load()["a"]["value"] == 2
