"""Figure 10: true vs false DUE by fault mode.

False DUEs are detections of dynamically-dead data — the error rate a
design *adds* by detecting errors it did not need to catch.  Shape targets
(Sec. VII-D): false DUE is a small contributor on average, but significant
for some workloads; how its share moves with fault-mode size depends on the
workload's access pattern (it can go either way).
"""

import numpy as np
import pytest

from repro.core import FaultMode, Interleaving, Parity
from repro.workloads.suite import EVALUATION_SET

MODES = (1, 2, 4)


def _measure(study_of):
    rows = {}
    for wl in EVALUATION_SET:
        study = study_of(wl)
        per_mode = {}
        for m in MODES:
            res = study.cache_avf(
                "l1", FaultMode.linear(m), Parity(),
                style=Interleaving.WAY_PHYSICAL, factor=4,
            )
            per_mode[m] = (res.true_due_avf, res.false_due_avf)
        # The L2 sees fill and writeback reads of dead data too.
        l2 = study.cache_avf("l2", FaultMode.linear(1), Parity())
        rows[wl] = (per_mode, (l2.true_due_avf, l2.false_due_avf))
    return rows


def _share(t, f):
    return f / (t + f) if (t + f) > 0 else 0.0


@pytest.mark.benchmark(group="figure10")
def test_figure10_false_due(benchmark, study_of, report):
    rows = benchmark.pedantic(_measure, args=(study_of,), rounds=1, iterations=1)
    lines = [
        f"{'workload':<14} " + " ".join(
            f"{'L1 ' + str(m) + 'x1 f%':>11}" for m in MODES
        ) + f" {'L2 1x1 f%':>11}"
    ]
    shares = {m: [] for m in MODES}
    l2_shares = []
    for wl, (pm, l2) in rows.items():
        cells = []
        for m in MODES:
            sh = _share(*pm[m])
            if pm[m][0] + pm[m][1] > 1e-5:
                shares[m].append(sh)
            cells.append(f"{sh:11.1%}")
        l2sh = _share(*l2)
        if l2[0] + l2[1] > 1e-5:
            l2_shares.append(l2sh)
        lines.append(f"{wl:<14} " + " ".join(cells) + f" {l2sh:11.1%}")
    mean_l1 = float(np.mean(shares[1])) if shares[1] else 0.0
    mean_l2 = float(np.mean(l2_shares)) if l2_shares else 0.0
    lines.append(f"mean false-DUE share: L1 {mean_l1:.1%}, L2 {mean_l2:.1%}")
    report("figure10_false_due", lines)

    # Shape target 1: false DUE exists somewhere (detection is not free).
    all_shares = [s for v in shares.values() for s in v] + l2_shares
    assert max(all_shares) > 0.0
    # Shape target 2: on average false DUE is a minority contributor.
    assert mean_l1 < 0.5
    # Shape target 3: some workload has a markedly higher false-DUE share
    # than the mean (the paper's CoMD/srad effect).
    assert max(all_shares) > 2 * min(mean_l1, mean_l2) or max(all_shares) > 0.1
