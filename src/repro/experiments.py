"""Standard configuration shared by the paper-reproduction experiments.

The paper's APU has a 16KB L1 per CU and a 256KB L2, exercised by full
Rodinia / AMD SDK / Mantevo datasets (megabytes of traffic over billions of
cycles).  Our workloads are scaled-down analogues, so the experiments scale
the caches by the same factor — 4KB L1s and a 32KB L2 — preserving the
working-set-to-capacity ratios that AVF behaviour actually depends on.
(The architectural defaults in :mod:`repro.arch.cache` remain the paper's
sizes; only the experiment harness uses the scaled pair.)
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .arch.cache import CacheConfig
from .core.analysis import AvfStudy
from .core.faultmodes import FaultMode
from .core.layout import Interleaving
from .core.protection import ProtectionScheme
from .core.sweep import SweepPoint, sweep_cache_avf, sweep_vgpr_avf
from .obs import format_report, get_metrics, get_tracer
from .runtime import Executor, Journal, RetryPolicy, Task
from .workloads import run

__all__ = [
    "SCALED_L1",
    "SCALED_L2",
    "scaled_apu_kwargs",
    "build_study",
    "StudyCache",
    "sweep_benchmarks",
    "observability_report",
]

#: 4KB, 4-way L1 per CU (the paper's 16KB scaled with the datasets).
SCALED_L1 = CacheConfig(n_sets=16, n_ways=4, line_bytes=64, hit_latency=4)
#: 32KB, 8-way shared L2 (the paper's 256KB scaled with the datasets).
SCALED_L2 = CacheConfig(n_sets=64, n_ways=8, line_bytes=64, hit_latency=24)


def scaled_apu_kwargs() -> Dict:
    """Apu constructor overrides for the experiment configuration."""
    return {"l1_config": SCALED_L1, "l2_config": SCALED_L2}


def build_study(name: str, *, seed: int = 0, n_cus: int = 4) -> AvfStudy:
    """Run a workload under the experiment configuration and open a study."""
    result = run(name, seed=seed, n_cus=n_cus, apu_kwargs=scaled_apu_kwargs())
    return AvfStudy(result.apu, result.output_ranges)


class StudyCache:
    """Memoised :func:`build_study` — one simulation per workload, reused
    across every (fault mode, scheme, interleaving) measurement."""

    def __init__(self) -> None:
        self._cache: Dict[str, AvfStudy] = {}

    def __call__(self, name: str) -> AvfStudy:
        if name not in self._cache:
            self._cache[name] = build_study(name)
        return self._cache[name]


# -- cross-benchmark sweeps through the campaign runtime ---------------------

_GRID_STUDIES: Optional[StudyCache] = None


def _init_grid_worker() -> None:
    """One memoised study cache per worker process."""
    global _GRID_STUDIES
    _GRID_STUDIES = StudyCache()


def _grid_task(payload) -> List[dict]:
    """Measure one benchmark's whole (mode, scheme, layout) grid.

    The sweep runs the engine's batch path: every (mode, scheme) cell of a
    layout shares one enumeration and one region-classification cache, so
    the grid costs little more than its most expensive cell.
    """
    name, structure, modes, schemes, layouts = payload
    study = _GRID_STUDIES(name)
    if structure == "vgpr":
        points = sweep_vgpr_avf(
            study, modes=modes, schemes=schemes, layouts=layouts
        )
    else:
        points = sweep_cache_avf(
            study, structure, modes=modes, schemes=schemes, layouts=layouts
        )
    return [asdict(p) for p in points]


def sweep_benchmarks(
    benchmarks: Sequence[str],
    structure: str = "l1",
    *,
    modes: Iterable[FaultMode],
    schemes: Iterable[ProtectionScheme],
    layouts: Optional[Iterable[Tuple[Interleaving, int]]] = None,
    jobs: int = 0,
    timeout: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[Union[Journal, str]] = None,
    progress: Union[bool, str] = False,
    fabric=None,
    store=None,
) -> Tuple[Dict[str, List[SweepPoint]], Dict[str, str]]:
    """Measure one sweep grid across many benchmarks through the runtime.

    Each benchmark is one task: with ``jobs >= 1`` benchmarks are simulated
    in parallel isolated workers (the first parallel sweep execution), a
    ``timeout`` bounds each benchmark's wall clock, and a ``journal`` makes
    the whole grid resumable.  Returns ``(points by benchmark, failures by
    benchmark)`` — a benchmark whose simulation fails is reported in the
    second mapping instead of aborting the sweep.

    ``fabric`` (a :class:`~repro.runtime.fabric.FabricCoordinator`)
    distributes the grid at *cell* granularity instead: every
    (benchmark, layout, scheme, mode) cell is one fabric task under the
    ``sweep_grid`` entrypoint, so cells of different benchmarks land on
    whichever node is free and each node simulates a workload at most
    once.  ``jobs`` is ignored in fabric mode; failure keys are then
    cell task ids rather than bare benchmark names.

    ``store`` (a :class:`~repro.store.ResultStore` or path) persists
    every measured point under its benchmark name.  In fabric mode it is
    also handed to the executor as its commit-time sink, so a journaled
    distributed sweep lands in the store the moment the coordinator
    finalizes — the direct ingest afterwards is then a keyed no-op.
    """
    if layouts is None:
        layouts = (
            ((Interleaving.INTRA_THREAD, 1),) if structure == "vgpr"
            else ((Interleaving.NONE, 1),)
        )
    modes = tuple(modes)
    schemes = tuple(schemes)
    layouts = tuple(layouts)
    if fabric is not None:
        points, failed = _sweep_benchmarks_fabric(
            benchmarks, structure, modes, schemes, layouts,
            fabric=fabric, timeout=timeout, retry=retry,
            journal=journal, progress=progress, store=store,
        )
        _sink_points(points, store)
        return points, failed
    tasks = [
        Task(
            id=f"grid/{structure}/{name}",
            payload=(name, structure, modes, schemes, layouts),
            meta={"benchmark": name, "structure": structure},
        )
        for name in benchmarks
    ]
    with Executor(
        _grid_task,
        jobs=jobs,
        timeout=timeout,
        retry=retry,
        journal=journal,
        initializer=_init_grid_worker,
        progress=progress,
    ) as executor:
        with get_tracer().span(
            "sweep", structure=structure, benchmarks=len(tasks),
            cells=len(modes) * len(schemes) * len(layouts),
        ):
            results = executor.run(tasks)
    points: Dict[str, List[SweepPoint]] = {}
    failed: Dict[str, str] = {}
    for name, task in zip(benchmarks, tasks):
        r = results[task.id]
        if r.ok:
            points[name] = [SweepPoint(**d) for d in r.value]
        else:
            failed[name] = f"{r.outcome}: {r.error}"
    _sink_points(points, store)
    return points, failed


def _sink_points(
    points: Dict[str, List[SweepPoint]], store
) -> None:
    """Persist per-benchmark sweep points when a sink was requested."""
    if store is None:
        return
    from .store import ingest_sweep_points, open_store

    with open_store(store) as sink:
        for name in sorted(points):
            ingest_sweep_points(sink, points[name], workload=name)


def _sweep_benchmarks_fabric(
    benchmarks: Sequence[str],
    structure: str,
    modes: Tuple[FaultMode, ...],
    schemes: Tuple[ProtectionScheme, ...],
    layouts: Tuple[Tuple[Interleaving, int], ...],
    *,
    fabric,
    timeout: Optional[float],
    retry: Optional[RetryPolicy],
    journal: Optional[Union[Journal, str]],
    progress: Union[bool, str],
    store,
) -> Tuple[Dict[str, List[SweepPoint]], Dict[str, str]]:
    """Cell-granular distributed sweep through the ``sweep_grid`` job."""
    from .core.sweep import _grid
    from .runtime.fabric import FabricExecutor, sweep_grid_job

    cells = _grid(structure, list(modes), list(schemes), list(layouts))
    tasks = []
    owners: Dict[str, str] = {}
    for name in benchmarks:
        for cell_id, cell in cells:
            # sweep/<structure>/<layout>/<scheme>/<mode> ->
            # grid/<structure>/<name>/<layout>/<scheme>/<mode>
            suffix = cell_id.split("/", 2)[2]
            task_id = f"grid/{structure}/{name}/{suffix}"
            owners[task_id] = name
            tasks.append(Task(
                id=task_id,
                payload=(name, cell),
                meta={"benchmark": name, "structure": structure},
            ))

    studies = StudyCache()

    def local_cell(payload) -> dict:
        """Driver-side fallback for cells the fleet cannot finish."""
        name, (style, factor, scheme, mode) = payload
        study = studies(name)
        if structure == "vgpr":
            res = study.vgpr_avf(mode, scheme, style=style, factor=factor)
        else:
            res = study.cache_avf(
                structure, mode, scheme, style=style, factor=factor
            )
        return asdict(SweepPoint.from_result(structure, style, factor, res))

    points: Dict[str, List[SweepPoint]] = {}
    failed: Dict[str, str] = {}
    with FabricExecutor(
        fabric, sweep_grid_job(structure),
        local_fn=local_cell, journal=journal, retry=retry,
        timeout=timeout, progress=progress, store=store,
    ) as executor:
        with get_tracer().span(
            "sweep", structure=structure, benchmarks=len(benchmarks),
            cells=len(cells), fabric=True,
        ):
            results = executor.run(tasks)
    for task in tasks:
        r = results[task.id]
        name = owners[task.id]
        if r.ok:
            points.setdefault(name, []).append(SweepPoint(**r.value))
        else:
            failed[task.id] = f"{r.outcome}: {r.error}"
    return points, failed


def observability_report() -> str:
    """Text account of the current observability session: per-stage span
    timings plus the metrics snapshot.  Meaningful after running
    experiments with :mod:`repro.obs` enabled (``repro stats`` does this
    end to end)."""
    return format_report(get_metrics(), get_tracer())
