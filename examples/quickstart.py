"""Quickstart: measure single- and multi-bit AVFs of a GPU L1 cache.

Runs the vector-add workload on the simulated APU, then computes the
single-bit AVF and the 2x1 multi-bit AVF of the L1 data array under parity
protection with x2 logical interleaving — the paper's core measurement
(Sec. V/VI).

Run with:  python examples/quickstart.py
"""

from repro.core import AvfStudy, FaultMode, Interleaving, Parity
from repro.experiments import scaled_apu_kwargs
from repro.workloads import run


def main() -> None:
    # 1. Execute a workload to completion on the simulated APU.  Outputs are
    #    verified against a numpy reference automatically.  (matmul has
    #    cache reuse, so its L1 AVF is interesting; a streaming kernel like
    #    vectoradd consumes each line the cycle it arrives and shows ~0.)
    result = run("matmul", apu_kwargs=scaled_apu_kwargs())
    print(f"ran {result.name}: {result.total_instructions} vector instructions, "
          f"{result.end_cycle} cycles")

    # 2. Build an AVF study: this runs the liveness (dynamic-dead + logic
    #    masking) analysis and prepares per-structure lifetimes.
    study = AvfStudy(result.apu, result.output_ranges)

    # 3. Single-bit AVF (the classic ACE-analysis measurement).
    sb = study.cache_avf("l1", FaultMode.linear(1), Parity())
    print(f"L1 single-bit DUE AVF (parity): {sb.due_avf:.4f}")

    # 4. 2x1 spatial multi-bit AVF with x2 logical interleaving.
    mb = study.cache_avf(
        "l1", FaultMode.linear(2), Parity(),
        style=Interleaving.LOGICAL, factor=2,
    )
    print(f"L1 2x1 DUE MB-AVF (parity, logical x2): {mb.due_avf:.4f}")
    print(f"L1 2x1 SDC MB-AVF:                      {mb.sdc_avf:.4f}")

    # 5. The paper's headline property: MB-AVF is between 1x and Mx the
    #    single-bit AVF, with the ratio set by ACE locality.
    if sb.due_avf > 0:
        print(f"MB/SB ratio: {mb.due_avf / sb.due_avf:.2f} "
              f"(theoretical range 1.0 - 2.0)")
    loc = study.cache_ace_locality(
        "l1", style=Interleaving.LOGICAL, factor=2
    )
    print(f"ACE locality of the interleaved layout: {loc:.3f}")


if __name__ == "__main__":
    main()
