"""Classed cycle-interval algebra underpinning all AVF computations.

ACE analysis reduces to bookkeeping over half-open cycle intervals
``[start, end)`` tagged with an :class:`AceClass`.  Every bit (in practice,
every tracked byte) of a hardware structure owns one :class:`IntervalSet`
describing when its content is required for architecturally correct
execution.  Multi-bit AVF analysis then combines the interval sets of the
bits inside a fault group (the union of ACEness, eq. 5 of the paper) and
classifies the result according to the protection scheme's reaction.

Time units are abstract "cycles" (any monotonically increasing simulator
timestamp works).  All intervals are half-open and use integer endpoints.

Storage and kernels
-------------------
An :class:`IntervalSet` is backed by three contiguous ``int64`` arrays
(``starts``, ``ends``, ``classes``); the list-of-tuples surface
(:meth:`IntervalSet.__iter__`, :meth:`IntervalSet.append`,
:meth:`IntervalSet._from_sorted`) is a thin view over them.  Appends from
the lifetime trackers land in a small Python staging list and are folded
into the arrays on first read, so trace replay stays cheap while the
analysis kernels get flat arrays.

The hot operations (:func:`sweep_max`, :meth:`IntervalSet.bucket_accumulate`,
:meth:`IntervalSet.clip`, the totals and :func:`intersection_duration`) each
have a vectorized numpy kernel and a plain-Python small-input path; real
lifetime sets are usually a handful of intervals, where numpy's per-call
overhead loses to a tuple loop.  Both paths are property-tested to produce
byte-identical results against the reference implementations preserved in
:mod:`repro.core._reference`.
"""

from __future__ import annotations

import bisect
from enum import IntEnum
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = [
    "AceClass",
    "Outcome",
    "IntervalSet",
    "sweep_max",
    "combine_outcomes",
    "intersection_duration",
]

#: Inputs below this many intervals take the plain-Python kernel path;
#: at or above it, the numpy kernels win.  Exposed for the equivalence
#: suite, which pins it to 0 (always vectorize) and to a huge value
#: (never vectorize) to cover both implementations.
SMALL_KERNEL_CUTOFF = 48

_EMPTY = np.empty(0, dtype=np.int64)


class AceClass(IntEnum):
    """Classification of a bit's content during a cycle interval.

    The ordering is a severity precedence: when several classes apply to the
    same instant (e.g. when taking the union over a fault group), the highest
    value wins.
    """

    #: Content is never consumed: a fault here is architecturally invisible.
    UNACE = 0
    #: Content is consumed, but only by dynamically-dead reads.  An error
    #: detector that fires on such a read raises a *false* DUE; an undetected
    #: fault here is still masked.
    READ_DEAD = 1
    #: Content is required for architecturally correct execution.  A fault is
    #: an error: SDC if undetected, true DUE if detected but uncorrected.
    ACE = 2


class Outcome(IntEnum):
    """Final classification of a fault (group) occurring at some cycle.

    The ordering is the precedence from Sec. VII-B of the paper:
    SDC > true DUE > false DUE > unACE.
    """

    UNACE = 0
    FALSE_DUE = 1
    TRUE_DUE = 2
    SDC = 3


Interval = Tuple[int, int, int]  # (start, end, cls)


class IntervalSet:
    """A sorted, coalesced set of non-overlapping classed intervals.

    Class ``0`` (:attr:`AceClass.UNACE` / :attr:`Outcome.UNACE`) is implicit:
    intervals with class 0 are never stored.  The same container is used both
    for :class:`AceClass`-tagged lifetimes and :class:`Outcome`-tagged fault
    classifications; the class is just a small non-negative integer.
    """

    __slots__ = ("_starts", "_ends", "_cls", "_tail", "_view", "_bytes")

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        ivals = sorted((int(s), int(e), int(c)) for s, e, c in intervals)
        tail: List[Interval] = []
        for s, e, c in ivals:
            if e <= s:
                raise ValueError(f"empty or inverted interval [{s}, {e})")
            if c < 0:
                raise ValueError(f"negative class {c}")
            if c == 0:
                continue
            if tail and s < tail[-1][1]:
                raise ValueError("overlapping intervals; use sweep_max to merge")
            if tail and tail[-1][1] == s and tail[-1][2] == c:
                ps, _, pc = tail[-1]
                tail[-1] = (ps, e, pc)
            else:
                tail.append((s, e, c))
        self._starts = self._ends = self._cls = _EMPTY
        self._tail = tail
        self._view: List[Interval] = None
        self._bytes: bytes = None

    # -- construction ------------------------------------------------------

    @classmethod
    def _from_sorted(cls, ivals: List[Interval]) -> "IntervalSet":
        """Trusted constructor for already sorted/coalesced/nonzero input."""
        obj = cls.__new__(cls)
        obj._starts = obj._ends = obj._cls = _EMPTY
        obj._tail = list(ivals)
        obj._view = None
        obj._bytes = None
        return obj

    @classmethod
    def _from_arrays(
        cls, starts: np.ndarray, ends: np.ndarray, classes: np.ndarray
    ) -> "IntervalSet":
        """Trusted constructor from already sorted/coalesced int64 arrays."""
        obj = cls.__new__(cls)
        obj._starts = starts
        obj._ends = ends
        obj._cls = classes
        obj._tail = []
        obj._view = None
        obj._bytes = None
        return obj

    def append(self, start: int, end: int, klass: int) -> None:
        """Append an interval that begins at or after every stored interval.

        This is the fast path used by lifetime trackers, which emit intervals
        in increasing time order.  Class-0 appends are ignored; adjacent
        same-class intervals are coalesced.
        """
        if end <= start or klass == 0:
            return
        tail = self._tail
        if tail:
            ps, pe, pc = tail[-1]
            if start < pe:
                raise ValueError(
                    f"append out of order: [{start},{end}) begins before {pe}"
                )
            if pe == start and pc == klass:
                tail[-1] = (ps, end, pc)
                self._view = None
                self._bytes = None
                return
        elif len(self._ends) and start < self._ends[-1]:
            raise ValueError(
                f"append out of order: [{start},{end}) begins before "
                f"{int(self._ends[-1])}"
            )
        tail.append((start, end, klass))
        self._view = None
        self._bytes = None

    # -- storage -----------------------------------------------------------

    def _flush(self) -> None:
        """Fold staged appends into the backing arrays."""
        tail = self._tail
        if not tail:
            return
        arr = np.asarray(tail, dtype=np.int64)
        starts, ends, classes = arr[:, 0], arr[:, 1], arr[:, 2]
        if len(self._starts):
            if (
                self._ends[-1] == starts[0]
                and self._cls[-1] == classes[0]
            ):
                starts = starts.copy()
                starts[0] = self._starts[-1]
                self._starts = self._starts[:-1]
                self._ends = self._ends[:-1]
                self._cls = self._cls[:-1]
            self._starts = np.concatenate([self._starts, starts])
            self._ends = np.concatenate([self._ends, ends])
            self._cls = np.concatenate([self._cls, classes])
        else:
            self._starts, self._ends, self._cls = starts, ends, classes
        self._tail = []

    def _arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The backing ``(starts, ends, classes)`` int64 arrays (flushed)."""
        if self._tail:
            self._flush()
        return self._starts, self._ends, self._cls

    def _tuple_view(self) -> List[Interval]:
        """Cached list-of-tuples view of the backing arrays."""
        view = self._view
        if view is None:
            s, e, c = self._arrays()
            view = self._view = list(zip(s.tolist(), e.tolist(), c.tolist()))
        return view

    def _key(self) -> bytes:
        """Canonical byte encoding: equal sets have equal keys."""
        key = self._bytes
        if key is None:
            s, e, c = self._arrays()
            key = self._bytes = (
                s.tobytes() + e.tobytes() + c.tobytes()
            )
        return key

    # -- queries -----------------------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._tuple_view())

    def __len__(self) -> int:
        if self._tail:
            self._flush()
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._tail) or len(self._starts) > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"IntervalSet({self._tuple_view()!r})"

    def intervals(self) -> List[Interval]:
        """Return the stored intervals as a list of ``(start, end, cls)``."""
        return list(self._tuple_view())

    def total(self, klass: int) -> int:
        """Total cycles spent exactly in class ``klass`` (0 not queryable)."""
        if klass == 0:
            raise ValueError("class 0 is implicit; its duration is unbounded")
        s, e, c = self._arrays()
        if len(s) < SMALL_KERNEL_CUTOFF:
            return sum(
                ie - is_ for is_, ie, ic in self._tuple_view() if ic == klass
            )
        return int(((e - s) * (c == klass)).sum())

    def total_at_least(self, klass: int) -> int:
        """Total cycles spent in class ``klass`` or any higher class."""
        s, e, c = self._arrays()
        if len(s) < SMALL_KERNEL_CUTOFF:
            return sum(
                ie - is_ for is_, ie, ic in self._tuple_view() if ic >= klass
            )
        return int(((e - s) * (c >= klass)).sum())

    def durations(self, nclasses: int) -> List[int]:
        """Per-class durations, index = class.  Index 0 is always 0."""
        s, e, c = self._arrays()
        if len(s) < SMALL_KERNEL_CUTOFF:
            out = [0] * nclasses
            for is_, ie, ic in self._tuple_view():
                out[ic] += ie - is_
            return out
        return (
            np.bincount(c, weights=(e - s), minlength=nclasses)
            .astype(np.int64, copy=False)
            .tolist()
        )

    def class_at(self, cycle: int) -> int:
        """The class in effect at ``cycle`` (0 if no interval covers it)."""
        view = self._tuple_view()
        idx = bisect.bisect_right(view, (cycle, float("inf"), 0)) - 1
        if idx >= 0:
            s, e, c = view[idx]
            if s <= cycle < e:
                return c
        return 0

    def span(self) -> Tuple[int, int]:
        """``(min start, max end)`` over stored intervals; (0, 0) if empty."""
        s, e, _ = self._arrays()
        if not len(s):
            return (0, 0)
        return (int(s[0]), int(e[-1]))

    # -- transforms --------------------------------------------------------

    def clip(self, start: int, end: int) -> "IntervalSet":
        """Restrict to the window ``[start, end)``."""
        s, e, c = self._arrays()
        n = len(s)
        if n < SMALL_KERNEL_CUTOFF:
            out: List[Interval] = []
            for is_, ie, ic in self._tuple_view():
                s2, e2 = max(is_, start), min(ie, end)
                if s2 < e2:
                    out.append((s2, e2, ic))
            return IntervalSet._from_sorted(out)
        # First interval ending after `start`, first interval starting at or
        # after `end`: everything between overlaps the window.
        i0 = int(np.searchsorted(e, start, side="right"))
        i1 = int(np.searchsorted(s, end, side="left"))
        if i0 >= i1:
            return IntervalSet._from_arrays(_EMPTY, _EMPTY, _EMPTY)
        s2 = np.clip(s[i0:i1], start, end)
        e2 = np.clip(e[i0:i1], start, end)
        return IntervalSet._from_arrays(s2, e2, c[i0:i1].copy())

    def map_class(self, fn: Callable[[int], int]) -> "IntervalSet":
        """Remap classes through ``fn``; class-0 results are dropped."""
        s, e, c = self._arrays()
        n = len(s)
        if n < SMALL_KERNEL_CUTOFF:
            out: List[Interval] = []
            for is_, ie, ic in self._tuple_view():
                c2 = fn(ic)
                if c2 == 0:
                    continue
                if out and out[-1][1] == is_ and out[-1][2] == c2:
                    ps, _, pc = out[-1]
                    out[-1] = (ps, ie, pc)
                else:
                    out.append((is_, ie, c2))
            return IntervalSet._from_sorted(out)
        # Apply fn once per distinct class, remap, drop zeros, coalesce.
        present = np.unique(c)
        lut = {int(k): int(fn(int(k))) for k in present}
        c2 = np.array([lut[int(k)] for k in c], dtype=np.int64)
        keep = c2 != 0
        if not keep.any():
            return IntervalSet._from_arrays(_EMPTY, _EMPTY, _EMPTY)
        ks, ke, kc = s[keep], e[keep], c2[keep]
        join = (ks[1:] == ke[:-1]) & (kc[1:] == kc[:-1])
        head = np.empty(len(ks), dtype=bool)
        head[0] = True
        np.logical_not(join, out=head[1:])
        idx = np.flatnonzero(head)
        ends = ke[np.append(idx[1:] - 1, len(ks) - 1)]
        return IntervalSet._from_arrays(ks[idx].copy(), ends, kc[idx].copy())

    def _coverage_at(
        self, t: np.ndarray, mask: np.ndarray = None
    ) -> np.ndarray:
        """Covered duration in ``[span start, t)`` per query point ``t``.

        ``mask`` optionally restricts to a subset of intervals (which stay
        sorted and disjoint).  The difference of two evaluations gives the
        overlap of this set with any window — the building block of the
        vectorized :meth:`bucket_accumulate` and
        :func:`intersection_duration`.
        """
        s, e, _ = self._arrays()
        if mask is not None:
            s, e = s[mask], e[mask]
        if not len(s):
            return np.zeros(len(t), dtype=np.int64)
        cum = np.concatenate([[0], np.cumsum(e - s)])
        idx = np.searchsorted(s, t, side="right") - 1
        idxc = np.maximum(idx, 0)
        inside = np.clip(t - s[idxc], 0, e[idxc] - s[idxc])
        return np.where(idx >= 0, cum[idxc] + inside, 0)

    def bucket_accumulate(self, edges: Sequence[int], out) -> None:
        """Accumulate per-class durations into time buckets.

        ``edges`` are ``B+1`` increasing bucket boundaries; ``out`` is an
        indexable of shape ``(B, nclasses)`` (e.g. a numpy array) that is
        incremented in place with the overlap of every interval with every
        bucket.
        """
        s, e, c = self._arrays()
        if len(s) < SMALL_KERNEL_CUTOFF or not isinstance(out, np.ndarray):
            nb = len(edges) - 1
            for is_, ie, ic in self._tuple_view():
                lo = bisect.bisect_right(edges, is_) - 1
                lo = max(lo, 0)
                for b in range(lo, nb):
                    bs, be = edges[b], edges[b + 1]
                    if bs >= ie:
                        break
                    ov = min(ie, be) - max(is_, bs)
                    if ov > 0:
                        out[b][ic] += ov
            return
        edges_arr = np.asarray(edges, dtype=np.int64)
        for k in np.unique(c):
            cov = self._coverage_at(edges_arr, mask=(c == k))
            out[:, int(k)] += np.diff(cov)


def _sweep_max_vector(sets: Sequence[IntervalSet]) -> IntervalSet:
    """Vectorized eq. 5 union: one event sort + per-class running coverage."""
    starts = []
    ends = []
    classes = []
    for iset in sets:
        s, e, c = iset._arrays()
        starts.append(s)
        ends.append(e)
        classes.append(c)
    s = np.concatenate(starts)
    e = np.concatenate(ends)
    c = np.concatenate(classes)
    # Boundary events: +1 at starts, -1 at ends, per class.
    times, inv = np.unique(np.concatenate([s, e]), return_inverse=True)
    cls2 = np.concatenate([c, c])
    delta = np.empty(2 * len(s), dtype=np.int64)
    delta[: len(s)] = 1
    delta[len(s):] = -1
    nseg = len(times) - 1
    active = np.zeros(nseg, dtype=np.int64)
    for k in np.unique(c)[::-1]:  # highest class wins
        m = cls2 == k
        d = np.zeros(len(times), dtype=np.int64)
        np.add.at(d, inv[m], delta[m])
        cov = np.cumsum(d)[:-1]
        np.copyto(active, k, where=(active == 0) & (cov > 0))
    if not active.any():
        return IntervalSet._from_arrays(_EMPTY, _EMPTY, _EMPTY)
    # Run-length encode the per-segment classes; segments share boundaries,
    # so equal-class runs coalesce and class-0 runs split, exactly like the
    # event-at-a-time reference.
    change = np.empty(nseg, dtype=bool)
    change[0] = True
    np.not_equal(active[1:], active[:-1], out=change[1:])
    idx = np.flatnonzero(change)
    run_cls = active[idx]
    run_start = times[idx]
    run_end = times[np.append(idx[1:], nseg)]
    keep = run_cls > 0
    return IntervalSet._from_arrays(
        run_start[keep], run_end[keep], run_cls[keep]
    )


def sweep_max(sets: Sequence[IntervalSet]) -> IntervalSet:
    """Pointwise maximum-class union of interval sets (eq. 5).

    At every instant the resulting class is the maximum class among all
    inputs covering that instant.  This realises "a fault group is ACE if any
    of its bits is ACE" and, with :class:`AceClass` severity ordering,
    propagates the strongest consequence.
    """
    live = [s for s in sets if s]
    if not live:
        return IntervalSet()
    if len(live) == 1:
        only = live[0]
        s, e, c = only._arrays()
        return IntervalSet._from_arrays(s, e, c)
    if sum(len(s) for s in live) >= SMALL_KERNEL_CUTOFF:
        return _sweep_max_vector(live)
    events: List[Tuple[int, int, int]] = []  # (cycle, delta, cls)
    maxcls = 0
    for iset in live:
        for s, e, c in iset._tuple_view():
            events.append((s, +1, c))
            events.append((e, -1, c))
            if c > maxcls:
                maxcls = c
    events.sort()
    counts = [0] * (maxcls + 1)
    out: List[Interval] = []
    cur_cls = 0
    cur_start = 0
    i, n = 0, len(events)
    while i < n:
        cyc = events[i][0]
        while i < n and events[i][0] == cyc:
            _, d, c = events[i]
            counts[c] += d
            i += 1
        new_cls = 0
        for c in range(maxcls, 0, -1):
            if counts[c] > 0:
                new_cls = c
                break
        if new_cls != cur_cls:
            if cur_cls != 0 and cyc > cur_start:
                if out and out[-1][1] == cur_start and out[-1][2] == cur_cls:
                    ps, _, pc = out[-1]
                    out[-1] = (ps, cyc, pc)
                else:
                    out.append((cur_start, cyc, cur_cls))
            cur_start = cyc
            cur_cls = new_cls
    return IntervalSet._from_sorted(out)


def intersection_duration(a: IntervalSet, b: IntervalSet, klass: int) -> int:
    """Cycles during which *both* sets are in class >= ``klass``."""
    sa, ea, ca = a._arrays()
    sb, eb, cb = b._arrays()
    if len(sa) + len(sb) < SMALL_KERNEL_CUTOFF:
        ivals_a = [(s, e) for s, e, c in a._tuple_view() if c >= klass]
        ivals_b = [(s, e) for s, e, c in b._tuple_view() if c >= klass]
        total = 0
        i = j = 0
        while i < len(ivals_a) and j < len(ivals_b):
            s = max(ivals_a[i][0], ivals_b[j][0])
            e = min(ivals_a[i][1], ivals_b[j][1])
            if s < e:
                total += e - s
            if ivals_a[i][1] < ivals_b[j][1]:
                i += 1
            else:
                j += 1
        return total
    ma = ca >= klass
    mb = cb >= klass
    if not ma.any() or not mb.any():
        return 0
    # Overlap with b of each a-interval = coverage difference at its ends.
    lo = b._coverage_at(sa[ma], mask=mb)
    hi = b._coverage_at(ea[ma], mask=mb)
    return int((hi - lo).sum())


def combine_outcomes(
    sets: Sequence[IntervalSet], *, due_preempts_sdc: bool = False
) -> IntervalSet:
    """Combine per-region :class:`Outcome` interval sets into a group outcome.

    Default precedence is SDC > true DUE > false DUE > unACE (Sec. VII-B):
    when a cache line with an SDC-bound region coexists with a detected
    region, detection cannot be guaranteed to precede SDC propagation.

    With ``due_preempts_sdc=True`` the Sec. VIII rule applies instead: the
    structure is read as one unit (e.g. 16 GPU threads reading the VGPR row
    simultaneously), so a detected region fires *before* the undetected
    region's data can propagate — simultaneous SDC + DUE becomes a true DUE.
    """
    if not due_preempts_sdc:
        return sweep_max(sets)
    merged = sweep_max(sets)
    if not merged:
        return merged
    # Recompute instants where SDC coexists with a DUE region.
    due_times = sweep_max(
        [
            s.map_class(lambda c: 1 if c in (Outcome.TRUE_DUE, Outcome.FALSE_DUE) else 0)
            for s in sets
        ]
    )
    if not due_times:
        return merged
    out: List[Interval] = []

    def emit(s: int, e: int, c: int) -> None:
        if out and out[-1][1] == s and out[-1][2] == c:
            ps, _, pc = out[-1]
            out[-1] = (ps, e, pc)
        else:
            out.append((s, e, c))

    due_ivals = due_times.intervals()
    for s, e, c in merged:
        if c != Outcome.SDC:
            emit(s, e, c)
            continue
        # Split the SDC interval against the DUE coverage.
        cur = s
        for ds, de, _ in due_ivals:
            if de <= cur or ds >= e:
                continue
            if ds > cur:
                emit(cur, ds, int(Outcome.SDC))
            ov_end = min(de, e)
            emit(max(ds, cur), ov_end, int(Outcome.TRUE_DUE))
            cur = ov_end
            if cur >= e:
                break
        if cur < e:
            emit(cur, e, int(Outcome.SDC))
    return IntervalSet._from_sorted(out)
