"""Equivalence suite: vectorized engine vs the pure-Python reference.

The numpy interval kernels, the windowed 2-D enumerator and the batch API
must be *bit-for-bit* interchangeable with the reference implementations
preserved in :mod:`repro.core._reference` — same intervals, same signature
multisets, same outcome cycles, same series arrays.  Randomized inputs are
seeded (hypothesis + a fixed-seed numpy generator) so failures replay.

Every kernel is exercised on both dispatch paths: the tiny-input Python
path and the numpy path, by pinning ``SMALL_KERNEL_CUTOFF`` to 0 (always
numpy) and to a huge value (always Python) and comparing against the
reference either way.
"""

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import _reference as ref
from repro.core import intervals as iv
from repro.core.avf import (
    AvfConfig,
    StructureLifetimes,
    _canonical_iset_ids,
    _enumerate_signatures,
    _unique_rows,
    ace_locality,
    compute_mb_avf,
    compute_mb_avf_batch,
)
from repro.core.faultmodes import FaultMode
from repro.core.intervals import (
    IntervalSet,
    intersection_duration,
    sweep_max,
)
from repro.core.layout import Interleaving, build_cache_array
from repro.core.protection import SCHEMES


CUTOFFS = [0, 10**9]  # always-numpy / always-python dispatch


@contextmanager
def kernel_cutoff(value):
    """Force every kernel through one dispatch path within the block."""
    saved = iv.SMALL_KERNEL_CUTOFF
    iv.SMALL_KERNEL_CUTOFF = value
    try:
        yield
    finally:
        iv.SMALL_KERNEL_CUTOFF = saved


# -- strategies ---------------------------------------------------------------


@st.composite
def interval_sets(draw, max_cls=3, max_ivals=12, horizon=200):
    """A valid IntervalSet: sorted, non-overlapping, classes 1..max_cls."""
    n = draw(st.integers(0, max_ivals))
    cuts = draw(
        st.lists(
            st.integers(0, horizon), min_size=2 * n, max_size=2 * n, unique=True
        )
    )
    cuts.sort()
    out = IntervalSet()
    for i in range(n):
        out.append(cuts[2 * i], cuts[2 * i + 1], draw(st.integers(1, max_cls)))
    return out


set_lists = st.lists(interval_sets(), min_size=0, max_size=6)


def as_tuples(iset):
    return list(iset)


# -- interval kernels ---------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(sets=set_lists)
@pytest.mark.parametrize("cutoff", CUTOFFS)
def test_sweep_max_matches_reference(sets, cutoff):
    with kernel_cutoff(cutoff):
        got = as_tuples(sweep_max(sets))
    assert got == as_tuples(ref.sweep_max_ref(sets))


@settings(max_examples=60, deadline=None)
@given(sets=set_lists, due=st.booleans())
@pytest.mark.parametrize("cutoff", CUTOFFS)
def test_combine_outcomes_matches_reference(sets, due, cutoff):
    with kernel_cutoff(cutoff):
        got = iv.combine_outcomes(sets, due_preempts_sdc=due)
    want = ref.combine_outcomes_ref(sets, due_preempts_sdc=due)
    assert as_tuples(got) == as_tuples(want)


@settings(max_examples=60, deadline=None)
@given(iset=interval_sets(), lo=st.integers(0, 200), span=st.integers(0, 200))
@pytest.mark.parametrize("cutoff", CUTOFFS)
def test_clip_matches_reference(iset, lo, span, cutoff):
    with kernel_cutoff(cutoff):
        got = iset.clip(lo, lo + span)
    assert as_tuples(got) == as_tuples(ref.clip_ref(iset, lo, lo + span))


@settings(max_examples=60, deadline=None)
@given(iset=interval_sets(), mapping=st.lists(st.integers(0, 3), min_size=4, max_size=4))
@pytest.mark.parametrize("cutoff", CUTOFFS)
def test_map_class_matches_reference(iset, mapping, cutoff):
    with kernel_cutoff(cutoff):
        got = iset.map_class(lambda c: mapping[c])
    want = ref.map_class_ref(iset, lambda c: mapping[c])
    assert as_tuples(got) == as_tuples(want)


@settings(max_examples=60, deadline=None)
@given(iset=interval_sets(), klass=st.integers(1, 4))
@pytest.mark.parametrize("cutoff", CUTOFFS)
def test_totals_match_reference(iset, klass, cutoff):
    with kernel_cutoff(cutoff):
        total = iset.total(klass)
        at_least = iset.total_at_least(klass)
    assert total == ref.total_ref(iset, klass)
    assert at_least == ref.total_at_least_ref(iset, klass)


@settings(max_examples=60, deadline=None)
@given(a=interval_sets(), b=interval_sets(), klass=st.integers(1, 3))
@pytest.mark.parametrize("cutoff", CUTOFFS)
def test_intersection_duration_matches_reference(a, b, klass, cutoff):
    with kernel_cutoff(cutoff):
        got = intersection_duration(a, b, klass)
    assert got == ref.intersection_duration_ref(a, b, klass)


@settings(max_examples=40, deadline=None)
@given(
    iset=interval_sets(),
    edges=st.lists(st.integers(0, 220), min_size=2, max_size=8, unique=True),
)
@pytest.mark.parametrize("cutoff", CUTOFFS)
def test_bucket_accumulate_matches_reference(iset, edges, cutoff):
    edges = np.asarray(sorted(edges), dtype=np.int64)
    got = np.zeros((len(edges) - 1, 4), dtype=np.float64)
    want = np.zeros_like(got)
    with kernel_cutoff(cutoff):
        iset.bucket_accumulate(edges, got)
    ref.bucket_accumulate_ref(iset, edges, want)
    np.testing.assert_array_equal(got, want)


# -- _unique_rows (satellite: empty-input fix) --------------------------------


def test_unique_rows_empty_input():
    empty = np.empty((0, 4), dtype=np.int32)
    uniq, counts = _unique_rows(empty)
    assert uniq.shape == (0, 4)
    assert counts.shape == (0,)


def test_unique_rows_counts():
    a = np.array([[1, 2], [0, 1], [1, 2], [1, 2], [0, 1]], dtype=np.int32)
    uniq, counts = _unique_rows(a)
    got = {tuple(r): c for r, c in zip(uniq.tolist(), counts.tolist())}
    assert got == {(0, 1): 2, (1, 2): 3}
    assert counts.sum() == len(a)


# -- enumeration + full engine -----------------------------------------------


def _random_lifetimes(rng, n_bytes, end_cycle=120, share=0.3):
    """Random classed lifetimes with deliberate duplicate interval sets."""
    pool = []
    for _ in range(max(2, n_bytes // 3)):
        s = IntervalSet()
        t = 0
        while t < end_cycle - 2 and len(s) < 5:
            t += int(rng.integers(1, 25))
            d = int(rng.integers(1, 20))
            if t + d >= end_cycle:
                break
            s.append(t, t + d, int(rng.integers(1, 4)))
            t += d
        pool.append(s)
    isets = [
        IntervalSet() if rng.random() < share
        else pool[int(rng.integers(0, len(pool)))]
        for _ in range(n_bytes)
    ]
    return StructureLifetimes("t", isets, 0, end_cycle)


MODES = [
    FaultMode.linear(1),
    FaultMode.linear(2),
    FaultMode.linear(4),
    FaultMode.rect(2, 2),
    FaultMode.rect(2, 3),
    FaultMode.rect(4, 4),
]


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("mode", MODES, ids=[m.name for m in MODES])
def test_enumerator_matches_reference(seed, mode):
    rng = np.random.default_rng(seed)
    array = build_cache_array(
        4, 2, 16, domain_bytes=4,
        style=Interleaving.WAY_PHYSICAL, factor=2, name="t",
    )
    lts = _random_lifetimes(rng, array.n_bytes)
    canon = _canonical_iset_ids(lts)
    got = _enumerate_signatures(array, canon.byte2iid, mode)
    want = ref.enumerate_signatures_ref(array, canon.byte2iid, mode)
    # The production enumerator drops all-lifetime-empty placements (they
    # classify to nothing); the reference emits their signature.  Outcomes
    # are unaffected — compare after dropping empty signatures.
    want = {
        sig: n for sig, n in want.items() if any(ids for _, ids in sig)
    }
    assert got == want


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("scheme", ["none", "parity", "secded"])
@pytest.mark.parametrize("due", [False, True])
@pytest.mark.parametrize("cutoff", CUTOFFS)
def test_engine_outcomes_match_reference(seed, scheme, due, cutoff):
    rng = np.random.default_rng(seed)
    array = build_cache_array(
        4, 2, 16, domain_bytes=4,
        style=Interleaving.NONE, factor=1, name="t",
    )
    mode = FaultMode.rect(2, 2) if seed else FaultMode.linear(3)
    edges = (0, 30, 60, 90, 120)
    lts = _random_lifetimes(rng, array.n_bytes)
    with kernel_cutoff(cutoff):
        res = compute_mb_avf(
            array, lts, mode, SCHEMES[scheme],
            due_preempts_sdc=due, series_edges=edges,
        )
    want_cycles, want_series = ref.compute_outcome_cycles_ref(
        array, lts, mode, SCHEMES[scheme],
        due_preempts_sdc=due, series_edges=edges,
    )
    assert res.outcome_cycles == want_cycles
    np.testing.assert_array_equal(res.series, want_series)


@pytest.mark.parametrize("seed", [0, 3])
def test_batch_matches_singles(seed):
    rng = np.random.default_rng(seed)
    array = build_cache_array(
        4, 2, 16, domain_bytes=4,
        style=Interleaving.WAY_PHYSICAL, factor=2, name="t",
    )
    configs = [
        AvfConfig(mode=m, scheme=SCHEMES[s], due_preempts_sdc=d)
        for m in (FaultMode.linear(2), FaultMode.rect(2, 2))
        for s in ("parity", "secded")
        for d in (False, True)
    ]
    lts_batch = _random_lifetimes(rng, array.n_bytes)
    batch = compute_mb_avf_batch(array, lts_batch, configs)
    # Fresh lifetimes (and a fresh array memo) for the single-call runs so
    # the comparison does not share state with the batch.
    rng = np.random.default_rng(seed)
    array2 = build_cache_array(
        4, 2, 16, domain_bytes=4,
        style=Interleaving.WAY_PHYSICAL, factor=2, name="t",
    )
    lts_single = _random_lifetimes(rng, array2.n_bytes)
    for cfg, got in zip(configs, batch):
        want = compute_mb_avf(
            array2, lts_single, cfg.mode, cfg.scheme,
            due_preempts_sdc=cfg.due_preempts_sdc,
        )
        assert got.outcome_cycles == want.outcome_cycles
        assert got.n_groups == want.n_groups
        assert got.due_avf == want.due_avf
        assert got.sdc_avf == want.sdc_avf


def test_batch_reuses_caches(monkeypatch):
    from repro import obs

    rng = np.random.default_rng(7)
    array = build_cache_array(4, 2, 16, domain_bytes=4, name="t")
    lts = _random_lifetimes(rng, array.n_bytes)
    configs = [
        AvfConfig(mode=FaultMode.linear(2), scheme=SCHEMES["parity"]),
        AvfConfig(mode=FaultMode.linear(2), scheme=SCHEMES["secded"]),
        AvfConfig(mode=FaultMode.linear(2), scheme=SCHEMES["parity"]),
    ]
    obs.enable()
    try:
        obs.get_metrics().reset()
        compute_mb_avf_batch(array, lts, configs)
        snap = obs.get_metrics().snapshot()
        # config 2 re-enumerates nothing and re-classifies nothing: the
        # memoized enumeration and the combined-outcome cache both hit.
        assert snap["counters"]["avf.batch_cache_hits"] > 0
        assert snap["counters"]["avf.computations"] == 3
    finally:
        obs.disable()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_ace_locality_matches_reference(seed):
    rng = np.random.default_rng(seed)
    array = build_cache_array(
        4, 2, 16, domain_bytes=4,
        style=Interleaving.WAY_PHYSICAL, factor=2, name="t",
    )
    lts = _random_lifetimes(rng, array.n_bytes)
    got = ace_locality(array, lts)
    rng = np.random.default_rng(seed)
    lts2 = _random_lifetimes(rng, array.n_bytes)
    want = ref.ace_locality_ref(array, lts2)
    assert got == want
