"""Figure 4: 2x1 DUE MB-AVF of the L1 cache under x2 interleaving styles.

Shape targets (Sec. VI-B): for every workload the 2x1 MB-AVF lies between
1x and 2x the single-bit AVF; logical interleaving (highest ACE locality)
is consistently closest to the 1x minimum; physical styles vary by
workload access pattern.
"""

import numpy as np
import pytest

from repro.core import FaultMode, Interleaving, Parity
from repro.workloads.suite import EVALUATION_SET

STYLES = (
    ("logical", Interleaving.LOGICAL),
    ("way", Interleaving.WAY_PHYSICAL),
    ("index", Interleaving.INDEX_PHYSICAL),
)


def _measure(study_of):
    rows = {}
    for wl in EVALUATION_SET:
        study = study_of(wl)
        sb = study.cache_avf("l1", FaultMode.linear(1), Parity()).due_avf
        ratios = {}
        for label, style in STYLES:
            mb = study.cache_avf(
                "l1", FaultMode.linear(2), Parity(), style=style, factor=2
            ).due_avf
            ratios[label] = mb / sb if sb > 0 else float("nan")
        rows[wl] = (sb, ratios)
    return rows


@pytest.mark.benchmark(group="figure4")
def test_figure4_interleaving(benchmark, study_of, report):
    rows = benchmark.pedantic(_measure, args=(study_of,), rounds=1, iterations=1)
    lines = [f"{'workload':<14} {'SB-AVF':>8} {'logical':>9} {'way':>9} {'index':>9}"]
    for wl, (sb, ratios) in rows.items():
        lines.append(
            f"{wl:<14} {sb:8.4f} "
            + " ".join(f"{ratios[lab]:8.2f}x" for lab, _ in STYLES)
        )
    measured = {
        lab: [r[lab] for _, (sb, r) in rows.items() if sb > 1e-6]
        for lab, _ in STYLES
    }
    means = {lab: float(np.mean(v)) for lab, v in measured.items()}
    lines.append(
        "mean           ........ "
        + " ".join(f"{means[lab]:8.2f}x" for lab, _ in STYLES)
    )
    report("figure4_interleaving", lines)

    # Shape target 1: MB-AVF within [1x, 2x] of SB-AVF for every workload.
    # (The 2x bound carries a cols/(cols-1) row-boundary factor: a row of C
    # bits holds C-1 groups, so the denominator shrinks slightly.)
    for lab, vals in measured.items():
        for r in vals:
            assert 1.0 - 1e-6 <= r <= 2.0 * 1.005, (lab, r)
    # Shape target 2: logical interleaving has the lowest mean ratio.
    assert means["logical"] <= means["way"] + 1e-9
    assert means["logical"] <= means["index"] + 1e-9
    # Shape target 3: physical interleaving costs extra MB-AVF on average.
    assert max(means["way"], means["index"]) > means["logical"]
