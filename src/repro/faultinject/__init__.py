"""Fault-injection framework (the paper's multi2sim-based study analogue)."""

from .campaign import (
    BenchmarkCampaign,
    InjectionOutcome,
    InjectionSpec,
    ace_interference_study,
    run_campaign,
)
from .validation import ValidationResult, validate_memory_avf

__all__ = [
    "BenchmarkCampaign",
    "InjectionOutcome",
    "InjectionSpec",
    "ace_interference_study",
    "run_campaign",
    "ValidationResult",
    "validate_memory_avf",
]
