"""Distributed campaign fabric: coordinator/worker over HTTP/JSON.

Shards :class:`~repro.faultinject.campaign.BenchmarkCampaign` injections
and :mod:`repro.core.sweep` cells across worker nodes with lease-based
assignment, at-least-once idempotent execution, a replicated journal
(node shards merged into the canonical log on commit), deadlined RPCs
with deterministic retry, and graceful degradation to local execution
when the fleet dies.  Built on the stdlib only (``http.server`` /
``http.client``); node-level chaos rides the same
:class:`~repro.runtime.chaos.ChaosSpec` as the rest of the runtime.

See ``docs/distributed.md`` for the protocol, the lease/heartbeat
semantics and the failure matrix.
"""

from .coordinator import FabricCoordinator, FabricExecutor
from .merge import SPAN_SHARD_SUFFIX, find_shards, merge_shards
from .protocol import JobSpec, RpcError, RpcUnavailable
from .rpc import DEFAULT_RPC_TIMEOUT, RpcClient
from .tasks import (
    ENTRYPOINTS,
    Entrypoint,
    injection_job,
    register_entrypoint,
    resolve,
    stub_job,
    sweep_grid_job,
    sweep_job,
)
from .worker import FabricWorker, run_worker

__all__ = [
    "DEFAULT_RPC_TIMEOUT",
    "ENTRYPOINTS",
    "Entrypoint",
    "FabricCoordinator",
    "FabricExecutor",
    "FabricWorker",
    "JobSpec",
    "RpcClient",
    "RpcError",
    "RpcUnavailable",
    "SPAN_SHARD_SUFFIX",
    "find_shards",
    "injection_job",
    "merge_shards",
    "register_entrypoint",
    "resolve",
    "run_worker",
    "stub_job",
    "sweep_grid_job",
    "sweep_job",
]
