"""Unit tests for the shared service-hardening layer (runtime.guard).

Everything here is deterministic: buckets and breakers take injected
clocks, the admission gate is driven from controlled threads, and body
reads run against in-memory streams.
"""

import io
import threading

import pytest

from repro.runtime.guard import (
    AdmissionGate,
    CircuitBreaker,
    GuardConfig,
    GuardRejection,
    ServiceGuard,
    TokenBucket,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestGuardConfig:
    def test_defaults_valid(self):
        cfg = GuardConfig()
        assert cfg.max_inflight >= 1
        assert cfg.max_body_bytes > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"max_queue": -1},
            {"queue_timeout": -0.1},
            {"rate": -1.0},
            {"max_body_bytes": 0},
            {"socket_timeout": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GuardConfig(**kwargs)


class TestGuardRejection:
    def test_body_is_well_formed_json_payload(self):
        rej = GuardRejection(503, "shed", retry_after=0.5)
        assert rej.body() == {
            "error": "shed", "status": 503, "retry_after": 0.5,
        }

    def test_no_retry_after_means_no_key(self):
        assert "retry_after" not in GuardRejection(400, "bad").body()


class TestTokenBucket:
    def test_zero_rate_disables_limiting(self):
        bucket = TokenBucket(0.0, 1.0, clock=FakeClock())
        assert all(bucket.try_take() for _ in range(1000))

    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(1.0, 3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(2.0, 1.0, clock=clock)
        assert bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token back
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, 2.0, clock=clock)
        clock.advance(60.0)
        assert [bucket.try_take() for _ in range(3)] == [True, True, False]


class TestAdmissionGate:
    def test_admits_up_to_max_inflight(self):
        gate = AdmissionGate(2, 0)
        assert gate.try_enter(0.0)
        assert gate.try_enter(0.0)
        assert not gate.try_enter(0.0)
        assert gate.inflight == 2

    def test_leave_frees_a_slot(self):
        gate = AdmissionGate(1, 0)
        assert gate.try_enter(0.0)
        gate.leave()
        assert gate.try_enter(0.0)

    def test_full_queue_refused_immediately(self):
        gate = AdmissionGate(1, 0)
        assert gate.try_enter(0.0)
        # max_queue=0: nobody may wait, however long the timeout
        assert not gate.try_enter(5.0)

    def test_queued_request_admitted_when_slot_frees(self):
        gate = AdmissionGate(1, 1)
        assert gate.try_enter(0.0)
        admitted = []

        def waiter():
            admitted.append(gate.try_enter(5.0))

        t = threading.Thread(target=waiter)
        t.start()
        gate.leave()
        t.join(timeout=5.0)
        assert admitted == [True]

    def test_queue_timeout_sheds(self):
        gate = AdmissionGate(1, 1)
        assert gate.try_enter(0.0)
        assert not gate.try_enter(0.05)  # waited, timed out, shed


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        brk = CircuitBreaker(failure_threshold=3, reset_after=1.0,
                             clock=clock)
        for _ in range(2):
            brk.record_failure()
        assert brk.state == brk.CLOSED and brk.allow()
        brk.record_failure()
        assert brk.state == brk.OPEN and not brk.allow()

    def test_half_open_probe_after_reset(self):
        clock = FakeClock()
        brk = CircuitBreaker(failure_threshold=1, reset_after=1.0,
                             clock=clock)
        brk.record_failure()
        assert not brk.allow()
        clock.advance(1.0)
        assert brk.allow()            # the single probe
        assert brk.state == brk.HALF_OPEN
        assert not brk.allow()        # everyone else keeps failing fast

    def test_probe_success_closes(self):
        clock = FakeClock()
        brk = CircuitBreaker(failure_threshold=1, reset_after=1.0,
                             clock=clock)
        brk.record_failure()
        clock.advance(1.0)
        assert brk.allow()
        brk.record_success()
        assert brk.state == brk.CLOSED and brk.allow()

    def test_probe_failure_reopens_for_full_window(self):
        clock = FakeClock()
        brk = CircuitBreaker(failure_threshold=3, reset_after=1.0,
                             clock=clock)
        for _ in range(3):
            brk.record_failure()
        clock.advance(1.0)
        assert brk.allow()
        brk.record_failure()  # one half-open failure re-opens immediately
        assert brk.state == brk.OPEN
        clock.advance(0.5)
        assert not brk.allow()
        clock.advance(0.5)
        assert brk.allow()

    def test_success_resets_failure_streak(self):
        brk = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        brk.record_failure()
        brk.record_success()
        brk.record_failure()
        assert brk.state == brk.CLOSED


class _Headers(dict):
    """Just enough of http.client's message API for read_body."""


def _read(guard, payload, content_length):
    return guard.read_body(
        io.BytesIO(payload), _Headers({"Content-Length": content_length})
    )


class TestServiceGuardAdmission:
    def test_admit_context_manager_releases(self):
        guard = ServiceGuard("t", GuardConfig(max_inflight=1, max_queue=0))
        with guard.admit():
            assert guard.inflight == 1
        assert guard.inflight == 0

    def test_shed_raises_503_with_retry_after(self):
        guard = ServiceGuard(
            "t",
            GuardConfig(max_inflight=1, max_queue=0, queue_timeout=0.01,
                        retry_after=0.25),
        )
        guard.acquire()
        with pytest.raises(GuardRejection) as exc_info:
            guard.acquire()
        assert exc_info.value.status == 503
        assert exc_info.value.retry_after == 0.25
        guard.release()

    def test_rejection_does_not_leak_a_slot(self):
        guard = ServiceGuard(
            "t", GuardConfig(max_inflight=1, max_queue=0, queue_timeout=0.01)
        )
        guard.acquire()
        for _ in range(3):
            with pytest.raises(GuardRejection):
                guard.acquire()
        guard.release()
        with guard.admit():
            pass  # the slot came back

    def test_rate_limit_raises_429(self):
        # burst floor is 1 token: the first request spends it, the
        # second is rate-limited (rate is too slow to refill in time).
        guard = ServiceGuard(
            "t", GuardConfig(rate=0.000001, burst=1.0, retry_after=0.1)
        )
        with guard.admit():
            pass
        with pytest.raises(GuardRejection) as exc_info:
            guard.acquire()
        assert exc_info.value.status == 429
        assert exc_info.value.retry_after == 0.1


class TestServiceGuardDeadline:
    def test_absent_or_unparsable_deadline_is_ignored(self):
        guard = ServiceGuard("t")
        for raw in (None, "nope", [], 0, -5):
            guard.check_deadline(raw, arrival=0.0)  # must not raise

    def test_expired_deadline_rejected_504(self):
        import time

        guard = ServiceGuard("t")
        arrival = time.monotonic() - 1.0  # arrived one second ago
        with pytest.raises(GuardRejection) as exc_info:
            guard.check_deadline(50, arrival)  # 50ms budget, long gone
        assert exc_info.value.status == 504

    def test_live_deadline_passes(self):
        import time

        guard = ServiceGuard("t")
        guard.check_deadline(60_000, time.monotonic())


class TestServiceGuardBody:
    def test_reads_exact_body(self):
        guard = ServiceGuard("t")
        assert _read(guard, b"hello", "5") == b"hello"

    def test_big_body_read_in_chunks(self):
        guard = ServiceGuard("t", GuardConfig(max_body_bytes=1 << 20))
        payload = b"x" * 300_000
        assert _read(guard, payload, str(len(payload))) == payload

    def test_missing_length_means_empty_body(self):
        guard = ServiceGuard("t")
        assert guard.read_body(io.BytesIO(b""), _Headers()) == b""
        # an empty header value is treated as absent, not malformed
        assert _read(guard, b"", "") == b""

    @pytest.mark.parametrize("raw", ["abc", "1.5"])
    def test_malformed_length_is_400(self, raw):
        guard = ServiceGuard("t")
        with pytest.raises(GuardRejection) as exc_info:
            _read(guard, b"", raw)
        assert exc_info.value.status == 400

    def test_negative_length_is_400(self):
        guard = ServiceGuard("t")
        with pytest.raises(GuardRejection) as exc_info:
            _read(guard, b"", "-10")
        assert exc_info.value.status == 400

    def test_oversized_length_is_413_before_reading(self):
        class ExplodingStream:
            def read(self, n):  # pragma: no cover - must never run
                raise AssertionError("read before the length check")

        guard = ServiceGuard("t", GuardConfig(max_body_bytes=100))
        with pytest.raises(GuardRejection) as exc_info:
            guard.read_body(
                ExplodingStream(), _Headers({"Content-Length": "101"})
            )
        assert exc_info.value.status == 413

    def test_truncated_body_is_400(self):
        guard = ServiceGuard("t")
        with pytest.raises(GuardRejection) as exc_info:
            _read(guard, b"abc", "10")  # promises 10, delivers 3
        assert exc_info.value.status == 400


class TestGuardMetrics:
    def test_events_counted_per_guard_name(self):
        from repro import obs

        with obs.observe() as (registry, _tracer):
            guard = ServiceGuard(
                "unit",
                GuardConfig(max_inflight=1, max_queue=0,
                            queue_timeout=0.01, max_body_bytes=10),
            )
            with guard.admit():
                with pytest.raises(GuardRejection):
                    guard.acquire()
            with pytest.raises(GuardRejection):
                _read(guard, b"", "11")
            counters = registry.snapshot()["counters"]
        assert counters["guard.unit.admitted"] == 1
        assert counters["guard.unit.shed"] == 1
        assert counters["guard.unit.body_rejected"] == 1
