"""Additional property-based tests: serialization, Markov model, designer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.avf import StructureLifetimes
from repro.core.designer import DesignPoint, DesignResult, choose_design
from repro.core.intervals import IntervalSet
from repro.core.layout import Interleaving
from repro.core.markov import WordMarkovModel
from repro.core.protection import Parity
from repro.core.serialize import (
    load_lifetimes,
    save_lifetimes,
)


@st.composite
def lifetime_sets(draw):
    n_bytes = draw(st.integers(1, 6))
    isets = []
    for _ in range(n_bytes):
        ivals = []
        t = 0
        for _ in range(draw(st.integers(0, 4))):
            gap = draw(st.integers(0, 5))
            length = draw(st.integers(1, 5))
            cls = draw(st.integers(1, 2))
            ivals.append((t + gap, t + gap + length, cls))
            t += gap + length
        isets.append(IntervalSet(ivals))
    return StructureLifetimes("prop", isets, 0, 100)


class TestSerializeProperties:
    @given(lt=lifetime_sets())
    @settings(max_examples=40, deadline=None)
    def test_lifetime_roundtrip_exact(self, lt, tmp_path_factory):
        path = tmp_path_factory.mktemp("ser") / "lt.npz"
        save_lifetimes(lt, path)
        back = load_lifetimes(path)
        assert back.start_cycle == lt.start_cycle
        assert back.end_cycle == lt.end_cycle
        for a, b in zip(back.byte_isets, lt.byte_isets):
            assert a.intervals() == b.intervals()


class TestMarkovProperties:
    @given(
        st.integers(8, 256),
        st.integers(0, 3),
        st.floats(0.01, 1000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_mttf_positive_and_monotone_in_correction(self, bits, c, fit):
        weaker = WordMarkovModel(
            word_bits=bits, correctable=c, raw_fit_per_mbit=fit
        ).mttf_hours()
        stronger = WordMarkovModel(
            word_bits=bits, correctable=c + 1, raw_fit_per_mbit=fit
        ).mttf_hours()
        assert 0 < weaker < stronger

    @given(st.floats(0.01, 1000.0), st.floats(0.1, 1e6))
    @settings(max_examples=40, deadline=None)
    def test_scrubbing_never_hurts(self, fit, scrub_hours):
        base = WordMarkovModel(
            word_bits=32, correctable=1, raw_fit_per_mbit=fit
        ).mttf_hours()
        scrubbed = WordMarkovModel(
            word_bits=32, correctable=1, raw_fit_per_mbit=fit,
            scrub_interval_hours=scrub_hours,
        ).mttf_hours()
        assert scrubbed >= base * (1 - 1e-9)

    @given(st.floats(0.01, 100.0), st.floats(0.01, 1e6))
    @settings(max_examples=40, deadline=None)
    def test_closed_form_no_scrub(self, fit, _unused):
        """Without scrubbing or sMBFs, MTTF = (c+1)/lambda exactly."""
        for c in range(4):
            m = WordMarkovModel(word_bits=64, correctable=c,
                                raw_fit_per_mbit=fit)
            lam = m.sbf_rate_per_hour
            assert m.mttf_hours() == pytest.approx((c + 1) / lam, rel=1e-9)


class TestDesignerProperties:
    def _mk(self, label, sdc, due, area):
        pt = DesignPoint(label, Parity(), Interleaving.INTRA_THREAD, 2)
        return DesignResult(pt, sdc, due, area)

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 10), st.floats(0, 10), st.floats(0.01, 0.5)
            ),
            min_size=1, max_size=8,
        ),
        st.floats(0, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_choice_is_feasible_and_minimal(self, rows, target):
        results = [
            self._mk(f"d{i}", sdc, due, area)
            for i, (sdc, due, area) in enumerate(rows)
        ]
        best = choose_design(results, sdc_target=target)
        feasible = [r for r in results if r.sdc_rate <= target]
        if not feasible:
            assert best is None
        else:
            assert best.sdc_rate <= target
            assert best.area_overhead == min(r.area_overhead for r in feasible)
