"""Structured error taxonomy for the campaign runtime.

Large injection campaigns fail in qualitatively different ways, and the
runtime keeps them apart instead of folding everything into ``CRASH``:

* **semantic** outcomes are properties of the simulated fault — the
  simulator trapped (``SIM_CRASH``) or span past its cycle limit
  (``SIM_HANG``).  They are results, never retried.
* **infrastructure** outcomes are properties of the harness — a worker
  process died (``WORKER_DIED``), exceeded its wall-clock budget
  (``TIMEOUT``), or the task function itself raised a bug
  (``INFRA_ERROR``).  Worker death and timeout are transient and
  retryable; a harness bug is deterministic and is not retried by
  default.
"""

from __future__ import annotations

import os

__all__ = [
    "TaskOutcome",
    "SimulationError",
    "SimulationCrash",
    "SimulationHang",
    "InfraError",
    "ExecutorError",
    "JournalRecordError",
    "JournalWriteError",
    "CampaignInterrupted",
    "classify_exception",
]


class TaskOutcome:
    """Outcome labels for one task attempt (and its final result)."""

    OK = "ok"                    # fn returned a value
    SIM_CRASH = "sim_crash"      # simulator trapped under the fault
    SIM_HANG = "sim_hang"        # simulator exceeded its cycle limit
    WORKER_DIED = "worker_died"  # worker process exited mid-task
    TIMEOUT = "timeout"          # wall-clock budget exceeded; worker killed
    INFRA_ERROR = "infra_error"  # harness bug (task fn raised)
    POISONED = "poisoned"        # task quarantined: it kept killing workers

    ALL = (OK, SIM_CRASH, SIM_HANG, WORKER_DIED, TIMEOUT, INFRA_ERROR,
           POISONED)
    #: outcomes caused by the harness rather than the simulated fault
    INFRASTRUCTURE = (WORKER_DIED, TIMEOUT, INFRA_ERROR, POISONED)


class SimulationError(Exception):
    """Base class for exceptions that are *results*, not harness bugs."""


class SimulationCrash(SimulationError):
    """The simulator trapped (bad address, illegal op) under the fault."""


class SimulationHang(SimulationError):
    """The simulator exceeded its cycle limit (runaway kernel)."""


class InfraError(Exception):
    """A harness problem: the task could not be evaluated at all."""


class ExecutorError(RuntimeError):
    """The executor itself cannot proceed (e.g. worker init failed)."""


class JournalRecordError(ValueError):
    """A journaled record is structurally unusable (missing keys, wrong
    types).  Raised by :meth:`TaskResult.from_record` instead of the bare
    ``KeyError``/``ValueError`` it wraps, so resume paths can quarantine
    the record and re-run the task instead of aborting the campaign."""

    def __init__(self, record: object, cause: BaseException) -> None:
        super().__init__(
            f"unusable journal record ({type(cause).__name__}: {cause}): "
            f"{record!r}"
        )
        self.record = record


class JournalWriteError(OSError):
    """A journal append failed at the filesystem level (``ENOSPC``,
    ``EIO``, a torn write).  The in-memory result is intact but *not*
    durable; the executor aborts the campaign so the operator resumes
    with a sealed, consistent journal rather than silently losing
    checkpoints."""


class CampaignInterrupted(KeyboardInterrupt):
    """A SIGINT/SIGTERM drain completed: in-flight tasks finished, the
    journal was sealed, and the campaign stopped cleanly.

    Derives from :class:`KeyboardInterrupt` so generic ``except
    Exception`` recovery code never swallows an operator's stop request.
    """

    def __init__(self, completed: int, total: int,
                 journal_path: object = None) -> None:
        super().__init__(
            f"campaign drained after signal: {completed}/{total} tasks "
            "journaled"
        )
        self.completed = completed
        self.total = total
        self.journal_path = journal_path


#: path fragments that mark a frame as simulator code; an exception whose
#: traceback passes through one of these is a fault consequence, not a bug.
_SIM_PATHS = (
    os.path.join("repro", "arch") + os.sep,
    os.path.join("repro", "workloads") + os.sep,
)


def classify_exception(exc: BaseException) -> str:
    """Map an exception raised by a task function to a :class:`TaskOutcome`.

    Typed exceptions win; a ``RuntimeError`` mentioning ``max_cycles`` is
    the simulator's runaway-kernel trap; any other exception whose
    traceback passes through simulator code is a fault-induced crash; all
    that remains is a harness bug.
    """
    if isinstance(exc, SimulationHang):
        return TaskOutcome.SIM_HANG
    if isinstance(exc, SimulationCrash):
        return TaskOutcome.SIM_CRASH
    if isinstance(exc, InfraError):
        return TaskOutcome.INFRA_ERROR
    if isinstance(exc, RuntimeError) and "max_cycles" in str(exc):
        return TaskOutcome.SIM_HANG
    tb = exc.__traceback__
    while tb is not None:
        filename = tb.tb_frame.f_code.co_filename
        if any(frag in filename for frag in _SIM_PATHS):
            return TaskOutcome.SIM_CRASH
        tb = tb.tb_next
    return TaskOutcome.INFRA_ERROR
