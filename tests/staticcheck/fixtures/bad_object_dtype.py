"""N202 fixture: object-dtype arrays (flagged in every scope)."""

import numpy as np


def boxed(values):
    a = np.array(values, dtype=object)
    b = np.asarray(values).astype(object)
    return a, b
