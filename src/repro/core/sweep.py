"""Configuration sweeps: measure a grid of AVFs in one call.

The experiments repeatedly measure (fault mode x protection scheme x
interleaving) grids; this utility packages that loop with caching-friendly
iteration order and a flat, easily-tabulated result form.

Sweeps can optionally run through the campaign runtime
(:mod:`repro.runtime`): pass an :class:`~repro.runtime.Executor` and each
grid cell becomes a journaled task, so a long sweep is restartable and a
cell that fails (a harness bug on one configuration) is reported and
skipped instead of aborting the grid.

The same hook distributes a sweep: pass a
:class:`~repro.runtime.fabric.FabricExecutor` built around the ``sweep``
entrypoint (:func:`repro.runtime.fabric.sweep_job`) and each cell is
leased to a worker node instead — the nodes rebuild the study from the
job context and return the same JSON-safe points, the replicated
journal keeps the sweep resumable across node loss, and cells the fleet
cannot finish are demoted to local execution through the ``cell_fn``
fallback.  Registry schemes only (:data:`repro.core.protection.SCHEMES`):
a custom scheme object cannot be shipped as JSON.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .analysis import AvfStudy
from .avf import AvfConfig, MbAvfResult
from .faultmodes import FaultMode
from .layout import Interleaving
from .protection import ProtectionScheme

__all__ = ["SweepPoint", "sweep_cache_avf", "sweep_vgpr_avf", "tabulate"]


@dataclass(frozen=True)
class SweepPoint:
    """One measured configuration of a sweep."""

    structure: str
    mode: str
    scheme: str
    style: str
    factor: int
    due_avf: float
    sdc_avf: float
    true_due_avf: float
    false_due_avf: float

    @classmethod
    def from_result(
        cls, structure: str, style: Interleaving, factor: int, res: MbAvfResult
    ) -> "SweepPoint":
        return cls(
            structure=structure,
            mode=res.mode.name,
            scheme=res.scheme,
            style=style.value,
            factor=factor,
            due_avf=res.due_avf,
            sdc_avf=res.sdc_avf,
            true_due_avf=res.true_due_avf,
            false_due_avf=res.false_due_avf,
        )


def _scheme_label(scheme: ProtectionScheme) -> str:
    return getattr(scheme, "name", type(scheme).__name__.lower())


def _run_grid(
    structure, cells, measure, executor, measure_batch=None
) -> List[SweepPoint]:
    """Evaluate grid cells directly, or as journaled runtime tasks.

    ``cells`` is a list of ``(cell_id, (style, factor, scheme, mode))``.
    The direct path groups cells sharing a physical layout and hands each
    group to ``measure_batch(style, factor, pairs)`` (one engine batch per
    layout, so enumeration and region caches are shared across the group's
    schemes and modes); with an executor, each cell is instead a journaled
    task returning the point as a JSON-safe dict (so journaled sweeps
    reload exactly) and failed cells are warned about and dropped — the
    sweep degrades instead of dying.  ``executor`` may equally be a
    :class:`~repro.runtime.fabric.FabricExecutor` (same ``run`` contract):
    cells are then leased to worker nodes and ``cell_fn`` serves as the
    local fallback for demoted cells.
    """
    if executor is None:
        if measure_batch is not None:
            groups: Dict[Tuple, List[Tuple]] = {}
            for _, (style, factor, scheme, mode) in cells:
                groups.setdefault((style, factor), []).append((scheme, mode))
            points: List[SweepPoint] = []
            for (style, factor), pairs in groups.items():
                for res in measure_batch(style, factor, pairs):
                    points.append(
                        SweepPoint.from_result(structure, style, factor, res)
                    )
            return points
        return [
            SweepPoint.from_result(
                structure, style, factor, measure(style, factor, scheme, mode)
            )
            for _, (style, factor, scheme, mode) in cells
        ]
    from ..runtime import Task, TaskOutcome

    def cell_fn(args) -> dict:
        style, factor, scheme, mode = args
        res = measure(style, factor, scheme, mode)
        return asdict(SweepPoint.from_result(structure, style, factor, res))

    tasks = [Task(id=cell_id, payload=args) for cell_id, args in cells]
    results = executor.run(tasks, fn=cell_fn)
    points: List[SweepPoint] = []
    for task in tasks:
        r = results[task.id]
        if r.ok:
            points.append(SweepPoint(**r.value))
        elif r.outcome == TaskOutcome.POISONED:
            # The breaker quarantined this cell: it repeatedly killed its
            # worker, which for a pure-python AVF measurement points at a
            # systematic problem (OOM on that configuration), not noise.
            warnings.warn(
                f"sweep cell {task.id} was quarantined by the circuit "
                f"breaker ({r.error}); point dropped — this configuration "
                "likely cannot be measured on this host",
                stacklevel=3,
            )
        else:
            warnings.warn(
                f"sweep cell {task.id} failed ({r.outcome}): {r.error}; "
                "point dropped",
                stacklevel=3,
            )
    return points


def _sink(
    points: Sequence[SweepPoint], store, workload: str, seed: int
) -> None:
    """Persist sweep points when a store sink was requested."""
    if store is None:
        return
    # Lazy import: sweeps must not pull sqlite machinery in unless a
    # sink was actually requested.
    from ..store import ingest_sweep_points, open_store

    with open_store(store) as sink:
        ingest_sweep_points(sink, points, workload=workload, seed=seed)


def _grid(
    structure: str,
    modes: Iterable[FaultMode],
    schemes: Iterable[ProtectionScheme],
    layouts: Iterable[Tuple[Interleaving, int]],
) -> List[Tuple[str, Tuple]]:
    cells = []
    for style, factor in layouts:
        for scheme in schemes:
            for mode in modes:
                cell_id = (
                    f"sweep/{structure}/{style.value}x{factor}/"
                    f"{_scheme_label(scheme)}/{mode.name}"
                )
                cells.append((cell_id, (style, factor, scheme, mode)))
    return cells


def sweep_cache_avf(
    study: AvfStudy,
    level: str,
    *,
    modes: Iterable[FaultMode],
    schemes: Iterable[ProtectionScheme],
    layouts: Iterable[Tuple[Interleaving, int]] = ((Interleaving.NONE, 1),),
    domain_bytes: int = 4,
    executor: Optional["Executor"] = None,
    store=None,
    workload: str = "unknown",
    seed: int = 0,
) -> List[SweepPoint]:
    """Measure every (mode, scheme, layout) combination on a cache level.

    ``store`` (a :class:`~repro.store.ResultStore` or path) persists the
    measured points under ``workload``/``seed``; the write is keyed by
    the canonical configuration tuple, so re-running the same sweep into
    the same store is a no-op.
    """

    def measure(style, factor, scheme, mode):
        return study.cache_avf(
            level, mode, scheme,
            style=style, factor=factor, domain_bytes=domain_bytes,
        )

    def measure_batch(style, factor, pairs):
        configs = [AvfConfig(mode=m, scheme=s) for s, m in pairs]
        return study.cache_avf_batch(
            level, configs,
            style=style, factor=factor, domain_bytes=domain_bytes,
        )

    points = _run_grid(
        level, _grid(level, list(modes), list(schemes), list(layouts)),
        measure, executor, measure_batch,
    )
    _sink(points, store, workload, seed)
    return points


def sweep_vgpr_avf(
    study: AvfStudy,
    *,
    modes: Iterable[FaultMode],
    schemes: Iterable[ProtectionScheme],
    layouts: Iterable[Tuple[Interleaving, int]] = (
        (Interleaving.INTRA_THREAD, 1),
    ),
    executor: Optional["Executor"] = None,
    store=None,
    workload: str = "unknown",
    seed: int = 0,
) -> List[SweepPoint]:
    """Measure every (mode, scheme, layout) combination on the VGPR.

    ``store``/``workload``/``seed`` persist the points exactly as in
    :func:`sweep_cache_avf`.
    """

    def measure(style, factor, scheme, mode):
        return study.vgpr_avf(mode, scheme, style=style, factor=factor)

    def measure_batch(style, factor, pairs):
        due = style is Interleaving.INTER_THREAD
        configs = [
            AvfConfig(mode=m, scheme=s, due_preempts_sdc=due)
            for s, m in pairs
        ]
        return study.vgpr_avf_batch(configs, style=style, factor=factor)

    points = _run_grid(
        "vgpr", _grid("vgpr", list(modes), list(schemes), list(layouts)),
        measure, executor, measure_batch,
    )
    _sink(points, store, workload, seed)
    return points


def tabulate(
    points: Sequence[SweepPoint],
    *,
    value: str = "due_avf",
    rows: str = "mode",
    cols: str = "scheme",
) -> Tuple[List[str], List[str], Dict[Tuple[str, str], float]]:
    """Pivot a sweep into (row labels, column labels, cell values).

    ``rows``/``cols`` name SweepPoint fields; cells hold the chosen value.
    Several points sharing a cell is almost always a malformed sweep (the
    pivot loses data), so collisions warn — the last point still wins.
    """
    row_labels: List[str] = []
    col_labels: List[str] = []
    cells: Dict[Tuple[str, str], float] = {}
    for p in points:
        r = str(getattr(p, rows))
        c = str(getattr(p, cols))
        if r not in row_labels:
            row_labels.append(r)
        if c not in col_labels:
            col_labels.append(c)
        if (r, c) in cells:
            warnings.warn(
                f"tabulate: several points share cell ({r}, {c}); "
                "the last one wins — pivot on more fields to keep them apart",
                stacklevel=2,
            )
        cells[(r, c)] = getattr(p, value)
    return row_labels, col_labels, cells
