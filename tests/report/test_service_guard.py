"""Overload protection and degraded mode on the dashboard surface.

Unit-level: shed/rate-limit admissions return well-formed JSON with
``Retry-After``, probes bypass admission, and client errors never trip
the store breaker.

Concurrency: many threads hammer every route while a campaign ingests
through WAL — no 500s, every rejection is well-formed, nothing hangs.

Acceptance (``service_chaos`` marker): the store file vanishes out from
under a running service — ``GET /`` serves the cached page with a
staleness banner, ``/readyz`` flips to 503 while ``/healthz`` stays
200, and putting the file back heals the service through the breaker's
half-open probe without a restart.
"""

import http.client
import json
import threading
import time

import pytest

from repro import obs
from repro.report import ReportService
from repro.runtime.guard import CircuitBreaker, GuardConfig
from repro.store import ResultStore

from ..store.conftest import avf_row


@pytest.fixture
def store_path(tmp_path):
    path = tmp_path / "r.sqlite"
    with ResultStore(path) as store:
        store.put_avf_rows(
            [
                avf_row(workload="matmul", structure="vgpr", sdc_avf=0.1),
                avf_row(workload="transpose", structure="vgpr",
                        mode="4x1", sdc_avf=0.3),
            ]
        )
    return path


def fetch(service, path, timeout=10.0):
    """GET without raising on error statuses; (status, headers, body)."""
    conn = http.client.HTTPConnection(*service.address, timeout=timeout)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


class TestAdmissionOnReportSurface:
    def test_shed_is_503_json_with_retry_after(self, store_path):
        svc = ReportService(
            store_path,
            guard=GuardConfig(max_inflight=1, max_queue=0,
                              queue_timeout=0.05, retry_after=0.25),
        )
        with svc:
            svc.guard.acquire()  # occupy the only slot
            try:
                status, headers, body = fetch(svc, "/api/summary")
            finally:
                svc.guard.release()
            assert status == 503
            assert headers.get("Retry-After") == "0.25"
            payload = json.loads(body)
            assert payload["status"] == 503 and "error" in payload
            # the slot came back: the next request is served
            assert fetch(svc, "/api/summary")[0] == 200

    def test_rate_limit_is_429(self, store_path):
        svc = ReportService(
            store_path,
            guard=GuardConfig(rate=0.000001, burst=1.0, retry_after=0.1),
        )
        with svc:
            first, _, _ = fetch(svc, "/api/summary")
            second, headers, body = fetch(svc, "/api/summary")
        assert first == 200
        assert second == 429
        assert headers.get("Retry-After") == "0.1"
        assert "error" in json.loads(body)

    def test_probes_bypass_admission(self, store_path):
        svc = ReportService(
            store_path,
            guard=GuardConfig(max_inflight=1, max_queue=0,
                              queue_timeout=0.05),
        )
        with svc:
            svc.guard.acquire()  # gate is full ...
            try:
                # ... yet the supervisor still gets its answers
                assert fetch(svc, "/healthz")[0] == 200
                assert fetch(svc, "/readyz")[0] == 200
            finally:
                svc.guard.release()

    def test_client_errors_do_not_trip_the_breaker(self, store_path):
        breaker = CircuitBreaker(failure_threshold=2, reset_after=60.0)
        with ReportService(store_path, breaker=breaker) as svc:
            for _ in range(5):
                status, _, _ = fetch(svc, "/api/query?benchmark=matmul")
                assert status == 400
            assert breaker.state == breaker.CLOSED
            assert fetch(svc, "/api/summary")[0] == 200


class TestConcurrentLoad:
    def test_flood_with_live_ingest_never_500s(self, store_path):
        """Satellite: N threads across every route while a campaign
        ingests — bounded concurrency sheds cleanly, never errors."""
        paths = ["/", "/api/query", "/api/mttf", "/api/summary",
                 "/api/query?workload=matmul"]
        results = []
        results_lock = threading.Lock()
        stop_ingest = threading.Event()

        def hammer(i):
            for n in range(12):
                status, _, body = fetch(
                    svc, paths[(i + n) % len(paths)], timeout=10.0
                )
                with results_lock:
                    results.append((status, body))

        def ingest():
            seed = 100
            while not stop_ingest.is_set():
                with ResultStore(store_path) as store:
                    store.put_avf_rows([avf_row(seed=seed)])
                seed += 1
                time.sleep(0.005)

        with obs.observe() as (registry, _tracer):
            svc = ReportService(
                store_path,
                guard=GuardConfig(max_inflight=4, max_queue=4,
                                  queue_timeout=0.05, retry_after=0.05),
            )
            with svc:
                writer = threading.Thread(target=ingest, daemon=True)
                writer.start()
                threads = [
                    threading.Thread(target=hammer, args=(i,))
                    for i in range(8)
                ]
                t0 = time.monotonic()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=60.0)
                elapsed = time.monotonic() - t0
                stop_ingest.set()
                writer.join(timeout=10.0)
            counters = registry.snapshot()["counters"]

        assert len(results) == 8 * 12  # nothing hung or died
        statuses = {status for status, _ in results}
        assert statuses <= {200, 429, 503}  # never a 500
        for status, body in results:
            if status != 200:
                payload = json.loads(body)  # rejections are well-formed
                assert "error" in payload
        assert counters.get("guard.report.admitted", 0) > 0
        assert elapsed < 60.0


@pytest.mark.service_chaos
class TestDegradedMode:
    def test_store_outage_degrades_and_heals(self, store_path, tmp_path):
        """Acceptance (c): store vanishes → cached page + banner +
        ``/readyz`` 503 while ``/healthz`` stays 200; store returns →
        the breaker's half-open probe heals the service in place."""
        hidden = tmp_path / "hidden.sqlite"
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after=0.3,
            gauge="report.breaker_state",
        )
        with obs.observe() as (registry, _tracer):
            with ReportService(store_path, breaker=breaker) as svc:
                # healthy: the page renders and is cached
                status, _, healthy_page = fetch(svc, "/")
                assert status == 200
                assert b"data-stale" not in healthy_page

                store_path.rename(hidden)  # the outage

                # the dashboard degrades to the cached page, marked stale
                status, headers, stale_page = fetch(svc, "/")
                assert status == 503
                assert headers.get("X-Repro-Stale") == "1"
                assert "Retry-After" in headers
                assert b'data-stale="1"' in stale_page
                # the stale page is the healthy page plus the banner
                assert healthy_page[-2048:] == stale_page[-2048:]

                # APIs fail fast with an honest degraded flag
                status, _, body = fetch(svc, "/api/query")
                assert status == 503
                assert json.loads(body)["degraded"] is True

                # alive but not ready: restart the store, not the process
                assert fetch(svc, "/healthz")[0] == 200
                status, _, body = fetch(svc, "/readyz")
                assert status == 503
                assert json.loads(body)["ready"] is False

                hidden.rename(store_path)  # the repair
                time.sleep(0.35)  # past reset_after: half-open probe

                assert fetch(svc, "/")[0] == 200
                assert breaker.state == breaker.CLOSED
                assert fetch(svc, "/readyz")[0] == 200
            snap = registry.snapshot()

        assert snap["counters"].get("report.stale_served", 0) >= 1
        assert snap["gauges"]["report.breaker_state"] == 0.0  # CLOSED
