"""Performance: throughput of the analysis pipeline itself.

Unlike the figure/table benches (which run an experiment once and assert
its shape), these measure the *speed* of the reproduction's own stages —
simulation, lifetime extraction, and the MB-AVF engine — over multiple
rounds, so regressions in the deduplicating group enumerator or the
interval sweeps show up in CI.
"""

import pytest

from repro.core import (
    AvfStudy,
    FaultMode,
    Interleaving,
    Parity,
    SecDed,
    compute_mb_avf,
)
from repro.core.layout import build_cache_array
from repro.experiments import scaled_apu_kwargs
from repro.workloads import run


@pytest.fixture(scope="module")
def prepared():
    """One finished study plus a ready-made layout + lifetimes pair."""
    result = run("minife", apu_kwargs=scaled_apu_kwargs())
    study = AvfStudy(result.apu, result.output_ranges)
    lifetimes = study.l1_lifetimes()[0]
    cfg = result.apu.memsys.l1s[0].config
    layout = build_cache_array(
        cfg.n_sets, cfg.n_ways, cfg.line_bytes,
        style=Interleaving.WAY_PHYSICAL, factor=2,
    )
    return study, layout, lifetimes


@pytest.mark.benchmark(group="perf")
def test_perf_simulation(benchmark):
    """End-to-end workload simulation + verification."""
    benchmark.pedantic(
        lambda: run("matmul", apu_kwargs=scaled_apu_kwargs()),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="perf")
def test_perf_lifetime_analysis(benchmark):
    """Cache event stream -> classed ACE intervals."""
    result = run("matmul", apu_kwargs=scaled_apu_kwargs())

    def fresh_study_lifetimes():
        study = AvfStudy(result.apu, result.output_ranges)
        # A new AvfStudy would re-run liveness; reuse the device but force
        # the lifetime extraction itself.
        study._l1_lifetimes = None
        return study.l1_lifetimes()

    benchmark.pedantic(fresh_study_lifetimes, rounds=3, iterations=1)


@pytest.mark.benchmark(group="perf")
def test_perf_engine_2x1(benchmark, prepared):
    _, layout, lifetimes = prepared
    res = benchmark.pedantic(
        lambda: compute_mb_avf(layout, lifetimes, FaultMode.linear(2), Parity()),
        rounds=5, iterations=1,
    )
    assert res.n_groups > 0


@pytest.mark.benchmark(group="perf")
def test_perf_engine_8x1(benchmark, prepared):
    _, layout, lifetimes = prepared
    benchmark.pedantic(
        lambda: compute_mb_avf(layout, lifetimes, FaultMode.linear(8), SecDed()),
        rounds=5, iterations=1,
    )


@pytest.mark.benchmark(group="perf")
def test_perf_engine_rect(benchmark, prepared):
    """The generic (non-vectorised) enumerator for 2-D modes."""
    _, layout, lifetimes = prepared
    benchmark.pedantic(
        lambda: compute_mb_avf(layout, lifetimes, FaultMode.rect(2, 2), Parity()),
        rounds=3, iterations=1,
    )


@pytest.mark.benchmark(group="perf")
def test_perf_vgpr_stack(benchmark, prepared):
    study, _, _ = prepared
    benchmark.pedantic(
        lambda: study.vgpr_avf(
            FaultMode.linear(2), Parity(),
            style=Interleaving.INTER_THREAD, factor=2,
        ),
        rounds=3, iterations=1,
    )
