"""Rodinia-style workloads: SRAD and HotSpot (Sec. VI-A, Fig. 10).

``srad`` is speckle-reducing anisotropic diffusion (two kernels per
iteration: diffusion coefficients, then the update), ``hotspot`` is the
thermal stencil.  Both run a few ping-pong iterations over a 32x32 float32
grid, giving the phase-varying, stencil-shaped access patterns the paper's
cache results depend on.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..arch.gpu import Apu
from ..arch.isa import ProgramBuilder, fimm, imm, s, v
from ..arch.memory import GlobalMemory
from .base import Workload
from .util import addr_of

__all__ = ["Srad", "Hotspot"]


def _emit_grid_coords(p: ProgramBuilder, n_log2: int) -> None:
    """v2 = row, v3 = col, v4..v7 = clamped N/S/W/E neighbour coords."""
    size = (1 << n_log2) - 1
    p.shr(v(2), v(0), imm(n_log2))
    p.iand(v(3), v(0), imm(size))
    p.isub(v(4), v(2), imm(1))
    p.imax(v(4), v(4), imm(0))          # iN
    p.iadd(v(5), v(2), imm(1))
    p.imin(v(5), v(5), imm(size))       # iS
    p.isub(v(6), v(3), imm(1))
    p.imax(v(6), v(6), imm(0))          # jW
    p.iadd(v(7), v(3), imm(1))
    p.imin(v(7), v(7), imm(size))       # jE


def _emit_idx(p: ProgramBuilder, row, col, dst, n_log2: int) -> None:
    p.shl(dst, row, imm(n_log2))
    p.iadd(dst, dst, col)


class Srad(Workload):
    """Speckle-reducing anisotropic diffusion, 32x32, 2 iterations."""

    name = "srad"
    outputs = ("j0",)
    N = 32
    LAMBDA = 0.5
    INV_Q0SQR = 2.0
    ITERS = 2

    def setup(self, mem: GlobalMemory) -> None:
        n = self.N
        self.img = (self.rng.random((n, n), dtype=np.float32) + 0.1).astype(
            np.float32
        )
        self.base_j0 = mem.alloc("j0", n * n * 4)
        self.base_j1 = mem.alloc("j1", n * n * 4)
        self.base_c = mem.alloc("c", n * n * 4)
        mem.view_f32("j0")[:] = self.img.ravel()

    def _coeff_kernel(self) -> ProgramBuilder:
        """c = 1 / (1 + G2/q0^2) from the 4-neighbour gradients of src."""
        log2 = 5
        p = ProgramBuilder()
        _emit_grid_coords(p, log2)
        _emit_idx(p, v(2), v(3), v(8), log2)
        addr_of(p, s(2), v(8), v(14))
        p.load(v(9), v(14))                 # Jc
        for coord_row, coord_col, dreg in (
            (v(4), v(3), 10), (v(5), v(3), 11), (v(2), v(6), 12), (v(2), v(7), 13),
        ):
            _emit_idx(p, coord_row, coord_col, v(15), log2)
            addr_of(p, s(2), v(15), v(14))
            p.load(v(dreg), v(14))
            p.fsub(v(dreg), v(dreg), v(9))  # directional derivative
        p.fmul(v(16), v(10), v(10))
        p.fmac(v(16), v(11), v(11))
        p.fmac(v(16), v(12), v(12))
        p.fmac(v(16), v(13), v(13))         # G2
        p.fmul(v(17), v(16), fimm(self.INV_Q0SQR))
        p.fadd(v(17), v(17), fimm(1.0))
        p.frcp(v(18), v(17))                # diffusion coefficient
        addr_of(p, s(3), v(8), v(14))
        p.store(v(18), v(14))
        return p

    def _update_kernel(self) -> ProgramBuilder:
        """dst = src + 0.25*lambda*div(c * grad)."""
        log2 = 5
        p = ProgramBuilder()
        _emit_grid_coords(p, log2)
        _emit_idx(p, v(2), v(3), v(8), log2)
        addr_of(p, s(2), v(8), v(14))
        p.load(v(9), v(14))                 # Jc
        for coord_row, coord_col, dreg in (
            (v(4), v(3), 10), (v(5), v(3), 11), (v(2), v(6), 12), (v(2), v(7), 13),
        ):
            _emit_idx(p, coord_row, coord_col, v(15), log2)
            addr_of(p, s(2), v(15), v(14))
            p.load(v(dreg), v(14))
            p.fsub(v(dreg), v(dreg), v(9))
        addr_of(p, s(3), v(8), v(14))
        p.load(v(16), v(14))                # cC
        _emit_idx(p, v(5), v(3), v(15), log2)
        addr_of(p, s(3), v(15), v(14))
        p.load(v(17), v(14))                # cS
        _emit_idx(p, v(2), v(7), v(15), log2)
        addr_of(p, s(3), v(15), v(14))
        p.load(v(18), v(14))                # cE
        # D = cC*(dN + dW) + cS*dS + cE*dE
        p.fadd(v(19), v(10), v(12))
        p.fmul(v(19), v(19), v(16))
        p.fmac(v(19), v(17), v(11))
        p.fmac(v(19), v(18), v(13))
        p.mov(v(20), v(9))
        p.fmac(v(20), v(19), fimm(0.25 * self.LAMBDA))
        addr_of(p, s(4), v(8), v(14))
        p.store(v(20), v(14))
        return p

    def launch(self, apu: Apu) -> None:
        coeff = self._coeff_kernel().build()
        update = self._update_kernel().build()
        n_threads = self.N * self.N
        bufs = [self.base_j0, self.base_j1]
        for it in range(self.ITERS):
            src, dst = bufs[it % 2], bufs[(it + 1) % 2]
            apu.launch(coeff, n_threads, [src, self.base_c],
                       name=f"{self.name}.coeff{it}")
            apu.launch(update, n_threads, [src, self.base_c, dst],
                       name=f"{self.name}.update{it}")

    def expected(self) -> Dict[str, np.ndarray]:
        n = self.N
        img = self.img.copy()
        lam = np.float32(0.25 * self.LAMBDA)
        invq = np.float32(self.INV_Q0SQR)
        one = np.float32(1.0)
        idx = np.arange(n)
        iN, iS = np.maximum(idx - 1, 0), np.minimum(idx + 1, n - 1)
        for _ in range(self.ITERS):
            dN = img[iN, :] - img
            dS = img[iS, :] - img
            dW = img[:, iN] - img
            dE = img[:, iS] - img
            g2 = dN * dN + dS * dS + dW * dW + dE * dE
            c = one / (g2 * invq + one)
            d = c * (dN + dW) + c[iS, :] * dS + c[:, iS] * dE
            img = img + d * lam
        return {"j0": img.astype(np.float32)}


class Hotspot(Workload):
    """Thermal simulation stencil, 32x32, 4 ping-pong iterations."""

    name = "hotspot"
    outputs = ("t0",)
    N = 32
    K_DIFF = 0.1
    K_POWER = 0.05
    ITERS = 4

    def setup(self, mem: GlobalMemory) -> None:
        n = self.N
        self.temp = (self.rng.random((n, n), dtype=np.float32) * 20 + 300).astype(
            np.float32
        )
        self.power = self.rng.random((n, n), dtype=np.float32)
        self.base_t0 = mem.alloc("t0", n * n * 4)
        self.base_t1 = mem.alloc("t1", n * n * 4)
        self.base_p = mem.alloc("p", n * n * 4)
        mem.view_f32("t0")[:] = self.temp.ravel()
        mem.view_f32("p")[:] = self.power.ravel()

    def _kernel(self) -> ProgramBuilder:
        log2 = 5
        p = ProgramBuilder()
        _emit_grid_coords(p, log2)
        _emit_idx(p, v(2), v(3), v(8), log2)
        addr_of(p, s(2), v(8), v(14))
        p.load(v(9), v(14))                 # Tc
        p.mov(v(10), fimm(0.0))
        for coord_row, coord_col in (
            (v(4), v(3)), (v(5), v(3)), (v(2), v(6)), (v(2), v(7)),
        ):
            _emit_idx(p, coord_row, coord_col, v(15), log2)
            addr_of(p, s(2), v(15), v(14))
            p.load(v(11), v(14))
            p.fadd(v(10), v(10), v(11))     # neighbour sum
        p.fmul(v(12), v(9), fimm(4.0))
        p.fsub(v(10), v(10), v(12))         # laplacian
        addr_of(p, s(3), v(8), v(14))
        p.load(v(13), v(14))                # power
        p.mov(v(16), v(9))
        p.fmac(v(16), v(10), fimm(self.K_DIFF))
        p.fmac(v(16), v(13), fimm(self.K_POWER))
        addr_of(p, s(4), v(8), v(14))
        p.store(v(16), v(14))
        return p

    def launch(self, apu: Apu) -> None:
        prog = self._kernel().build()
        n_threads = self.N * self.N
        bufs = [self.base_t0, self.base_t1]
        for it in range(self.ITERS):
            src, dst = bufs[it % 2], bufs[(it + 1) % 2]
            apu.launch(prog, n_threads, [src, self.base_p, dst],
                       name=f"{self.name}.step{it}")

    def expected(self) -> Dict[str, np.ndarray]:
        n = self.N
        t = self.temp.copy()
        kd, kp = np.float32(self.K_DIFF), np.float32(self.K_POWER)
        idx = np.arange(n)
        iN, iS = np.maximum(idx - 1, 0), np.minimum(idx + 1, n - 1)
        for _ in range(self.ITERS):
            nsum = ((t[iN, :] + t[iS, :]) + t[:, iN]) + t[:, iS]
            lap = nsum - t * np.float32(4.0)
            t = t + lap * kd + self.power * kp
        return {"t0": t.astype(np.float32)}
