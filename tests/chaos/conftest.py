"""Shared knobs and helpers for the chaos suite.

Every chaos decision is a pure function of ``(seed, point, key)``, so the
whole suite is parameterised by one number: ``REPRO_CHAOS_SEED`` (default
1).  CI sweeps a couple of fixed seeds; any single run is exactly
reproducible from its seed.  The assertions are written to hold for *any*
seed — where a fault may or may not fire under a given seed, the test
derives the expectation from the policy itself instead of hard-coding it.
"""

import json
import os

from repro.runtime import Task, TaskOutcome

#: base seed for every ChaosPolicy built by this suite
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1"))


def ok_tasks(prefix, n):
    """``n`` trivially-succeeding stub tasks with stable ids."""
    return [Task(f"{prefix}/{i:02d}", ("ok", i)) for i in range(n)]


def expected_map(tasks):
    """The fault-free result every chaos run must converge to."""
    return {t.id: (TaskOutcome.OK, t.payload[1] * 2) for t in tasks}


def outcome_map(results):
    return {k: (r.outcome, r.value) for k, r in results.items()}


def journaled_ids(path):
    """Task ids of every well-formed journal line (raw file order, no
    dedup) — the 'zero lost, zero duplicated records' check."""
    ids = []
    for line in path.read_text().splitlines():
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(rec, dict) and isinstance(rec.get("task"), str):
            ids.append(rec["task"])
    return ids
