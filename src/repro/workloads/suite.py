"""Workload registry and the one-call entry point used by the experiments."""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from .amdapp import (
    Dct,
    DwtHaar1D,
    FastWalshTransform,
    Histogram,
    MatrixMultiplication,
    MatrixTranspose,
    PrefixSum,
    RecursiveGaussian,
    ScanLargeArrays,
)
from .base import Workload, WorkloadRun, run_workload
from .mantevo import CoMD, MiniFe
from .rodinia import Hotspot, Srad
from .rodinia2 import Backprop, KMeans, NeedlemanWunsch, Pathfinder
from .simple import Reduction, VectorAdd

__all__ = ["REGISTRY", "names", "run", "OPENCL_SAMPLES", "EVALUATION_SET"]

#: All available workloads by name.
REGISTRY: Dict[str, Type[Workload]] = {
    cls.name: cls
    for cls in (
        VectorAdd, Reduction,
        MatrixMultiplication, MatrixTranspose, PrefixSum, ScanLargeArrays,
        Histogram, FastWalshTransform, DwtHaar1D, Dct, RecursiveGaussian,
        Srad, Hotspot, Backprop, KMeans, Pathfinder, NeedlemanWunsch,
        MiniFe, CoMD,
    )
}

#: The AMD OpenCL sample subset used for the Table II injection study.
OPENCL_SAMPLES = (
    "scan", "dct", "dwthaar", "fastwalsh", "histogram", "transpose",
    "prefixsum", "recursivegaussian", "matmul",
)

#: The default cross-workload evaluation set for the cache AVF figures
#: (Figures 4, 6, 9, 10, 11) — one representative per access-pattern family.
EVALUATION_SET = (
    "vectoradd", "reduction", "matmul", "transpose", "prefixsum", "histogram",
    "fastwalsh", "dct", "srad", "hotspot", "minife", "comd",
)


def names() -> List[str]:
    """All registered workload names, sorted."""
    return sorted(REGISTRY)


def run(
    name: str,
    *,
    seed: int = 0,
    n_cus: int = 4,
    check: bool = True,
    apu_kwargs: Optional[dict] = None,
) -> WorkloadRun:
    """Instantiate, execute and verify a workload by name."""
    if name not in REGISTRY:
        raise KeyError(f"unknown workload {name!r}; have {names()}")
    return run_workload(
        REGISTRY[name](seed=seed), n_cus=n_cus, check=check,
        apu_kwargs=apu_kwargs,
    )
