"""Executor-side chaos: worker crashes and hangs under process isolation,
the poison circuit breaker, and the heartbeat liveness sweep.

The contract under test: a campaign whose workers keep dying converges to
the same task-id -> outcome map as a fault-free run, with zero lost and
zero duplicated journal records — and a payload that *always* kills its
worker is quarantined instead of eating the campaign.
"""

import multiprocessing as mp
import time
from collections import deque

from repro import obs
from repro.runtime import (
    ChaosPolicy,
    ChaosSpec,
    Executor,
    RetryPolicy,
    Task,
    TaskOutcome,
)
from repro.runtime.executor import _Worker

from ..runtime.stubs import dispatch
from .conftest import (
    CHAOS_SEED,
    expected_map,
    journaled_ids,
    ok_tasks,
    outcome_map,
)

#: plenty of attempts, breaker off: equality tests must converge for any
#: seed (each retry rolls fresh chaos dice)
CONVERGE = RetryPolicy(max_attempts=30, backoff=0.01, poison_threshold=None)


def _noop():
    """Spawn target for a process that exits immediately (module level
    for spawn pickling)."""


class TestWorkerCrashChaos:
    def test_killed_and_resumed_campaign_converges(self, tmp_path):
        tasks = ok_tasks("wc", 6)
        policy = ChaosPolicy(ChaosSpec(worker_crash=0.35), seed=CHAOS_SEED)
        jp = tmp_path / "j.jsonl"
        first = Executor(
            dispatch, jobs=2, retry=CONVERGE, journal=jp, chaos=policy
        ).run(tasks)
        assert outcome_map(first) == expected_map(tasks)
        # Whether any retries happened must match the policy's own
        # schedule — the run is a deterministic function of the seed.
        fired = any(
            policy.task_action(t.id, 1) is not None for t in tasks
        )
        retried = sum(r.attempts for r in first.values()) > len(tasks)
        assert retried == fired
        # The kill: tear the journal tail mid-record (SIGKILL signature),
        # then resume without chaos.
        lines = jp.read_text().splitlines()
        jp.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        )
        resumed = Executor(dispatch, jobs=0, journal=jp).run(tasks)
        assert outcome_map(resumed) == expected_map(tasks)
        # Zero lost, zero duplicated records.
        assert sorted(journaled_ids(jp)) == sorted(t.id for t in tasks)


class TestWorkerHangChaos:
    def test_hung_workers_reclaimed_by_timeout(self):
        tasks = ok_tasks("wh", 4)
        policy = ChaosPolicy(ChaosSpec(worker_hang=0.3), seed=CHAOS_SEED)
        results = Executor(
            dispatch, jobs=2, timeout=1.0, retry=CONVERGE, chaos=policy
        ).run(tasks)
        assert outcome_map(results) == expected_map(tasks)


class TestPoisonBreaker:
    def test_chaos_poison_payload_is_quarantined(self, tmp_path):
        # Probability 1.0 models a payload that kills every worker it
        # touches; the breaker must stop the carnage at its threshold.
        policy = ChaosPolicy(ChaosSpec(worker_crash=1.0), seed=CHAOS_SEED)
        retry = RetryPolicy(max_attempts=10, poison_threshold=3)
        jp = tmp_path / "j.jsonl"
        results = Executor(
            dispatch, jobs=1, retry=retry, journal=jp, chaos=policy
        ).run([Task("poison", ("ok", 1))])
        r = results["poison"]
        assert r.outcome == TaskOutcome.POISONED
        assert r.attempts == 3
        assert "breaker" in r.error

        # The verdict is journaled: resuming returns it without re-running.
        def must_not_run(payload):
            raise AssertionError("poisoned task re-executed on resume")

        resumed = Executor(must_not_run, jobs=0, journal=jp).run(
            [Task("poison", ("ok", 1))]
        )
        assert resumed["poison"].outcome == TaskOutcome.POISONED

    def test_breaker_trips_and_campaign_completes(self):
        """A real worker-killing payload: the sibling task still finishes,
        workers respawn without operator action, telemetry records it."""
        registry, _ = obs.enable()
        try:
            retry = RetryPolicy(max_attempts=10, poison_threshold=2)
            results = Executor(dispatch, jobs=1, retry=retry).run(
                [Task("bad", ("die", 7)), Task("good", ("ok", 4))]
            )
        finally:
            obs.disable()
        assert results["bad"].outcome == TaskOutcome.POISONED
        assert results["bad"].attempts == 2
        assert results["good"].value == 8
        snap = registry.snapshot()
        assert snap["counters"]["runtime.tasks_poisoned"] == 1
        assert snap["counters"]["runtime.workers_respawned"] >= 2
        assert snap["gauges"]["runtime.breaker_tripped"] == 1

    def test_breaker_disabled_burns_full_retry_budget(self):
        retry = RetryPolicy(max_attempts=3, poison_threshold=None)
        results = Executor(dispatch, jobs=1, retry=retry).run(
            [Task("bad", ("die", 7))]
        )
        assert results["bad"].outcome == TaskOutcome.WORKER_DIED
        assert results["bad"].attempts == 3


class TestHeartbeatSweep:
    def test_dead_worker_without_eof_is_respawned(self):
        """White box: a worker process that died while its pipe write end
        stays open elsewhere delivers neither a message nor an EOF — only
        the periodic liveness sweep can notice and respawn it."""
        ex = Executor(dispatch, jobs=1, heartbeat=0.2)
        ctx = mp.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=_noop, daemon=True)
        proc.start()
        proc.join(10)
        assert not proc.is_alive()
        # child_conn is deliberately kept open in this process, simulating
        # the fd leaked to a grandchild.
        w = _Worker(proc, parent_conn)
        w.state = "busy"
        w.task = Task("stuck", ("ok", 1))
        w.attempt = 1
        w.start = time.monotonic()
        workers = [w]
        results = {}
        try:
            ex._sweep_dead_workers(workers, deque(), results, ctx, dispatch)
            assert results["stuck"].outcome == TaskOutcome.WORKER_DIED
            assert workers[0] is not w
            assert workers[0].proc.is_alive()
        finally:
            ex._shutdown(workers)
            child_conn.close()

    def test_chaos_metrics_recorded(self):
        """Injected faults are visible in telemetry as chaos.* counters."""
        registry, _ = obs.enable()
        try:
            policy = ChaosPolicy(
                ChaosSpec(task_error=1.0), seed=CHAOS_SEED
            )
            retry = RetryPolicy(
                max_attempts=2, retry_on=(TaskOutcome.INFRA_ERROR,)
            )
            results = Executor(
                dispatch, jobs=0, retry=retry, chaos=policy
            ).run([Task("x", ("ok", 1))])
        finally:
            obs.disable()
        assert results["x"].outcome == TaskOutcome.INFRA_ERROR
        assert "chaos" in results["x"].error
        assert registry.snapshot()["counters"]["chaos.task_error"] == 2
