"""Wire protocol for the campaign fabric: HTTP/JSON envelopes and jobs.

Everything that crosses the coordinator<->worker link is JSON, carried
in one POST to ``/rpc``.  A request envelope is::

    {"v": 1, "method": "lease", "node": "worker-ab12", "seq": 17,
     "deadline_ms": 5000, "params": {...}}

and a response is ``{"ok": true, "result": {...}}`` or ``{"ok": false,
"error": "..."}``.  ``seq`` is the node's monotonic RPC counter — it
keys the deterministic chaos schedule and lets the coordinator log
traffic per node; ``deadline_ms`` mirrors the client-side socket
timeout so the server knows the caller's patience (every RPC carries a
deadline — there is no untimed network call anywhere in the fabric).

A :class:`JobSpec` names *what a task means*: a registered entrypoint
kind plus a JSON context from which any node can rebuild the task
function (see :mod:`repro.runtime.fabric.tasks`).  Shipping the job
spec with each lease — rather than pickled callables — is what keeps
the fabric language-level safe and lets a worker serve many campaigns
in sequence, caching built functions by the spec's digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "JobSpec",
    "RpcError",
    "RpcUnavailable",
    "encode_request",
    "decode_request",
    "encode_response",
    "encode_error",
]

PROTOCOL_VERSION = 1

#: methods a coordinator must answer (the whole surface of the fabric)
METHODS = ("register", "lease", "heartbeat", "report", "goodbye")


class RpcError(RuntimeError):
    """An RPC failed for good: bad request, version skew, server error."""


class RpcUnavailable(RpcError):
    """The peer cannot be reached (refused, timed out, partitioned).

    Transient by definition — the client retries these with the
    deterministic backoff policy before giving up.
    """


@dataclass(frozen=True)
class JobSpec:
    """A named task entrypoint plus the JSON context to rebuild it."""

    kind: str
    ctx: Dict[str, Any] = field(default_factory=dict)

    @property
    def digest(self) -> str:
        """Stable identity of this job (keys worker-side function caches)."""
        canon = json.dumps(
            {"kind": self.kind, "ctx": self.ctx}, sort_keys=True
        )
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "ctx": self.ctx}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        if not isinstance(data, dict) or not isinstance(data.get("kind"), str):
            raise RpcError(f"malformed job spec: {data!r}")
        return cls(kind=data["kind"], ctx=dict(data.get("ctx") or {}))


def encode_request(
    method: str,
    params: Dict[str, Any],
    *,
    node: str,
    seq: int,
    deadline_ms: Optional[int] = None,
) -> bytes:
    return json.dumps(
        {
            "v": PROTOCOL_VERSION,
            "method": method,
            "node": node,
            "seq": seq,
            "deadline_ms": deadline_ms,
            "params": params,
        },
        sort_keys=True,
    ).encode("utf-8")


def decode_request(body: bytes) -> Dict[str, Any]:
    """Parse and validate one request envelope (server side)."""
    try:
        env = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise RpcError(f"request is not JSON: {exc}") from exc
    if not isinstance(env, dict):
        raise RpcError("request envelope must be a JSON object")
    if env.get("v") != PROTOCOL_VERSION:
        raise RpcError(
            f"protocol version mismatch: got {env.get('v')!r}, "
            f"want {PROTOCOL_VERSION}"
        )
    method = env.get("method")
    if method not in METHODS:
        raise RpcError(f"unknown method {method!r}")
    if not isinstance(env.get("node"), str) or not env["node"]:
        raise RpcError("request carries no node id")
    params = env.get("params")
    if not isinstance(params, dict):
        raise RpcError("request params must be a JSON object")
    return env


def encode_response(result: Dict[str, Any]) -> bytes:
    return json.dumps({"ok": True, "result": result}, sort_keys=True).encode(
        "utf-8"
    )


def encode_error(message: str) -> bytes:
    return json.dumps({"ok": False, "error": message}, sort_keys=True).encode(
        "utf-8"
    )
