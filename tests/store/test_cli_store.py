"""CLI surface of the store: --store sinks, query, report, merge."""

import json

import pytest

from repro.cli import main
from repro.store import ResultStore

from .conftest import avf_row, point_record, sweep_point, write_journal


@pytest.fixture
def seeded_path(store, store_path):
    store.put_avf_rows(
        [
            avf_row(workload="matmul", sdc_avf=0.10),
            avf_row(workload="matmul", mode="4x1", sdc_avf=0.30),
            avf_row(workload="transpose", sdc_avf=0.20),
        ]
    )
    return store_path


class TestProducerFlags:
    def test_avf_store_is_idempotent(self, tmp_path, capsys):
        path = tmp_path / "r.sqlite"
        argv = ["avf", "vectoradd", "--structure", "l1", "--mode", "2x1",
                "--scheme", "parity", "--store", str(path)]
        assert main(argv) == 0
        assert "stored: 1 new, 0 already present" in capsys.readouterr().out
        assert main(argv) == 0
        assert "stored: 0 new, 1 already present" in capsys.readouterr().out
        with ResultStore(path) as store:
            rows = store.query()
            assert len(rows) == 1
            assert rows[0].workload == "vectoradd"
            assert rows[0].source == "cli/avf"

    def test_mttf_store(self, tmp_path, capsys):
        path = tmp_path / "r.sqlite"
        assert main(["mttf", "--store", str(path)]) == 0
        capsys.readouterr()
        with ResultStore(path) as store:
            assert len(store.mttf_rows()) >= 4

    def test_store_in_missing_directory_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["mttf", "--store", str(tmp_path / "absent" / "r.sqlite")])

    def test_store_directory_path_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["mttf", "--store", str(tmp_path)])


class TestQueryCommand:
    def test_text_table(self, seeded_path, capsys):
        assert main(["query", "--store", str(seeded_path)]) == 0
        out = capsys.readouterr().out
        assert "3 rows" in out
        assert "matmul" in out and "transpose" in out

    def test_filters_and_json(self, seeded_path, capsys):
        assert main(
            ["query", "--store", str(seeded_path),
             "--workload", "matmul", "--mode", "4x1", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["rows"][0]["sdc_avf"] == 0.30

    def test_repeated_flag_is_an_in_list(self, seeded_path, capsys):
        assert main(
            ["query", "--store", str(seeded_path),
             "--workload", "matmul", "--workload", "transpose", "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 3

    def test_group_by(self, seeded_path, capsys):
        assert main(
            ["query", "--store", str(seeded_path), "--group-by",
             "workload", "--value", "sdc_avf", "--agg", "mean", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        groups = {
            tuple(g["key"]): g["sdc_avf"] for g in payload["groups"]
        }
        assert groups[("matmul",)] == pytest.approx(0.2)
        assert groups[("transpose",)] == pytest.approx(0.2)

    def test_missing_store_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["query", "--store", str(tmp_path / "absent.sqlite")])

    def test_bad_group_column_is_rejected(self, seeded_path):
        with pytest.raises(SystemExit):
            main(["query", "--store", str(seeded_path),
                  "--group-by", "sdc_avf"])


class TestReportCommand:
    def test_build_writes_index(self, seeded_path, tmp_path, capsys):
        out = tmp_path / "report"
        assert main(
            ["report", "build", "--store", str(seeded_path),
             "--out", str(out)]
        ) == 0
        assert "report written to" in capsys.readouterr().out
        html = (out / "index.html").read_text()
        assert "MB-AVF results store" in html
        assert "matmul" in html

    def test_missing_store_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "build",
                  "--store", str(tmp_path / "absent.sqlite")])


class TestCampaignMergeStore:
    def test_merge_store_reingest_is_noop(self, tmp_path, capsys):
        """'campaign merge --store' twice: the second run folds zero new
        journal records and stores zero new rows."""
        store_path = tmp_path / "r.sqlite"
        canonical = tmp_path / "canonical.jsonl"
        write_journal(canonical, [point_record("grid/vgpr/matmul/c0")])
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        write_journal(
            shard_dir / "node-a.jsonl",
            [point_record(
                "grid/vgpr/matmul/c1", point=sweep_point(mode="4x1")
            )],
        )
        argv = ["campaign", "merge", "--resume", str(canonical),
                "--shard-dir", str(shard_dir), "--store", str(store_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "merged 1 records" in out
        assert "stored: 2 new, 0 already present" in out

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "merged 0 records" in out
        assert "stored: 0 new, 2 already present" in out
        with ResultStore(store_path) as store:
            assert len(store.query()) == 2
