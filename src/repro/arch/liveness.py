"""Dynamic-dead-instruction and logic-masking analysis.

The paper's AVF infrastructure "considers program-level effects such as
first-level and transitive dynamic-dead instructions and logic masking"
(Sec. VI-A).  This module implements that as a single backward pass over the
dynamic instruction trace:

* per-lane, per-register **needed-bit masks** propagate which bits of each
  value can still influence program output (logic masking: ``v_and`` with a
  constant kills bits, shifts move them, compares need everything, ...);
* an instruction none of whose result bits are needed is **dynamically
  dead** — transitively, since deadness flows backward through the masks;
* memory and LDS are tracked at byte granularity, seeded by the workload's
  declared output buffers.

The pass annotates each :class:`~repro.arch.trace.InstrRecord` in place with
``src_needed`` (per-source masks), ``load_needed`` / ``mem_needed`` (which
loaded/stored bytes matter) — exactly what the lifetime analyses consume to
classify reads as live or dead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .isa import WAVEFRONT_LANES
from .trace import InstrRecord

__all__ = ["analyze_liveness"]

M32 = np.uint32(0xFFFFFFFF)
_LANES = np.arange(WAVEFRONT_LANES)
_ZERO = np.zeros(WAVEFRONT_LANES, dtype=np.uint32)


def _fill_below_msb(x: np.ndarray) -> np.ndarray:
    """Set every bit at or below each lane's most significant set bit.

    An adder/multiplier result bit depends on operand bits at or below it
    (carry propagation), so if bit k of the result is needed, operand bits
    0..k are needed.
    """
    y = x.copy()
    y |= y >> np.uint32(1)
    y |= y >> np.uint32(2)
    y |= y >> np.uint32(4)
    y |= y >> np.uint32(8)
    y |= y >> np.uint32(16)
    return y


def _full_if(out: np.ndarray) -> np.ndarray:
    """All 32 bits needed on lanes where any output bit is needed."""
    return np.where(out != 0, M32, np.uint32(0))


def _alu_src_masks(rec: InstrRecord, out: np.ndarray) -> List[Optional[np.ndarray]]:
    """Per-source needed masks for a vector ALU instruction."""
    op = rec.op
    srcs = rec.srcs
    masks: List[Optional[np.ndarray]] = [None] * len(srcs)

    def imm_of(i: int) -> Optional[int]:
        return srcs[i][1] if srcs[i][0] == "imm" else None

    if op == "v_mov":
        masks[0] = out
    elif op in ("v_add", "v_sub", "v_mul"):
        m = _fill_below_msb(out)
        masks[0] = m
        masks[1] = m
    elif op in ("v_and", "v_or"):
        for i in (0, 1):
            other = imm_of(1 - i)
            if other is None:
                masks[i] = out
            elif op == "v_and":
                masks[i] = out & np.uint32(other)
            else:
                masks[i] = out & np.uint32(~other & 0xFFFFFFFF)
    elif op in ("v_xor", "v_not"):
        for i in range(len(srcs)):
            masks[i] = out
    elif op in ("v_shl", "v_shr", "v_ashr"):
        k = imm_of(1)
        if k is None:
            masks[0] = _full_if(out)
            masks[1] = np.where(out != 0, np.uint32(31), np.uint32(0))
        else:
            k &= 31
            if op == "v_shl":
                masks[0] = out >> np.uint32(k)
            elif op == "v_shr":
                masks[0] = out << np.uint32(k)
            else:  # arithmetic: the sign bit smears into every result bit
                masks[0] = (out << np.uint32(k)) | np.where(
                    out != 0, np.uint32(0x80000000), np.uint32(0)
                )
    elif op == "v_cndmask":
        vcc = rec.vcc_snap
        masks[0] = np.where(vcc, out, np.uint32(0))
        masks[1] = np.where(vcc, np.uint32(0), out)
    elif op == "v_shuffle_up":
        delta = int(srcs[1][1])
        m = np.zeros(WAVEFRONT_LANES, dtype=np.uint32)
        if delta < WAVEFRONT_LANES:
            m[: WAVEFRONT_LANES - delta] = out[delta:]
        masks[0] = m
    elif op == "v_shuffle_xor":
        xm = int(srcs[1][1])
        masks[0] = out[_LANES ^ xm]
    else:
        # min/max/abs, all float ops, conversions: every input bit can
        # influence the result.
        for i, src in enumerate(srcs):
            if src[0] == "v":
                masks[i] = _full_if(out)
    return masks


class _WfState:
    """Backward-pass state for one wavefront."""

    __slots__ = ("needed_vreg", "needed_vcc", "needed_lds")

    def __init__(self, n_vregs: int, lds_size: int) -> None:
        self.needed_vreg = np.zeros((n_vregs, WAVEFRONT_LANES), dtype=np.uint32)
        self.needed_vcc = np.zeros(WAVEFRONT_LANES, dtype=bool)
        self.needed_lds = np.zeros(lds_size, dtype=bool)


def analyze_liveness(
    records: Sequence[InstrRecord],
    n_vregs_by_wf: Dict[int, int],
    mem_size: int,
    output_ranges: Sequence[Tuple[int, int]],
    lds_size: int = 4096,
) -> np.ndarray:
    """Annotate ``records`` in place; returns the final needed-memory map.

    ``output_ranges`` are (base, size) pairs of the buffers the host reads
    after the workload: their final contents are live by definition, and
    everything else is live only if it transitively feeds them.
    """
    needed_mem = np.zeros(mem_size, dtype=bool)
    for base, size in output_ranges:
        needed_mem[base : base + size] = True
    wf_states: Dict[int, _WfState] = {}

    for rec in reversed(records):
        st = wf_states.get(rec.wf)
        if st is None:
            st = _WfState(n_vregs_by_wf[rec.wf], lds_size)
            wf_states[rec.wf] = st
        op = rec.op

        if op in ("v_load", "v_load_u8", "lds_load"):
            _process_load(rec, st, needed_mem)
        elif op in ("v_store", "v_store_u8", "lds_store"):
            _process_store(rec, st, needed_mem)
        elif op in ("v_cmp", "v_fcmp"):
            out_lanes = st.needed_vcc & rec.exec_mask
            mask = np.where(out_lanes, M32, np.uint32(0))
            rec.src_needed = []
            for src in rec.srcs:
                if src[0] == "v":
                    rec.src_needed.append(mask)
                    st.needed_vreg[src[1]] |= mask
                else:
                    rec.src_needed.append(None)
            rec.live = bool(out_lanes.any())
            st.needed_vcc = st.needed_vcc & ~rec.exec_mask
        elif op == "v_readlane":
            # Scalar state is conservatively always live (it is almost
            # always control/address computation).
            lane = int(rec.srcs[1][1])
            mask = np.zeros(WAVEFRONT_LANES, dtype=np.uint32)
            mask[lane] = M32
            rec.src_needed = [mask, None]
            if rec.srcs[0][0] == "v":
                st.needed_vreg[rec.srcs[0][1]] |= mask
            rec.live = True
        else:
            _process_alu(rec, st)

    return needed_mem


def _take_out_mask(rec: InstrRecord, st: _WfState, lanes: np.ndarray) -> np.ndarray:
    """Needed mask for the destination, then mark it redefined on ``lanes``."""
    dst = rec.dst[1]
    out = np.where(lanes, st.needed_vreg[dst], np.uint32(0))
    st.needed_vreg[dst][lanes] = 0
    return out


def _process_alu(rec: InstrRecord, st: _WfState) -> None:
    out = _take_out_mask(rec, st, rec.exec_mask)
    rec.live = bool(out.any())
    masks = _alu_src_masks(rec, out)
    rec.src_needed = []
    for src, mask in zip(rec.srcs, masks):
        if src[0] != "v" or mask is None:
            rec.src_needed.append(None)
            continue
        if rec.op in ("v_shuffle_up", "v_shuffle_xor"):
            # Shuffles read source lanes regardless of the exec mask.
            lane_mask = mask
        else:
            lane_mask = np.where(rec.exec_mask, mask, np.uint32(0))
        rec.src_needed.append(lane_mask)
        st.needed_vreg[src[1]] |= lane_mask
    if rec.op == "v_cndmask":
        st.needed_vcc |= (out != 0) & rec.exec_mask


def _process_load(rec: InstrRecord, st: _WfState, needed_mem: np.ndarray) -> None:
    lanes = rec.acc_mask
    out = _take_out_mask(rec, st, lanes)
    if rec.op.endswith("_u8"):
        out = out & np.uint32(0xFF)
    rec.load_needed = out
    rec.live = bool(out.any())
    mem = st.needed_lds if rec.space == "lds" else needed_mem
    for lane in np.where(lanes & (out != 0))[0]:
        a = int(rec.addrs[lane])
        m = int(out[lane])
        for b in range(rec.nbytes):
            if m & (0xFF << (8 * b)):
                mem[a + b] = True
    addr_mask = _full_if(out)
    rec.src_needed = []
    for src in rec.srcs:
        if src[0] == "v":
            rec.src_needed.append(addr_mask)
            st.needed_vreg[src[1]] |= addr_mask
        else:
            rec.src_needed.append(None)
    if rec.vcc_snap is not None:
        st.needed_vcc |= (out != 0) & rec.exec_mask


def _process_store(rec: InstrRecord, st: _WfState, needed_mem: np.ndarray) -> None:
    lanes = rec.acc_mask
    mem = st.needed_lds if rec.space == "lds" else needed_mem
    mem_needed = np.zeros(WAVEFRONT_LANES, dtype=np.uint32)
    for lane in np.where(lanes)[0]:
        a = int(rec.addrs[lane])
        m = 0
        for b in range(rec.nbytes):
            if mem[a + b]:
                m |= 0xFF << (8 * b)
            mem[a + b] = False  # overwritten: earlier values are dead
        mem_needed[lane] = m
    rec.mem_needed = mem_needed
    rec.live = bool(mem_needed.any())
    addr_mask = _full_if(mem_needed)
    # srcs = (value, addr)
    rec.src_needed = [None, None]
    if rec.srcs[0][0] == "v":
        rec.src_needed[0] = mem_needed
        st.needed_vreg[rec.srcs[0][1]] |= mem_needed
    if rec.srcs[1][0] == "v":
        rec.src_needed[1] = addr_mask
        st.needed_vreg[rec.srcs[1][1]] |= addr_mask
    if rec.vcc_snap is not None:
        st.needed_vcc |= (mem_needed != 0) & rec.exec_mask
