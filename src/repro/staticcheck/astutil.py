"""Small AST helpers shared by the lint rules.

The central piece is import-aware name resolution: rules match calls by
*qualified* dotted name (``numpy.random.default_rng``), and
:func:`resolve_call` maps whatever the source actually wrote (``np.
random.default_rng``, ``from numpy.random import default_rng``) onto
that canonical spelling using the module's import aliases.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

__all__ = [
    "collect_aliases",
    "dotted_name",
    "resolve",
    "resolve_call",
    "keyword_arg",
    "const_value",
]


def collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted module/attribute path.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy import random`` -> ``{"random": "numpy.random"}``;
    ``from numpy.random import default_rng as rng`` ->
    ``{"rng": "numpy.random.default_rng"}``.
    Relative imports are recorded with their dots stripped (good enough
    to match in-package module names like ``obs``).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                local = a.asname or a.name.split(".")[0]
                target = a.name if a.asname else a.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for a in node.names:
                if a.name == "*":
                    continue
                local = a.asname or a.name
                aliases[local] = f"{base}.{a.name}" if base else a.name
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve(name: str, aliases: Dict[str, str]) -> str:
    """Expand the first segment of a dotted name through the alias map."""
    head, sep, rest = name.partition(".")
    base = aliases.get(head, head)
    return base + sep + rest if sep else base


def resolve_call(call: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a call's callee, or None if not static."""
    name = dotted_name(call.func)
    if name is None:
        return None
    return resolve(name, aliases)


def keyword_arg(call: ast.Call, name: str) -> Optional[ast.expr]:
    """The value of keyword argument ``name``, if present."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def const_value(node: Optional[ast.expr]) -> object:
    """The value of a constant expression, else a unique sentinel."""
    if isinstance(node, ast.Constant):
        return node.value
    return _NOT_CONST


_NOT_CONST = object()
