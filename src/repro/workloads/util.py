"""Shared code-generation helpers for workload kernels.

Register conventions inside kernels built with these helpers:

* ``v0`` global thread id, ``v1`` lane id (preset by the launcher);
* ``v14``/``v15`` are scratch used by the address helpers;
* kernel arguments start at ``s2``.
"""

from __future__ import annotations

from ..arch.isa import Operand, ProgramBuilder, imm, v

__all__ = ["addr_of_tid", "addr_of", "scaled_addr"]


def addr_of_tid(
    p: ProgramBuilder, base: Operand, dst: Operand = v(14), shift: int = 2
) -> Operand:
    """dst = base + (tid << shift): the address of this thread's element."""
    p.shl(dst, v(0), imm(shift))
    p.iadd(dst, dst, base)
    return dst


def addr_of(
    p: ProgramBuilder,
    base: Operand,
    index: Operand,
    dst: Operand = v(14),
    shift: int = 2,
) -> Operand:
    """dst = base + (index << shift)."""
    p.shl(dst, index, imm(shift))
    p.iadd(dst, dst, base)
    return dst


def scaled_addr(
    p: ProgramBuilder,
    base: Operand,
    row: Operand,
    col: Operand,
    row_stride_log2: int,
    dst: Operand = v(14),
    shift: int = 2,
) -> Operand:
    """dst = base + ((row << row_stride_log2) + col) << shift."""
    p.shl(dst, row, imm(row_stride_log2))
    p.iadd(dst, dst, col)
    p.shl(dst, dst, imm(shift))
    p.iadd(dst, dst, base)
    return dst
