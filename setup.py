"""Legacy setuptools shim.

``pyproject.toml`` is the source of truth; this file only enables
``python setup.py develop`` on toolchains too old for PEP 660 editable
installs (e.g. offline environments without the ``wheel`` package).
"""

from setuptools import setup

setup()
