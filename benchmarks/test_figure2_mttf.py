"""Figure 2: MTTF of a 32MB cache from temporal vs spatial multi-bit faults.

Shape targets: spatial-MBF MTTF is below temporal-MBF MTTF at every raw
rate (even with unbounded data lifetime); with the 100-year lifetime bound
the gap reaches 6-8 orders of magnitude; the projected 5% sMBF fraction
costs a further 50x.
"""

import pytest

from repro.core import figure2_sweep


def _sweep():
    rows = figure2_sweep()
    lines = [
        f"{'FIT/Mbit':>9} {'sMBF 0.1%':>12} {'sMBF 5%':>12} "
        f"{'tMBF inf':>12} {'tMBF 100yr':>12}"
    ]
    for r in rows:
        lines.append(
            f"{r.raw_fit_per_mbit:9.2f} {r.mttf_smbf_01pct:12.3e} "
            f"{r.mttf_smbf_5pct:12.3e} {r.mttf_tmbf_unbounded:12.3e} "
            f"{r.mttf_tmbf_100yr:12.3e}"
        )
    return lines, rows


@pytest.mark.benchmark(group="figure2")
def test_figure2_mttf(benchmark, report):
    lines, rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    report("figure2_mttf", lines)
    for r in rows:
        assert r.mttf_smbf_01pct < r.mttf_tmbf_unbounded
        assert r.mttf_smbf_01pct < r.mttf_tmbf_100yr
        assert r.mttf_smbf_01pct / r.mttf_smbf_5pct == pytest.approx(50.0)
    low = rows[0]  # most realistic (lowest) raw rate
    assert low.mttf_tmbf_100yr / low.mttf_smbf_01pct > 1e7
    assert low.mttf_tmbf_100yr / low.mttf_smbf_5pct > 1e6
